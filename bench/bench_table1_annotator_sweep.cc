// Table 1: accuracy (F1) of NTW as a function of the annotator's
// precision p and recall r, on DEALERS with XPATH wrappers. The controlled
// annotator of Sec. 7.4 labels each correct node with probability p1 (= r)
// and each incorrect node with probability p2, solved from the target
// precision; 25 pages are annotated per website.

#include <vector>

#include "annotate/synthetic_annotator.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/metrics.h"
#include "core/xpath_inductor.h"

namespace {

constexpr double kPrecisions[] = {0.1, 0.3, 0.5, 0.7, 0.9};
constexpr double kRecalls[] = {0.05, 0.1, 0.15, 0.2, 0.25, 0.3};

}  // namespace

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Table 1: NTW accuracy vs annotator precision/recall "
      "(DEALERS, XPATH, 25 pages/site)",
      "Dalvi et al., PVLDB 4(4) 2011, Table 1",
      "Accuracy grows with both p and r; >0.9 already at moderate "
      "operating points (the paper highlights r>=0.15, p>=0.5)");

  datasets::DealersConfig dealers_config;
  dealers_config.num_sites = 30;
  dealers_config.pages_per_site = 25;  // Sec. 7.4: 25 webpages per site.
  datasets::Dataset dealers = datasets::MakeDealers(dealers_config);
  datasets::Split split = datasets::MakeSplit(dealers);

  // The publication model comes from the training half's ground truth
  // (independent of the synthetic annotator).
  Result<datasets::TrainedModels> base_models =
      datasets::LearnModels(dealers, "name", split.train);
  if (!base_models.ok()) {
    std::fprintf(stderr, "model learning failed: %s\n",
                 base_models.status().ToString().c_str());
    return 1;
  }

  core::XPathInductor inductor;
  Rng rng(2011);

  std::printf("%6s", "p \\ r");
  for (double r : kRecalls) std::printf(" %6.2f", r);
  std::printf("\n");

  for (double precision : kPrecisions) {
    std::printf("%6.1f", precision);
    for (double recall : kRecalls) {
      std::vector<core::Prf> results;
      for (size_t index : split.test) {
        const datasets::SiteData& data = dealers.sites[index];
        const core::NodeSet& truth = data.site.truth.at("name");
        size_t universe = data.site.pages.TextNodeCount();
        double p2 = annotate::SyntheticAnnotator::SolveP2(
            recall, precision, truth.size(), universe - truth.size());
        annotate::SyntheticAnnotator annotator(recall, p2);
        core::NodeSet labels =
            annotator.Annotate(data.site.pages, truth, &rng);
        if (labels.empty()) {
          results.push_back(core::Evaluate(core::NodeSet(), truth));
          continue;
        }
        core::AnnotationModel annotation(1.0 - p2, recall);
        core::Ranker ranker(annotation, base_models->publication);
        Result<core::NtwOutcome> outcome = core::LearnNoiseTolerant(
            inductor, data.site.pages, labels, ranker);
        results.push_back(core::Evaluate(
            outcome.ok() ? outcome->best.extraction : core::NodeSet(),
            truth));
      }
      std::printf(" %6.2f", core::MacroAverage(results).f1);
    }
    std::printf("\n");
  }
  return 0;
}
