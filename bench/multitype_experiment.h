#ifndef NTW_BENCH_MULTITYPE_EXPERIMENT_H_
#define NTW_BENCH_MULTITYPE_EXPERIMENT_H_

#include "core/metrics.h"
#include "datasets/dataset.h"

namespace ntw::bench {

/// Aggregated results of the Appendix A experiment on DEALERS.
struct MultiTypeResults {
  // Joint multi-type extraction, per type.
  core::Prf ntw_name, ntw_zip;
  core::Prf naive_name, naive_zip;
  // Single-type extraction of the same types (for Fig. 3(b)).
  core::Prf single_name, single_zip;
  size_t sites = 0;
};

/// Runs multi-type NTW + NAIVE and single-type NTW for "name" and "zip"
/// over the held-out half of the DEALERS dataset.
Result<MultiTypeResults> RunMultiTypeExperiment(
    const datasets::Dataset& dealers);

}  // namespace ntw::bench

#endif  // NTW_BENCH_MULTITYPE_EXPERIMENT_H_
