// Figure 2(g): precision/recall/F1 of NAIVE vs NTW with LR wrappers on
// the DISC dataset.

#include "bench_util.h"
#include "core/lr_inductor.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Figure 2(g): accuracy of LR on DISC",
      "Dalvi et al., PVLDB 4(4) 2011, Fig. 2(g)",
      "NTW perfect precision and recall on DISC for LR as well");
  datasets::Dataset disc = bench::StandardDisc();
  core::LrInductor inductor;
  datasets::RunConfig config;
  config.type = "track";
  Result<datasets::RunSummary> summary =
      datasets::RunSingleType(disc, inductor, config);
  if (!summary.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  bench::PrintAccuracyBlock(*summary);
  return 0;
}
