// Figure 3(c): precision/recall/F1 of NAIVE vs NTW with XPath wrappers on
// the PRODUCTS dataset (cellphone listings, Wikipedia-derived model
// dictionary of 463 entries).

#include "bench_util.h"
#include "core/xpath_inductor.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Figure 3(c): accuracy of XPath on PRODUCTS",
      "Dalvi et al., PVLDB 4(4) 2011, Fig. 3(c) / Appendix B.1",
      "Behavior similar to DEALERS and DISC: NTW near-perfect, NAIVE "
      "recall 1 with low precision");
  datasets::Dataset products = bench::StandardProducts();
  core::XPathInductor inductor;
  datasets::RunConfig config;
  config.type = "model";
  Result<datasets::RunSummary> summary =
      datasets::RunSingleType(products, inductor, config);
  if (!summary.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  bench::PrintAccuracyBlock(*summary);
  return 0;
}
