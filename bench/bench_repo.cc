// Repository scaling benchmark: mmap pack open vs eager directory load,
// swept across synthetic repository sizes (1k → 1M sites). For each size
// the bench streams the synthetic records straight into a
// WrapperPackBuilder (ForEachSyntheticWrapperRecord — no directory
// intermediate, which is what makes the 1M-site point feasible: two
// million tiny files would dominate the run with filesystem overhead),
// and measures:
//
//   * pack Open(): wall time of WrapperRepository::Load() on the pack
//     backend (header validation + mmap, nothing parsed) and the RSS it
//     touches,
//   * cold first-hit latency: Snapshot::Find() on sites no request has
//     materialized yet (page-in + parse + compile of one entry),
//   * eager directory Load(): the baseline every earlier PR paid at
//     startup, and its RSS. The directory tree is materialized (and this
//     baseline measured) only up to 100k sites; beyond that the sweep is
//     pack-only and the point records dir_baseline=false.
//
// Pack open is measured *before* the eager load within each point so its
// RSS delta is not deflated by heap the big load released back to the
// allocator. Non-smoke runs enforce the headline claim on 10k+ points
// that have the baseline: pack open must be >= 50x faster than the eager
// directory load, with the pack's cold RSS staying far below the eager
// load's.
//
// `--out PATH` writes an ntw-repo-bench (v2) JSON document
// (BENCH_repo.json in CI); `--smoke` shrinks the sweep to a CI-sized
// sanity run and skips the speedup enforcement (tiny repositories are
// dominated by fixed costs, not scaling).

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/build_info.h"
#include "common/file_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/wrapper_pack.h"
#include "obs/json.h"
#include "obs/proc.h"
#include "serve/wrapper_repository.h"
#include "sitegen/origin.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: bench_repo [--out BENCH_repo.json] [--sizes 1000,10000,...]\n"
    "                  [--attrs N] [--seed N] [--smoke]\n";

// The directory baseline (and its tree materialization) stops here: past
// 100k sites the eager load's cost is already established as linear, and
// writing millions of wrapper files would dominate the sweep's runtime.
constexpr int64_t kMaxDirBaselineSites = 100000;

struct SweepPoint {
  int64_t sites = 0;
  int64_t entries = 0;
  double pack_build_seconds = 0.0;
  int64_t pack_file_bytes = 0;
  double pack_open_micros = 0.0;
  int64_t pack_open_rss_bytes = 0;
  double first_hit_micros_p50 = 0.0;
  double first_hit_micros_max = 0.0;
  int64_t cold_hit_rss_bytes = 0;
  bool dir_baseline = false;
  double dir_load_micros = 0.0;
  int64_t dir_load_rss_bytes = 0;
  double open_speedup = 0.0;
};

// Streams the synthetic records straight into the pack builder — the
// in-memory equivalent of `ntw_origin` + `ntw_pack build`, producing
// byte-identical entries (ForEachSyntheticWrapperRecord yields the exact
// bytes the written tree would hold) without the directory intermediate.
Status BuildPack(const sitegen::SyntheticRepositoryOptions& options,
                 const std::string& out, size_t* entries) {
  core::WrapperPackBuilder builder;
  NTW_RETURN_IF_ERROR(sitegen::ForEachSyntheticWrapperRecord(
      options, [&](const std::string& site, const std::string& attribute,
                   const std::string& record) {
        return builder.Add(site, attribute, record);
      }));
  *entries = builder.entry_count();
  return builder.WriteFile(out);
}

int64_t RssDelta(int64_t before, int64_t after) {
  return std::max<int64_t>(0, after - before);
}

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::vector<std::string> unknown =
      flags.UnknownFlags({"out", "sizes", "attrs", "seed", "smoke", "help"});
  if (!unknown.empty() || flags.Has("help")) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    std::fprintf(stderr, "%s", kUsage);
    return flags.Has("help") ? 0 : 2;
  }
  bool smoke = flags.Has("smoke");
  Result<int64_t> attrs = flags.GetInt("attrs", 2);
  Result<int64_t> seed = flags.GetInt("seed", 17);
  for (const auto* value : {&attrs, &seed}) {
    if (!value->ok()) {
      std::fprintf(stderr, "%s\n%s", value->status().ToString().c_str(),
                   kUsage);
      return 2;
    }
  }
  std::vector<int64_t> sizes;
  for (const std::string& part :
       Split(flags.Get("sizes",
                       smoke ? "100,400" : "1000,10000,100000,1000000"),
             ',')) {
    if (part.empty()) continue;
    sizes.push_back(std::max<int64_t>(1, std::atoll(part.c_str())));
  }
  if (sizes.empty()) sizes = {1000};
  std::sort(sizes.begin(), sizes.end());

  std::string work = (std::filesystem::temp_directory_path() /
                      StrFormat("ntw_bench_repo_%d", static_cast<int>(getpid())))
                         .string();
  std::filesystem::remove_all(work);

  std::vector<SweepPoint> points;
  bool enforcement_failed = false;
  for (int64_t size : sizes) {
    SweepPoint point;
    point.sites = size;
    std::string repo_dir = work + "/repo";
    std::string pack_path = work + "/wrappers.pack";
    std::filesystem::remove_all(work);
    std::filesystem::create_directories(work);

    sitegen::SyntheticRepositoryOptions options;
    options.sites = static_cast<size_t>(size);
    options.attrs = static_cast<size_t>(*attrs);
    options.seed = static_cast<uint64_t>(*seed);
    point.dir_baseline = size <= kMaxDirBaselineSites;

    size_t entries = 0;
    Stopwatch build_timer;
    Status packed = BuildPack(options, pack_path, &entries);
    point.pack_build_seconds = build_timer.ElapsedSeconds();
    if (!packed.ok()) {
      std::fprintf(stderr, "bench_repo: %s\n", packed.ToString().c_str());
      return 1;
    }
    point.entries = static_cast<int64_t>(entries);
    point.pack_file_bytes =
        static_cast<int64_t>(std::filesystem::file_size(pack_path));

    // Pack open + cold first hits, before the eager load touches the heap.
    {
      int64_t rss_before = obs::CurrentRssBytes();
      serve::WrapperRepository repository(
          serve::WrapperRepository::Options{std::string(), pack_path});
      Stopwatch open_timer;
      Status loaded = repository.Load();
      point.pack_open_micros = open_timer.ElapsedSeconds() * 1e6;
      if (!loaded.ok()) {
        std::fprintf(stderr, "bench_repo: pack open: %s\n",
                     loaded.ToString().c_str());
        return 1;
      }
      point.pack_open_rss_bytes =
          RssDelta(rss_before, obs::CurrentRssBytes());

      auto pinned = repository.Pin();
      if (pinned->pack == nullptr) {
        std::fprintf(stderr, "bench_repo: pack backend did not engage\n");
        return 1;
      }
      // First-hit latency on sites nothing has materialized yet, spread
      // across the directory so the hits touch distinct pack pages.
      size_t probes = std::min<int64_t>(size, 32);
      std::vector<double> micros;
      for (size_t i = 0; i < probes; ++i) {
        size_t index = i * static_cast<size_t>(size) / probes;
        std::string site = StrFormat("site_%06zu", index);
        Stopwatch hit_timer;
        const serve::WrapperRepository::Entry* entry =
            pinned->Find(site, "attr_00");
        micros.push_back(hit_timer.ElapsedSeconds() * 1e6);
        if (entry == nullptr) {
          std::fprintf(stderr, "bench_repo: cold hit missed %s\n",
                       site.c_str());
          return 1;
        }
      }
      std::sort(micros.begin(), micros.end());
      point.first_hit_micros_p50 = micros[micros.size() / 2];
      point.first_hit_micros_max = micros.back();
      point.cold_hit_rss_bytes = RssDelta(rss_before, obs::CurrentRssBytes());
    }

    // Eager directory load — the pre-pack startup cost. The tree is only
    // materialized for this baseline, so the biggest points skip both.
    if (point.dir_baseline) {
      Status wrote =
          sitegen::WriteSyntheticWrapperRepository(options, repo_dir);
      if (!wrote.ok()) {
        std::fprintf(stderr, "bench_repo: %s\n", wrote.ToString().c_str());
        return 1;
      }
      int64_t rss_before = obs::CurrentRssBytes();
      serve::WrapperRepository repository(repo_dir);
      Stopwatch load_timer;
      Status loaded = repository.Load();
      point.dir_load_micros = load_timer.ElapsedSeconds() * 1e6;
      if (!loaded.ok()) {
        std::fprintf(stderr, "bench_repo: dir load: %s\n",
                     loaded.ToString().c_str());
        return 1;
      }
      point.dir_load_rss_bytes = RssDelta(rss_before, obs::CurrentRssBytes());
      point.open_speedup = point.pack_open_micros > 0.0
                               ? point.dir_load_micros / point.pack_open_micros
                               : 0.0;
    }

    if (point.dir_baseline) {
      std::fprintf(stderr,
                   "bench_repo: sites=%lld open=%.0fus dir_load=%.0fus "
                   "(%.0fx) first_hit_p50=%.1fus cold_rss=%lld dir_rss=%lld\n",
                   static_cast<long long>(point.sites), point.pack_open_micros,
                   point.dir_load_micros, point.open_speedup,
                   point.first_hit_micros_p50,
                   static_cast<long long>(point.cold_hit_rss_bytes),
                   static_cast<long long>(point.dir_load_rss_bytes));
    } else {
      std::fprintf(stderr,
                   "bench_repo: sites=%lld open=%.0fus (no dir baseline) "
                   "first_hit_p50=%.1fus cold_rss=%lld pack=%lldB\n",
                   static_cast<long long>(point.sites), point.pack_open_micros,
                   point.first_hit_micros_p50,
                   static_cast<long long>(point.cold_hit_rss_bytes),
                   static_cast<long long>(point.pack_file_bytes));
    }

    if (!smoke && point.dir_baseline && size >= 10000 &&
        point.open_speedup < 50.0) {
      std::fprintf(stderr,
                   "bench_repo: FAIL sites=%lld pack open only %.1fx faster "
                   "than eager load (need >= 50x)\n",
                   static_cast<long long>(point.sites), point.open_speedup);
      enforcement_failed = true;
    }
    points.push_back(point);
  }
  std::filesystem::remove_all(work);

  obs::JsonWriter json;
  json.BeginObject();
  json.KV("schema", "ntw-repo-bench");
  json.KV("schema_version", int64_t{2});
  json.KV("smoke", smoke);
  WriteMachineInfo(json);
  json.KV("attrs", *attrs);
  json.KV("seed", *seed);
  json.Key("runs");
  json.BeginArray();
  for (const SweepPoint& point : points) {
    json.BeginObject();
    json.KV("sites", point.sites);
    json.KV("entries", point.entries);
    json.KV("pack_build_seconds", point.pack_build_seconds);
    json.KV("pack_file_bytes", point.pack_file_bytes);
    json.KV("pack_open_micros", point.pack_open_micros);
    json.KV("pack_open_rss_bytes", point.pack_open_rss_bytes);
    json.KV("first_hit_micros_p50", point.first_hit_micros_p50);
    json.KV("first_hit_micros_max", point.first_hit_micros_max);
    json.KV("cold_hit_rss_bytes", point.cold_hit_rss_bytes);
    json.KV("dir_baseline", point.dir_baseline);
    if (point.dir_baseline) {
      json.KV("dir_load_micros", point.dir_load_micros);
      json.KV("dir_load_rss_bytes", point.dir_load_rss_bytes);
      json.KV("open_speedup", point.open_speedup);
    }
    json.EndObject();
  }
  json.EndArray();
  json.KV("peak_rss_bytes", obs::PeakRssBytes());
  json.EndObject();

  std::string out = flags.Get("out", "BENCH_repo.json");
  Status written = WriteFile(out, json.Take() + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "bench_repo: wrote %s\n", out.c_str());
  return enforcement_failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
