#include "bench_util.h"

#include <cstdlib>

namespace ntw::bench {
namespace {

size_t DealerSiteCount() {
  const char* env = std::getenv("NTW_BENCH_SITES");
  if (env != nullptr) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 330;  // The paper's DEALERS size.
}

}  // namespace

datasets::Dataset StandardDealers() {
  datasets::DealersConfig config;
  config.num_sites = DealerSiteCount();
  return datasets::MakeDealers(config);
}

datasets::Dataset StandardDisc() {
  return datasets::MakeDisc(datasets::DiscConfig{});
}

datasets::Dataset StandardProducts() {
  return datasets::MakeProducts(datasets::ProductsConfig{});
}

void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces : %s\n", paper_ref.c_str());
  std::printf("expected   : %s\n", expectation.c_str());
  std::printf("==============================================================\n");
}

void PrintAccuracyBlock(const datasets::RunSummary& summary) {
  std::printf("annotator quality : precision=%.3f recall=%.3f\n",
              summary.annotator.precision, summary.annotator.recall);
  std::printf("sites evaluated   : %zu (skipped %zu with no annotations)\n",
              summary.sites.size(), summary.skipped_sites);
  std::printf("%-8s %10s %10s %10s\n", "", "Precision", "Recall", "F1");
  std::printf("%-8s %10.3f %10.3f %10.3f\n", "NTW",
              summary.ntw_avg.precision, summary.ntw_avg.recall,
              summary.ntw_avg.f1);
  std::printf("%-8s %10.3f %10.3f %10.3f\n", "NAIVE",
              summary.naive_avg.precision, summary.naive_avg.recall,
              summary.naive_avg.f1);
}

}  // namespace ntw::bench
