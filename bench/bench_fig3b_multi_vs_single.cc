// Figure 3(b): per-type accuracy (F1) of the joint multi-type NTW
// extractor vs single-type NTW extraction on DEALERS.

#include "bench_util.h"
#include "multitype_experiment.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Figure 3(b): multi-type vs single-type extraction (DEALERS)",
      "Dalvi et al., PVLDB 4(4) 2011, Fig. 3(b)",
      "Joint extraction matches (zipcode) or slightly exceeds (name) the "
      "single-type accuracy — the types corroborate each other in "
      "ranking");
  datasets::Dataset dealers = bench::StandardDealers();
  Result<bench::MultiTypeResults> results =
      bench::RunMultiTypeExperiment(dealers);
  if (!results.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  std::printf("sites evaluated: %zu\n", results->sites);
  std::printf("%-10s %10s %10s\n", "type", "MULTI F1", "SINGLE F1");
  std::printf("%-10s %10.3f %10.3f\n", "Name", results->ntw_name.f1,
              results->single_name.f1);
  std::printf("%-10s %10.3f %10.3f\n", "Zipcode", results->ntw_zip.f1,
              results->single_zip.f1);
  return 0;
}
