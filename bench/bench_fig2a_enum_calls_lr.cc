// Figure 2(a): number of wrapper-inductor calls for LR wrappers —
// TopDown vs BottomUp vs Naive across the DEALERS websites.

#include "bench_util.h"
#include "core/lr_inductor.h"
#include "enum_experiment.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Figure 2(a): # of wrapper calls for LR (DEALERS)",
      "Dalvi et al., PVLDB 4(4) 2011, Fig. 2(a)",
      "TopDown = k calls; BottomUp ~ an order of magnitude more but "
      "<= k*|L|; Naive = 2^|L|-1 explodes");
  datasets::Dataset dealers = bench::StandardDealers();
  core::LrInductor inductor;
  std::vector<bench::EnumRow> rows = bench::RunEnumExperiment(
      dealers, "name", inductor, /*naive_label_cap=*/14);
  bench::PrintCallCounts(rows);
  return 0;
}
