// Figure 3(a): accuracy of the multi-type (name + zipcode) extractor on
// DEALERS — NTW vs NAIVE, averaged over both types.

#include "bench_util.h"
#include "multitype_experiment.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Figure 3(a): accuracy of the multi-type extractor (DEALERS)",
      "Dalvi et al., PVLDB 4(4) 2011, Fig. 3(a)",
      "NAIVE recall (and F1) close to 0 — imperfect per-type rules break "
      "record assembly; NTW precision and recall close to 1");
  datasets::Dataset dealers = bench::StandardDealers();
  Result<bench::MultiTypeResults> results =
      bench::RunMultiTypeExperiment(dealers);
  if (!results.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  auto average = [](const core::Prf& a, const core::Prf& b) {
    core::Prf avg;
    avg.precision = (a.precision + b.precision) / 2;
    avg.recall = (a.recall + b.recall) / 2;
    avg.f1 = (a.f1 + b.f1) / 2;
    return avg;
  };
  core::Prf ntw = average(results->ntw_name, results->ntw_zip);
  core::Prf naive = average(results->naive_name, results->naive_zip);
  std::printf("sites evaluated: %zu\n", results->sites);
  std::printf("%-8s %10s %10s %10s\n", "", "Precision", "Recall", "F1");
  std::printf("%-8s %10.3f %10.3f %10.3f\n", "NTW", ntw.precision,
              ntw.recall, ntw.f1);
  std::printf("%-8s %10.3f %10.3f %10.3f\n", "NAIVE", naive.precision,
              naive.recall, naive.f1);
  return 0;
}
