// Figure 2(i): ranking-model ablation for LR on DEALERS — full NTW vs
// NTW-L vs NTW-X.

#include "bench_util.h"
#include "core/lr_inductor.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Figure 2(i): LR ranking variants on DEALERS",
      "Dalvi et al., PVLDB 4(4) 2011, Fig. 2(i)",
      "For LR the labeling term alone does not help much; the list term "
      "carries more weight, and only the combination reaches full NTW");
  datasets::Dataset dealers = bench::StandardDealers();
  core::LrInductor inductor;

  std::printf("%-8s %10s %10s %10s\n", "variant", "Precision", "Recall",
              "F1");
  for (core::RankerVariant variant :
       {core::RankerVariant::kFull, core::RankerVariant::kAnnotationOnly,
        core::RankerVariant::kListOnly}) {
    datasets::RunConfig config;
    config.type = "name";
    config.variant = variant;
    Result<datasets::RunSummary> summary =
        datasets::RunSingleType(dealers, inductor, config);
    if (!summary.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   summary.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s %10.3f %10.3f %10.3f\n",
                core::RankerVariantName(variant),
                summary->ntw_avg.precision, summary->ntw_avg.recall,
                summary->ntw_avg.f1);
  }
  return 0;
}
