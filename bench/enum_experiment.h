#ifndef NTW_BENCH_ENUM_EXPERIMENT_H_
#define NTW_BENCH_ENUM_EXPERIMENT_H_

#include "core/enumerate.h"
#include "datasets/dataset.h"

namespace ntw::bench {

/// Per-site measurements for the enumeration experiments (Fig. 2(a-c)).
struct EnumRow {
  std::string site;
  size_t labels = 0;
  size_t space = 0;
  int64_t top_down_calls = 0;
  int64_t bottom_up_calls = 0;
  double naive_calls = 0;  // 2^|L| − 1, analytic (the paper stops plotting
                           // it when it explodes); run for small |L|.
  bool naive_ran = false;
  double top_down_seconds = 0;
  double bottom_up_seconds = 0;
};

/// Runs TopDown, BottomUp and (for small label sets) Naive enumeration on
/// every annotated site; rows are sorted by TopDown call count like the
/// paper's x-axis ("websites arranged in increasing order of TopDown").
std::vector<EnumRow> RunEnumExperiment(
    const datasets::Dataset& dataset, const std::string& type,
    const core::FeatureBasedInductor& inductor, size_t naive_label_cap);

/// Prints the call-count table (Fig. 2(a,b)).
void PrintCallCounts(const std::vector<EnumRow>& rows);

/// Prints the wall-clock table (Fig. 2(c)).
void PrintTimes(const std::vector<EnumRow>& rows);

}  // namespace ntw::bench

#endif  // NTW_BENCH_ENUM_EXPERIMENT_H_
