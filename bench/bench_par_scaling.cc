// Extension experiment: scaling of the parallel enumeration engine on the
// annotated-pages sweep (the bench_ext_pages_sweep workload, BottomUp so
// the memoized induction cache is exercised). For each thread count the
// bench learns a noise-tolerant wrapper per dealer site — the per-site
// fan-out plus the per-round expansion fan-out inside BottomUp — and
// checks the extraction output is byte-identical to the serial run.
//
// Writes BENCH_par_scaling.json (gitignored scratch output) so successive
// runs can track the speedup trajectory. NTW_BENCH_SITES / NTW_BENCH_PAGES
// override the corpus size.

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/file_util.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/metrics.h"
#include "core/ntw.h"
#include "core/xpath_inductor.h"

namespace {

using namespace ntw;

size_t EnvOr(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return fallback;
}

/// One full pages-sweep pass at the current global thread width: learn a
/// BottomUp NTW wrapper for every site at every annotated-page cap.
struct SweepResult {
  double seconds = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t inductor_calls = 0;
  /// Concatenated (site, cap, extraction fingerprint) triples — the
  /// byte-identity witness compared across thread counts.
  std::vector<uint64_t> output_fingerprints;
};

SweepResult RunSweep(const datasets::Dataset& dealers,
                     const datasets::Split& split, const core::Ranker& ranker,
                     const core::WrapperInductor& inductor,
                     const std::vector<size_t>& page_caps) {
  SweepResult result;
  Stopwatch watch;
  for (size_t max_pages : page_caps) {
    // Per-site fan-out (the datasets::RunSingleType hot loop); BottomUp
    // inside fans out each frontier round through the induction cache.
    struct SiteSlot {
      uint64_t fingerprint = 0;
      int64_t hits = 0, misses = 0, calls = 0;
    };
    std::vector<SiteSlot> slots(split.test.size());
    ThreadPool::Global().ParallelFor(split.test.size(), [&](size_t i) {
      const datasets::SiteData& data = dealers.sites[split.test[i]];
      std::vector<core::NodeRef> capped;
      for (const core::NodeRef& ref : data.annotations.at("name")) {
        if (ref.page < static_cast<int>(max_pages)) capped.push_back(ref);
      }
      core::NodeSet labels(std::move(capped));
      if (labels.empty()) return;
      core::NtwOptions options;
      options.algorithm = core::EnumAlgorithm::kBottomUp;
      Result<core::NtwOutcome> outcome = core::LearnNoiseTolerant(
          inductor, data.site.pages, labels, ranker, options);
      if (!outcome.ok()) return;
      slots[i].fingerprint = outcome->best.extraction.Fingerprint();
      slots[i].hits = outcome->cache_hits;
      slots[i].misses = outcome->cache_misses;
      slots[i].calls = outcome->inductor_calls;
    });
    for (const SiteSlot& slot : slots) {
      result.output_fingerprints.push_back(slot.fingerprint);
      result.cache_hits += slot.hits;
      result.cache_misses += slot.misses;
      result.inductor_calls += slot.calls;
    }
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: parallel enumeration scaling on the pages sweep "
      "(DEALERS, XPATH, BottomUp + induction cache)",
      "Sec. 7 cost analysis (enumeration dominates; Theorem 2 call bound)",
      "Wall clock drops with threads while extraction stays byte-identical;"
      " BottomUp's memoization reports a nonzero hit rate");

  datasets::DealersConfig config;
  config.num_sites = EnvOr("NTW_BENCH_SITES", 16);
  config.pages_per_site = EnvOr("NTW_BENCH_PAGES", 8);
  datasets::Dataset dealers = datasets::MakeDealers(config);
  datasets::Split split = datasets::MakeSplit(dealers);
  Result<datasets::TrainedModels> models =
      datasets::LearnModels(dealers, "name", split.train);
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }
  core::Ranker ranker(models->annotation, models->publication);
  core::XPathInductor inductor;
  std::vector<size_t> page_caps = {2, 4, 8};

  std::printf("%zu sites (%zu test), %zu pages/site, page caps {2,4,8}, "
              "hardware threads: %d\n\n",
              dealers.sites.size(), split.test.size(), config.pages_per_site,
              HardwareConcurrency());
  std::printf("%8s %12s %10s %12s %14s %10s\n", "threads", "seconds",
              "speedup", "cache hits", "cache misses", "hit rate");

  std::string json = "[\n";
  double serial_seconds = 0.0;
  std::vector<uint64_t> serial_output;
  bool all_identical = true;
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    SweepResult sweep =
        RunSweep(dealers, split, ranker, inductor, page_caps);
    bool identical = true;
    if (threads == 1) {
      serial_seconds = sweep.seconds;
      serial_output = sweep.output_fingerprints;
    } else {
      identical = sweep.output_fingerprints == serial_output;
      all_identical = all_identical && identical;
    }
    double speedup =
        sweep.seconds > 0.0 ? serial_seconds / sweep.seconds : 0.0;
    double hit_rate =
        sweep.inductor_calls > 0
            ? static_cast<double>(sweep.cache_hits) /
                  static_cast<double>(sweep.inductor_calls)
            : 0.0;
    std::printf("%8d %12.3f %9.2fx %12lld %14lld %9.1f%%%s\n", threads,
                sweep.seconds, speedup,
                static_cast<long long>(sweep.cache_hits),
                static_cast<long long>(sweep.cache_misses), hit_rate * 100.0,
                identical ? "" : "  OUTPUT MISMATCH");
    json += StrFormat(
        "  {\"threads\": %d, \"seconds\": %.6f, \"speedup\": %.3f,"
        " \"cache_hits\": %lld, \"cache_misses\": %lld,"
        " \"hit_rate\": %.4f, \"identical_to_serial\": %s}%s\n",
        threads, sweep.seconds, speedup,
        static_cast<long long>(sweep.cache_hits),
        static_cast<long long>(sweep.cache_misses), hit_rate,
        identical ? "true" : "false", threads == 8 ? "" : ",");
  }
  json += "]\n";
  ThreadPool::SetGlobalThreads(0);

  Status written = WriteFile("BENCH_par_scaling.json", json);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
  } else {
    std::printf("\nwrote BENCH_par_scaling.json\n");
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel extraction diverged from the serial run\n");
    return 1;
  }
  return 0;
}
