// Extension experiment: the HLRT variant of the WIEN family (Sec. 5 notes
// that the LR analysis "extends to HLRT and its other variants") run
// through the same noise-tolerant pipeline as Fig. 2(d,e). HLRT's head/
// tail delimiters confine extraction to the listing region, so it sits
// between LR and XPATH in accuracy. HLRT is blackbox-only, so this is
// also the showcase for BottomUp enumeration on a non-feature-based
// inductor.

#include "bench_util.h"
#include "core/hlrt_inductor.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Extension: accuracy of HLRT on DEALERS (BottomUp enumeration)",
      "Dalvi et al., PVLDB 4(4) 2011, Sec. 5 (HLRT variant; no figure)",
      "NTW with HLRT >= NTW with LR (head/tail context suppresses "
      "sidebar/footer matches); NAIVE still collapses");
  datasets::Dataset dealers = bench::StandardDealers();
  core::HlrtInductor inductor;
  datasets::RunConfig config;
  config.type = "name";
  config.algorithm = core::EnumAlgorithm::kBottomUp;  // Blackbox only.
  Result<datasets::RunSummary> summary =
      datasets::RunSingleType(dealers, inductor, config);
  if (!summary.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  bench::PrintAccuracyBlock(*summary);
  return 0;
}
