// Figure 2(e): precision/recall/F1 of NAIVE vs NTW with LR wrappers on
// the DEALERS dataset.

#include "bench_util.h"
#include "core/lr_inductor.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Figure 2(e): accuracy of LR on DEALERS",
      "Dalvi et al., PVLDB 4(4) 2011, Fig. 2(e)",
      "Same trend as Fig. 2(d) but more pronounced: NAIVE precision even "
      "lower; NTW high (~0.9+) yet below XPATH because a perfect LR "
      "wrapper does not exist for some sites");
  datasets::Dataset dealers = bench::StandardDealers();
  core::LrInductor inductor;
  datasets::RunConfig config;
  config.type = "name";
  Result<datasets::RunSummary> summary =
      datasets::RunSingleType(dealers, inductor, config);
  if (!summary.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  bench::PrintAccuracyBlock(*summary);
  return 0;
}
