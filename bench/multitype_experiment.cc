#include "multitype_experiment.h"

#include "core/multi_type.h"
#include "core/ntw.h"
#include "core/xpath_inductor.h"

namespace ntw::bench {

Result<MultiTypeResults> RunMultiTypeExperiment(
    const datasets::Dataset& dealers) {
  datasets::Split split = datasets::MakeSplit(dealers);
  NTW_ASSIGN_OR_RETURN(datasets::TrainedModels name_models,
                       datasets::LearnModels(dealers, "name", split.train));
  NTW_ASSIGN_OR_RETURN(datasets::TrainedModels zip_models,
                       datasets::LearnModels(dealers, "zip", split.train));

  core::XPathInductor inductor;
  core::Ranker name_ranker(name_models.annotation, name_models.publication);
  core::Ranker zip_ranker(zip_models.annotation, zip_models.publication);

  std::vector<core::Prf> ntw_name, ntw_zip, naive_name, naive_zip,
      single_name, single_zip;

  for (size_t index : split.test) {
    const datasets::SiteData& data = dealers.sites[index];
    const core::NodeSet& name_labels = data.annotations.at("name");
    const core::NodeSet& zip_labels = data.annotations.at("zip");
    if (name_labels.empty() || zip_labels.empty()) continue;
    const core::NodeSet& name_truth = data.site.truth.at("name");
    const core::NodeSet& zip_truth = data.site.truth.at("zip");

    core::MultiTypeLabels labels;
    labels.type_names = {"name", "zip"};
    labels.labels = {name_labels, zip_labels};
    std::vector<core::AnnotationModel> annotators = {
        name_models.annotation, zip_models.annotation};

    Result<core::MultiTypeOutcome> ntw = core::LearnMultiTypeNtw(
        inductor, data.site.pages, labels, annotators,
        name_models.publication);
    ntw_name.push_back(core::Evaluate(
        ntw.ok() ? ntw->records.TypeNodes(0) : core::NodeSet(), name_truth));
    ntw_zip.push_back(core::Evaluate(
        ntw.ok() ? ntw->records.TypeNodes(1) : core::NodeSet(), zip_truth));

    Result<core::MultiTypeOutcome> naive =
        core::LearnMultiTypeNaive(inductor, data.site.pages, labels);
    naive_name.push_back(core::Evaluate(
        naive.ok() ? naive->records.TypeNodes(0) : core::NodeSet(),
        name_truth));
    naive_zip.push_back(core::Evaluate(
        naive.ok() ? naive->records.TypeNodes(1) : core::NodeSet(),
        zip_truth));

    // Single-type baselines (Fig. 3(b)).
    Result<core::NtwOutcome> single_n = core::LearnNoiseTolerant(
        inductor, data.site.pages, name_labels, name_ranker);
    single_name.push_back(core::Evaluate(
        single_n.ok() ? single_n->best.extraction : core::NodeSet(),
        name_truth));
    Result<core::NtwOutcome> single_z = core::LearnNoiseTolerant(
        inductor, data.site.pages, zip_labels, zip_ranker);
    single_zip.push_back(core::Evaluate(
        single_z.ok() ? single_z->best.extraction : core::NodeSet(),
        zip_truth));
  }

  MultiTypeResults results;
  results.ntw_name = core::MacroAverage(ntw_name);
  results.ntw_zip = core::MacroAverage(ntw_zip);
  results.naive_name = core::MacroAverage(naive_name);
  results.naive_zip = core::MacroAverage(naive_zip);
  results.single_name = core::MacroAverage(single_name);
  results.single_zip = core::MacroAverage(single_zip);
  results.sites = ntw_name.size();
  return results;
}

}  // namespace ntw::bench
