// Figure 2(d): precision/recall/F1 of NAIVE vs NTW with XPATH wrappers on
// the DEALERS dataset.

#include "bench_util.h"
#include "core/xpath_inductor.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Figure 2(d): accuracy of XPATH on DEALERS",
      "Dalvi et al., PVLDB 4(4) 2011, Fig. 2(d)",
      "NTW near-perfect precision and recall; NAIVE keeps recall 1 but "
      "collapses in precision (over-generalization)");
  datasets::Dataset dealers = bench::StandardDealers();
  core::XPathInductor inductor;
  datasets::RunConfig config;
  config.type = "name";
  Result<datasets::RunSummary> summary =
      datasets::RunSingleType(dealers, inductor, config);
  if (!summary.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  bench::PrintAccuracyBlock(*summary);
  return 0;
}
