// Tokenizer / scanner microbenchmarks (google-benchmark): the byte-class
// scanning loops the SIMD dispatch accelerates, measured scalar vs vector
// on the same inputs so the speedup is directly visible in bytes/sec —
// plus the three consumers that sit on top of them: the Tokenizer, the
// StreamPage build (per tier) and the arena parse, on a representative
// serialized dealer page.
//
// Run with NTW_NO_SIMD=1 to pin everything scalar; the *_scalar variants
// below force it per-benchmark via scan::ForceScalar(), so a single
// default run already reports both sides.

#include <benchmark/benchmark.h>

#include <string>

#include "datasets/dealers.h"
#include "html/arena_dom.h"
#include "html/scan.h"
#include "html/serializer.h"
#include "html/stream_page.h"
#include "html/tokenizer.h"

namespace {

using namespace ntw;

// One fixed dealer site shared by all benchmarks (generated once). 30
// records per page ≈ the serving benchmark's listing-page workload.
std::string DealerPageHtml() {
  static const std::string* source = [] {
    datasets::DealersConfig config;
    config.num_sites = 1;
    config.min_records = 30;
    config.max_records = 30;
    datasets::Dataset dealers = datasets::MakeDealers(config);
    return new std::string(
        html::Serialize(dealers.sites[0].site.pages.page(0).root()));
  }();
  return *source;
}

// A long text-like run with rare specials: the case the vector loops are
// built for (whole 16-byte blocks skipped per iteration).
std::string SparseText() {
  std::string text;
  while (text.size() < 64 * 1024) {
    text.append("Lorem ipsum dolor sit amet consectetur adipiscing elit ");
    text.append("sed&do eiusmod<tempor ");
  }
  return text;
}

/// Scoped scalar pin: benchmarks suffixed _scalar run inside one of these
/// so the dispatched scan::Find* calls hit the table-driven loops.
class ScopedScalar {
 public:
  ScopedScalar() { html::scan::ForceScalar(true); }
  ~ScopedScalar() { html::scan::ForceScalar(false); }
};

template <size_t (*Find)(std::string_view, size_t)>
void ScanAll(benchmark::State& state, const std::string& input) {
  for (auto _ : state) {
    size_t hits = 0;
    size_t pos = 0;
    while ((pos = Find(input, pos)) != std::string_view::npos) {
      ++hits;
      ++pos;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}

void BM_ScanTextSpecial(benchmark::State& state) {
  ScanAll<&html::scan::FindTextSpecial>(state, SparseText());
}
BENCHMARK(BM_ScanTextSpecial);

void BM_ScanTextSpecial_scalar(benchmark::State& state) {
  ScopedScalar scalar;
  ScanAll<&html::scan::FindTextSpecial>(state, SparseText());
}
BENCHMARK(BM_ScanTextSpecial_scalar);

void BM_ScanLtOrAmp(benchmark::State& state) {
  ScanAll<&html::scan::FindLtOrAmp>(state, SparseText());
}
BENCHMARK(BM_ScanLtOrAmp);

void BM_ScanLtOrAmp_scalar(benchmark::State& state) {
  ScopedScalar scalar;
  ScanAll<&html::scan::FindLtOrAmp>(state, SparseText());
}
BENCHMARK(BM_ScanLtOrAmp_scalar);

void TokenizeAll(benchmark::State& state, const std::string& input) {
  html::Token token;
  for (auto _ : state) {
    size_t tokens = 0;
    html::Tokenizer tokenizer(input);
    while (tokenizer.Next(&token)) ++tokens;
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}

void BM_Tokenize(benchmark::State& state) {
  TokenizeAll(state, DealerPageHtml());
}
BENCHMARK(BM_Tokenize);

void BM_Tokenize_scalar(benchmark::State& state) {
  ScopedScalar scalar;
  TokenizeAll(state, DealerPageHtml());
}
BENCHMARK(BM_Tokenize_scalar);

void StreamBuild(benchmark::State& state, const std::string& input) {
  html::StreamPage page;
  for (auto _ : state) {
    page.Build(input);
    benchmark::DoNotOptimize(page.stream().size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}

// Dealer pages carry &amp;-references, so this is the patched
// (copy-on-write) tier — the one the serving streaming path hits.
void BM_StreamPageBuild(benchmark::State& state) {
  StreamBuild(state, DealerPageHtml());
}
BENCHMARK(BM_StreamPageBuild);

void BM_StreamPageBuild_scalar(benchmark::State& state) {
  ScopedScalar scalar;
  StreamBuild(state, DealerPageHtml());
}
BENCHMARK(BM_StreamPageBuild_scalar);

// The same page through the arena parse: the DOM fast path's per-page
// cost, the baseline the streaming tiers beat.
void BM_ArenaParse(benchmark::State& state) {
  std::string source = DealerPageHtml();
  html::ArenaDocument doc;
  for (auto _ : state) {
    html::ArenaParse(source, &doc);
    benchmark::DoNotOptimize(doc.stream().size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(source.size()));
}
BENCHMARK(BM_ArenaParse);

}  // namespace

BENCHMARK_MAIN();
