// Tokenizer / scanner microbenchmarks (google-benchmark): the byte-class
// scanning loops the SIMD dispatch accelerates, measured scalar vs vector
// on the same inputs so the speedup is directly visible in bytes/sec —
// plus the three consumers that sit on top of them: the Tokenizer, the
// StreamPage build (per tier) and the arena parse, on a representative
// serialized dealer page.
//
// Run with NTW_NO_SIMD=1 to pin everything scalar; the *_scalar variants
// below force it per-benchmark via scan::ForceScalar(), so a single
// default run already reports both sides.
//
// `--out PATH` writes the runs as a schema-stamped ntw-scan-bench JSON
// document (BENCH_scan.json in CI) with dispatched-vs-scalar speedups;
// `--smoke` shortens every benchmark to a CI-sized sanity run.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/build_info.h"
#include "common/file_util.h"
#include "common/obs_export.h"
#include "datasets/dealers.h"
#include "html/arena_dom.h"
#include "html/scan.h"
#include "html/serializer.h"
#include "html/stream_page.h"
#include "html/tokenizer.h"
#include "obs/json.h"

namespace {

using namespace ntw;

// One fixed dealer site shared by all benchmarks (generated once). 30
// records per page ≈ the serving benchmark's listing-page workload.
std::string DealerPageHtml() {
  static const std::string* source = [] {
    datasets::DealersConfig config;
    config.num_sites = 1;
    config.min_records = 30;
    config.max_records = 30;
    datasets::Dataset dealers = datasets::MakeDealers(config);
    return new std::string(
        html::Serialize(dealers.sites[0].site.pages.page(0).root()));
  }();
  return *source;
}

// A long text-like run with rare specials: the case the vector loops are
// built for (whole 16-byte blocks skipped per iteration).
std::string SparseText() {
  std::string text;
  while (text.size() < 64 * 1024) {
    text.append("Lorem ipsum dolor sit amet consectetur adipiscing elit ");
    text.append("sed&do eiusmod<tempor ");
  }
  return text;
}

/// Scoped scalar pin: benchmarks suffixed _scalar run inside one of these
/// so the dispatched scan::Find* calls hit the table-driven loops.
class ScopedScalar {
 public:
  ScopedScalar() { html::scan::ForceScalar(true); }
  ~ScopedScalar() { html::scan::ForceScalar(false); }
};

template <size_t (*Find)(std::string_view, size_t)>
void ScanAll(benchmark::State& state, const std::string& input) {
  for (auto _ : state) {
    size_t hits = 0;
    size_t pos = 0;
    while ((pos = Find(input, pos)) != std::string_view::npos) {
      ++hits;
      ++pos;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}

void BM_ScanTextSpecial(benchmark::State& state) {
  ScanAll<&html::scan::FindTextSpecial>(state, SparseText());
}
BENCHMARK(BM_ScanTextSpecial);

void BM_ScanTextSpecial_scalar(benchmark::State& state) {
  ScopedScalar scalar;
  ScanAll<&html::scan::FindTextSpecial>(state, SparseText());
}
BENCHMARK(BM_ScanTextSpecial_scalar);

void BM_ScanLtOrAmp(benchmark::State& state) {
  ScanAll<&html::scan::FindLtOrAmp>(state, SparseText());
}
BENCHMARK(BM_ScanLtOrAmp);

void BM_ScanLtOrAmp_scalar(benchmark::State& state) {
  ScopedScalar scalar;
  ScanAll<&html::scan::FindLtOrAmp>(state, SparseText());
}
BENCHMARK(BM_ScanLtOrAmp_scalar);

void TokenizeAll(benchmark::State& state, const std::string& input) {
  html::Token token;
  for (auto _ : state) {
    size_t tokens = 0;
    html::Tokenizer tokenizer(input);
    while (tokenizer.Next(&token)) ++tokens;
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}

void BM_Tokenize(benchmark::State& state) {
  TokenizeAll(state, DealerPageHtml());
}
BENCHMARK(BM_Tokenize);

void BM_Tokenize_scalar(benchmark::State& state) {
  ScopedScalar scalar;
  TokenizeAll(state, DealerPageHtml());
}
BENCHMARK(BM_Tokenize_scalar);

void StreamBuild(benchmark::State& state, const std::string& input) {
  html::StreamPage page;
  for (auto _ : state) {
    page.Build(input);
    benchmark::DoNotOptimize(page.stream().size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}

// Dealer pages carry &amp;-references, so this is the patched
// (copy-on-write) tier — the one the serving streaming path hits.
void BM_StreamPageBuild(benchmark::State& state) {
  StreamBuild(state, DealerPageHtml());
}
BENCHMARK(BM_StreamPageBuild);

void BM_StreamPageBuild_scalar(benchmark::State& state) {
  ScopedScalar scalar;
  StreamBuild(state, DealerPageHtml());
}
BENCHMARK(BM_StreamPageBuild_scalar);

// The same page through the arena parse: the DOM fast path's per-page
// cost, the baseline the streaming tiers beat.
void BM_ArenaParse(benchmark::State& state) {
  std::string source = DealerPageHtml();
  html::ArenaDocument doc;
  for (auto _ : state) {
    html::ArenaParse(source, &doc);
    benchmark::DoNotOptimize(doc.stream().size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(source.size()));
}
BENCHMARK(BM_ArenaParse);

// --- JSON artifact ---------------------------------------------------------

struct CapturedRun {
  std::string name;
  int64_t iterations = 0;
  double real_time_ns = 0;      // adjusted real time per iteration
  double bytes_per_second = 0;  // from SetBytesProcessed
};

/// Console output stays the primary human surface; this reporter also
/// captures each per-iteration run so main() can serialize the artifact.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(std::vector<CapturedRun>* sink) : sink_(sink) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      CapturedRun captured;
      captured.name = run.benchmark_name();
      captured.iterations = run.iterations;
      captured.real_time_ns = run.GetAdjustedRealTime();
      auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        captured.bytes_per_second = static_cast<double>(bytes->second);
      }
      sink_->push_back(std::move(captured));
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  std::vector<CapturedRun>* sink_;
};

double BytesPerSecond(const std::vector<CapturedRun>& runs,
                      std::string_view name) {
  for (const CapturedRun& run : runs) {
    if (run.name == name) return run.bytes_per_second;
  }
  return 0;
}

std::string RunsToJson(const std::vector<CapturedRun>& runs, bool smoke) {
  obs::JsonWriter json;
  BeginSchemaDocument(json, "ntw-scan-bench", 1);
  json.Key("config");
  json.BeginObject();
  json.KV("smoke", smoke);
  json.EndObject();
  WriteMachineInfo(json);
  json.Key("benchmarks");
  json.BeginArray();
  for (const CapturedRun& run : runs) {
    json.BeginObject();
    json.KV("name", run.name);
    json.KV("iterations", run.iterations);
    json.KV("real_time_ns", run.real_time_ns);
    json.KV("bytes_per_second", run.bytes_per_second);
    json.EndObject();
  }
  json.EndArray();
  // Dispatched-vs-scalar ratio for every benchmark with a _scalar twin:
  // the artifact's headline numbers, >1 means the SIMD path wins.
  json.Key("speedups");
  json.BeginObject();
  for (const CapturedRun& run : runs) {
    std::string twin = run.name + "_scalar";
    double scalar = BytesPerSecond(runs, twin);
    if (scalar > 0 && run.bytes_per_second > 0) {
      json.KV(run.name + "_vs_scalar", run.bytes_per_second / scalar);
    }
  }
  json.EndObject();
  json.EndObject();
  return json.Take() + "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // Smoke mode keeps the artifact schema identical and just shrinks the
  // measurement window to a CI-friendly sanity check.
  static char kMinTime[] = "--benchmark_min_time=0.01";
  if (smoke) passthrough.push_back(kMinTime);
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }

  std::vector<CapturedRun> runs;
  CapturingReporter reporter(&runs);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!out_path.empty()) {
    ntw::Status status = ntw::WriteFile(out_path, RunsToJson(runs, smoke));
    if (!status.ok()) {
      std::fprintf(stderr, "bench_tokenizer_scan: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu benchmarks)\n", out_path.c_str(),
                 runs.size());
  }
  return 0;
}
