// Figure 2(f): precision/recall/F1 of NAIVE vs NTW with XPATH wrappers on
// the DISC dataset (track extraction from discography sites).

#include "bench_util.h"
#include "core/xpath_inductor.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Figure 2(f): accuracy of XPATH on DISC",
      "Dalvi et al., PVLDB 4(4) 2011, Fig. 2(f)",
      "NTW perfect precision and recall; NAIVE recall 1 / low precision");
  datasets::Dataset disc = bench::StandardDisc();
  core::XPathInductor inductor;
  datasets::RunConfig config;
  config.type = "track";
  Result<datasets::RunSummary> summary =
      datasets::RunSingleType(disc, inductor, config);
  if (!summary.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  core::Prf restricted =
      datasets::AnnotatorQualityOnAnnotatedPages(disc, "track");
  std::printf("annotator recall on annotated pages only (the paper's 0.9 "
              "convention): %.3f\n", restricted.recall);
  bench::PrintAccuracyBlock(*summary);
  return 0;
}
