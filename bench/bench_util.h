#ifndef NTW_BENCH_BENCH_UTIL_H_
#define NTW_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "datasets/dealers.h"
#include "datasets/disc.h"
#include "datasets/products.h"
#include "datasets/runner.h"

namespace ntw::bench {

/// Standard dataset instances for the reproduction benches. Sizes follow
/// the paper (330 dealer sites, 15 discography sites, 10 shopping sites);
/// NTW_BENCH_SITES overrides the dealer-site count for quick runs.
datasets::Dataset StandardDealers();
datasets::Dataset StandardDisc();
datasets::Dataset StandardProducts();

/// Prints the experiment header used by every bench binary.
void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation);

/// Prints a paper-style NTW/NAIVE comparison block (the bar triplets of
/// Fig. 2(d-g) / Fig. 3(c)).
void PrintAccuracyBlock(const datasets::RunSummary& summary);

}  // namespace ntw::bench

#endif  // NTW_BENCH_BENCH_UTIL_H_
