// Component microbenchmarks (google-benchmark): the building blocks whose
// costs dominate the end-to-end experiments — HTML parsing, xpath
// evaluation, LR extraction, record segmentation, alignment, KDE scoring,
// and the two enumeration algorithms on a representative dealer site.

#include <benchmark/benchmark.h>

#include "align/edit_distance.h"
#include "common/rng.h"
#include "core/enumerate.h"
#include "core/lr_inductor.h"
#include "core/ntw.h"
#include "core/publication_model.h"
#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "html/parser.h"
#include "html/serializer.h"
#include "stats/kde.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace {

using namespace ntw;

// One fixed dealer site shared by all benchmarks (generated once).
const datasets::Dataset& Dealers() {
  static const datasets::Dataset* dataset = [] {
    datasets::DealersConfig config;
    config.num_sites = 8;
    return new datasets::Dataset(datasets::MakeDealers(config));
  }();
  return *dataset;
}

const datasets::SiteData& Site() { return Dealers().sites[0]; }

std::string SitePageHtml() {
  return html::Serialize(Site().site.pages.page(0).root());
}

void BM_HtmlParse(benchmark::State& state) {
  std::string source = SitePageHtml();
  for (auto _ : state) {
    Result<html::Document> doc = html::Parse(source);
    benchmark::DoNotOptimize(doc.value().node_count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(source.size()));
}
BENCHMARK(BM_HtmlParse);

void BM_HtmlSerialize(benchmark::State& state) {
  const html::Document& doc = Site().site.pages.page(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(html::Serialize(doc.root()));
  }
}
BENCHMARK(BM_HtmlSerialize);

void BM_XPathEvaluate(benchmark::State& state) {
  const html::Document& doc = Site().site.pages.page(0);
  xpath::Expr expr =
      std::move(xpath::ParseXPath("//table/tr/td[1]//text()")).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xpath::Evaluate(expr, doc));
  }
}
BENCHMARK(BM_XPathEvaluate);

void BM_XPathInduce(benchmark::State& state) {
  const datasets::SiteData& data = Site();
  core::XPathInductor inductor;
  const core::NodeSet& labels = data.annotations.at("name");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inductor.Induce(data.site.pages, labels).extraction.size());
  }
}
BENCHMARK(BM_XPathInduce);

void BM_LrInduce(benchmark::State& state) {
  const datasets::SiteData& data = Site();
  core::LrInductor inductor;
  const core::NodeSet& labels = data.annotations.at("name");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inductor.Induce(data.site.pages, labels).extraction.size());
  }
}
BENCHMARK(BM_LrInduce);

void BM_SegmentRecords(benchmark::State& state) {
  const datasets::SiteData& data = Site();
  const core::NodeSet& truth = data.site.truth.at("name");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::SegmentRecords(data.site.pages, truth).size());
  }
}
BENCHMARK(BM_SegmentRecords);

void BM_ListFeatures(benchmark::State& state) {
  const datasets::SiteData& data = Site();
  std::vector<core::Segment> segments =
      core::SegmentRecords(data.site.pages, data.site.truth.at("name"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeListFeatures(segments).alignment);
  }
}
BENCHMARK(BM_ListFeatures);

void BM_EditDistance(benchmark::State& state) {
  std::vector<int> a, b;
  Rng rng(5);
  for (int i = 0; i < 128; ++i) {
    a.push_back(static_cast<int>(rng.NextBounded(8)));
    b.push_back(static_cast<int>(rng.NextBounded(8)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::EditDistanceBounded(a, b, 128));
  }
}
BENCHMARK(BM_EditDistance);

void BM_KdeLogDensity(benchmark::State& state) {
  std::vector<double> sample;
  Rng rng(6);
  for (int i = 0; i < 64; ++i) {
    sample.push_back(rng.NextGaussian(4.0, 1.0));
  }
  stats::KernelDensity kde =
      std::move(stats::KernelDensity::Fit(sample)).value();
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kde.LogDensity(x));
    x += 0.1;
    if (x > 8.0) x = 0.0;
  }
}
BENCHMARK(BM_KdeLogDensity);

void BM_EnumerateTopDown(benchmark::State& state) {
  const datasets::SiteData& data = Site();
  core::XPathInductor inductor;
  const core::NodeSet& labels = data.annotations.at("name");
  for (auto _ : state) {
    core::WrapperSpace space =
        core::EnumerateTopDown(inductor, data.site.pages, labels);
    benchmark::DoNotOptimize(space.size());
  }
  state.counters["labels"] = static_cast<double>(labels.size());
}
BENCHMARK(BM_EnumerateTopDown);

void BM_EnumerateBottomUp(benchmark::State& state) {
  const datasets::SiteData& data = Site();
  core::XPathInductor inductor;
  const core::NodeSet& labels = data.annotations.at("name");
  for (auto _ : state) {
    core::WrapperSpace space =
        core::EnumerateBottomUp(inductor, data.site.pages, labels);
    benchmark::DoNotOptimize(space.size());
  }
}
BENCHMARK(BM_EnumerateBottomUp);

void BM_FullNtwSite(benchmark::State& state) {
  const datasets::Dataset& dealers = Dealers();
  datasets::Split split = datasets::MakeSplit(dealers);
  datasets::TrainedModels models =
      std::move(datasets::LearnModels(dealers, "name", split.train)).value();
  core::Ranker ranker(models.annotation, models.publication);
  core::XPathInductor inductor;
  const datasets::SiteData& data = dealers.sites[split.test[0]];
  const core::NodeSet& labels = data.annotations.at("name");
  for (auto _ : state) {
    Result<core::NtwOutcome> outcome =
        core::LearnNoiseTolerant(inductor, data.site.pages, labels, ranker);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_FullNtwSite);

}  // namespace

BENCHMARK_MAIN();
