#include "enum_experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/stopwatch.h"

namespace ntw::bench {

std::vector<EnumRow> RunEnumExperiment(
    const datasets::Dataset& dataset, const std::string& type,
    const core::FeatureBasedInductor& inductor, size_t naive_label_cap) {
  std::vector<EnumRow> rows;
  for (const datasets::SiteData& data : dataset.sites) {
    auto labels_it = data.annotations.find(type);
    if (labels_it == data.annotations.end() || labels_it->second.empty()) {
      continue;
    }
    const core::NodeSet& labels = labels_it->second;

    EnumRow row;
    row.site = data.site.name;
    row.labels = labels.size();

    Stopwatch top_down_watch;
    core::WrapperSpace top_down =
        core::EnumerateTopDown(inductor, data.site.pages, labels);
    row.top_down_seconds = top_down_watch.ElapsedSeconds();
    row.top_down_calls = top_down.inductor_calls;
    row.space = top_down.size();

    Stopwatch bottom_up_watch;
    core::WrapperSpace bottom_up =
        core::EnumerateBottomUp(inductor, data.site.pages, labels);
    row.bottom_up_seconds = bottom_up_watch.ElapsedSeconds();
    row.bottom_up_calls = bottom_up.inductor_calls;

    row.naive_calls = std::pow(2.0, static_cast<double>(labels.size())) - 1;
    if (labels.size() <= naive_label_cap) {
      Result<core::WrapperSpace> naive = core::EnumerateNaive(
          inductor, data.site.pages, labels, naive_label_cap);
      row.naive_ran = naive.ok();
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const EnumRow& a, const EnumRow& b) {
    return a.top_down_calls < b.top_down_calls;
  });
  return rows;
}

void PrintCallCounts(const std::vector<EnumRow>& rows) {
  std::printf("%-34s %4s %6s %9s %9s %14s\n", "website (sorted by TopDown)",
              "|L|", "|W|", "TopDown", "BottomUp", "Naive(=2^|L|-1)");
  int64_t td_total = 0, bu_total = 0;
  double naive_total = 0;
  for (const EnumRow& row : rows) {
    std::printf("%-34.34s %4zu %6zu %9lld %9lld %14.3g%s\n",
                row.site.c_str(), row.labels, row.space,
                static_cast<long long>(row.top_down_calls),
                static_cast<long long>(row.bottom_up_calls),
                row.naive_calls, row.naive_ran ? "" : " (not run)");
    td_total += row.top_down_calls;
    bu_total += row.bottom_up_calls;
    naive_total += row.naive_calls;
  }
  std::printf("%-34s %4s %6s %9lld %9lld %14.3g\n", "TOTAL", "", "",
              static_cast<long long>(td_total),
              static_cast<long long>(bu_total), naive_total);
  if (td_total > 0) {
    std::printf("BottomUp/TopDown call ratio: %.1fx; "
                "Naive/TopDown: %.3gx\n",
                static_cast<double>(bu_total) / static_cast<double>(td_total),
                naive_total / static_cast<double>(td_total));
  }
}

void PrintTimes(const std::vector<EnumRow>& rows) {
  std::printf("%-34s %4s %12s %12s\n", "website (sorted by TopDown)", "|L|",
              "TopDown(s)", "BottomUp(s)");
  double td_total = 0, bu_total = 0;
  for (const EnumRow& row : rows) {
    std::printf("%-34.34s %4zu %12.6f %12.6f\n", row.site.c_str(),
                row.labels, row.top_down_seconds, row.bottom_up_seconds);
    td_total += row.top_down_seconds;
    bu_total += row.bottom_up_seconds;
  }
  std::printf("%-34s %4s %12.6f %12.6f  (BottomUp/TopDown = %.1fx)\n",
              "TOTAL", "", td_total, bu_total,
              td_total > 0 ? bu_total / td_total : 0.0);
}

}  // namespace ntw::bench
