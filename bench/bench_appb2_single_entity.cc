// Appendix B.2: single-entity extraction — learn the album-title wrapper
// for each DISC website from the very noisy album-name annotator (titles
// recur in head titles, details tabs, reviews, and title tracks).

#include "bench_util.h"
#include "core/single_entity.h"
#include "core/xpath_inductor.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Appendix B.2: single-entity album-title extraction (DISC)",
      "Dalvi et al., PVLDB 4(4) 2011, Appendix B.2",
      "The correct wrapper is learned on every website; some sites have "
      "several tied correct wrappers (title tag / details tab / heading)");
  datasets::Dataset disc = bench::StandardDisc();
  core::XPathInductor inductor;

  int correct = 0, total = 0;
  std::printf("%-28s %7s %6s %6s  %s\n", "website", "labels", "tied",
              "ok?", "learned wrapper");
  for (const datasets::SiteData& data : disc.sites) {
    const core::NodeSet& labels = data.annotations.at("album");
    if (labels.empty()) continue;
    ++total;
    Result<core::SingleEntityOutcome> outcome =
        core::LearnSingleEntity(inductor, data.site.pages, labels);
    bool good = false;
    std::string rule = "(failed)";
    size_t tied = 0;
    if (outcome.ok()) {
      rule = outcome->best.wrapper->ToString();
      tied = outcome->tied.size();
      const core::NodeSet& truth = data.site.truth.at("album");
      good = !outcome->best.extraction.empty();
      for (const core::NodeRef& ref : outcome->best.extraction) {
        std::string want;
        for (const core::NodeRef& t : truth) {
          if (t.page == ref.page) {
            want = data.site.pages.Resolve(t)->text();
            break;
          }
        }
        if (data.site.pages.Resolve(ref)->text() != want) good = false;
      }
    }
    if (good) ++correct;
    std::printf("%-28.28s %7zu %6zu %6s  %.70s\n", data.site.name.c_str(),
                labels.size(), tied, good ? "yes" : "NO", rule.c_str());
  }
  std::printf("\ncorrect wrappers: %d / %d websites\n", correct, total);
  return correct == total ? 0 : 1;
}
