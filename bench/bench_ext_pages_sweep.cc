// Extension experiment: how many annotated pages does noise-tolerant
// learning need? The paper annotates a sample of pages per site (25 in
// Sec. 7.4); this sweep limits the dictionary annotator to the first N
// pages of each dealer site and measures NTW F1 (the wrapper is still
// evaluated on all pages — that is the point of a wrapper).

#include "annotate/dictionary_annotator.h"
#include "bench_util.h"
#include "core/metrics.h"
#include "core/xpath_inductor.h"
#include "sitegen/vocab.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Extension: NTW F1 vs number of annotated pages (DEALERS, XPATH)",
      "Sec. 7 methodology (annotations come from a bounded page sample)",
      "Accuracy rises quickly with annotated pages and saturates once "
      "labels span enough record positions");

  datasets::Dataset dealers = bench::StandardDealers();
  datasets::Split split = datasets::MakeSplit(dealers);
  Result<datasets::TrainedModels> models =
      datasets::LearnModels(dealers, "name", split.train);
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }
  core::Ranker ranker(models->annotation, models->publication);
  core::XPathInductor inductor;

  // The dictionary the dataset's own annotator used (reconstructed from
  // the generator's configuration: same universe, same fraction).
  // Re-annotating with a page cap reuses the library's annotator stack.
  datasets::DealersConfig config;  // Defaults = StandardDealers settings.

  std::printf("%-16s %10s %12s %14s\n", "annotated pages", "NTW F1",
              "avg labels", "sites w/o labels");
  for (size_t max_pages : {1, 2, 3, 4, 6, 8, 12}) {
    std::vector<core::Prf> results;
    size_t label_total = 0, no_labels = 0, evaluated = 0;
    for (size_t index : split.test) {
      const datasets::SiteData& data = dealers.sites[index];
      // Restrict the site's own annotations to the first N pages.
      std::vector<core::NodeRef> capped;
      for (const core::NodeRef& ref : data.annotations.at("name")) {
        if (ref.page < static_cast<int>(max_pages)) capped.push_back(ref);
      }
      core::NodeSet labels(std::move(capped));
      ++evaluated;
      label_total += labels.size();
      const core::NodeSet& truth = data.site.truth.at("name");
      if (labels.empty()) {
        ++no_labels;
        results.push_back(core::Evaluate(core::NodeSet(), truth));
        continue;
      }
      Result<core::NtwOutcome> outcome = core::LearnNoiseTolerant(
          inductor, data.site.pages, labels, ranker);
      results.push_back(core::Evaluate(
          outcome.ok() ? outcome->best.extraction : core::NodeSet(), truth));
    }
    core::Prf avg = core::MacroAverage(results);
    std::printf("%-16zu %10.3f %12.1f %14zu\n", max_pages, avg.f1,
                evaluated > 0 ? static_cast<double>(label_total) /
                                    static_cast<double>(evaluated)
                              : 0.0,
                no_labels);
  }
  return 0;
}
