// Crawl throughput benchmark: pages/sec of the fetch→extract→emit
// pipeline over a generated file:// origin, swept across worker counts —
// the ingestion-side companion of ntw_loadgen's serving sweep. file://
// keeps the fetch cost at a pread, so the sweep measures the pipeline
// itself (frontier dispatch, extraction tiers, ordered emission), not
// the disk or a socket.
//
// Every swept run is also an equivalence gate: its emitted bytes must
// equal the 1-worker baseline's, so the benchmark fails loudly if
// parallelism ever reorders or changes a record.
//
// `--out PATH` writes an ntw-crawl-bench (v1) JSON document
// (BENCH_crawl.json in CI); `--smoke` shrinks the corpus and sweep to a
// CI-sized sanity run.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/build_info.h"
#include "common/file_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "crawl/pipeline.h"
#include "obs/json.h"
#include "serve/wrapper_repository.h"
#include "sitegen/origin.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: bench_crawl [--out BENCH_crawl.json] [--sites N] [--pages N]\n"
    "                   [--sweep 1,2,4,...] [--repetitions N] [--smoke]\n";

struct SweepPoint {
  int workers = 1;
  double best_seconds = 0.0;
  double pages_per_second = 0.0;
  int64_t pages = 0;
  int64_t records = 0;
  int64_t bytes_emitted = 0;
};

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::vector<std::string> unknown = flags.UnknownFlags(
      {"out", "sites", "pages", "sweep", "repetitions", "smoke", "help"});
  if (!unknown.empty() || flags.Has("help")) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    std::fprintf(stderr, "%s", kUsage);
    return flags.Has("help") ? 0 : 2;
  }
  bool smoke = flags.Has("smoke");
  Result<int64_t> sites = flags.GetInt("sites", smoke ? 8 : 24);
  Result<int64_t> pages = flags.GetInt("pages", smoke ? 6 : 40);
  Result<int64_t> repetitions = flags.GetInt("repetitions", smoke ? 1 : 3);
  for (const auto* value : {&sites, &pages, &repetitions}) {
    if (!value->ok()) {
      std::fprintf(stderr, "%s\n%s", value->status().ToString().c_str(),
                   kUsage);
      return 2;
    }
  }
  std::vector<int> sweep;
  for (const std::string& part :
       Split(flags.Get("sweep", smoke ? "1,2" : "1,2,4,8"), ',')) {
    if (part.empty()) continue;
    sweep.push_back(std::max(1, std::atoi(part.c_str())));
  }
  if (sweep.empty()) sweep = {1};

  // Generate the origin once; the sweep re-crawls the same tree.
  std::string work = (std::filesystem::temp_directory_path() /
                      ("ntw_bench_crawl_" + std::to_string(::getpid())))
                         .string();
  std::string origin_dir = work + "/origin";
  std::string repo_dir = work + "/repo";
  sitegen::OriginOptions origin_options;
  origin_options.sites = static_cast<size_t>(*sites);
  origin_options.pages_per_site = static_cast<size_t>(*pages);
  sitegen::OriginCorpus corpus = sitegen::MakeOriginCorpus(origin_options);
  Status wrote = sitegen::WriteOriginTree(corpus, origin_dir);
  if (wrote.ok()) {
    wrote = sitegen::WriteOriginWrapperRepository(corpus, repo_dir);
  }
  if (!wrote.ok()) {
    std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
    return 1;
  }

  serve::WrapperRepository repository(repo_dir);
  Status loaded = repository.Load();
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }

  std::vector<std::string> seeds = {"file://" + origin_dir + "/index.html"};
  std::string baseline;  // 1st run's bytes; every other run must match.
  std::vector<SweepPoint> points;
  for (int workers : sweep) {
    SweepPoint point;
    point.workers = workers;
    for (int64_t rep = 0; rep < *repetitions; ++rep) {
      crawl::CrawlOptions options;
      options.workers = workers;
      options.max_depth = 1;
      // file:// bypasses the limiter, but keep politeness out of the
      // measurement explicitly for any future http sweep.
      options.rate.requests_per_second = 1e9;
      options.rate.burst = 1e9;
      ThreadPool pool(workers);
      crawl::CrawlPipeline pipeline(&repository, &pool, options);
      std::string emitted;
      Stopwatch timer;
      crawl::CrawlStats stats = pipeline.Run(
          seeds,
          [&emitted](std::string_view chunk) { emitted.append(chunk); });
      double seconds = timer.ElapsedSeconds();
      if (stats.pages_failed > 0) {
        std::fprintf(stderr, "bench_crawl: %lld failed fetches\n",
                     static_cast<long long>(stats.pages_failed));
        return 1;
      }
      if (baseline.empty()) {
        baseline = emitted;
      } else if (emitted != baseline) {
        std::fprintf(stderr,
                     "bench_crawl: %d-worker output differs from baseline "
                     "(equivalence gate)\n",
                     workers);
        return 1;
      }
      if (rep == 0 || seconds < point.best_seconds) {
        point.best_seconds = seconds;
        point.pages = stats.pages_fetched;
        point.records = stats.records_emitted;
        point.bytes_emitted = static_cast<int64_t>(emitted.size());
      }
    }
    point.pages_per_second =
        point.best_seconds > 0.0
            ? static_cast<double>(point.pages) / point.best_seconds
            : 0.0;
    points.push_back(point);
    std::fprintf(stderr, "bench_crawl: workers=%d pages/sec=%.0f (%.3fs)\n",
                 point.workers, point.pages_per_second, point.best_seconds);
  }
  std::filesystem::remove_all(work);

  obs::JsonWriter json;
  json.BeginObject();
  json.KV("schema", "ntw-crawl-bench");
  json.KV("schema_version", int64_t{1});
  json.KV("smoke", smoke);
  WriteMachineInfo(json);
  json.KV("sites", *sites);
  json.KV("pages_per_site", *pages);
  json.KV("repetitions", *repetitions);
  json.Key("runs");
  json.BeginArray();
  for (const SweepPoint& point : points) {
    json.BeginObject();
    json.KV("workers", static_cast<int64_t>(point.workers));
    json.KV("best_seconds", point.best_seconds);
    json.KV("pages_per_second", point.pages_per_second);
    json.KV("pages", point.pages);
    json.KV("records", point.records);
    json.KV("bytes_emitted", point.bytes_emitted);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::string out = flags.Get("out", "BENCH_crawl.json");
  Status written = WriteFile(out, json.Take() + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "bench_crawl: wrote %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
