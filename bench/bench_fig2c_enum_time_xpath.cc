// Figure 2(c): physical running time of TopDown vs BottomUp enumeration
// for XPATH wrappers across the DEALERS websites. (The naive algorithm is
// not run — "prohibitively expensive", as in the paper.)

#include "bench_util.h"
#include "core/xpath_inductor.h"
#include "enum_experiment.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Figure 2(c): enumeration running time for XPATH (DEALERS)",
      "Dalvi et al., PVLDB 4(4) 2011, Fig. 2(c)",
      "TopDown well under a second per site; BottomUp roughly an order of "
      "magnitude slower");
  datasets::Dataset dealers = bench::StandardDealers();
  core::XPathInductor inductor;
  std::vector<bench::EnumRow> rows = bench::RunEnumExperiment(
      dealers, "name", inductor, /*naive_label_cap=*/0);
  bench::PrintTimes(rows);
  return 0;
}
