// Figure 2(b): number of wrapper-inductor calls for XPATH wrappers —
// TopDown vs BottomUp vs Naive across the DEALERS websites.

#include "bench_util.h"
#include "core/xpath_inductor.h"
#include "enum_experiment.h"

int main() {
  using namespace ntw;
  bench::PrintHeader(
      "Figure 2(b): # of wrapper calls for XPATH (DEALERS)",
      "Dalvi et al., PVLDB 4(4) 2011, Fig. 2(b)",
      "TopDown = k calls; BottomUp <= k*|L|; Naive = 2^|L|-1 explodes");
  datasets::Dataset dealers = bench::StandardDealers();
  core::XPathInductor inductor;
  std::vector<bench::EnumRow> rows = bench::RunEnumExperiment(
      dealers, "name", inductor, /*naive_label_cap=*/14);
  bench::PrintCallCounts(rows);
  return 0;
}
