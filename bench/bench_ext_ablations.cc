// Extension experiment: ablations of the design choices DESIGN.md calls
// out for the ranking model —
//   (1) KDE bandwidth of the publication-model feature distributions
//       (Silverman's rule vs fixed over/under-smoothing),
//   (2) the alignment-distance cap,
//   (3) mis-specified annotation-model parameters (using a generic prior
//       instead of the learned (p, r)).
// Measured as NTW F1 with XPATH on DEALERS (held-out half).

#include "bench_util.h"
#include "core/metrics.h"
#include "core/xpath_inductor.h"

namespace {

using namespace ntw;

core::Prf RunWith(const datasets::Dataset& dealers,
                  const core::AnnotationModel& annotation,
                  const core::PublicationModel& publication) {
  datasets::Split split = datasets::MakeSplit(dealers);
  core::Ranker ranker(annotation, publication);
  core::XPathInductor inductor;
  std::vector<core::Prf> results;
  for (size_t index : split.test) {
    const datasets::SiteData& data = dealers.sites[index];
    auto labels_it = data.annotations.find("name");
    if (labels_it == data.annotations.end() || labels_it->second.empty()) {
      continue;
    }
    Result<core::NtwOutcome> outcome = core::LearnNoiseTolerant(
        inductor, data.site.pages, labels_it->second, ranker);
    results.push_back(core::Evaluate(
        outcome.ok() ? outcome->best.extraction : core::NodeSet(),
        data.site.truth.at("name")));
  }
  return core::MacroAverage(results);
}

std::vector<core::ListFeatures> TrainingFeatures(
    const datasets::Dataset& dealers) {
  datasets::Split split = datasets::MakeSplit(dealers);
  std::vector<core::ListFeatures> features;
  for (size_t index : split.train) {
    const datasets::SiteData& data = dealers.sites[index];
    features.push_back(core::ComputeListFeatures(
        core::SegmentRecords(data.site.pages, data.site.truth.at("name"))));
  }
  return features;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: ranking-model design ablations (DEALERS, XPATH)",
      "design choices from DESIGN.md (no paper figure)",
      "Silverman bandwidth ~ best; extreme over-smoothing blurs the "
      "schema/alignment prior; learned (p,r) beats generic priors");

  datasets::Dataset dealers = bench::StandardDealers();
  datasets::Split split = datasets::MakeSplit(dealers);
  Result<datasets::TrainedModels> learned =
      datasets::LearnModels(dealers, "name", split.train);
  if (!learned.ok()) {
    std::fprintf(stderr, "%s\n", learned.status().ToString().c_str());
    return 1;
  }
  std::vector<core::ListFeatures> features = TrainingFeatures(dealers);

  std::printf("-- (1) KDE bandwidth (learned annotation model) --\n");
  std::printf("%-22s %8s\n", "bandwidth", "NTW F1");
  {
    core::Prf prf = RunWith(dealers, learned->annotation,
                            learned->publication);
    std::printf("%-22s %8.3f\n", "Silverman (default)", prf.f1);
  }
  for (double bandwidth : {0.25, 1.0, 4.0, 16.0}) {
    stats::KernelDensity::Options options;
    options.fixed_bandwidth = bandwidth;
    Result<core::PublicationModel> publication =
        core::PublicationModel::Fit(features, options);
    if (!publication.ok()) continue;
    core::Prf prf = RunWith(dealers, learned->annotation, *publication);
    std::printf("%-22.2f %8.3f\n", bandwidth, prf.f1);
  }

  std::printf("\n-- (2) alignment cap --\n");
  std::printf("%-22s %8s\n", "cap", "NTW F1");
  for (int cap : {8, 32, 128, 512}) {
    // Re-featurize training lists under the cap, then run (the evaluation
    // side uses the default cap inside the ranker; the ablation probes
    // training-side sensitivity).
    std::vector<core::ListFeatures> capped;
    for (size_t index : split.train) {
      const datasets::SiteData& data = dealers.sites[index];
      capped.push_back(core::ComputeListFeatures(
          core::SegmentRecords(data.site.pages, data.site.truth.at("name")),
          cap));
    }
    Result<core::PublicationModel> publication =
        core::PublicationModel::Fit(capped);
    if (!publication.ok()) continue;
    core::Prf prf = RunWith(dealers, learned->annotation, *publication);
    std::printf("%-22d %8.3f\n", cap, prf.f1);
  }

  std::printf("\n-- (3) annotation model parameters --\n");
  std::printf("%-22s %8s\n", "(p, r)", "NTW F1");
  {
    core::Prf prf = RunWith(dealers, learned->annotation,
                            learned->publication);
    std::printf("learned (%.2f, %.2f)   %8.3f\n", learned->annotation.p(),
                learned->annotation.r(), prf.f1);
  }
  for (auto [p, r] : {std::pair<double, double>{0.9, 0.5},
                      std::pair<double, double>{0.5, 0.5},
                      std::pair<double, double>{0.99, 0.05}}) {
    core::Prf prf = RunWith(dealers, core::AnnotationModel(p, r),
                            learned->publication);
    std::printf("generic (%.2f, %.2f)   %8.3f\n", p, r, prf.f1);
  }
  return 0;
}
