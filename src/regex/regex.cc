#include "regex/regex.h"

#include <array>
#include <bitset>

#include "common/strings.h"

namespace ntw::regex {

/// AST node. A pattern compiles to an alternation of concatenations of
/// quantified atoms.
struct Regex::Node {
  enum class Kind {
    kAlternation,  // children: alternatives.
    kConcat,       // children: sequence.
    kRepeat,       // children[0] repeated [min, max] times (max<0: ∞).
    kCharClass,    // `chars` bitset membership.
    kAnchorBegin,
    kAnchorEnd,
    kWordBoundary,
  };

  Kind kind;
  std::vector<std::unique_ptr<Node>> children;
  std::bitset<256> chars;
  int min = 0;
  int max = 0;
};

namespace {

using Node = Regex::Node;
using Kind = Node::Kind;

std::unique_ptr<Node> MakeNode(Kind kind) {
  auto node = std::make_unique<Node>();
  node->kind = kind;
  return node;
}

void AddClassShorthand(char c, std::bitset<256>* set) {
  switch (c) {
    case 'd':
      for (int ch = '0'; ch <= '9'; ++ch) set->set(static_cast<size_t>(ch));
      break;
    case 'w':
      for (int ch = '0'; ch <= '9'; ++ch) set->set(static_cast<size_t>(ch));
      for (int ch = 'a'; ch <= 'z'; ++ch) set->set(static_cast<size_t>(ch));
      for (int ch = 'A'; ch <= 'Z'; ++ch) set->set(static_cast<size_t>(ch));
      set->set('_');
      break;
    case 's':
      set->set(' ');
      set->set('\t');
      set->set('\n');
      set->set('\r');
      set->set('\f');
      set->set('\v');
      break;
    default:
      break;
  }
}

bool IsWordChar(char c) { return IsAsciiAlnum(c) || c == '_'; }

class PatternParser {
 public:
  explicit PatternParser(std::string_view pattern) : pattern_(pattern) {}

  Result<std::unique_ptr<Node>> Parse() {
    NTW_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, ParseAlternation());
    if (pos_ != pattern_.size()) {
      return Error("unexpected ')'");
    }
    return root;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_) +
                              " in /" + std::string(pattern_) + "/");
  }

  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }

  Result<std::unique_ptr<Node>> ParseAlternation() {
    auto alternation = MakeNode(Kind::kAlternation);
    NTW_ASSIGN_OR_RETURN(std::unique_ptr<Node> first, ParseConcat());
    alternation->children.push_back(std::move(first));
    while (!AtEnd() && Peek() == '|') {
      ++pos_;
      NTW_ASSIGN_OR_RETURN(std::unique_ptr<Node> next, ParseConcat());
      alternation->children.push_back(std::move(next));
    }
    if (alternation->children.size() == 1) {
      return std::move(alternation->children[0]);
    }
    return alternation;
  }

  Result<std::unique_ptr<Node>> ParseConcat() {
    auto concat = MakeNode(Kind::kConcat);
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      NTW_ASSIGN_OR_RETURN(std::unique_ptr<Node> atom, ParseQuantifiedAtom());
      concat->children.push_back(std::move(atom));
    }
    return concat;
  }

  Result<std::unique_ptr<Node>> ParseQuantifiedAtom() {
    NTW_ASSIGN_OR_RETURN(std::unique_ptr<Node> atom, ParseAtom());
    if (AtEnd()) return atom;
    int min = -1, max = -1;
    switch (Peek()) {
      case '*':
        min = 0;
        max = -1;
        ++pos_;
        break;
      case '+':
        min = 1;
        max = -1;
        ++pos_;
        break;
      case '?':
        min = 0;
        max = 1;
        ++pos_;
        break;
      case '{': {
        size_t save = pos_;
        ++pos_;
        int m = 0;
        bool has_digits = false;
        while (!AtEnd() && IsAsciiDigit(Peek())) {
          m = m * 10 + (Peek() - '0');
          has_digits = true;
          ++pos_;
        }
        if (!has_digits) {
          pos_ = save;  // Literal '{'.
          return atom;
        }
        min = m;
        max = m;
        if (!AtEnd() && Peek() == ',') {
          ++pos_;
          if (!AtEnd() && IsAsciiDigit(Peek())) {
            int n = 0;
            while (!AtEnd() && IsAsciiDigit(Peek())) {
              n = n * 10 + (Peek() - '0');
              ++pos_;
            }
            max = n;
          } else {
            max = -1;
          }
        }
        if (AtEnd() || Peek() != '}') return Error("expected '}'");
        ++pos_;
        break;
      }
      default:
        return atom;
    }
    if (max >= 0 && max < min) return Error("bad repeat range");
    // Quantifying an anchor is meaningless; reject for clarity.
    if (atom->kind == Kind::kAnchorBegin || atom->kind == Kind::kAnchorEnd ||
        atom->kind == Kind::kWordBoundary) {
      return Error("cannot quantify an anchor");
    }
    auto repeat = MakeNode(Kind::kRepeat);
    repeat->min = min;
    repeat->max = max;
    repeat->children.push_back(std::move(atom));
    return repeat;
  }

  Result<std::unique_ptr<Node>> ParseAtom() {
    char c = Peek();
    switch (c) {
      case '(': {
        ++pos_;
        NTW_ASSIGN_OR_RETURN(std::unique_ptr<Node> inner, ParseAlternation());
        if (AtEnd() || Peek() != ')') return Error("expected ')'");
        ++pos_;
        return inner;
      }
      case '^':
        ++pos_;
        return MakeNode(Kind::kAnchorBegin);
      case '$':
        ++pos_;
        return MakeNode(Kind::kAnchorEnd);
      case '[':
        return ParseClass();
      case '.': {
        ++pos_;
        auto any = MakeNode(Kind::kCharClass);
        any->chars.set();
        any->chars.reset('\n');
        return any;
      }
      case '\\':
        return ParseEscape();
      case '*':
      case '+':
      case '?':
        return Error("dangling quantifier");
      default: {
        ++pos_;
        auto literal = MakeNode(Kind::kCharClass);
        literal->chars.set(static_cast<unsigned char>(c));
        return literal;
      }
    }
  }

  Result<std::unique_ptr<Node>> ParseEscape() {
    ++pos_;  // Consume backslash.
    if (AtEnd()) return Error("trailing backslash");
    char c = Peek();
    ++pos_;
    if (c == 'b') return MakeNode(Kind::kWordBoundary);
    auto node = MakeNode(Kind::kCharClass);
    switch (c) {
      case 'd':
      case 'w':
      case 's':
        AddClassShorthand(c, &node->chars);
        return node;
      case 'D':
      case 'W':
      case 'S':
        AddClassShorthand(AsciiToLower(c), &node->chars);
        node->chars.flip();
        return node;
      case 'n':
        node->chars.set('\n');
        return node;
      case 't':
        node->chars.set('\t');
        return node;
      case 'r':
        node->chars.set('\r');
        return node;
      default:
        node->chars.set(static_cast<unsigned char>(c));
        return node;
    }
  }

  Result<std::unique_ptr<Node>> ParseClass() {
    ++pos_;  // Consume '['.
    auto node = MakeNode(Kind::kCharClass);
    bool negate = false;
    if (!AtEnd() && Peek() == '^') {
      negate = true;
      ++pos_;
    }
    bool first = true;
    while (!AtEnd() && (Peek() != ']' || first)) {
      first = false;
      char lo = Peek();
      ++pos_;
      if (lo == '\\') {
        if (AtEnd()) return Error("trailing backslash in class");
        char esc = Peek();
        ++pos_;
        if (esc == 'd' || esc == 'w' || esc == 's') {
          AddClassShorthand(esc, &node->chars);
          continue;
        }
        if (esc == 'n') {
          node->chars.set('\n');
          continue;
        }
        if (esc == 't') {
          node->chars.set('\t');
          continue;
        }
        lo = esc;
      }
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        ++pos_;  // '-'
        char hi = Peek();
        ++pos_;
        if (hi == '\\') {
          if (AtEnd()) return Error("trailing backslash in class");
          hi = Peek();
          ++pos_;
        }
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(lo)) {
          return Error("bad class range");
        }
        for (int ch = static_cast<unsigned char>(lo);
             ch <= static_cast<unsigned char>(hi); ++ch) {
          node->chars.set(static_cast<size_t>(ch));
        }
      } else {
        node->chars.set(static_cast<unsigned char>(lo));
      }
    }
    if (AtEnd()) return Error("unterminated class");
    ++pos_;  // ']'
    if (negate) node->chars.flip();
    return node;
  }

  std::string_view pattern_;
  size_t pos_ = 0;
};

/// Backtracking matcher: MatchHere(node-list position) via continuation
/// passing on the concat stack.
class Matcher {
 public:
  Matcher(std::string_view text) : text_(text) {}

  /// Attempts to match `node` starting at `pos`; on success invokes the
  /// continuation with the end position. Returns true if any alternative
  /// succeeds.
  bool Match(const Node* node, size_t pos, size_t* end) {
    switch (node->kind) {
      case Kind::kAlternation:
        for (const auto& child : node->children) {
          if (Match(child.get(), pos, end)) return true;
        }
        return false;
      case Kind::kConcat:
        return MatchSeq(node, 0, pos, end);
      case Kind::kRepeat:
        return MatchRepeatThen(node, pos, 0, nullptr, 0, end);
      case Kind::kCharClass:
        if (pos < text_.size() &&
            node->chars.test(static_cast<unsigned char>(text_[pos]))) {
          *end = pos + 1;
          return true;
        }
        return false;
      case Kind::kAnchorBegin:
        if (pos == 0) {
          *end = pos;
          return true;
        }
        return false;
      case Kind::kAnchorEnd:
        if (pos == text_.size()) {
          *end = pos;
          return true;
        }
        return false;
      case Kind::kWordBoundary: {
        bool before = pos > 0 && IsWordChar(text_[pos - 1]);
        bool after = pos < text_.size() && IsWordChar(text_[pos]);
        if (before != after) {
          *end = pos;
          return true;
        }
        return false;
      }
    }
    return false;
  }

 private:
  /// Matches children of `concat` from index `i` at `pos`.
  bool MatchSeq(const Node* concat, size_t i, size_t pos, size_t* end) {
    if (i == concat->children.size()) {
      *end = pos;
      return true;
    }
    const Node* child = concat->children[i].get();
    if (child->kind == Kind::kRepeat) {
      return MatchRepeatThen(child, pos, 0, concat, i + 1, end);
    }
    if (child->kind == Kind::kAlternation || child->kind == Kind::kConcat) {
      // Try every way the child can match, continuing with the rest.
      return MatchSubThen(child, pos, concat, i + 1, end);
    }
    size_t next = 0;
    if (!Match(child, pos, &next)) return false;
    return MatchSeq(concat, i + 1, next, end);
  }

  /// Matches a composite child then the remainder of the concat,
  /// backtracking through the child's alternatives.
  bool MatchSubThen(const Node* child, size_t pos, const Node* concat,
                    size_t cont_index, size_t* end) {
    if (child->kind == Kind::kAlternation) {
      for (const auto& alt : child->children) {
        if (MatchSubThen(alt.get(), pos, concat, cont_index, end)) {
          return true;
        }
      }
      return false;
    }
    if (child->kind == Kind::kConcat) {
      // Inline: match child's sequence, then the continuation. Implemented
      // by a recursive helper over the child's children.
      return MatchNestedSeq(child, 0, pos, concat, cont_index, end);
    }
    if (child->kind == Kind::kRepeat) {
      return MatchRepeatThen(child, pos, 0, concat, cont_index, end);
    }
    size_t next = 0;
    if (!Match(child, pos, &next)) return false;
    if (concat == nullptr) {
      *end = next;
      return true;
    }
    return MatchSeq(concat, cont_index, next, end);
  }

  bool MatchNestedSeq(const Node* seq, size_t i, size_t pos,
                      const Node* concat, size_t cont_index, size_t* end) {
    if (i == seq->children.size()) {
      if (concat == nullptr) {
        *end = pos;
        return true;
      }
      return MatchSeq(concat, cont_index, pos, end);
    }
    const Node* child = seq->children[i].get();
    if (child->kind == Kind::kRepeat || child->kind == Kind::kAlternation ||
        child->kind == Kind::kConcat) {
      // Build the "rest of this nested sequence then outer continuation"
      // closure via recursion on a temporary concat view. Simplest sound
      // approach: try all match lengths of the child.
      for (size_t try_end = text_.size() + 1; try_end-- > pos;) {
        if (MatchesExactly(child, pos, try_end) &&
            MatchNestedSeq(seq, i + 1, try_end, concat, cont_index, end)) {
          return true;
        }
      }
      return false;
    }
    size_t next = 0;
    if (!Match(child, pos, &next)) return false;
    return MatchNestedSeq(seq, i + 1, next, concat, cont_index, end);
  }

  /// Greedy repeat of node->children[0], then continuation.
  bool MatchRepeatThen(const Node* repeat, size_t pos, int count,
                       const Node* concat, size_t cont_index, size_t* end) {
    const Node* body = repeat->children[0].get();
    // Greedy: try one more repetition first (when allowed).
    if (repeat->max < 0 || count < repeat->max) {
      // Enumerate possible body matches from pos.
      for (size_t try_end = text_.size() + 1; try_end-- > pos;) {
        if (try_end == pos && count >= 1) {
          // Zero-width body repetition: stop extending to avoid loops.
          continue;
        }
        if (MatchesExactly(body, pos, try_end)) {
          if (MatchRepeatThen(repeat, try_end, count + 1, concat, cont_index,
                              end)) {
            return true;
          }
        }
      }
    }
    if (count >= repeat->min) {
      if (concat == nullptr) {
        *end = pos;
        return true;
      }
      return MatchSeq(concat, cont_index, pos, end);
    }
    return false;
  }

  /// True when node matches text [pos, end_exact) exactly.
  bool MatchesExactly(const Node* node, size_t pos, size_t end_exact) {
    switch (node->kind) {
      case Kind::kCharClass:
        return end_exact == pos + 1 && pos < text_.size() &&
               node->chars.test(static_cast<unsigned char>(text_[pos]));
      case Kind::kAnchorBegin:
      case Kind::kAnchorEnd:
      case Kind::kWordBoundary: {
        size_t e = 0;
        return end_exact == pos && Match(node, pos, &e);
      }
      case Kind::kAlternation:
        for (const auto& child : node->children) {
          if (MatchesExactly(child.get(), pos, end_exact)) return true;
        }
        return false;
      case Kind::kConcat: {
        if (node->children.empty()) return end_exact == pos;
        return MatchesSeqExactly(node, 0, pos, end_exact);
      }
      case Kind::kRepeat: {
        return MatchesRepeatExactly(node, pos, end_exact, 0);
      }
    }
    return false;
  }

  bool MatchesSeqExactly(const Node* seq, size_t i, size_t pos,
                         size_t end_exact) {
    if (i == seq->children.size()) return pos == end_exact;
    const Node* child = seq->children[i].get();
    for (size_t mid = pos; mid <= end_exact; ++mid) {
      if (MatchesExactly(child, pos, mid) &&
          MatchesSeqExactly(seq, i + 1, mid, end_exact)) {
        return true;
      }
    }
    return false;
  }

  bool MatchesRepeatExactly(const Node* repeat, size_t pos, size_t end_exact,
                            int count) {
    if (pos == end_exact && count >= repeat->min) return true;
    if (repeat->max >= 0 && count >= repeat->max) return pos == end_exact;
    const Node* body = repeat->children[0].get();
    for (size_t mid = pos + 1; mid <= end_exact; ++mid) {
      if (MatchesExactly(body, pos, mid) &&
          MatchesRepeatExactly(repeat, mid, end_exact, count + 1)) {
        return true;
      }
    }
    return false;
  }

  std::string_view text_;
};

}  // namespace

Regex::Regex(std::string pattern, std::unique_ptr<Node> root,
             std::unique_ptr<Node> anchored_root)
    : pattern_(std::move(pattern)),
      root_(std::move(root)),
      anchored_root_(std::move(anchored_root)) {}

Regex::~Regex() = default;
Regex::Regex(Regex&&) noexcept = default;
Regex& Regex::operator=(Regex&&) noexcept = default;

Result<Regex> Regex::Compile(std::string_view pattern) {
  PatternParser parser(pattern);
  NTW_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, parser.Parse());
  // Anchored variant "(pattern)$" used by FullMatch: the end anchor makes
  // the backtracker explore alternatives until the whole input is consumed.
  std::string anchored_pattern = "(" + std::string(pattern) + ")$";
  PatternParser anchored_parser(anchored_pattern);
  NTW_ASSIGN_OR_RETURN(std::unique_ptr<Node> anchored_root,
                       anchored_parser.Parse());
  return Regex(std::string(pattern), std::move(root),
               std::move(anchored_root));
}

bool Regex::FullMatch(std::string_view text) const {
  Matcher matcher(text);
  size_t end = 0;
  return matcher.Match(anchored_root_.get(), 0, &end);
}

bool Regex::PartialMatch(std::string_view text) const {
  Matcher matcher(text);
  size_t end = 0;
  for (size_t start = 0; start <= text.size(); ++start) {
    if (matcher.Match(root_.get(), start, &end)) return true;
  }
  return false;
}

std::vector<Regex::Span> Regex::FindAll(std::string_view text) const {
  std::vector<Span> spans;
  Matcher matcher(text);
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = 0;
    if (matcher.Match(root_.get(), start, &end)) {
      spans.push_back(Span{start, end});
      start = end > start ? end : start + 1;
    } else {
      ++start;
    }
    if (start > text.size()) break;
  }
  return spans;
}

}  // namespace ntw::regex
