#ifndef NTW_REGEX_REGEX_H_
#define NTW_REGEX_REGEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ntw::regex {

/// A compact backtracking regular-expression engine — the substrate for
/// the paper's regex-based annotators (e.g. the five-digit US zipcode
/// annotator of Appendix A). Supported syntax:
///
///   literals        a b c ...            escapes   \d \D \w \W \s \S \. …
///   any             .                    classes   [a-z0-9_] [^…]
///   quantifiers     * + ? {m} {m,} {m,n} (greedy)
///   anchors         ^ $ and word boundary \b
///   groups          ( … ) (non-capturing semantics)
///   alternation     a|b
///
/// The engine is a classic recursive backtracker over a parsed AST; it is
/// deliberately small and has no capture groups — annotators only need
/// match detection and match spans.
class Regex {
 public:
  /// Compiles a pattern; ParseError on malformed syntax.
  static Result<Regex> Compile(std::string_view pattern);

  Regex(Regex&&) noexcept;
  Regex& operator=(Regex&&) noexcept;
  Regex(const Regex&) = delete;
  Regex& operator=(const Regex&) = delete;
  ~Regex();

  /// True when the whole input matches.
  bool FullMatch(std::string_view text) const;

  /// True when any substring matches.
  bool PartialMatch(std::string_view text) const;

  /// Spans [begin, end) of non-overlapping left-to-right matches.
  struct Span {
    size_t begin;
    size_t end;
  };
  std::vector<Span> FindAll(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

  /// AST node; opaque to clients (defined in regex.cc).
  struct Node;

 private:
  Regex(std::string pattern, std::unique_ptr<Node> root,
        std::unique_ptr<Node> anchored_root);

  std::string pattern_;
  std::unique_ptr<Node> root_;
  std::unique_ptr<Node> anchored_root_;
};

}  // namespace ntw::regex

#endif  // NTW_REGEX_REGEX_H_
