#include "align/edit_distance.h"

namespace ntw::align {

int EditDistance(const std::vector<int>& a, const std::vector<int>& b) {
  const std::vector<int>& shorter = a.size() <= b.size() ? a : b;
  const std::vector<int>& longer = a.size() <= b.size() ? b : a;
  const size_t n = shorter.size();

  std::vector<int> row(n + 1);
  for (size_t j = 0; j <= n; ++j) row[j] = static_cast<int>(j);
  for (size_t i = 1; i <= longer.size(); ++i) {
    int diag = row[0];
    row[0] = static_cast<int>(i);
    for (size_t j = 1; j <= n; ++j) {
      int next_diag = row[j];
      int sub = diag + (longer[i - 1] == shorter[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      diag = next_diag;
    }
  }
  return row[n];
}

int EditDistanceBounded(const std::vector<int>& a, const std::vector<int>& b,
                        int bound) {
  // Size difference alone is a lower bound on the distance.
  int size_gap = static_cast<int>(
      a.size() > b.size() ? a.size() - b.size() : b.size() - a.size());
  if (size_gap >= bound) return bound;

  const std::vector<int>& shorter = a.size() <= b.size() ? a : b;
  const std::vector<int>& longer = a.size() <= b.size() ? b : a;
  const size_t n = shorter.size();

  std::vector<int> row(n + 1);
  for (size_t j = 0; j <= n; ++j) row[j] = static_cast<int>(j);
  for (size_t i = 1; i <= longer.size(); ++i) {
    int diag = row[0];
    row[0] = static_cast<int>(i);
    int row_min = row[0];
    for (size_t j = 1; j <= n; ++j) {
      int next_diag = row[j];
      int sub = diag + (longer[i - 1] == shorter[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      row_min = std::min(row_min, row[j]);
      diag = next_diag;
    }
    if (row_min >= bound) return bound;
  }
  return std::min(row[n], bound);
}

CommonSubstring LongestCommonSubstring(const std::vector<int>& a,
                                       const std::vector<int>& b) {
  CommonSubstring best;
  if (a.empty() || b.empty()) return best;
  // prev[j] = length of common suffix of a[..i) and b[..j).
  std::vector<int> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  size_t best_end_a = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        if (cur[j] > best.length) {
          best.length = cur[j];
          best_end_a = i;
        }
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  best.tokens.assign(
      a.begin() + static_cast<long>(best_end_a) - best.length,
      a.begin() + static_cast<long>(best_end_a));
  return best;
}

int LongestCommonSubsequence(const std::vector<int>& a,
                             const std::vector<int>& b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<int> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace ntw::align
