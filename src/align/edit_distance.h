#ifndef NTW_ALIGN_EDIT_DISTANCE_H_
#define NTW_ALIGN_EDIT_DISTANCE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ntw::align {

/// Levenshtein distance (unit insert/delete/substitute costs) between two
/// integer token sequences. O(|a|·|b|) time, O(min) space.
int EditDistance(const std::vector<int>& a, const std::vector<int>& b);

/// Levenshtein distance with early exit: returns `bound` when the true
/// distance is >= bound. Used by the alignment feature where distances are
/// capped before entering the KDE.
int EditDistanceBounded(const std::vector<int>& a, const std::vector<int>& b,
                        int bound);

/// Length of the longest common (contiguous) substring of two token
/// sequences, and a copy of one such substring.
struct CommonSubstring {
  int length = 0;
  std::vector<int> tokens;
};
CommonSubstring LongestCommonSubstring(const std::vector<int>& a,
                                       const std::vector<int>& b);

/// Length of the longest common subsequence (non-contiguous); used by
/// tests as an independent alignment oracle.
int LongestCommonSubsequence(const std::vector<int>& a,
                             const std::vector<int>& b);

}  // namespace ntw::align

#endif  // NTW_ALIGN_EDIT_DISTANCE_H_
