#ifndef NTW_ANNOTATE_REGEX_ANNOTATOR_H_
#define NTW_ANNOTATE_REGEX_ANNOTATOR_H_

#include <string>

#include "annotate/annotator.h"
#include "common/result.h"
#include "regex/regex.h"

namespace ntw::annotate {

/// Regex-based annotator: labels a text node when the pattern matches
/// somewhere inside it. The canonical instance is the five-digit US
/// zipcode annotator of Appendix A, whose noise comes from "five-digit
/// street addresses, as well as text from page headers/footers".
class RegexAnnotator : public Annotator {
 public:
  /// Compiles the pattern; fails on malformed syntax.
  static Result<RegexAnnotator> Create(std::string name,
                                       std::string_view pattern);

  /// The Appendix A zipcode annotator: \b\d{5}\b.
  static RegexAnnotator Zipcode();

  core::NodeSet Annotate(const core::PageSet& pages) const override;
  std::string Name() const override { return name_; }

 private:
  RegexAnnotator(std::string name, regex::Regex re)
      : name_(std::move(name)), regex_(std::move(re)) {}

  std::string name_;
  regex::Regex regex_;
};

}  // namespace ntw::annotate

#endif  // NTW_ANNOTATE_REGEX_ANNOTATOR_H_
