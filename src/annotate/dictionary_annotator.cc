#include "annotate/dictionary_annotator.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ntw::annotate {

DictionaryAnnotator::DictionaryAnnotator(std::vector<std::string> entries,
                                         Options options)
    : options_(options) {
  entries_.reserve(entries.size());
  for (std::string& entry : entries) {
    if (entry.size() >= options_.min_entry_length) {
      entries_.push_back(std::move(entry));
    }
  }
  // Longest first: cheap way to prefer the most specific mention; also
  // makes Matches() deterministic in its scan order.
  std::sort(entries_.begin(), entries_.end(),
            [](const std::string& a, const std::string& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
}

bool DictionaryAnnotator::Matches(const std::string& text) const {
  for (const std::string& entry : entries_) {
    if (entry.size() > text.size()) continue;
    if (ContainsWordIgnoreCase(text, entry)) return true;
  }
  return false;
}

core::NodeSet DictionaryAnnotator::Annotate(
    const core::PageSet& pages) const {
  obs::Span span("annotate.dictionary");
  static obs::Counter* const labels =
      obs::Registry::Global().GetCounter("ntw.annotate.labels");
  std::vector<core::NodeRef> refs;
  size_t page_limit = options_.max_pages == 0
                          ? pages.size()
                          : std::min(options_.max_pages, pages.size());
  for (size_t p = 0; p < page_limit; ++p) {
    for (const html::Node* node : pages.page(p).text_nodes()) {
      if (Matches(node->text())) {
        refs.push_back(
            core::NodeRef{static_cast<int>(p), node->preorder_index()});
      }
    }
  }
  core::NodeSet result(std::move(refs));
  labels->Add(static_cast<int64_t>(result.size()));
  return result;
}

}  // namespace ntw::annotate
