#ifndef NTW_ANNOTATE_DICTIONARY_ANNOTATOR_H_
#define NTW_ANNOTATE_DICTIONARY_ANNOTATOR_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "annotate/annotator.h"

namespace ntw::annotate {

/// Dictionary-based annotator (Sec. 1/7): labels a text node when it
/// contains an exact mention of a dictionary entry. Matching is
/// case-insensitive with word boundaries ("Office Depot" matches inside
/// "An Office Depot store" but not inside "OfficeDepotify"), mirroring the
/// Yahoo! Local business-name annotator whose errors "stem from business
/// names matching street addresses and product descriptions".
struct DictionaryAnnotatorOptions {
  /// When non-zero, only the first `max_pages` pages are annotated (the
  /// paper annotates a bounded sample per site); 0 = all pages.
  size_t max_pages = 0;
  /// Minimum entry length considered; guards against one-word entries
  /// matching everything.
  size_t min_entry_length = 3;
};

class DictionaryAnnotator : public Annotator {
 public:
  using Options = DictionaryAnnotatorOptions;

  DictionaryAnnotator(std::vector<std::string> entries,
                      Options options = Options());

  core::NodeSet Annotate(const core::PageSet& pages) const override;
  std::string Name() const override { return "dictionary"; }

  size_t size() const { return entries_.size(); }

  /// True when `text` contains an exact mention of some entry.
  bool Matches(const std::string& text) const;

 private:
  std::vector<std::string> entries_;
  Options options_;
};

}  // namespace ntw::annotate

#endif  // NTW_ANNOTATE_DICTIONARY_ANNOTATOR_H_
