#include "annotate/synthetic_annotator.h"

#include <algorithm>

namespace ntw::annotate {

core::NodeSet SyntheticAnnotator::Annotate(const core::PageSet& pages,
                                           const core::NodeSet& truth,
                                           Rng* rng) const {
  std::vector<core::NodeRef> refs;
  for (size_t p = 0; p < pages.size(); ++p) {
    for (const html::Node* node : pages.page(p).text_nodes()) {
      core::NodeRef ref{static_cast<int>(p), node->preorder_index()};
      double probability = truth.Contains(ref) ? p1_ : p2_;
      if (rng->NextBernoulli(probability)) refs.push_back(ref);
    }
  }
  return core::NodeSet(std::move(refs));
}

double SyntheticAnnotator::SolveP2(double p1, double target_precision,
                                   size_t n1, size_t n2) {
  if (n2 == 0 || target_precision >= 1.0) return 0.0;
  double p2 = static_cast<double>(n1) * p1 * (1.0 - target_precision) /
              (target_precision * static_cast<double>(n2));
  return std::clamp(p2, 0.0, 1.0);
}

}  // namespace ntw::annotate
