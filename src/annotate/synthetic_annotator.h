#ifndef NTW_ANNOTATE_SYNTHETIC_ANNOTATOR_H_
#define NTW_ANNOTATE_SYNTHETIC_ANNOTATOR_H_

#include "common/rng.h"
#include "core/label.h"

namespace ntw::annotate {

/// The controlled annotator of Sec. 7.4: given the set of correct nodes,
/// it labels each correct node with probability p1 and each incorrect
/// (non-target text) node with probability p2. Expected recall is p1;
/// expected precision is n1·p1 / (n1·p1 + n2·p2) where n1/n2 are the
/// correct/incorrect node counts — so any (precision, recall) operating
/// point is reachable by choosing (p1, p2).
class SyntheticAnnotator {
 public:
  SyntheticAnnotator(double p1, double p2) : p1_(p1), p2_(p2) {}

  /// Draws one noisy label set. `truth` must index text nodes of `pages`.
  core::NodeSet Annotate(const core::PageSet& pages,
                         const core::NodeSet& truth, Rng* rng) const;

  /// Solves for p2 from a desired expected precision given the counts:
  /// precision = n1·p1/(n1·p1 + n2·p2)  ⇒  p2 = n1·p1·(1−prec)/(prec·n2).
  static double SolveP2(double p1, double target_precision, size_t n1,
                        size_t n2);

  double p1() const { return p1_; }
  double p2() const { return p2_; }

 private:
  double p1_;
  double p2_;
};

}  // namespace ntw::annotate

#endif  // NTW_ANNOTATE_SYNTHETIC_ANNOTATOR_H_
