#ifndef NTW_ANNOTATE_ANNOTATOR_H_
#define NTW_ANNOTATE_ANNOTATOR_H_

#include <string>

#include "core/label.h"

namespace ntw::annotate {

/// An automatic annotator (Sec. 2.1): inspects every text node of a page
/// set and labels a subset as (probably) being of its type. Annotators are
/// deterministic functions of page content; the stochastic annotator of
/// Sec. 7.4 has its own interface (synthetic_annotator.h) because it needs
/// the ground truth and a random stream.
class Annotator {
 public:
  virtual ~Annotator() = default;

  /// Labels text nodes of `pages`.
  virtual core::NodeSet Annotate(const core::PageSet& pages) const = 0;

  virtual std::string Name() const = 0;
};

}  // namespace ntw::annotate

#endif  // NTW_ANNOTATE_ANNOTATOR_H_
