#include "annotate/regex_annotator.h"

#include <cassert>

namespace ntw::annotate {

Result<RegexAnnotator> RegexAnnotator::Create(std::string name,
                                              std::string_view pattern) {
  NTW_ASSIGN_OR_RETURN(regex::Regex re, regex::Regex::Compile(pattern));
  return RegexAnnotator(std::move(name), std::move(re));
}

RegexAnnotator RegexAnnotator::Zipcode() {
  Result<RegexAnnotator> annotator = Create("zipcode", R"(\b\d{5}\b)");
  assert(annotator.ok());
  return std::move(annotator).value();
}

core::NodeSet RegexAnnotator::Annotate(const core::PageSet& pages) const {
  std::vector<core::NodeRef> refs;
  for (size_t p = 0; p < pages.size(); ++p) {
    for (const html::Node* node : pages.page(p).text_nodes()) {
      if (regex_.PartialMatch(node->text())) {
        refs.push_back(
            core::NodeRef{static_cast<int>(p), node->preorder_index()});
      }
    }
  }
  return core::NodeSet(std::move(refs));
}

}  // namespace ntw::annotate
