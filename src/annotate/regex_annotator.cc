#include "annotate/regex_annotator.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ntw::annotate {

Result<RegexAnnotator> RegexAnnotator::Create(std::string name,
                                              std::string_view pattern) {
  NTW_ASSIGN_OR_RETURN(regex::Regex re, regex::Regex::Compile(pattern));
  return RegexAnnotator(std::move(name), std::move(re));
}

RegexAnnotator RegexAnnotator::Zipcode() {
  Result<RegexAnnotator> annotator = Create("zipcode", R"(\b\d{5}\b)");
  assert(annotator.ok());
  return std::move(annotator).value();
}

core::NodeSet RegexAnnotator::Annotate(const core::PageSet& pages) const {
  obs::Span span("annotate.regex");
  static obs::Counter* const labels =
      obs::Registry::Global().GetCounter("ntw.annotate.labels");
  std::vector<core::NodeRef> refs;
  for (size_t p = 0; p < pages.size(); ++p) {
    for (const html::Node* node : pages.page(p).text_nodes()) {
      if (regex_.PartialMatch(node->text())) {
        refs.push_back(
            core::NodeRef{static_cast<int>(p), node->preorder_index()});
      }
    }
  }
  core::NodeSet result(std::move(refs));
  labels->Add(static_cast<int64_t>(result.size()));
  return result;
}

}  // namespace ntw::annotate
