#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace ntw::serve {

namespace {

// Per-shard stripes: each reactor thread increments its own cache line;
// /metrics merges at scrape time and exports the shard dimension.
struct ServerMetrics {
  obs::ShardedCounter* connections;
  obs::ShardedCounter* requests;
  obs::ShardedCounter* responses_2xx;
  obs::ShardedCounter* responses_4xx;
  obs::ShardedCounter* responses_5xx;
  obs::ShardedCounter* rejected_overload;
  obs::ShardedCounter* rejected_too_large;
  obs::ShardedCounter* parse_errors;
  obs::ShardedCounter* read_timeouts;
  obs::ShardedCounter* write_timeouts;
  obs::ShardedCounter* dropped_responses;
  obs::ShardedCounter* drain_forced_closes;
  obs::Gauge* inflight;
  obs::ShardedHistogram* request_body_bytes;
  obs::ShardedHistogram* handle_micros;

  static ServerMetrics& Get() {
    obs::Registry& registry = obs::Registry::Global();
    static ServerMetrics m{
        registry.GetShardedCounter("ntw.serve.connections"),
        registry.GetShardedCounter("ntw.serve.requests"),
        registry.GetShardedCounter("ntw.serve.responses_2xx"),
        registry.GetShardedCounter("ntw.serve.responses_4xx"),
        registry.GetShardedCounter("ntw.serve.responses_5xx"),
        registry.GetShardedCounter("ntw.serve.rejected_overload"),
        registry.GetShardedCounter("ntw.serve.rejected_too_large"),
        registry.GetShardedCounter("ntw.serve.parse_errors"),
        registry.GetShardedCounter("ntw.serve.read_timeouts"),
        registry.GetShardedCounter("ntw.serve.write_timeouts"),
        registry.GetShardedCounter("ntw.serve.dropped_responses"),
        registry.GetShardedCounter("ntw.serve.drain_forced_closes"),
        registry.GetGauge("ntw.serve.inflight"),
        registry.GetShardedHistogram("ntw.serve.request_body_bytes"),
        registry.GetShardedHistogram("ntw.serve.handle_micros"),
    };
    return m;
  }
};

void CountStatus(int shard, int status) {
  ServerMetrics& metrics = ServerMetrics::Get();
  if (status < 400) {
    metrics.responses_2xx->Add(shard, 1);
  } else if (status < 500) {
    metrics.responses_4xx->Add(shard, 1);
  } else {
    metrics.responses_5xx->Add(shard, 1);
  }
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  fcntl(fd, F_SETFD, FD_CLOEXEC);
}

void DrainPipe(int fd) {
  char buffer[256];
  while (::read(fd, buffer, sizeof(buffer)) > 0) {
  }
}

int64_t MillisUntil(HttpServer::Clock::time_point deadline,
                    HttpServer::Clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
      .count();
}

}  // namespace

HttpServer::HttpServer(ServerOptions options, Handler handler)
    : HttpServer(std::move(options),
                 HandlerFactory([handler = std::move(handler)](int) {
                   return handler;
                 })) {}

HttpServer::HttpServer(ServerOptions options, HandlerFactory factory)
    : options_(std::move(options)), factory_(std::move(factory)) {
  if (options_.shards < 1) options_.shards = 1;
  // The shard vector is fixed at construction so signal handlers can
  // iterate it without synchronization (they only read each shard's
  // atomic wake fd). Handlers are built lazily in Bind().
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->id = i;
  }
}

HttpServer::~HttpServer() {
  for (auto& shard : shards_) {
    for (auto& [id, conn] : shard->conns) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    for (int fd : shard->pending_fds) {
      if (fd >= 0) ::close(fd);
    }
    if (shard->listen_fd >= 0) ::close(shard->listen_fd);
    // The wake pipe lives for the whole object lifetime (not per-Run):
    // RequestShutdown()/RequestReload() may fire from other threads or
    // signal handlers any time before destruction, and closing the write
    // end while they write() would race on the reused descriptor.
    int wake_write =
        shard->wake_write_fd.exchange(-1, std::memory_order_relaxed);
    if (wake_write >= 0) ::close(wake_write);
    if (shard->wake_read_fd >= 0) ::close(shard->wake_read_fd);
  }
}

size_t HttpServer::ShardConnCap() const {
  int shards = static_cast<int>(shards_.size());
  return static_cast<size_t>((options_.max_connections + shards - 1) / shards);
}

int HttpServer::ShardInflightCap() const {
  int shards = static_cast<int>(shards_.size());
  return (options_.max_inflight + shards - 1) / shards;
}

Status HttpServer::BindShardListener(Shard& shard, bool reuseport) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  SetNonBlocking(fd);
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
#ifdef SO_REUSEPORT
    if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      ::close(fd);
      return Errno("setsockopt SO_REUSEPORT");
    }
#else
    ::close(fd);
    return Status::Internal("SO_REUSEPORT unavailable");
#endif
  }

  // Shard 0 binds the configured port (possibly 0 = ephemeral); the rest
  // bind the concrete port shard 0 learned.
  int port = shard.id == 0 ? options_.port : port_;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad --host '" + options_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("bind " + options_.host + ":" + std::to_string(port));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Errno("listen");
  }
  if (shard.id == 0) {
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      ::close(fd);
      return Errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
  }
  shard.listen_fd = fd;
  return Status::OK();
}

Status HttpServer::Bind() {
  for (auto& shard : shards_) {
    if (shard->wake_read_fd < 0) {
      int pipe_fds[2];
      if (::pipe(pipe_fds) != 0) return Errno("pipe");
      SetNonBlocking(pipe_fds[0]);
      SetNonBlocking(pipe_fds[1]);
      shard->wake_read_fd = pipe_fds[0];
      shard->wake_write_fd.store(pipe_fds[1], std::memory_order_relaxed);
    }
    if (!shard->handler) shard->handler = factory_(shard->id);
  }

  bool want_reuseport = shards_.size() > 1 && !options_.force_accept_relay;
  relay_accept_ = options_.force_accept_relay && shards_.size() > 1;
  NTW_RETURN_IF_ERROR(BindShardListener(*shards_[0], want_reuseport));
  if (want_reuseport) {
    for (size_t i = 1; i < shards_.size(); ++i) {
      Status status = BindShardListener(*shards_[i], /*reuseport=*/true);
      if (!status.ok()) {
        // SO_REUSEPORT unavailable (or the bind raced): fall back to the
        // single-listener accept relay. Shard 0's listener keeps working
        // — SO_REUSEPORT with one socket behaves like a plain listener.
        for (size_t j = 1; j <= i && j < shards_.size(); ++j) {
          if (shards_[j]->listen_fd >= 0) {
            ::close(shards_[j]->listen_fd);
            shards_[j]->listen_fd = -1;
          }
        }
        relay_accept_ = true;
        break;
      }
    }
  }
  return Status::OK();
}

void HttpServer::RequestShutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) WakeShard(*shard);
}

void HttpServer::RequestReload() {
  reload_.store(true, std::memory_order_relaxed);
  // Shard 0 alone consumes the flag — one SIGHUP, one reload, whatever
  // the shard count.
  WakeShard(*shards_[0]);
}

void HttpServer::WakeShard(Shard& shard) {
  int fd = shard.wake_write_fd.load(std::memory_order_relaxed);
  if (fd < 0) return;
  char byte = 1;
  // Best effort: a full pipe already guarantees a pending wake-up.
  [[maybe_unused]] ssize_t rc = ::write(fd, &byte, 1);
}

HttpResponse HttpServer::SafeHandle(Shard& shard,
                                    const HttpRequest& request) const {
  auto start = Clock::now();
  HttpResponse response;
  try {
    response = shard.handler(request);
  } catch (const std::exception& e) {
    response = ErrorResponse(500, std::string("handler exception: ") +
                                      e.what());
  } catch (...) {
    response = ErrorResponse(500, "handler exception");
  }
  ServerMetrics::Get().handle_micros->Record(
      shard.id, std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - start)
                    .count());
  return response;
}

void HttpServer::CloseConn(Shard& shard, uint64_t id) {
  auto it = shard.conns.find(id);
  if (it == shard.conns.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  shard.conns.erase(it);
  total_conns_.fetch_sub(1, std::memory_order_relaxed);
}

void HttpServer::AdoptFd(Shard& shard, int fd, Clock::time_point now) {
  SetNonBlocking(fd);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ServerMetrics::Get().connections->Add(shard.id, 1);
  total_conns_.fetch_add(1, std::memory_order_relaxed);
  uint64_t id = shard.next_conn_id++;
  auto [it, inserted] = shard.conns.emplace(id, Conn(options_.limits));
  it->second.fd = fd;
  it->second.deadline =
      now + std::chrono::milliseconds(options_.read_timeout_ms);
}

void HttpServer::RelayFd(int fd) {
  // Round-robin across every shard; shard 0 (the acceptor) adopts its own
  // share directly, the rest get a queue push + wake.
  Shard& target = *shards_[static_cast<size_t>(relay_next_)];
  relay_next_ = (relay_next_ + 1) % static_cast<int>(shards_.size());
  if (target.id == 0) {
    AdoptFd(target, fd, Clock::now());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(target.pending_mu);
    target.pending_fds.push_back(fd);
  }
  WakeShard(target);
}

void HttpServer::DrainPendingFds(Shard& shard, Clock::time_point now) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(shard.pending_mu);
    fds.swap(shard.pending_fds);
  }
  for (int fd : fds) {
    if (shard.draining ||
        shard.conns.size() >= ShardConnCap()) {
      ::close(fd);  // Arrived after drain began or over the shard cap.
      continue;
    }
    AdoptFd(shard, fd, now);
  }
}

void HttpServer::AcceptPending(Shard& shard, Clock::time_point now) {
  while (shard.listen_fd >= 0) {
    if (relay_accept_) {
      // Relay mode: the global cap is the backstop (per-shard tables are
      // owned by their loops, so the acceptor checks the shared total).
      if (total_conns_.load(std::memory_order_relaxed) >=
          options_.max_connections) {
        return;
      }
    } else if (shard.conns.size() >= ShardConnCap()) {
      return;
    }
    int fd = ::accept(shard.listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (or transient error): try next poll round.
    if (relay_accept_) {
      RelayFd(fd);
    } else {
      AdoptFd(shard, fd, now);
    }
  }
}

void HttpServer::HandleReadable(Shard& shard, uint64_t id, Conn& conn,
                                Clock::time_point now) {
  char buffer[64 * 1024];
  for (;;) {
    ssize_t got = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (got > 0) {
      conn.in.append(buffer, static_cast<size_t>(got));
      if (got < static_cast<ssize_t>(sizeof(buffer))) break;
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer closed (or hard error). A request already dispatched keeps the
    // connection alive until its completion arrives and fails to write.
    if (conn.state == Conn::State::kReading) CloseConn(shard, id);
    return;
  }
  if (conn.state == Conn::State::kReading) TryAdvance(shard, id, conn, now);
}

void HttpServer::TryAdvance(Shard& shard, uint64_t id, Conn& conn,
                            Clock::time_point now) {
  // Inline mode batches a pipelined window: each complete request is
  // handled on the spot and its serialized response appended to
  // conn.out_head (the connection stays in kReading), so the loop keeps
  // consuming buffered requests and FlushPending below puts the whole
  // window on the wire with a single sendmsg. Parallel mode dispatches
  // one request and parks the connection in kProcessing, which exits the
  // loop exactly as before.
  for (;;) {
    RequestParser::Phase phase = conn.parser.Consume(&conn.in);
    if (phase == RequestParser::Phase::kComplete) {
      Dispatch(shard, id, conn, now);
      if (conn.state == Conn::State::kReading && !conn.close_after_write) {
        continue;  // Inline response batched; try the next buffered one.
      }
      break;
    }
    if (phase == RequestParser::Phase::kError) {
      ServerMetrics& metrics = ServerMetrics::Get();
      if (conn.parser.error_status() == 413) {
        metrics.rejected_too_large->Add(shard.id, 1);
      } else {
        metrics.parse_errors->Add(shard.id, 1);
      }
      conn.in.clear();
      conn.close_after_write = true;
      // Appended after any responses already batched this round, so good
      // pipelined requests ahead of the malformed one still get answers.
      HttpResponse response = ErrorResponse(conn.parser.error_status(),
                                            conn.parser.error_message());
      SerializeResponseHead(response, /*keep_alive=*/false, &conn.out_head);
      conn.out_head += response.body;
      break;
    }
    // kNeedMore.
    if (conn.parser.headers_complete() && conn.parser.expects_continue() &&
        !conn.sent_continue && conn.out_head.empty()) {
      // Interim response so clients (curl) do not stall before sending
      // the body. Tiny and sent while the socket buffer is empty, so a
      // best-effort direct send is fine. Deferred while responses are
      // batched ahead of it (out_head non-empty) to preserve wire order;
      // FinishWrite re-enters here once the batch has drained.
      conn.sent_continue = true;
      const char kContinue[] = "HTTP/1.1 100 Continue\r\n\r\n";
      [[maybe_unused]] ssize_t rc =
          ::send(conn.fd, kContinue, sizeof(kContinue) - 1, MSG_NOSIGNAL);
    }
    break;
  }
  FlushPending(shard, id, conn, now);
}

void HttpServer::FlushPending(Shard& shard, uint64_t id, Conn& conn,
                              Clock::time_point now) {
  if (conn.state != Conn::State::kReading || conn.out_head.empty()) return;
  conn.out_offset = 0;
  conn.state = Conn::State::kWriting;
  conn.deadline = now + std::chrono::milliseconds(options_.write_timeout_ms);
  // Optimistic flush, mirroring ApplyCompletions: the socket is almost
  // always writable, so attempting the write now saves a full poll
  // round-trip per batch. A full socket buffer falls back to POLLOUT
  // exactly as before. The depth guard bounds the parse→handle→write
  // recursion (FinishWrite advances into the next buffered request);
  // past it, the POLLOUT path resumes the chain with a fresh budget.
  // No access to `conn` after the call — a write error may have closed it.
  constexpr int kMaxEagerWrites = 64;
  if (conn.eager_writes < kMaxEagerWrites) {
    ++conn.eager_writes;
    HandleWritable(shard, id, conn, now);
  }
}

void HttpServer::Dispatch(Shard& shard, uint64_t id, Conn& conn,
                          Clock::time_point now) {
  conn.sent_continue = false;

  ServerMetrics& metrics = ServerMetrics::Get();
  metrics.requests->Add(shard.id, 1);
  metrics.request_body_bytes->Record(
      shard.id, static_cast<int64_t>(conn.parser.request().body.size()));

  bool keep_alive = conn.parser.request().keep_alive && !shard.draining;
  conn.close_after_write = !keep_alive;

  bool parallel = options_.pool != nullptr && options_.pool->threads() > 1;
  if (!parallel) {
    // Inline path (the sharded daemon's normal mode): handle the request
    // where the parser built it, then Reset() — the request's buffers
    // keep their capacity for the next request on this connection
    // instead of being moved out and freed. The serialized response is
    // appended to the connection's wire buffer and the state stays
    // kReading: TryAdvance keeps batching while complete requests remain
    // buffered and flushes the window with one syscall, so a pipelined
    // window costs one sendmsg instead of one per response.
    HttpResponse response = SafeHandle(shard, conn.parser.request());
    conn.parser.Reset();
    CountStatus(shard.id, response.status);
    conn.out_head.reserve(conn.out_head.size() + response.body.size() + 160);
    SerializeResponseHead(response, keep_alive, &conn.out_head);
    conn.out_head += response.body;
    return;
  }
  if (shard.inflight >= ShardInflightCap()) {
    conn.parser.Reset();
    metrics.rejected_overload->Add(shard.id, 1);
    HttpResponse response = ErrorResponse(
        503, "server is at its in-flight request limit, retry later");
    CountStatus(shard.id, response.status);
    StartWrite(shard, conn, std::move(response), keep_alive, now);
    return;
  }
  ++shard.inflight;
  metrics.inflight->Add(1);
  conn.state = Conn::State::kProcessing;
  auto shared_request =
      std::make_shared<HttpRequest>(conn.parser.TakeRequest());
  conn.parser.Reset();
  Shard* shard_ptr = &shard;
  options_.pool->Submit([this, shard_ptr, id, shared_request, keep_alive] {
    HttpResponse response = SafeHandle(*shard_ptr, *shared_request);
    Completion completion;
    completion.conn_id = id;
    completion.status = response.status;
    SerializeResponseHead(response, keep_alive, &completion.head);
    completion.body = std::move(response.body);
    {
      std::lock_guard<std::mutex> lock(shard_ptr->completion_mu);
      shard_ptr->completions.push_back(std::move(completion));
    }
    WakeShard(*shard_ptr);
  });
}

void HttpServer::StartWrite(Shard& shard, Conn& conn, HttpResponse response,
                            bool keep_alive, Clock::time_point now) {
  (void)shard;
  // The head lands in the connection's recycled buffer; the body is moved,
  // never copied.
  conn.out_head.clear();
  SerializeResponseHead(response, keep_alive, &conn.out_head);
  conn.out_body = std::move(response.body);
  conn.out_offset = 0;
  conn.state = Conn::State::kWriting;
  conn.deadline = now + std::chrono::milliseconds(options_.write_timeout_ms);
}

void HttpServer::StartWriteParts(Conn& conn, std::string head,
                                 std::string body, Clock::time_point now) {
  conn.out_head = std::move(head);
  conn.out_body = std::move(body);
  conn.out_offset = 0;
  conn.state = Conn::State::kWriting;
  conn.deadline = now + std::chrono::milliseconds(options_.write_timeout_ms);
}

void HttpServer::HandleWritable(Shard& shard, uint64_t id, Conn& conn,
                                Clock::time_point now) {
  size_t total = conn.out_head.size() + conn.out_body.size();
  while (conn.out_offset < total) {
    // Gather write: head and body stay separate buffers all the way to the
    // socket (sendmsg == writev + MSG_NOSIGNAL).
    iovec iov[2];
    int iov_count = 0;
    if (conn.out_offset < conn.out_head.size()) {
      iov[iov_count++] = {conn.out_head.data() + conn.out_offset,
                          conn.out_head.size() - conn.out_offset};
      if (!conn.out_body.empty()) {
        iov[iov_count++] = {conn.out_body.data(), conn.out_body.size()};
      }
    } else {
      size_t body_offset = conn.out_offset - conn.out_head.size();
      iov[iov_count++] = {conn.out_body.data() + body_offset,
                          conn.out_body.size() - body_offset};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iov_count);
    ssize_t sent = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (sent > 0) {
      conn.out_offset += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseConn(shard, id);  // Peer vanished mid-response.
    return;
  }
  FinishWrite(shard, id, conn, now);
}

void HttpServer::FinishWrite(Shard& shard, uint64_t id, Conn& conn,
                             Clock::time_point now) {
  if (conn.close_after_write || shard.draining) {
    CloseConn(shard, id);
    return;
  }
  // Keep-alive: recycle the connection for the next request; pipelined
  // bytes already buffered are consumed immediately. clear() keeps both
  // buffers' capacity for the next response.
  conn.out_head.clear();
  conn.out_body.clear();
  conn.out_offset = 0;
  conn.state = Conn::State::kReading;
  conn.deadline = now + std::chrono::milliseconds(options_.read_timeout_ms);
  TryAdvance(shard, id, conn, now);
}

void HttpServer::ApplyCompletions(Shard& shard, Clock::time_point now) {
  std::vector<Completion> ready;
  {
    std::lock_guard<std::mutex> lock(shard.completion_mu);
    ready.swap(shard.completions);
  }
  ServerMetrics& metrics = ServerMetrics::Get();
  for (Completion& completion : ready) {
    --shard.inflight;
    metrics.inflight->Add(-1);
    auto it = shard.conns.find(completion.conn_id);
    if (it == shard.conns.end() ||
        it->second.state != Conn::State::kProcessing) {
      metrics.dropped_responses->Add(shard.id, 1);
      continue;
    }
    CountStatus(shard.id, completion.status);
    StartWriteParts(it->second, std::move(completion.head),
                    std::move(completion.body), now);
    HandleWritable(shard, completion.conn_id, it->second, now);
  }
}

void HttpServer::ExpireDeadlines(Shard& shard, Clock::time_point now) {
  ServerMetrics& metrics = ServerMetrics::Get();
  for (auto it = shard.conns.begin(); it != shard.conns.end();) {
    Conn& conn = it->second;
    uint64_t id = it->first;
    ++it;  // CloseConn invalidates the current iterator only.
    if (conn.state == Conn::State::kProcessing) continue;
    if (now < conn.deadline) continue;
    if (conn.state == Conn::State::kReading) {
      if (conn.parser.has_partial_data() || !conn.in.empty()) {
        metrics.read_timeouts->Add(shard.id, 1);  // Slow-loris / stall.
      }
      // Idle keep-alive connections expire silently.
    } else {
      metrics.write_timeouts->Add(shard.id, 1);
    }
    CloseConn(shard, id);
  }
}

void HttpServer::BeginDrain(Shard& shard, Clock::time_point now) {
  shard.draining = true;
  shard.drain_deadline =
      now + std::chrono::milliseconds(options_.drain_grace_ms);
  if (shard.listen_fd >= 0) {
    ::close(shard.listen_fd);
    shard.listen_fd = -1;
  }
  // Connections with no partial request have nothing in flight: close
  // them now. Mid-request reads keep their read deadline — a request the
  // client has started sending still gets served, then closed.
  for (auto it = shard.conns.begin(); it != shard.conns.end();) {
    uint64_t id = it->first;
    Conn& conn = it->second;
    ++it;
    if (conn.state == Conn::State::kReading && !conn.parser.has_partial_data()
        && conn.in.empty()) {
      CloseConn(shard, id);
    }
  }
}

int HttpServer::PollTimeoutMs(const Shard& shard,
                              Clock::time_point now) const {
  int64_t timeout = 60'000;
  for (const auto& [id, conn] : shard.conns) {
    if (conn.state == Conn::State::kProcessing) continue;
    timeout = std::min(timeout, MillisUntil(conn.deadline, now));
  }
  if (shard.id == 0 && options_.tick_interval_ms > 0 && tick_hook_) {
    timeout = std::min(timeout, MillisUntil(shard.next_tick, now));
  }
  if (shard.draining) {
    timeout = std::min(timeout, MillisUntil(shard.drain_deadline, now));
  }
  if (timeout < 0) return 0;
  if (timeout > 1000) return 1000;  // Bounded signal/shutdown latency.
  return static_cast<int>(timeout) + 1;  // Round up past the deadline.
}

Status HttpServer::RunShard(Shard& shard) {
  std::vector<pollfd> poll_fds;
  std::vector<uint64_t> poll_ids;
  for (;;) {
    Clock::time_point now = Clock::now();
    if (shutdown_.load(std::memory_order_relaxed) && !shard.draining) {
      BeginDrain(shard, now);
    }
    if (shard.id == 0) {
      // Reload and tick are shard-0 affairs: the repository swap they
      // trigger is published through one atomic store that every shard's
      // next Pin() observes — no cross-shard coordination needed.
      if (reload_.exchange(false, std::memory_order_relaxed) &&
          reload_hook_) {
        reload_hook_();
      }
      if (tick_hook_ && options_.tick_interval_ms > 0 &&
          now >= shard.next_tick) {
        tick_hook_();
        shard.next_tick =
            now + std::chrono::milliseconds(options_.tick_interval_ms);
      }
    }
    if (shard.draining) {
      if (shard.conns.empty() && shard.inflight == 0) break;
      if (now >= shard.drain_deadline) {
        ServerMetrics::Get().drain_forced_closes->Add(
            shard.id, static_cast<int64_t>(shard.conns.size()));
        while (!shard.conns.empty()) {
          CloseConn(shard, shard.conns.begin()->first);
        }
        if (shard.inflight == 0) break;
        // Workers still own in-flight requests: keep looping to collect
        // (and drop) their completions so RunShard() exits cleanly.
      }
    }

    poll_fds.clear();
    poll_ids.clear();
    poll_fds.push_back({shard.wake_read_fd, POLLIN, 0});
    poll_ids.push_back(0);
    bool accept_open =
        shard.listen_fd >= 0 &&
        (relay_accept_
             ? total_conns_.load(std::memory_order_relaxed) <
                   options_.max_connections
             : shard.conns.size() < ShardConnCap());
    if (accept_open) {
      poll_fds.push_back({shard.listen_fd, POLLIN, 0});
      poll_ids.push_back(0);
    }
    for (const auto& [id, conn] : shard.conns) {
      short events = 0;
      if (conn.state == Conn::State::kReading) events = POLLIN;
      if (conn.state == Conn::State::kWriting) events = POLLOUT;
      if (events == 0) continue;
      poll_fds.push_back({conn.fd, events, 0});
      poll_ids.push_back(id);
    }

    int rc =
        ::poll(poll_fds.data(), poll_fds.size(), PollTimeoutMs(shard, now));
    if (rc < 0 && errno != EINTR) return Errno("poll");
    now = Clock::now();

    if (rc > 0) {
      for (size_t i = 0; i < poll_fds.size(); ++i) {
        if (poll_fds[i].revents == 0) continue;
        int fd = poll_fds[i].fd;
        if (fd == shard.wake_read_fd) {
          DrainPipe(shard.wake_read_fd);
          continue;
        }
        if (fd == shard.listen_fd) {
          AcceptPending(shard, now);
          continue;
        }
        auto it = shard.conns.find(poll_ids[i]);
        if (it == shard.conns.end() || it->second.fd != fd) continue;
        Conn& conn = it->second;
        // Fresh poll event: the optimistic-flush chain restarts from zero.
        conn.eager_writes = 0;
        if (conn.state == Conn::State::kReading &&
            (poll_fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          HandleReadable(shard, poll_ids[i], conn, now);
        } else if (conn.state == Conn::State::kWriting &&
                   (poll_fds[i].revents & (POLLOUT | POLLHUP | POLLERR)) !=
                       0) {
          HandleWritable(shard, poll_ids[i], conn, now);
        }
      }
    }
    DrainPendingFds(shard, now);
    ApplyCompletions(shard, now);
    ExpireDeadlines(shard, now);
  }

  // Close any relayed sockets that arrived after this shard's drain
  // finished (the acceptor may have assigned them before it drained).
  {
    std::lock_guard<std::mutex> lock(shard.pending_mu);
    for (int fd : shard.pending_fds) ::close(fd);
    shard.pending_fds.clear();
  }
  // Drain any wake bytes so a relaunched Run() does not spin once. The
  // pipe itself stays open (see ~HttpServer) so concurrent Request*()
  // calls stay safe after Run() returns.
  DrainPipe(shard.wake_read_fd);
  return Status::OK();
}

Status HttpServer::Run() {
  if (shards_[0]->listen_fd < 0) NTW_RETURN_IF_ERROR(Bind());
  shards_[0]->next_tick =
      Clock::now() + std::chrono::milliseconds(options_.tick_interval_ms);

  if (shards_.size() == 1) {
    Status status = RunShard(*shards_[0]);
    shutdown_.store(false, std::memory_order_relaxed);
    return status;
  }

  // Shard 0 runs on the calling thread (it owns reload/tick and, in relay
  // mode, the sole listener); the rest get their own reactor threads.
  std::vector<Status> statuses(shards_.size(), Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(shards_.size() - 1);
  for (size_t i = 1; i < shards_.size(); ++i) {
    threads.emplace_back([this, i, &statuses] {
      statuses[i] = RunShard(*shards_[i]);
    });
  }
  statuses[0] = RunShard(*shards_[0]);
  // If shard 0 failed (e.g. poll error) the others would run forever:
  // make sure every loop sees shutdown before joining.
  if (!statuses[0].ok()) RequestShutdown();
  for (std::thread& thread : threads) thread.join();
  shutdown_.store(false, std::memory_order_relaxed);
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace ntw::serve
