#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>

#include "obs/metrics.h"

namespace ntw::serve {

namespace {

struct ServerMetrics {
  obs::Counter* connections;
  obs::Counter* requests;
  obs::Counter* responses_2xx;
  obs::Counter* responses_4xx;
  obs::Counter* responses_5xx;
  obs::Counter* rejected_overload;
  obs::Counter* rejected_too_large;
  obs::Counter* parse_errors;
  obs::Counter* read_timeouts;
  obs::Counter* write_timeouts;
  obs::Counter* dropped_responses;
  obs::Counter* drain_forced_closes;
  obs::Gauge* inflight;
  obs::Histogram* request_body_bytes;
  obs::Histogram* handle_micros;

  static ServerMetrics& Get() {
    obs::Registry& registry = obs::Registry::Global();
    static ServerMetrics m{
        registry.GetCounter("ntw.serve.connections"),
        registry.GetCounter("ntw.serve.requests"),
        registry.GetCounter("ntw.serve.responses_2xx"),
        registry.GetCounter("ntw.serve.responses_4xx"),
        registry.GetCounter("ntw.serve.responses_5xx"),
        registry.GetCounter("ntw.serve.rejected_overload"),
        registry.GetCounter("ntw.serve.rejected_too_large"),
        registry.GetCounter("ntw.serve.parse_errors"),
        registry.GetCounter("ntw.serve.read_timeouts"),
        registry.GetCounter("ntw.serve.write_timeouts"),
        registry.GetCounter("ntw.serve.dropped_responses"),
        registry.GetCounter("ntw.serve.drain_forced_closes"),
        registry.GetGauge("ntw.serve.inflight"),
        registry.GetHistogram("ntw.serve.request_body_bytes"),
        registry.GetHistogram("ntw.serve.handle_micros"),
    };
    return m;
  }
};

void CountStatus(int status) {
  ServerMetrics& metrics = ServerMetrics::Get();
  if (status < 400) {
    metrics.responses_2xx->Add(1);
  } else if (status < 500) {
    metrics.responses_4xx->Add(1);
  } else {
    metrics.responses_5xx->Add(1);
  }
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  fcntl(fd, F_SETFD, FD_CLOEXEC);
}

int64_t MillisUntil(HttpServer::Clock::time_point deadline,
                    HttpServer::Clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
      .count();
}

}  // namespace

HttpServer::HttpServer(ServerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() {
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  // The wake pipe lives for the whole object lifetime (not per-Run):
  // RequestShutdown()/RequestReload() may fire from other threads or
  // signal handlers any time before destruction, and closing the write
  // end while they write() would race on the reused descriptor.
  int wake_write = wake_write_fd_.exchange(-1, std::memory_order_relaxed);
  if (wake_write >= 0) ::close(wake_write);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
}

Status HttpServer::Bind() {
  if (wake_read_fd_ < 0) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) return Errno("pipe");
    SetNonBlocking(pipe_fds[0]);
    SetNonBlocking(pipe_fds[1]);
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_.store(pipe_fds[1], std::memory_order_relaxed);
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  SetNonBlocking(listen_fd_);
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad --host '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

void HttpServer::RequestShutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  WakeLoop();
}

void HttpServer::RequestReload() {
  reload_.store(true, std::memory_order_relaxed);
  WakeLoop();
}

void HttpServer::WakeLoop() {
  int fd = wake_write_fd_.load(std::memory_order_relaxed);
  if (fd < 0) return;
  char byte = 1;
  // Best effort: a full pipe already guarantees a pending wake-up.
  [[maybe_unused]] ssize_t rc = ::write(fd, &byte, 1);
}

HttpResponse HttpServer::SafeHandle(const HttpRequest& request) const {
  auto start = Clock::now();
  HttpResponse response;
  try {
    response = handler_(request);
  } catch (const std::exception& e) {
    response = ErrorResponse(500, std::string("handler exception: ") +
                                      e.what());
  } catch (...) {
    response = ErrorResponse(500, "handler exception");
  }
  ServerMetrics::Get().handle_micros->Record(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
  return response;
}

void HttpServer::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  conns_.erase(it);
}

void HttpServer::AcceptPending(Clock::time_point now) {
  while (listen_fd_ >= 0 &&
         conns_.size() < static_cast<size_t>(options_.max_connections)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (or transient error): try next poll round.
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ServerMetrics::Get().connections->Add(1);
    uint64_t id = next_conn_id_++;
    auto [it, inserted] = conns_.emplace(id, Conn(options_.limits));
    it->second.fd = fd;
    it->second.deadline =
        now + std::chrono::milliseconds(options_.read_timeout_ms);
  }
}

void HttpServer::HandleReadable(uint64_t id, Conn& conn,
                                Clock::time_point now) {
  char buffer[64 * 1024];
  for (;;) {
    ssize_t got = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (got > 0) {
      conn.in.append(buffer, static_cast<size_t>(got));
      if (got < static_cast<ssize_t>(sizeof(buffer))) break;
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer closed (or hard error). A request already dispatched keeps the
    // connection alive until its completion arrives and fails to write.
    if (conn.state == Conn::State::kReading) CloseConn(id);
    return;
  }
  if (conn.state == Conn::State::kReading) TryAdvance(id, conn, now);
}

void HttpServer::TryAdvance(uint64_t id, Conn& conn, Clock::time_point now) {
  RequestParser::Phase phase = conn.parser.Consume(&conn.in);
  switch (phase) {
    case RequestParser::Phase::kNeedMore:
      if (conn.parser.headers_complete() && conn.parser.expects_continue() &&
          !conn.sent_continue) {
        // Interim response so clients (curl) do not stall before sending
        // the body. Tiny and sent while the socket buffer is empty, so a
        // best-effort direct send is fine.
        conn.sent_continue = true;
        const char kContinue[] = "HTTP/1.1 100 Continue\r\n\r\n";
        [[maybe_unused]] ssize_t rc =
            ::send(conn.fd, kContinue, sizeof(kContinue) - 1, MSG_NOSIGNAL);
      }
      return;
    case RequestParser::Phase::kError: {
      ServerMetrics& metrics = ServerMetrics::Get();
      if (conn.parser.error_status() == 413) {
        metrics.rejected_too_large->Add(1);
      } else {
        metrics.parse_errors->Add(1);
      }
      conn.in.clear();
      conn.close_after_write = true;
      StartWrite(conn,
                 ErrorResponse(conn.parser.error_status(),
                               conn.parser.error_message()),
                 /*keep_alive=*/false, now);
      return;
    }
    case RequestParser::Phase::kComplete:
      Dispatch(id, conn, now);
      return;
  }
}

void HttpServer::Dispatch(uint64_t id, Conn& conn, Clock::time_point now) {
  conn.sent_continue = false;

  ServerMetrics& metrics = ServerMetrics::Get();
  metrics.requests->Add(1);
  metrics.request_body_bytes->Record(
      static_cast<int64_t>(conn.parser.request().body.size()));

  bool keep_alive = conn.parser.request().keep_alive && !draining_;
  conn.close_after_write = !keep_alive;

  bool parallel = options_.pool != nullptr && options_.pool->threads() > 1;
  if (!parallel) {
    // Inline path: handle the request where the parser built it, then
    // Reset() — the request's buffers keep their capacity for the next
    // request on this connection instead of being moved out and freed.
    HttpResponse response = SafeHandle(conn.parser.request());
    conn.parser.Reset();
    CountStatus(response.status);
    StartWrite(conn, std::move(response), keep_alive, now);
    return;
  }
  if (inflight_ >= options_.max_inflight) {
    conn.parser.Reset();
    metrics.rejected_overload->Add(1);
    HttpResponse response = ErrorResponse(
        503, "server is at its in-flight request limit, retry later");
    CountStatus(response.status);
    StartWrite(conn, std::move(response), keep_alive, now);
    return;
  }
  ++inflight_;
  metrics.inflight->Set(inflight_);
  conn.state = Conn::State::kProcessing;
  auto shared_request =
      std::make_shared<HttpRequest>(conn.parser.TakeRequest());
  conn.parser.Reset();
  options_.pool->Submit([this, id, shared_request, keep_alive] {
    HttpResponse response = SafeHandle(*shared_request);
    Completion completion;
    completion.conn_id = id;
    completion.status = response.status;
    SerializeResponseHead(response, keep_alive, &completion.head);
    completion.body = std::move(response.body);
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      completions_.push_back(std::move(completion));
    }
    WakeLoop();
  });
}

void HttpServer::StartWrite(Conn& conn, HttpResponse response,
                            bool keep_alive, Clock::time_point now) {
  // The head lands in the connection's recycled buffer; the body is moved,
  // never copied.
  SerializeResponseHead(response, keep_alive, &conn.out_head);
  conn.out_body = std::move(response.body);
  conn.out_offset = 0;
  conn.state = Conn::State::kWriting;
  conn.deadline = now + std::chrono::milliseconds(options_.write_timeout_ms);
}

void HttpServer::StartWriteParts(Conn& conn, std::string head,
                                 std::string body, Clock::time_point now) {
  conn.out_head = std::move(head);
  conn.out_body = std::move(body);
  conn.out_offset = 0;
  conn.state = Conn::State::kWriting;
  conn.deadline = now + std::chrono::milliseconds(options_.write_timeout_ms);
}

void HttpServer::HandleWritable(uint64_t id, Conn& conn,
                                Clock::time_point now) {
  size_t total = conn.out_head.size() + conn.out_body.size();
  while (conn.out_offset < total) {
    // Gather write: head and body stay separate buffers all the way to the
    // socket (sendmsg == writev + MSG_NOSIGNAL).
    iovec iov[2];
    int iov_count = 0;
    if (conn.out_offset < conn.out_head.size()) {
      iov[iov_count++] = {conn.out_head.data() + conn.out_offset,
                          conn.out_head.size() - conn.out_offset};
      if (!conn.out_body.empty()) {
        iov[iov_count++] = {conn.out_body.data(), conn.out_body.size()};
      }
    } else {
      size_t body_offset = conn.out_offset - conn.out_head.size();
      iov[iov_count++] = {conn.out_body.data() + body_offset,
                          conn.out_body.size() - body_offset};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iov_count);
    ssize_t sent = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (sent > 0) {
      conn.out_offset += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseConn(id);  // Peer vanished mid-response.
    return;
  }
  FinishWrite(id, conn, now);
}

void HttpServer::FinishWrite(uint64_t id, Conn& conn, Clock::time_point now) {
  if (conn.close_after_write || draining_) {
    CloseConn(id);
    return;
  }
  // Keep-alive: recycle the connection for the next request; pipelined
  // bytes already buffered are consumed immediately. clear() keeps both
  // buffers' capacity for the next response.
  conn.out_head.clear();
  conn.out_body.clear();
  conn.out_offset = 0;
  conn.state = Conn::State::kReading;
  conn.deadline = now + std::chrono::milliseconds(options_.read_timeout_ms);
  TryAdvance(id, conn, now);
}

void HttpServer::ApplyCompletions(Clock::time_point now) {
  std::vector<Completion> ready;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    ready.swap(completions_);
  }
  ServerMetrics& metrics = ServerMetrics::Get();
  for (Completion& completion : ready) {
    --inflight_;
    metrics.inflight->Set(inflight_);
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end() ||
        it->second.state != Conn::State::kProcessing) {
      metrics.dropped_responses->Add(1);
      continue;
    }
    CountStatus(completion.status);
    StartWriteParts(it->second, std::move(completion.head),
                    std::move(completion.body), now);
    HandleWritable(completion.conn_id, it->second, now);
  }
}

void HttpServer::ExpireDeadlines(Clock::time_point now) {
  ServerMetrics& metrics = ServerMetrics::Get();
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& conn = it->second;
    uint64_t id = it->first;
    ++it;  // CloseConn invalidates the current iterator only.
    if (conn.state == Conn::State::kProcessing) continue;
    if (now < conn.deadline) continue;
    if (conn.state == Conn::State::kReading) {
      if (conn.parser.has_partial_data() || !conn.in.empty()) {
        metrics.read_timeouts->Add(1);  // Slow-loris / stalled request.
      }
      // Idle keep-alive connections expire silently.
    } else {
      metrics.write_timeouts->Add(1);
    }
    CloseConn(id);
  }
}

void HttpServer::BeginDrain(Clock::time_point now) {
  draining_ = true;
  drain_deadline_ = now + std::chrono::milliseconds(options_.drain_grace_ms);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connections with no partial request have nothing in flight: close
  // them now. Mid-request reads keep their read deadline — a request the
  // client has started sending still gets served, then closed.
  for (auto it = conns_.begin(); it != conns_.end();) {
    uint64_t id = it->first;
    Conn& conn = it->second;
    ++it;
    if (conn.state == Conn::State::kReading && !conn.parser.has_partial_data()
        && conn.in.empty()) {
      CloseConn(id);
    }
  }
}

int HttpServer::PollTimeoutMs(Clock::time_point now) const {
  int64_t timeout = 60'000;
  for (const auto& [id, conn] : conns_) {
    if (conn.state == Conn::State::kProcessing) continue;
    timeout = std::min(timeout, MillisUntil(conn.deadline, now));
  }
  if (options_.tick_interval_ms > 0 && tick_hook_) {
    timeout = std::min(timeout, MillisUntil(next_tick_, now));
  }
  if (draining_) {
    timeout = std::min(timeout, MillisUntil(drain_deadline_, now));
  }
  if (timeout < 0) return 0;
  if (timeout > 1000) return 1000;  // Bounded signal/shutdown latency.
  return static_cast<int>(timeout) + 1;  // Round up past the deadline.
}

Status HttpServer::Run() {
  if (listen_fd_ < 0) NTW_RETURN_IF_ERROR(Bind());
  next_tick_ = Clock::now() +
               std::chrono::milliseconds(options_.tick_interval_ms);

  std::vector<pollfd> poll_fds;
  std::vector<uint64_t> poll_ids;
  for (;;) {
    Clock::time_point now = Clock::now();
    if (shutdown_.load(std::memory_order_relaxed) && !draining_) {
      BeginDrain(now);
    }
    if (reload_.exchange(false, std::memory_order_relaxed) && reload_hook_) {
      reload_hook_();
    }
    if (tick_hook_ && options_.tick_interval_ms > 0 && now >= next_tick_) {
      tick_hook_();
      next_tick_ = now + std::chrono::milliseconds(options_.tick_interval_ms);
    }
    if (draining_) {
      if (conns_.empty() && inflight_ == 0) break;
      if (now >= drain_deadline_) {
        ServerMetrics::Get().drain_forced_closes->Add(
            static_cast<int64_t>(conns_.size()));
        while (!conns_.empty()) CloseConn(conns_.begin()->first);
        if (inflight_ == 0) break;
        // Workers still own in-flight requests: keep looping to collect
        // (and drop) their completions so Run() exits cleanly.
      }
    }

    poll_fds.clear();
    poll_ids.clear();
    poll_fds.push_back({wake_read_fd_, POLLIN, 0});
    poll_ids.push_back(0);
    if (listen_fd_ >= 0 &&
        conns_.size() < static_cast<size_t>(options_.max_connections)) {
      poll_fds.push_back({listen_fd_, POLLIN, 0});
      poll_ids.push_back(0);
    }
    for (const auto& [id, conn] : conns_) {
      short events = 0;
      if (conn.state == Conn::State::kReading) events = POLLIN;
      if (conn.state == Conn::State::kWriting) events = POLLOUT;
      if (events == 0) continue;
      poll_fds.push_back({conn.fd, events, 0});
      poll_ids.push_back(id);
    }

    int rc = ::poll(poll_fds.data(), poll_fds.size(), PollTimeoutMs(now));
    if (rc < 0 && errno != EINTR) return Errno("poll");
    now = Clock::now();

    if (rc > 0) {
      for (size_t i = 0; i < poll_fds.size(); ++i) {
        if (poll_fds[i].revents == 0) continue;
        int fd = poll_fds[i].fd;
        if (fd == wake_read_fd_) {
          char buffer[256];
          while (::read(wake_read_fd_, buffer, sizeof(buffer)) > 0) {
          }
          continue;
        }
        if (fd == listen_fd_) {
          AcceptPending(now);
          continue;
        }
        auto it = conns_.find(poll_ids[i]);
        if (it == conns_.end() || it->second.fd != fd) continue;
        Conn& conn = it->second;
        if (conn.state == Conn::State::kReading &&
            (poll_fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          HandleReadable(poll_ids[i], conn, now);
        } else if (conn.state == Conn::State::kWriting &&
                   (poll_fds[i].revents & (POLLOUT | POLLHUP | POLLERR)) !=
                       0) {
          HandleWritable(poll_ids[i], conn, now);
        }
      }
    }
    ApplyCompletions(now);
    ExpireDeadlines(now);
  }

  // Drain any wake bytes so a relaunched Run() does not spin once, and
  // reset the shutdown latch. The pipe itself stays open (see ~HttpServer)
  // so concurrent Request*() calls stay safe after Run() returns.
  char buffer[256];
  while (::read(wake_read_fd_, buffer, sizeof(buffer)) > 0) {
  }
  shutdown_.store(false, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace ntw::serve
