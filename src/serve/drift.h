#ifndef NTW_SERVE_DRIFT_H_
#define NTW_SERVE_DRIFT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace ntw::serve {

/// Thresholds for the per-(site, attribute) drift detector. One config is
/// installed on the WrapperRepository before Load(); every DriftState it
/// creates copies it, so changing thresholds requires a reload.
struct DriftConfig {
  bool enabled = true;
  /// Pages observed before the baseline is frozen. The first half feeds
  /// the value filter + re-induction dictionary; the second half measures
  /// the site's natural value-repeat rate against that filter, so the
  /// likelihood signal self-calibrates (a site whose values never repeat
  /// disarms it instead of false-firing).
  int warmup_pages = 64;
  /// Steady-state evaluation cadence, in observed pages per window.
  int evaluate_every = 32;
  /// Consecutive empty extractions that count as drift (armed only when
  /// the baseline itself was not empty-heavy, see empty_arm_ratio).
  int empty_streak_limit = 16;
  /// The empty-streak signal arms only when the baseline empty-page ratio
  /// is at most this (a site that often legitimately serves pages without
  /// the attribute must not trip on a run of them).
  double empty_arm_ratio = 0.25;
  /// The likelihood signal arms only when the baseline known-value ratio
  /// is at least this.
  double likelihood_arm_floor = 0.2;
  /// Drifted when the window's known-value ratio falls below
  /// `likelihood_collapse * baseline known ratio`.
  double likelihood_collapse = 0.3;
  /// Schema-size proxy band: drifted when the window's mean values per
  /// non-empty page leaves [baseline * schema_collapse,
  /// baseline * schema_explosion]. Wide by design — benign record-count
  /// churn must stay inside.
  double schema_collapse = 0.25;
  double schema_explosion = 4.0;
  /// Alignment proxy: drifted when the window's mean value length shifts
  /// by more than this fraction of the baseline mean.
  double length_shift = 1.0;
  /// Consecutive drifted evaluations required before triggering.
  int hysteresis = 2;
  /// Pages ignored after a rejected/failed repair before re-arming.
  int cooldown_pages = 512;
  /// Request bodies retained for re-induction once drift triggers.
  int retain_pages = 4;
  /// Total retained-body byte cap (at least one page is always kept).
  size_t retain_bytes = 1 << 20;
  /// Caps on the warmup-collected value dictionary handed to the
  /// re-induction annotator.
  size_t dictionary_values = 48;
  size_t dictionary_bytes = 1 << 14;
  /// Value-based signals hold fire below this many window values.
  int min_window_values = 4;
};

/// Per-(site, attribute) drift detector (DESIGN.md §13). Lives in the
/// repository's drift registry and is referenced by every snapshot Entry
/// for the pair, so it survives reloads while the wrapper record is
/// unchanged and re-baselines when the wrapper changes.
///
/// Lifecycle: kWarmup (capture baseline: value filter + dictionary, then
/// natural repeat rate) → kSteady (sharded atomic counters only — the
/// /extract hot path performs no allocation and takes no lock) →
/// kCollecting (drift triggered; the next retain_pages request bodies are
/// copied into a bounded ring) → kQueued (a re-induction task has been
/// handed off) → back to kSteady via a fresh state on publish, or via
/// kCooldown when the repair was rejected.
///
/// Signals, all against the baseline frozen at warmup end (the paper's
/// scoring machinery, reduced to streaming form):
///   empty_streak        consecutive failed/empty extractions;
///   likelihood_collapse annotation-likelihood proxy — the fraction of
///                       extracted values recognized by the baseline
///                       value filter collapses;
///   schema_collapse / schema_explosion
///                       P(X) schema-size proxy — mean values per
///                       non-empty page leaves the baseline band;
///   alignment_shift     P(X) alignment proxy — mean value length shifts.
class DriftState {
 public:
  enum class Phase : int {
    kWarmup = 0,
    kSteady,
    kCollecting,
    kQueued,
    kCooldown,
  };
  enum class Action {
    kNone,
    /// The retention ring is full: take the sample and enqueue a repair.
    kReinduce,
  };

  DriftState(std::string site, std::string attribute, std::string record,
             const DriftConfig& config);

  /// Scores one extraction. `values` are the extracted texts (any of the
  /// service's three paths), `page_html` the request body — only copied
  /// on the drifted collection path. Thread-safe; in kSteady it touches
  /// nothing but striped atomics.
  Action Observe(int shard, const std::string_view* values, size_t count,
                 const std::string& page_html);

  /// The re-induction input, taken once after Observe() returned
  /// kReinduce: the retained request bodies plus the warmup value
  /// dictionary (the Lerman-style labeler input).
  struct Sample {
    std::vector<std::string> pages;
    std::vector<std::string> dictionary;
  };
  Sample TakeSample();

  /// Re-arms detection after a rejected or failed repair: the next
  /// cooldown_pages observations are ignored, then the window restarts.
  /// (A successful publish instead replaces this state wholesale.)
  void EnterCooldown();

  Phase phase() const {
    return static_cast<Phase>(phase_.load(std::memory_order_acquire));
  }
  const std::string& site() const { return site_; }
  const std::string& attribute() const { return attribute_; }
  /// The serialized record of the wrapper this state is baselining.
  const std::string& record() const { return record_; }
  int64_t drift_events() const {
    return events_.load(std::memory_order_relaxed);
  }
  int64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  /// One JSON object describing this state — the /driftz payload.
  void WriteJson(obs::JsonWriter& json) const;

  static const char* PhaseName(Phase phase);

 private:
  /// Striped steady-state cells: one cache line each so reactor shards
  /// never contend. Monotonic totals; evaluation diffs against the last
  /// checkpoint.
  struct alignas(64) Stripe {
    std::atomic<int64_t> pages{0};
    std::atomic<int64_t> empty_pages{0};
    std::atomic<int64_t> values{0};
    std::atomic<int64_t> value_bytes{0};
    std::atomic<int64_t> known_values{0};
  };
  static constexpr int kStripes = 8;
  static constexpr size_t kFilterWords = 128;  // 8192 bits.

  struct Totals {
    int64_t pages = 0;
    int64_t empty_pages = 0;
    int64_t values = 0;
    int64_t value_bytes = 0;
    int64_t known_values = 0;
  };

  Action ObserveSteady(int shard, const std::string_view* values,
                       size_t count);
  void ObserveWarmupLocked(const std::string_view* values, size_t count);
  void FinishWarmupLocked();
  void Evaluate();
  void Trigger(const char* signal);
  Totals MergeStripes() const;
  bool FilterTest(uint64_t hash) const;
  void FilterInsert(uint64_t hash);

  const std::string site_;
  const std::string attribute_;
  const std::string record_;
  const DriftConfig config_;

  std::atomic<int> phase_{static_cast<int>(Phase::kWarmup)};

  // --- steady-state hot path: striped atomics only -----------------------
  std::array<Stripe, kStripes> stripes_;
  std::atomic<int64_t> empty_streak_{0};
  std::atomic<int> tick_{0};
  std::atomic<bool> evaluating_{false};

  // --- evaluator state (guarded by the evaluating_ flag; atomics so
  // /driftz may read them racily without a data race) ---------------------
  std::atomic<int64_t> last_pages_{0};
  std::atomic<int64_t> last_empty_{0};
  std::atomic<int64_t> last_values_{0};
  std::atomic<int64_t> last_value_bytes_{0};
  std::atomic<int64_t> last_known_{0};
  std::atomic<int> hysteresis_{0};
  std::atomic<const char*> last_signal_{nullptr};

  std::atomic<int64_t> events_{0};
  std::atomic<int64_t> evaluations_{0};
  std::atomic<int> cooldown_left_{0};

  // --- baseline: written under mu_ during warmup, frozen (plain reads)
  // once phase_ is published as kSteady ----------------------------------
  struct Baseline {
    int pages = 0;
    double empty_ratio = 0.0;
    double mean_values_per_page = 0.0;  // Over non-empty pages.
    double mean_value_length = 0.0;
    double known_ratio = 0.0;
    bool armed_empty = false;
    bool armed_likelihood = false;
  };
  Baseline baseline_;
  std::array<uint64_t, kFilterWords> filter_{};

  // --- warmup accumulation + collection ring (under mu_) -----------------
  mutable std::mutex mu_;
  int warmup_seen_ = 0;
  int64_t warm_empty_ = 0;
  int64_t warm_values_ = 0;
  int64_t warm_value_bytes_ = 0;
  int64_t warm_probe_values_ = 0;
  int64_t warm_probe_known_ = 0;
  std::vector<std::string> dictionary_;
  size_t dictionary_bytes_ = 0;
  std::vector<std::string> retained_;
  size_t retained_bytes_ = 0;
};

}  // namespace ntw::serve

#endif  // NTW_SERVE_DRIFT_H_
