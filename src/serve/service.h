#ifndef NTW_SERVE_SERVICE_H_
#define NTW_SERVE_SERVICE_H_

#include <string_view>

#include "common/thread_pool.h"
#include "core/compiled_wrapper.h"
#include "core/fused_matcher.h"
#include "obs/json.h"
#include "serve/http.h"
#include "serve/reinduce.h"
#include "serve/wrapper_repository.h"

namespace ntw::serve {

/// The daemon's endpoint logic, one pure function from request to
/// response so the transport (HttpServer) stays generic and the CLI can
/// reuse the exact same repository code path:
///
///   POST /extract?site=S&attribute=A   body = one HTML page
///     → {"schema":"ntw-serve-extract",...,"values":[...]}
///   POST /extract_batch?site=S&attribute=A   body = NDJSON, one
///     {"id":...,"html":...} object per line, fanned out with ParallelFor
///     → NDJSON, one {"index":..,"id":..,"values":[..]} line per input
///   GET /metrics   → the canonical ntw-metrics registry dump
///   GET /healthz   → 200 "ok"
///
/// Handle() is thread-safe and deterministic: identical request bytes
/// against an unchanged repository snapshot produce identical response
/// bytes, whatever the concurrency (the batch fan-out writes pre-sized
/// per-line slots that are joined in input order).
///
/// Extraction runs on the compiled fast path by default (arena DOM +
/// CompiledWrapper plans from the repository snapshot, with per-request
/// buffer reuse via a pool); `Options{.fast_path = false}` — the daemon's
/// --no-fast-path — forces the interpreted Wrapper::Extract path. On top
/// of that, dom_free() plans (LR/HLRT — DESIGN.md §12) default to the
/// streaming no-DOM path: the request body goes through StreamPage
/// (zero-copy when the bytes are already canonical, fused
/// tokenize→flatten otherwise) and never builds an arena DOM — and
/// streamable() XPath plans run the fused tokenize→plan-execute machine
/// straight off the tokenizer event stream, likewise DOM-free;
/// `streaming = false` — the daemon's --no-streaming — drops both back
/// to the arena fast path. All paths are byte-identical by contract,
/// pinned by tests/fastpath_equivalence_test.cc,
/// tests/streaming_equivalence_test.cc and the ntw_loadgen cross-check.
///
/// Sharding (DESIGN.md §11): the daemon instantiates one ExtractService
/// per reactor shard, so each shard's requests reuse a FastBufferPool no
/// other shard touches and account to per-shard metric stripes
/// (`Options::shard`). The repository is shared — reads go through its
/// wait-free epoch pin, never a lock.
struct ExtractServiceOptions {
  bool fast_path = true;
  /// Metric stripe this instance records into (the owning reactor's id).
  int shard = 0;
  /// Route dom_free() plans and streamable() XPath plans through the
  /// streaming no-DOM paths. Only consulted when fast_path is on.
  /// (Declared after `shard` so existing `Options{true, n}`
  /// brace-initializers keep their meaning.)
  bool streaming = true;
  /// Feed per-entry drift detectors after every extraction and enqueue
  /// re-induction repairs (DESIGN.md §13). Only effective when the
  /// service was constructed with a ReinduceWorker and the repository has
  /// a drift config installed. (Declared after `streaming` — see there.)
  bool self_heal = true;
  /// `attribute=*` requests: scan the page once with the site's fused
  /// multi-pattern automaton (DESIGN.md §15) instead of once per
  /// attribute. Only consulted when fast_path and streaming are on; the
  /// daemon's --no-fused turns it off. Byte-identical either way.
  /// (Declared last — see `streaming`.)
  bool fused = true;
};

class ExtractService {
 public:
  using Options = ExtractServiceOptions;

  ExtractService(const WrapperRepository* repository, ThreadPool* pool,
                 Options options = {}, ReinduceWorker* reinducer = nullptr)
      : repository_(repository),
        pool_(pool),
        options_(options),
        reinducer_(reinducer) {}

  HttpResponse Handle(const HttpRequest& request) const;

 private:
  HttpResponse Extract(const HttpRequest& request) const;
  HttpResponse ExtractBatch(const HttpRequest& request) const;
  /// `attribute=*`: every attribute of the site from one request body.
  HttpResponse ExtractMulti(const WrapperRepository::Snapshot& snapshot,
                            const std::string& site,
                            const HttpRequest& request) const;
  HttpResponse ExtractBatchMulti(const WrapperRepository::Snapshot& snapshot,
                                 const std::string& site,
                                 const HttpRequest& request) const;
  HttpResponse Driftz() const;
  void ExtractToJson(const WrapperRepository::Entry& entry,
                     const std::string& page_html,
                     obs::JsonWriter& json) const;
  /// Writes just the `[...]` value array for one entry (extraction +
  /// metrics + drift feed); the caller has already written the key.
  void ExtractArray(const WrapperRepository::Entry& entry,
                    const std::string& page_html, obs::JsonWriter& json) const;
  /// Writes the `"attributes":{"a":[...],...}` member for every attribute
  /// of `site`, ascending. One fused automaton scan covers all dom_free
  /// plans when enabled; the rest (and the fused-off path) extract
  /// per-attribute through ExtractArray — byte-identical by contract.
  void ExtractAllToJson(
      const WrapperRepository::Snapshot& snapshot, const std::string& site,
      const std::vector<std::pair<std::string, const WrapperRepository::Entry*>>&
          entries,
      const std::string& page_html, obs::JsonWriter& json) const;
  /// Scores one extraction against the entry's drift detector and hands
  /// a full retention ring to the re-induction worker. No-op (one null
  /// check) when self-healing is off.
  void ObserveDrift(const WrapperRepository::Entry& entry,
                    const std::string& page_html,
                    const std::string_view* values, size_t count) const;

  const WrapperRepository* repository_;
  ThreadPool* pool_;
  Options options_;
  ReinduceWorker* reinducer_ = nullptr;
  // Reusable per-request fast-path buffers (arena DOM + scratch); the pool
  // is internally synchronized, so Handle() stays const and thread-safe.
  // One pool per service instance — per shard in the sharded daemon.
  mutable core::FastBufferPool buffers_;
  // Lighter buffers (stream page + values) for the streaming no-DOM path.
  mutable core::StreamBufferPool stream_buffers_;
  // Occurrence lists + per-attribute value slots for fused multi-attribute
  // extraction (attribute=*).
  mutable core::FusedScratchPool fused_scratch_;
};

}  // namespace ntw::serve

#endif  // NTW_SERVE_SERVICE_H_
