#ifndef NTW_SERVE_SERVICE_H_
#define NTW_SERVE_SERVICE_H_

#include "common/thread_pool.h"
#include "serve/http.h"
#include "serve/wrapper_repository.h"

namespace ntw::serve {

/// The daemon's endpoint logic, one pure function from request to
/// response so the transport (HttpServer) stays generic and the CLI can
/// reuse the exact same repository code path:
///
///   POST /extract?site=S&attribute=A   body = one HTML page
///     → {"schema":"ntw-serve-extract",...,"values":[...]}
///   POST /extract_batch?site=S&attribute=A   body = NDJSON, one
///     {"id":...,"html":...} object per line, fanned out with ParallelFor
///     → NDJSON, one {"index":..,"id":..,"values":[..]} line per input
///   GET /metrics   → the canonical ntw-metrics registry dump
///   GET /healthz   → 200 "ok"
///
/// Handle() is thread-safe and deterministic: identical request bytes
/// against an unchanged repository snapshot produce identical response
/// bytes, whatever the concurrency (the batch fan-out writes pre-sized
/// per-line slots that are joined in input order).
class ExtractService {
 public:
  ExtractService(const WrapperRepository* repository, ThreadPool* pool)
      : repository_(repository), pool_(pool) {}

  HttpResponse Handle(const HttpRequest& request) const;

 private:
  HttpResponse Extract(const HttpRequest& request) const;
  HttpResponse ExtractBatch(const HttpRequest& request) const;

  const WrapperRepository* repository_;
  ThreadPool* pool_;
};

}  // namespace ntw::serve

#endif  // NTW_SERVE_SERVICE_H_
