#ifndef NTW_SERVE_SERVER_H_
#define NTW_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "serve/http.h"

namespace ntw::serve {

/// Tuning knobs for HttpServer; the defaults are what tools/ntw_serve
/// ships with.
struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = kernel-assigned ephemeral port (see port()).
  HttpLimits limits;
  /// Independent reactor shards (event-loop threads), each with its own
  /// listener, connection table and timers — DESIGN.md §11. 1 keeps the
  /// classic single-loop server; ntw_serve defaults to the core count.
  int shards = 1;
  /// Testing/portability knob: skip SO_REUSEPORT and force the fallback
  /// accept relay (shard 0 owns the only listener and hands accepted
  /// sockets to the other shards round-robin).
  bool force_accept_relay = false;
  /// Requests dispatched but not yet answered; beyond this, new requests
  /// are rejected with 503 instead of queueing unboundedly. Divided
  /// evenly across shards (each shard enforces its share).
  int max_inflight = 128;
  /// Simultaneously open connections; beyond this, accepting pauses.
  /// Divided evenly across shards.
  int max_connections = 1024;
  /// Budget to receive one full request (slow-loris bound) — also the
  /// keep-alive idle timeout.
  int read_timeout_ms = 5000;
  /// Budget to write one full response once it is ready.
  int write_timeout_ms = 5000;
  /// On shutdown, how long to wait for in-flight work before force-close.
  int drain_grace_ms = 10000;
  /// Cadence of the tick hook (mtime-based hot reload); 0 disables it.
  /// The tick runs on shard 0 only — one mtime poller per process.
  int tick_interval_ms = 1000;
  /// Worker pool that runs the handler. nullptr (or a serial pool) means
  /// requests are handled inline on the event loop — the right choice
  /// when shards > 1 (the reactors themselves are the parallelism).
  ThreadPool* pool = nullptr;
};

/// A minimal dependency-free HTTP/1.1 daemon over POSIX sockets.
///
/// Architecture (DESIGN.md §11): N independent reactor shards, each an
/// event-loop thread that owns its own listener socket, self-wake pipe,
/// connection table and timers, and runs poll() over them. With
/// SO_REUSEPORT every shard listens on the same address and the kernel
/// spreads incoming connections; where that is unavailable (or
/// force_accept_relay is set) shard 0 owns the sole listener and relays
/// accepted sockets to the other shards round-robin through per-shard
/// handoff queues + wake pipes. A connection lives its whole life on one
/// shard, so the steady-state request path touches no cross-shard shared
/// state. Complete requests are handled inline on the shard (the normal
/// sharded configuration) or submitted to an optional worker pool whose
/// completions return through the owning shard's queue.
///
/// Production concerns handled here, not in handlers: per-request
/// read/write timeouts, max body size (413), bounded in-flight count
/// (503), keep-alive with pipelining, Expect: 100-continue, and graceful
/// drain (stop accepting, finish in-flight requests, then return).
///
/// Determinism: the handler is a pure function and responses carry no
/// timestamps, so the bytes a request receives do not depend on worker
/// scheduling or shard placement — any shard count replays
/// byte-identically to serial (tests/sharded_serve_test.cc).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  /// Builds shard-local handlers: called once per shard before the loops
  /// start, so each reactor can own private state (e.g. its own
  /// ExtractService with a per-shard buffer pool).
  using HandlerFactory = std::function<Handler(int shard)>;
  using Clock = std::chrono::steady_clock;

  /// One handler shared by every shard (it must be thread-safe when
  /// shards > 1 or a pool is set).
  HttpServer(ServerOptions options, Handler handler);
  /// One handler per shard, built by the factory.
  HttpServer(ServerOptions options, HandlerFactory factory);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Creates, binds and listens every shard's socket. Call before Run().
  Status Bind();

  /// The bound port (useful with options.port = 0). Valid after Bind().
  int port() const { return port_; }

  /// True when the shards share one listener through the accept relay
  /// instead of per-shard SO_REUSEPORT listeners. Valid after Bind().
  bool using_accept_relay() const { return relay_accept_; }

  /// The event loops; blocks until RequestShutdown() and the subsequent
  /// drain complete on every shard. Shard 0 runs on the calling thread,
  /// shards 1..N-1 on internal threads. Returns non-OK only on setup
  /// failures.
  Status Run();

  /// Initiates graceful shutdown: stop accepting, drain in-flight
  /// requests, make Run() return. Async-signal-safe (the SIGTERM/SIGINT
  /// handlers call this) and safe from any thread.
  void RequestShutdown();

  /// Schedules the reload hook to run on shard 0's loop (the SIGHUP
  /// handler calls this). Consumed by shard 0 only, so one SIGHUP runs
  /// the hook exactly once whatever the shard count. Async-signal-safe.
  void RequestReload();

  /// Called on shard 0's loop after RequestReload() — wrapper repository
  /// hot reload. Set before Run().
  void SetReloadHook(std::function<void()> hook) { reload_hook_ = std::move(hook); }

  /// Called on shard 0's loop every tick_interval_ms — mtime polling.
  /// Set before Run().
  void SetTickHook(std::function<void()> hook) { tick_hook_ = std::move(hook); }

 private:
  struct Conn {
    enum class State { kReading, kProcessing, kWriting };

    explicit Conn(const HttpLimits& limits) : parser(limits) {}

    int fd = -1;
    State state = State::kReading;
    RequestParser parser;
    std::string in;        // Received, not yet consumed.
    // Pending wire bytes. The inline path batches whole responses
    // (head + body, possibly several of them under pipelining) into
    // out_head and leaves out_body empty, so a pipelined window drains
    // with a single sendmsg. The worker-pool path keeps head and body in
    // their own buffers and gather-writes them (sendmsg with two iovecs)
    // so the body string is never copied. Both buffers are recycled
    // across keep-alive responses.
    std::string out_head;
    std::string out_body;
    size_t out_offset = 0;  // Progress across head + body combined.
    bool close_after_write = false;
    bool sent_continue = false;
    // Depth of the optimistic parse→handle→write chain since the last
    // poll-loop event on this connection: each inline response is flushed
    // eagerly (no poll round-trip), and this bounds the recursion a
    // deeply pipelined connection would otherwise drive.
    int eager_writes = 0;
    Clock::time_point deadline;
  };

  struct Completion {
    uint64_t conn_id = 0;
    int status = 0;
    std::string head;
    std::string body;
  };

  /// One reactor: everything below `handler` is owned and touched by this
  /// shard's loop thread only; the two mutex-guarded queues are the only
  /// cross-thread entry points (worker completions, relayed accepts).
  struct Shard {
    int id = 0;
    Handler handler;
    int listen_fd = -1;  // -1 on relay shards (id > 0 in relay mode).
    int wake_read_fd = -1;
    std::atomic<int> wake_write_fd{-1};

    // Loop-owned state.
    std::map<uint64_t, Conn> conns;
    uint64_t next_conn_id = 1;
    int inflight = 0;
    bool draining = false;
    Clock::time_point drain_deadline;
    Clock::time_point next_tick;

    // Worker → loop handoff.
    std::mutex completion_mu;
    std::vector<Completion> completions;

    // Relay handoff: accepted fds shard 0 assigned to this shard.
    std::mutex pending_mu;
    std::vector<int> pending_fds;
  };

  Status BindShardListener(Shard& shard, bool reuseport);
  void AdoptFd(Shard& shard, int fd, Clock::time_point now);
  void AcceptPending(Shard& shard, Clock::time_point now);
  void DrainPendingFds(Shard& shard, Clock::time_point now);
  void RelayFd(int fd);
  void HandleReadable(Shard& shard, uint64_t id, Conn& conn,
                      Clock::time_point now);
  void TryAdvance(Shard& shard, uint64_t id, Conn& conn,
                  Clock::time_point now);
  void Dispatch(Shard& shard, uint64_t id, Conn& conn, Clock::time_point now);
  void FlushPending(Shard& shard, uint64_t id, Conn& conn,
                    Clock::time_point now);
  void HandleWritable(Shard& shard, uint64_t id, Conn& conn,
                      Clock::time_point now);
  void StartWrite(Shard& shard, Conn& conn, HttpResponse response,
                  bool keep_alive, Clock::time_point now);
  void StartWriteParts(Conn& conn, std::string head, std::string body,
                       Clock::time_point now);
  void FinishWrite(Shard& shard, uint64_t id, Conn& conn,
                   Clock::time_point now);
  void ApplyCompletions(Shard& shard, Clock::time_point now);
  void ExpireDeadlines(Shard& shard, Clock::time_point now);
  void BeginDrain(Shard& shard, Clock::time_point now);
  void CloseConn(Shard& shard, uint64_t id);
  void WakeShard(Shard& shard);
  HttpResponse SafeHandle(Shard& shard, const HttpRequest& request) const;
  int PollTimeoutMs(const Shard& shard, Clock::time_point now) const;
  Status RunShard(Shard& shard);
  size_t ShardConnCap() const;
  int ShardInflightCap() const;

  ServerOptions options_;
  HandlerFactory factory_;
  std::function<void()> reload_hook_;
  std::function<void()> tick_hook_;

  int port_ = 0;
  bool relay_accept_ = false;
  int relay_next_ = 0;  // Shard 0 only: next round-robin target.
  /// Open connections across all shards. Only the relay-mode acceptor
  /// reads it (per-shard tables are loop-owned, so the global cap needs a
  /// shared count); updated on connection open/close, never per request.
  std::atomic<int> total_conns_{0};

  std::atomic<bool> shutdown_{false};
  std::atomic<bool> reload_{false};

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ntw::serve

#endif  // NTW_SERVE_SERVER_H_
