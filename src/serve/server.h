#ifndef NTW_SERVE_SERVER_H_
#define NTW_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "serve/http.h"

namespace ntw::serve {

/// Tuning knobs for HttpServer; the defaults are what tools/ntw_serve
/// ships with.
struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = kernel-assigned ephemeral port (see port()).
  HttpLimits limits;
  /// Requests dispatched but not yet answered; beyond this, new requests
  /// are rejected with 503 instead of queueing unboundedly.
  int max_inflight = 128;
  /// Simultaneously open connections; beyond this, accepting pauses.
  int max_connections = 1024;
  /// Budget to receive one full request (slow-loris bound) — also the
  /// keep-alive idle timeout.
  int read_timeout_ms = 5000;
  /// Budget to write one full response once it is ready.
  int write_timeout_ms = 5000;
  /// On shutdown, how long to wait for in-flight work before force-close.
  int drain_grace_ms = 10000;
  /// Cadence of the tick hook (mtime-based hot reload); 0 disables it.
  int tick_interval_ms = 1000;
  /// Worker pool that runs the handler. nullptr (or a serial pool) means
  /// requests are handled inline on the event loop.
  ThreadPool* pool = nullptr;
};

/// A minimal dependency-free HTTP/1.1 daemon over POSIX sockets.
///
/// Architecture: one event-loop thread owns every socket and runs
/// poll() over the listener, a self-wake pipe, and all connections; it
/// parses requests incrementally and hands complete ones to the thread
/// pool via Submit(). Workers only compute — they serialize the response
/// bytes, push them onto a completion queue and poke the wake pipe; the
/// event loop attaches the bytes to the connection and writes them out.
/// Production concerns handled here, not in handlers: per-request
/// read/write timeouts, max body size (413), bounded in-flight count
/// (503), keep-alive with pipelining, Expect: 100-continue, and graceful
/// drain (stop accepting, finish in-flight requests, then return).
///
/// Determinism: the handler is a pure function and responses carry no
/// timestamps, so the bytes a request receives do not depend on worker
/// scheduling — concurrent load replays byte-identically to serial.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  using Clock = std::chrono::steady_clock;

  HttpServer(ServerOptions options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Creates, binds and listens the server socket. Call before Run().
  Status Bind();

  /// The bound port (useful with options.port = 0). Valid after Bind().
  int port() const { return port_; }

  /// The event loop; blocks until RequestShutdown() and the subsequent
  /// drain complete. Returns non-OK only on setup failures.
  Status Run();

  /// Initiates graceful shutdown: stop accepting, drain in-flight
  /// requests, make Run() return. Async-signal-safe (the SIGTERM/SIGINT
  /// handlers call this) and safe from any thread.
  void RequestShutdown();

  /// Schedules the reload hook to run on the event loop (the SIGHUP
  /// handler calls this). Async-signal-safe.
  void RequestReload();

  /// Called on the event loop after RequestReload() — wrapper repository
  /// hot reload. Set before Run().
  void SetReloadHook(std::function<void()> hook) { reload_hook_ = std::move(hook); }

  /// Called on the event loop every tick_interval_ms — mtime polling.
  /// Set before Run().
  void SetTickHook(std::function<void()> hook) { tick_hook_ = std::move(hook); }

 private:
  struct Conn {
    enum class State { kReading, kProcessing, kWriting };

    explicit Conn(const HttpLimits& limits) : parser(limits) {}

    int fd = -1;
    State state = State::kReading;
    RequestParser parser;
    std::string in;        // Received, not yet consumed.
    // Pending response, written gather-style (sendmsg with two iovecs) so
    // the body string is never copied into a combined wire buffer. The
    // head buffer is recycled across keep-alive responses; the body is
    // moved in from the handler.
    std::string out_head;
    std::string out_body;
    size_t out_offset = 0;  // Progress across head + body combined.
    bool close_after_write = false;
    bool sent_continue = false;
    Clock::time_point deadline;
  };

  struct Completion {
    uint64_t conn_id = 0;
    int status = 0;
    std::string head;
    std::string body;
  };

  void AcceptPending(Clock::time_point now);
  void HandleReadable(uint64_t id, Conn& conn, Clock::time_point now);
  void TryAdvance(uint64_t id, Conn& conn, Clock::time_point now);
  void Dispatch(uint64_t id, Conn& conn, Clock::time_point now);
  void HandleWritable(uint64_t id, Conn& conn, Clock::time_point now);
  void StartWrite(Conn& conn, HttpResponse response, bool keep_alive,
                  Clock::time_point now);
  void StartWriteParts(Conn& conn, std::string head, std::string body,
                       Clock::time_point now);
  void FinishWrite(uint64_t id, Conn& conn, Clock::time_point now);
  void ApplyCompletions(Clock::time_point now);
  void ExpireDeadlines(Clock::time_point now);
  void BeginDrain(Clock::time_point now);
  void CloseConn(uint64_t id);
  void WakeLoop();
  HttpResponse SafeHandle(const HttpRequest& request) const;
  int PollTimeoutMs(Clock::time_point now) const;

  ServerOptions options_;
  Handler handler_;
  std::function<void()> reload_hook_;
  std::function<void()> tick_hook_;

  int listen_fd_ = -1;
  int port_ = 0;
  int wake_read_fd_ = -1;
  std::atomic<int> wake_write_fd_{-1};

  std::atomic<bool> shutdown_{false};
  std::atomic<bool> reload_{false};

  // Event-loop-owned state (no locking needed).
  std::map<uint64_t, Conn> conns_;
  uint64_t next_conn_id_ = 1;
  int inflight_ = 0;
  bool draining_ = false;
  Clock::time_point drain_deadline_;
  Clock::time_point next_tick_;

  // Worker → event loop handoff.
  std::mutex completion_mu_;
  std::vector<Completion> completions_;
};

}  // namespace ntw::serve

#endif  // NTW_SERVE_SERVER_H_
