#ifndef NTW_SERVE_HTTP_H_
#define NTW_SERVE_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ntw::serve {

/// One parsed HTTP/1.1 request. Header names are lowercased; the query
/// string is split and percent-decoded. `keep_alive` reflects the
/// HTTP/1.1 default adjusted by a `Connection: close` header (HTTP/1.0
/// requests default to close).
///
/// Headers and query parameters are flat (name, value) lists — both hold a
/// handful of entries, so a linear scan beats a node-based map and the
/// parser can reuse the slots' string capacity across keep-alive requests.
/// Names are unique (a repeated name overwrites the earlier value, the same
/// last-wins semantics a map assignment had).
struct HttpRequest {
  std::string method;  // As sent, e.g. "GET" / "POST".
  std::string target;  // Raw request target, e.g. "/extract?site=x".
  std::string path;    // Decoded path before '?'.
  std::vector<std::pair<std::string, std::string>> query;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  /// Query parameter value, or "" when absent.
  std::string QueryParam(std::string_view name) const;

  /// Header value by lowercased name, or nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// A response under construction. Serialization adds Content-Length and
/// Connection headers; no Date header is emitted so that responses are
/// byte-deterministic functions of the request (the serve tests replay
/// concurrent traffic against a serial baseline).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Canonical reason phrase for the status codes the server emits.
const char* ReasonPhrase(int status);

/// A JSON error body ({"schema":"ntw-serve-error","status":...,
/// "error":...}) with the matching HTTP status — shared by the endpoint
/// logic and the server's transport-level rejections (413/431/503/...).
HttpResponse ErrorResponse(int status, const std::string& message);

/// Serializes status line + headers + body into raw wire bytes.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Appends just the status line + headers (through the final CRLF CRLF)
/// to `*out` without clearing it — the server batches pipelined responses
/// by serializing each one onto the connection's wire buffer, and reuses
/// that buffer's capacity across keep-alive responses. The body is either
/// appended after the head (batched inline responses) or written
/// separately (gathered writev-style) from its own buffer.
void SerializeResponseHead(const HttpResponse& response, bool keep_alive,
                           std::string* out);

/// Percent-decodes a URL component ('+' becomes a space; malformed %
/// escapes are kept literally — the server is lenient on input it only
/// uses for repository lookups that will simply miss).
std::string UrlDecode(std::string_view s);

/// Appends the decoded form to `*out` without clearing it; UrlDecode minus
/// the allocation, so the parser can decode into reused buffers.
void UrlDecodeTo(std::string_view s, std::string* out);

/// Size limits enforced while parsing (see ServerOptions).
struct HttpLimits {
  size_t max_header_bytes = 64 * 1024;
  size_t max_body_bytes = 8 * 1024 * 1024;
};

/// Incremental HTTP/1.1 request parser: feed the connection's receive
/// buffer, get back the parse phase. Consumed bytes are tracked by an
/// internal offset into the buffer and compacted lazily, so a deeply
/// pipelined connection never pays a front-erase memmove per request;
/// follow-up requests survive in place. The same buffer must be passed
/// to every Consume call on a parser (one parser per connection). On
/// kError the connection should answer with `error_status()` and close.
class RequestParser {
 public:
  explicit RequestParser(const HttpLimits& limits) : limits_(limits) {}

  enum class Phase {
    kNeedMore,  // Waiting for more bytes.
    kComplete,  // A full request is available via TakeRequest().
    kError,     // Malformed / over-limit; see error_status().
  };

  /// Consumes as much of `in` as possible and advances the state machine.
  Phase Consume(std::string* in);

  /// Moves the parsed request out; only valid after kComplete.
  HttpRequest TakeRequest() { return std::move(request_); }

  /// The parsed request in place; only valid after kComplete. The inline
  /// serving path reads it here and then Reset()s, so the request's buffers
  /// (body, header slots) keep their capacity from request to request.
  const HttpRequest& request() const { return request_; }

  /// True once the header block has been fully parsed.
  bool headers_complete() const { return headers_complete_; }

  /// True when the client sent `Expect: 100-continue` (the server should
  /// emit an interim 100 response before the body arrives).
  bool expects_continue() const { return expects_continue_; }

  /// True once any byte of the current request has been seen — an idle
  /// keep-alive connection (false) can be closed silently on timeout or
  /// shutdown, a mid-request one (true) is a slow-loris timeout.
  bool has_partial_data() const { return saw_bytes_; }

  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// Resets for the next request on the same connection.
  void Reset();

 private:
  Phase Fail(int status, std::string message);
  Phase ParseHeaderBlock(std::string_view block);

  HttpLimits limits_;
  HttpRequest request_;
  bool headers_complete_ = false;
  bool expects_continue_ = false;
  bool saw_bytes_ = false;
  size_t content_length_ = 0;
  // Consumed prefix of the caller's buffer. Survives Reset() — it is
  // connection state, not request state.
  size_t offset_ = 0;
  int error_status_ = 0;
  std::string error_message_;
  Phase phase_ = Phase::kNeedMore;
};

}  // namespace ntw::serve

#endif  // NTW_SERVE_HTTP_H_
