#ifndef NTW_SERVE_WRAPPER_REPOSITORY_H_
#define NTW_SERVE_WRAPPER_REPOSITORY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "common/result.h"
#include "core/compiled_wrapper.h"
#include "core/fused_matcher.h"
#include "core/wrapper.h"
#include "core/wrapper_pack.h"
#include "serve/drift.h"

namespace ntw::serve {

/// The durable home of per-(site, attribute) drift detector states,
/// shared by the repository and every snapshot so that lazily
/// materialized pack entries attach the same detector a prior snapshot
/// used (detectors must survive snapshot swaps while the wrapper record
/// is unchanged). Thread-safe.
class DriftRegistry {
 public:
  void Configure(const DriftConfig& config);
  bool enabled() const;

  /// The detector for (site, attribute): the existing one when its
  /// baseline record matches `record`, otherwise a fresh re-baselined
  /// one. Null when drift detection is off.
  std::shared_ptr<DriftState> GetOrCreate(const std::string& site,
                                          const std::string& attribute,
                                          const std::string& record);

  /// Drops the pair's detector so the next GetOrCreate re-baselines
  /// (used when a repair replaces the wrapper).
  void Drop(const std::string& site, const std::string& attribute);

  /// Erases detectors whose key satisfies `dead` — directory-backend
  /// reloads prune vanished wrappers. (Pack backends never prune: the
  /// registry only ever holds pairs that actually served traffic.)
  void PruneIf(
      const std::function<bool(const std::pair<std::string, std::string>&)>&
          dead);

 private:
  mutable std::mutex mu_;
  bool enabled_ = false;
  DriftConfig config_;
  std::map<std::pair<std::string, std::string>, std::shared_ptr<DriftState>>
      states_;
};

/// A repository of learned wrappers, keyed by (site, attribute) — the
/// paper's deployment unit: learn once per site from noisy annotations,
/// then re-apply to every freshly crawled page of that site. Two
/// backends share one read API:
///
///   - Directory: `<root>/<site>/<attribute>.wrapper` record files,
///     eagerly parsed + compiled into the snapshot at Load() (reloads
///     are incremental: files whose (mtime, size) are unchanged reuse
///     the previous snapshot's parsed entry).
///   - Pack (DESIGN.md §15): a single mmap'd wrapper-pack file
///     (`--pack`). Load() is O(mmap); cold sites page in on demand and
///     are lazily finalized into a per-snapshot compiled-plan cache on
///     first hit. The directory root, when also given, acts as an
///     eagerly-loaded *overlay delta* on top of the mapped generation —
///     `PublishWrapper` self-heal repairs land there, shadowing the
///     pack entry of the same (site, attribute).
///
/// Concurrency model (DESIGN.md §11): the request path takes Pin() — a
/// wait-free epoch pin plus one atomic pointer load, no lock — and uses
/// the immutable `Snapshot` it references for the whole request, so a
/// concurrent reload can never show a request a half-updated repository.
/// Load() builds a complete new snapshot entirely off the data path,
/// publishes it with a single atomic store, and hands the old snapshot
/// to an EpochDomain: it is freed only once every reader pinned before
/// the publish has finished. With a pack backend the swap publishes
/// *pack generations*: each snapshot owns a shared handle on its
/// mapping, so a reload to a rebuilt pack file leaves in-flight readers
/// on the old mapping until their pins release. A wrapper file (or pack)
/// that fails to parse is skipped and reported — one corrupt record must
/// not take down serving for every other site.
class WrapperRepository {
 public:
  struct Options {
    /// Directory backend root — or, with `pack_path`, the overlay
    /// directory for hot publishes. May be empty in pack-only mode.
    std::string root;
    /// Wrapper-pack file (empty = pure directory backend). If the pack
    /// fails to open, Load() falls back to the directory backend with a
    /// logged warning.
    std::string pack_path;
  };

  struct Entry {
    core::WrapperPtr wrapper;
    std::string record;  // The serialized form, for logs / responses.
    /// Executable plan compiled at load time (XPath step program over
    /// interned ids, BMH skip tables for LR/HLRT). nullptr when the
    /// wrapper kind has no compiled form — the service then falls back to
    /// the interpreted wrapper.
    std::shared_ptr<const core::CompiledWrapper> compiled;
    /// Serialized members of every /extract response up to (and excluding)
    /// "values" — schema header, site, attribute, wrapper record and
    /// repository version are all constant for an entry within a snapshot,
    /// so they are escaped once at load time and spliced into each
    /// response with JsonWriter::RawMembers instead of re-serialized per
    /// request.
    std::string response_prefix;
    /// Per-(site, attribute) drift detector (DESIGN.md §13). Shared with
    /// the repository's drift registry so it survives snapshot swaps
    /// while the record is unchanged; null when self-healing is off.
    std::shared_ptr<DriftState> drift;
  };

  class Snapshot {
   public:
    Snapshot() = default;
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    /// (site, attribute) → entry. Directory backend: every wrapper on
    /// disk. Pack backend: only the overlay delta (hot publishes +
    /// overlay directory) — pack entries come through Find().
    std::map<std::pair<std::string, std::string>, Entry> wrappers;
    /// Load failures, one "path: status" line per bad file.
    std::vector<std::string> errors;
    /// Monotonic generation number; bumped by every successful Load().
    uint64_t version = 0;
    /// The mapped pack generation backing this snapshot; null for the
    /// directory backend. Shared: an old snapshot keeps its mapping
    /// alive for pinned readers after a reload swaps in a new one.
    std::shared_ptr<const core::WrapperPack> pack;

    /// Overlay first, then the pack: a pack entry is lazily finalized
    /// (record copied, plan built from the fixed layout, response
    /// prefix + drift state attached) into this snapshot's cache on
    /// first hit; later hits return the cached entry. The pointer stays
    /// valid for the snapshot's lifetime (hold a pin). Null on a true
    /// miss or an unparseable pack record.
    const Entry* Find(const std::string& site,
                      const std::string& attribute) const;

    /// The site's fused multi-attribute extractor (one page scan for
    /// all dom_free attributes). Pack sites use the pack's stored
    /// automaton; overlay/directory sites build one in memory on first
    /// use. Null when the site is unknown or has no dom_free plans —
    /// callers fall back to per-attribute extraction.
    std::shared_ptr<const core::FusedSiteExtractor> FindFused(
        const std::string& site) const;

    /// Every attribute of a site, ascending, merging the pack directory
    /// with the overlay (overlay shadows same-name pack attributes).
    /// Pack entries are materialized through the same cache as Find().
    std::vector<std::pair<std::string, const Entry*>> MaterializeSite(
        const std::string& site) const;

    /// The lazily materialized pack entries this snapshot has served so
    /// far (for /driftz, which must see detectors of pack-backed pairs).
    std::vector<std::pair<std::pair<std::string, std::string>, const Entry*>>
    CachedEntries() const;

    /// Overlay + pack entry count (the repository-size gauge).
    size_t TotalWrapperCount() const;

   private:
    friend class WrapperRepository;

    const Entry* MaterializeLocked(const std::string& site,
                                   const std::string& attribute) const;

    std::shared_ptr<DriftRegistry> drift_registry_;
    /// Guards the lazy caches; the rest of the snapshot is immutable
    /// after publish.
    mutable std::mutex cache_mu_;
    mutable std::map<std::pair<std::string, std::string>,
                     std::unique_ptr<const Entry>>
        cache_;
    /// Site → fused extractor. Caches nullptr for sites that exist but
    /// have no dom_free plans (a cheap "don't retry" marker); unknown
    /// sites are never cached.
    mutable std::map<std::string,
                     std::shared_ptr<const core::FusedSiteExtractor>>
        fused_cache_;
  };

  explicit WrapperRepository(std::string root)
      : WrapperRepository(Options{std::move(root), std::string()}) {}
  explicit WrapperRepository(Options options);

  /// The request path's handle on the published snapshot: an epoch pin
  /// (wait-free — one slot store plus an epoch load, re-validated only
  /// when a reload races) and a raw pointer. No lock, no refcount
  /// contention. Hold it for the whole request; the snapshot cannot be
  /// reclaimed while any pin taken before its retirement is live.
  class PinnedSnapshot {
   public:
    const Snapshot* operator->() const { return snapshot_; }
    const Snapshot& operator*() const { return *snapshot_; }
    const Snapshot* get() const { return snapshot_; }

    PinnedSnapshot(const PinnedSnapshot&) = delete;
    PinnedSnapshot& operator=(const PinnedSnapshot&) = delete;

   private:
    friend class WrapperRepository;
    PinnedSnapshot(EpochDomain* domain, const std::atomic<const Snapshot*>& p)
        : pin_(domain),
          snapshot_(p.load(std::memory_order_seq_cst)) {}
    EpochDomain::Pin pin_;  // Must outlive every dereference of snapshot_.
    const Snapshot* snapshot_;
  };

  /// Builds and atomically publishes a new snapshot. Directory backend:
  /// scans the tree (incrementally — unchanged files reuse the previous
  /// snapshot's parsed entries); NotFound when the root directory is
  /// missing (the previous snapshot, if any, stays published). Pack
  /// backend: (re)opens the pack — O(mmap), nothing parsed — plus an
  /// eager scan of the overlay directory; a pack that fails to open
  /// logs a warning and falls back to the directory backend. Per-file
  /// failures never fail the load. The replaced snapshot is retired to
  /// the epoch domain and freed once all in-flight readers have moved
  /// past it.
  Status Load();

  /// Enables drift detection: every entry of subsequent snapshots (and
  /// every lazily materialized pack entry) gets a DriftState, carried
  /// across reloads while its serialized record is unchanged and
  /// re-baselined when the wrapper (or config) changes. Call before the
  /// first Load(); off by default.
  void SetDriftConfig(const DriftConfig& config);

  /// Hot-publishes one repaired wrapper (the re-induction worker's exit
  /// path): persists it atomically to `<root>/<site>/<attribute>.wrapper`
  /// (write-temp + rename, so restarts keep the repair and a racing
  /// Load() never reads a torn file), then publishes a new snapshot with
  /// the entry swapped in — same epoch retirement discipline as Load(),
  /// so in-flight readers keep extracting with the incumbent until their
  /// pins release. With a pack backend the entry lands in the overlay
  /// map, shadowing the mapped generation's record; in pack-only mode
  /// (empty root) the publish is in-memory only. The pair's DriftState
  /// is replaced with a fresh one baselined on the repaired wrapper.
  Status PublishWrapper(const std::string& site, const std::string& attribute,
                        const core::WrapperPtr& wrapper);

  /// One self-heal publish, scored: what the incumbent was worth and what
  /// the repair scored on the same retained pages under the same ranker —
  /// the before/after quality evidence for every wrapper the system
  /// replaced on its own. Exposed by GET /driftz ("repairs").
  struct RepairRecord {
    int64_t sequence = 0;  // Monotonic per repository, 1-based.
    std::string site;
    std::string attribute;
    double incumbent_score = 0.0;
    double repair_score = 0.0;
    /// Dictionary labels the re-induction learned from.
    int64_t labels = 0;
    /// Snapshot version the repair was published as.
    uint64_t published_version = 0;
  };

  /// Appends one publish to the repair quality ledger: in memory (bounded
  /// to the most recent kLedgerCapacity entries) and durably to
  /// `<root>/.repairs.tsv` (append-only TSV, reloaded on construction so
  /// the ledger survives restarts). `sequence` and `published_version`
  /// are filled in by the repository.
  void RecordRepair(RepairRecord record);

  /// The in-memory ledger tail, oldest first.
  std::vector<RepairRecord> repair_ledger() const;

  /// Wait-free read-side access for the request path.
  PinnedSnapshot Pin() const { return PinnedSnapshot(&epochs_, current_); }

  /// The currently published snapshot as an owning handle; never null
  /// after a successful Load(), empty version-0 snapshot before. Takes a
  /// mutex — tools and tests only; the request path uses Pin().
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Opportunistically frees retired snapshots whose readers have all
  /// quiesced. One relaxed load when nothing is retired — cheap enough
  /// for event loops to call every iteration. Never blocks.
  void ReclaimRetired() const;

  /// Cheap mtime/size scan of the tree (and the pack file). True when
  /// the on-disk state differs from what the published snapshot was
  /// loaded from — the daemon's tick handler calls this and triggers
  /// Load() on change.
  bool PollForChanges() const;

  const std::string& root() const { return root_; }
  const std::string& pack_path() const { return pack_path_; }

 private:
  static constexpr size_t kLedgerCapacity = 128;

  uint64_t DiskFingerprint() const;
  /// Reads `<root>/.repairs.tsv` into ledger_ once (under mu_).
  void EnsureLedgerLoadedLocked() const;
  void AttachDriftStates(Snapshot* next);
  std::shared_ptr<Snapshot> NewSnapshot() const;
  /// Swaps `next` in as the published snapshot (under mu_) and hands the
  /// replaced one to the caller for retirement.
  void SwapSnapshotLocked(std::shared_ptr<Snapshot> next, uint64_t fingerprint,
                          std::shared_ptr<const Snapshot>* old);
  void RetireSnapshot(std::shared_ptr<const Snapshot> old) const;

  std::string root_;
  std::string pack_path_;
  mutable std::mutex mu_;
  /// Owns the published snapshot (compat API + keeps it alive across the
  /// publish). The hot path reads `current_`, which always points at the
  /// same object `snapshot_` owns.
  std::shared_ptr<const Snapshot> snapshot_;
  std::atomic<const Snapshot*> current_{nullptr};
  mutable EpochDomain epochs_;
  uint64_t loaded_fingerprint_ = 0;
  /// Per-file (mtime, size) of the last successful directory scan — the
  /// incremental-reload memo (under mu_).
  std::map<std::string, std::pair<uint64_t, uint64_t>> file_meta_;
  /// (mtime, size) of the currently mapped pack file, so an unchanged
  /// pack is not remapped on every reload (under mu_).
  std::pair<uint64_t, uint64_t> pack_meta_{0, 0};
  /// Detector states, shared with every snapshot (its own lock).
  std::shared_ptr<DriftRegistry> drift_registry_;
  /// Repair quality ledger (under mu_): most recent kLedgerCapacity
  /// publishes, oldest first; ledger_sequence_ counts all of them ever.
  /// Mutable: lazily loaded from disk on first (possibly const) access.
  mutable std::vector<RepairRecord> ledger_;
  mutable int64_t ledger_sequence_ = 0;
  mutable bool ledger_loaded_ = false;
};

}  // namespace ntw::serve

#endif  // NTW_SERVE_WRAPPER_REPOSITORY_H_
