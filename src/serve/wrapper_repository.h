#ifndef NTW_SERVE_WRAPPER_REPOSITORY_H_
#define NTW_SERVE_WRAPPER_REPOSITORY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/compiled_wrapper.h"
#include "core/wrapper.h"

namespace ntw::serve {

/// A directory of learned wrappers, keyed by (site, attribute) — the
/// paper's deployment unit: learn once per site from noisy annotations,
/// then re-apply to every freshly crawled page of that site. On-disk
/// layout (records are `core::SerializeWrapper` lines):
///
///   <root>/<site>/<attribute>.wrapper
///
/// Concurrency model: readers grab an immutable `Snapshot` shared_ptr and
/// use it for the whole request, so a concurrent reload can never show a
/// request a half-updated repository. Load() builds a complete new
/// snapshot off to the side and swaps the pointer under a mutex (writers
/// should publish individual files with write-temp-then-rename; whole-
/// directory consistency comes from the snapshot swap). A wrapper file
/// that fails to parse is skipped and reported — one corrupt record must
/// not take down serving for every other site.
class WrapperRepository {
 public:
  struct Entry {
    core::WrapperPtr wrapper;
    std::string record;  // The serialized form, for logs / responses.
    /// Executable plan compiled at load time (XPath step program over
    /// interned ids, BMH skip tables for LR/HLRT). nullptr when the
    /// wrapper kind has no compiled form — the service then falls back to
    /// the interpreted wrapper.
    std::shared_ptr<const core::CompiledWrapper> compiled;
    /// Serialized members of every /extract response up to (and excluding)
    /// "values" — schema header, site, attribute, wrapper record and
    /// repository version are all constant for an entry within a snapshot,
    /// so they are escaped once at load time and spliced into each
    /// response with JsonWriter::RawMembers instead of re-serialized per
    /// request.
    std::string response_prefix;
  };

  struct Snapshot {
    /// (site, attribute) → entry, deterministically ordered.
    std::map<std::pair<std::string, std::string>, Entry> wrappers;
    /// Load failures, one "path: status" line per bad file.
    std::vector<std::string> errors;
    /// Monotonic generation number; bumped by every successful Load().
    uint64_t version = 0;

    const Entry* Find(const std::string& site,
                      const std::string& attribute) const;
  };

  explicit WrapperRepository(std::string root) : root_(std::move(root)) {}

  /// Scans the directory tree and atomically publishes a new snapshot.
  /// NotFound when the root directory is missing (the previous snapshot,
  /// if any, stays published). Per-file failures do not fail the load.
  Status Load();

  /// The currently published snapshot; never null after a successful
  /// Load(), empty version-0 snapshot before.
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Cheap mtime/size scan of the tree. True when the on-disk state
  /// differs from what the published snapshot was loaded from — the
  /// daemon's tick handler calls this and triggers Load() on change.
  bool PollForChanges() const;

  const std::string& root() const { return root_; }

 private:
  uint64_t DiskFingerprint() const;

  std::string root_;
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> snapshot_ =
      std::make_shared<const Snapshot>();
  uint64_t loaded_fingerprint_ = 0;
};

}  // namespace ntw::serve

#endif  // NTW_SERVE_WRAPPER_REPOSITORY_H_
