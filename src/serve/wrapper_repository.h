#ifndef NTW_SERVE_WRAPPER_REPOSITORY_H_
#define NTW_SERVE_WRAPPER_REPOSITORY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "common/result.h"
#include "core/compiled_wrapper.h"
#include "core/wrapper.h"
#include "serve/drift.h"

namespace ntw::serve {

/// A directory of learned wrappers, keyed by (site, attribute) — the
/// paper's deployment unit: learn once per site from noisy annotations,
/// then re-apply to every freshly crawled page of that site. On-disk
/// layout (records are `core::SerializeWrapper` lines):
///
///   <root>/<site>/<attribute>.wrapper
///
/// Concurrency model (DESIGN.md §11): the request path takes Pin() — a
/// wait-free epoch pin plus one atomic pointer load, no lock — and uses
/// the immutable `Snapshot` it references for the whole request, so a
/// concurrent reload can never show a request a half-updated repository.
/// Load() builds a complete new snapshot (wrappers parsed, plans
/// compiled, response prefixes serialized) entirely off the data path,
/// publishes it with a single atomic store, and hands the old snapshot
/// to an EpochDomain: it is freed only once every reader pinned before
/// the publish has finished — reload never stalls in-flight extraction,
/// and a stalled reader only defers the free, never blocks serving.
/// (Writers should publish individual files with write-temp-then-rename;
/// whole-directory consistency comes from the snapshot swap.) A wrapper
/// file that fails to parse is skipped and reported — one corrupt record
/// must not take down serving for every other site.
class WrapperRepository {
 public:
  struct Entry {
    core::WrapperPtr wrapper;
    std::string record;  // The serialized form, for logs / responses.
    /// Executable plan compiled at load time (XPath step program over
    /// interned ids, BMH skip tables for LR/HLRT). nullptr when the
    /// wrapper kind has no compiled form — the service then falls back to
    /// the interpreted wrapper.
    std::shared_ptr<const core::CompiledWrapper> compiled;
    /// Serialized members of every /extract response up to (and excluding)
    /// "values" — schema header, site, attribute, wrapper record and
    /// repository version are all constant for an entry within a snapshot,
    /// so they are escaped once at load time and spliced into each
    /// response with JsonWriter::RawMembers instead of re-serialized per
    /// request.
    std::string response_prefix;
    /// Per-(site, attribute) drift detector (DESIGN.md §13). Shared with
    /// the repository's drift registry so it survives snapshot swaps
    /// while the record is unchanged; null when self-healing is off.
    std::shared_ptr<DriftState> drift;
  };

  struct Snapshot {
    /// (site, attribute) → entry, deterministically ordered.
    std::map<std::pair<std::string, std::string>, Entry> wrappers;
    /// Load failures, one "path: status" line per bad file.
    std::vector<std::string> errors;
    /// Monotonic generation number; bumped by every successful Load().
    uint64_t version = 0;

    const Entry* Find(const std::string& site,
                      const std::string& attribute) const;
  };

  explicit WrapperRepository(std::string root) : root_(std::move(root)) {
    current_.store(snapshot_.get(), std::memory_order_seq_cst);
  }

  /// The request path's handle on the published snapshot: an epoch pin
  /// (wait-free — one slot store plus an epoch load, re-validated only
  /// when a reload races) and a raw pointer. No lock, no refcount
  /// contention. Hold it for the whole request; the snapshot cannot be
  /// reclaimed while any pin taken before its retirement is live.
  class PinnedSnapshot {
   public:
    const Snapshot* operator->() const { return snapshot_; }
    const Snapshot& operator*() const { return *snapshot_; }
    const Snapshot* get() const { return snapshot_; }

    PinnedSnapshot(const PinnedSnapshot&) = delete;
    PinnedSnapshot& operator=(const PinnedSnapshot&) = delete;

   private:
    friend class WrapperRepository;
    PinnedSnapshot(EpochDomain* domain, const std::atomic<const Snapshot*>& p)
        : pin_(domain),
          snapshot_(p.load(std::memory_order_seq_cst)) {}
    EpochDomain::Pin pin_;  // Must outlive every dereference of snapshot_.
    const Snapshot* snapshot_;
  };

  /// Scans the directory tree and atomically publishes a new snapshot.
  /// NotFound when the root directory is missing (the previous snapshot,
  /// if any, stays published). Per-file failures do not fail the load.
  /// The replaced snapshot is retired to the epoch domain and freed once
  /// all in-flight readers have moved past it.
  Status Load();

  /// Enables drift detection: every entry of subsequent snapshots gets a
  /// DriftState, carried across reloads while its serialized record is
  /// unchanged and re-baselined when the wrapper (or config) changes.
  /// Call before the first Load(); off by default.
  void SetDriftConfig(const DriftConfig& config);

  /// Hot-publishes one repaired wrapper (the re-induction worker's exit
  /// path): persists it atomically to `<root>/<site>/<attribute>.wrapper`
  /// (write-temp + rename, so restarts keep the repair and a racing
  /// Load() never reads a torn file), then publishes a new snapshot with
  /// the entry swapped in — same epoch retirement discipline as Load(),
  /// so in-flight readers keep extracting with the incumbent until their
  /// pins release. The pair's DriftState is replaced with a fresh one
  /// baselined on the repaired wrapper.
  Status PublishWrapper(const std::string& site, const std::string& attribute,
                        const core::WrapperPtr& wrapper);

  /// One self-heal publish, scored: what the incumbent was worth and what
  /// the repair scored on the same retained pages under the same ranker —
  /// the before/after quality evidence for every wrapper the system
  /// replaced on its own. Exposed by GET /driftz ("repairs").
  struct RepairRecord {
    int64_t sequence = 0;  // Monotonic per repository, 1-based.
    std::string site;
    std::string attribute;
    double incumbent_score = 0.0;
    double repair_score = 0.0;
    /// Dictionary labels the re-induction learned from.
    int64_t labels = 0;
    /// Snapshot version the repair was published as.
    uint64_t published_version = 0;
  };

  /// Appends one publish to the repair quality ledger: in memory (bounded
  /// to the most recent kLedgerCapacity entries) and durably to
  /// `<root>/.repairs.tsv` (append-only TSV, reloaded on construction so
  /// the ledger survives restarts). `sequence` and `published_version`
  /// are filled in by the repository.
  void RecordRepair(RepairRecord record);

  /// The in-memory ledger tail, oldest first.
  std::vector<RepairRecord> repair_ledger() const;

  /// Wait-free read-side access for the request path.
  PinnedSnapshot Pin() const { return PinnedSnapshot(&epochs_, current_); }

  /// The currently published snapshot as an owning handle; never null
  /// after a successful Load(), empty version-0 snapshot before. Takes a
  /// mutex — tools and tests only; the request path uses Pin().
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Opportunistically frees retired snapshots whose readers have all
  /// quiesced. One relaxed load when nothing is retired — cheap enough
  /// for event loops to call every iteration. Never blocks.
  void ReclaimRetired() const;

  /// Cheap mtime/size scan of the tree. True when the on-disk state
  /// differs from what the published snapshot was loaded from — the
  /// daemon's tick handler calls this and triggers Load() on change.
  bool PollForChanges() const;

  const std::string& root() const { return root_; }

 private:
  static constexpr size_t kLedgerCapacity = 128;

  uint64_t DiskFingerprint() const;
  /// Reads `<root>/.repairs.tsv` into ledger_ once (under mu_).
  void EnsureLedgerLoadedLocked() const;
  void AttachDriftStatesLocked(Snapshot* next);
  /// Swaps `next` in as the published snapshot (under mu_) and hands the
  /// replaced one to the caller for retirement.
  void SwapSnapshotLocked(std::shared_ptr<Snapshot> next, uint64_t fingerprint,
                          std::shared_ptr<const Snapshot>* old);
  void RetireSnapshot(std::shared_ptr<const Snapshot> old) const;

  std::string root_;
  mutable std::mutex mu_;
  /// Owns the published snapshot (compat API + keeps it alive across the
  /// publish). The hot path reads `current_`, which always points at the
  /// same object `snapshot_` owns.
  std::shared_ptr<const Snapshot> snapshot_ =
      std::make_shared<const Snapshot>();
  std::atomic<const Snapshot*> current_{nullptr};
  mutable EpochDomain epochs_;
  uint64_t loaded_fingerprint_ = 0;
  /// Drift registry (under mu_): the durable home of per-pair detector
  /// states, re-attached to every new snapshot's entries.
  bool drift_enabled_ = false;
  DriftConfig drift_config_;
  std::map<std::pair<std::string, std::string>, std::shared_ptr<DriftState>>
      drift_states_;
  /// Repair quality ledger (under mu_): most recent kLedgerCapacity
  /// publishes, oldest first; ledger_sequence_ counts all of them ever.
  /// Mutable: lazily loaded from disk on first (possibly const) access.
  mutable std::vector<RepairRecord> ledger_;
  mutable int64_t ledger_sequence_ = 0;
  mutable bool ledger_loaded_ = false;
};

}  // namespace ntw::serve

#endif  // NTW_SERVE_WRAPPER_REPOSITORY_H_
