#include "serve/ndjson.h"

#include <cstdint>

namespace ntw::serve {

namespace {

void SkipSpace(std::string_view s, size_t* pos) {
  while (*pos < s.size() &&
         (s[*pos] == ' ' || s[*pos] == '\t' || s[*pos] == '\r')) {
    ++*pos;
  }
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void AppendUtf8(uint32_t code_point, std::string* out) {
  if (code_point < 0x80) {
    out->push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

/// Parses one \uXXXX unit already past the "\u"; advances *pos past the
/// four hex digits. Returns the code unit or -1 on malformed input.
int32_t ParseHex4(std::string_view s, size_t* pos) {
  if (*pos + 4 > s.size()) return -1;
  int32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    int digit = HexValue(s[*pos + i]);
    if (digit < 0) return -1;
    value = value * 16 + digit;
  }
  *pos += 4;
  return value;
}

Result<std::string> ParseString(std::string_view s, size_t* pos) {
  if (*pos >= s.size() || s[*pos] != '"') {
    return Status::ParseError("expected '\"' at offset " +
                              std::to_string(*pos));
  }
  ++*pos;
  std::string out;
  while (*pos < s.size()) {
    char c = s[*pos];
    if (c == '"') {
      ++*pos;
      return out;
    }
    if (static_cast<unsigned char>(c) < 0x20) {
      return Status::ParseError("raw control character in string");
    }
    if (c != '\\') {
      out.push_back(c);
      ++*pos;
      continue;
    }
    if (*pos + 1 >= s.size()) break;
    char esc = s[*pos + 1];
    *pos += 2;
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        int32_t unit = ParseHex4(s, pos);
        if (unit < 0) return Status::ParseError("malformed \\u escape");
        uint32_t code_point = static_cast<uint32_t>(unit);
        if (unit >= 0xD800 && unit <= 0xDBFF) {
          // High surrogate: a low surrogate must follow.
          if (*pos + 2 > s.size() || s[*pos] != '\\' || s[*pos + 1] != 'u') {
            return Status::ParseError("unpaired surrogate");
          }
          *pos += 2;
          int32_t low = ParseHex4(s, pos);
          if (low < 0xDC00 || low > 0xDFFF) {
            return Status::ParseError("unpaired surrogate");
          }
          code_point = 0x10000 + ((static_cast<uint32_t>(unit) - 0xD800) << 10)
                       + (static_cast<uint32_t>(low) - 0xDC00);
        } else if (unit >= 0xDC00 && unit <= 0xDFFF) {
          return Status::ParseError("unpaired surrogate");
        }
        AppendUtf8(code_point, &out);
        break;
      }
      default:
        return Status::ParseError(std::string("unknown escape '\\") + esc +
                                  "'");
    }
  }
  return Status::ParseError("unterminated string");
}

}  // namespace

Result<BatchLine> ParseBatchLine(std::string_view line) {
  BatchLine result;
  bool has_html = false;
  size_t pos = 0;
  SkipSpace(line, &pos);
  if (pos >= line.size() || line[pos] != '{') {
    return Status::ParseError("batch line must be a JSON object");
  }
  ++pos;
  SkipSpace(line, &pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    while (true) {
      SkipSpace(line, &pos);
      NTW_ASSIGN_OR_RETURN(std::string key, ParseString(line, &pos));
      SkipSpace(line, &pos);
      if (pos >= line.size() || line[pos] != ':') {
        return Status::ParseError("expected ':' after key \"" + key + "\"");
      }
      ++pos;
      SkipSpace(line, &pos);
      NTW_ASSIGN_OR_RETURN(std::string value, ParseString(line, &pos));
      if (key == "html") {
        result.html = std::move(value);
        has_html = true;
      } else if (key == "id") {
        result.id = std::move(value);
        result.has_id = true;
      }
      SkipSpace(line, &pos);
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        break;
      }
      return Status::ParseError("expected ',' or '}' in object");
    }
  }
  SkipSpace(line, &pos);
  if (pos != line.size()) {
    return Status::ParseError("trailing bytes after object");
  }
  if (!has_html) {
    return Status::ParseError("missing required key \"html\"");
  }
  return result;
}

}  // namespace ntw::serve
