#ifndef NTW_SERVE_STATIC_FILES_H_
#define NTW_SERVE_STATIC_FILES_H_

#include <string>

#include "serve/http.h"

namespace ntw::serve {

/// Serves a directory tree over the dependency-free HttpServer — the
/// local crawl origin (tools/ntw_origin, the crawl smoke, CI): point it
/// at a sitegen corpus and the crawler exercises the full http path with
/// zero network dependencies. GET/HEAD only; the request path is
/// normalized and confined to the root (".." can never escape); unknown
/// paths get 404. Not a production file server and not trying to be one.
class StaticFileHandler {
 public:
  explicit StaticFileHandler(std::string root, std::string index_file = "");

  HttpResponse Handle(const HttpRequest& request) const;

 private:
  std::string root_;
  /// Served for "/" when set (e.g. "index.html"); 404 otherwise.
  std::string index_file_;
};

/// Content-Type by file suffix: .html, .txt, .json, .ndjson; everything
/// else is application/octet-stream.
std::string StaticContentType(const std::string& path);

}  // namespace ntw::serve

#endif  // NTW_SERVE_STATIC_FILES_H_
