#include "serve/service.h"

#include <chrono>
#include <utility>
#include <vector>

#include "common/obs_export.h"
#include "common/strings.h"
#include "html/arena_dom.h"
#include "html/parser.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/ndjson.h"

namespace ntw::serve {

namespace {

// Sharded instruments: each reactor shard records into its own stripe
// (no cross-shard cache-line contention on the request path); /metrics
// merges stripes at scrape time and also exports the shard dimension.
struct ServiceMetrics {
  obs::ShardedCounter* pages_extracted;
  obs::ShardedCounter* values_extracted;
  obs::ShardedCounter* batch_lines;
  obs::ShardedCounter* wrapper_misses;
  obs::ShardedCounter* arena_bytes_reused;
  obs::ShardedCounter* streaming_pages;
  obs::ShardedCounter* streaming_verbatim_pages;
  obs::ShardedCounter* streaming_patched_pages;
  obs::ShardedCounter* streaming_flattened_pages;
  /// Pages served by the fused streaming XPath executor (tokenizer event
  /// stream, no arena DOM, no StreamPage build — so no tier counter).
  obs::ShardedCounter* streaming_xpath_pages;
  /// Pages that fell off the streaming path, by reason: the toggle was
  /// off (--no-streaming or --no-fast-path), the entry has no compiled
  /// plan, or the plan is an XPath program outside streamable()'s bit
  /// budget. Their sum is exactly the non-streaming page count.
  obs::ShardedCounter* streaming_fallback_disabled;
  obs::ShardedCounter* streaming_fallback_no_plan;
  obs::ShardedCounter* streaming_fallback_unstreamable_xpath;
  /// attribute=* pages scanned once by a fused site automaton (each scan
  /// replaces one BMH pass per dom_free attribute).
  obs::ShardedCounter* fused_scans;
  obs::ShardedHistogram* extract_latency;

  static ServiceMetrics& Get() {
    static ServiceMetrics m{
        obs::Registry::Global().GetShardedCounter("ntw.serve.pages_extracted"),
        obs::Registry::Global().GetShardedCounter("ntw.serve.values_extracted"),
        obs::Registry::Global().GetShardedCounter("ntw.serve.batch_lines"),
        obs::Registry::Global().GetShardedCounter("ntw.serve.wrapper_misses"),
        obs::Registry::Global().GetShardedCounter(
            "ntw.serve.arena_bytes_reused"),
        obs::Registry::Global().GetShardedCounter("ntw.serve.streaming_pages"),
        obs::Registry::Global().GetShardedCounter(
            "ntw.serve.streaming_verbatim_pages"),
        obs::Registry::Global().GetShardedCounter(
            "ntw.serve.streaming_patched_pages"),
        obs::Registry::Global().GetShardedCounter(
            "ntw.serve.streaming_flattened_pages"),
        obs::Registry::Global().GetShardedCounter(
            "ntw.serve.streaming_xpath_pages"),
        obs::Registry::Global().GetShardedCounter(
            "ntw.serve.streaming_fallback_disabled"),
        obs::Registry::Global().GetShardedCounter(
            "ntw.serve.streaming_fallback_no_plan"),
        obs::Registry::Global().GetShardedCounter(
            "ntw.serve.streaming_fallback_unstreamable_xpath"),
        obs::Registry::Global().GetShardedCounter("ntw.serve.fused_scans"),
        obs::Registry::Global().GetShardedHistogram(
            "ntw.serve.extract_latency_micros"),
    };
    return m;
  }
};

/// Interpreted path: heap DOM parse + Wrapper::Extract. Returns the
/// extracted text values in document order.
std::vector<std::string> ExtractValuesInterpreted(const core::Wrapper& wrapper,
                                                  const std::string& page_html) {
  Result<html::Document> doc = html::Parse(page_html);
  if (!doc.ok()) return {};
  core::PageSet pages;
  pages.AddPage(std::move(*doc));
  core::NodeSet extraction = wrapper.Extract(pages);
  std::vector<std::string> values;
  values.reserve(extraction.size());
  for (const core::NodeRef& ref : extraction) {
    const html::Node* node = pages.Resolve(ref);
    if (node != nullptr) values.push_back(node->text());
  }
  return values;
}

/// Resolves the (site, attribute) pair from the query string against a
/// snapshot. On failure fills `error` with the response to send.
const WrapperRepository::Entry* LookupWrapper(
    const WrapperRepository::Snapshot& snapshot, const HttpRequest& request,
    int shard, std::string* site, std::string* attribute,
    HttpResponse* error) {
  *site = request.QueryParam("site");
  *attribute = request.QueryParam("attribute");
  if (attribute->empty()) *attribute = request.QueryParam("attr");
  if (site->empty() || attribute->empty()) {
    *error = ErrorResponse(
        400, "query parameters 'site' and 'attribute' are required");
    return nullptr;
  }
  const WrapperRepository::Entry* entry = snapshot.Find(*site, *attribute);
  if (entry == nullptr) {
    ServiceMetrics::Get().wrapper_misses->Add(shard, 1);
    *error = ErrorResponse(404, "no wrapper for site '" + *site +
                                    "' attribute '" + *attribute + "'");
  }
  return entry;
}

/// attribute=* (or attr=*) selects multi-attribute mode: every wrapper of
/// the site from one request body, fused-scanned when possible.
bool IsMultiAttribute(const HttpRequest& request, std::string* site) {
  std::string attribute = request.QueryParam("attribute");
  if (attribute.empty()) attribute = request.QueryParam("attr");
  if (attribute != "*") return false;
  *site = request.QueryParam("site");
  return !site->empty();
}

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// Extracts from one page and writes the `"values":[...]` member.
/// Streaming no-DOM path for dom_free() and streamable() XPath plans
/// when enabled; arena fast path (arena DOM + compiled plan) otherwise
/// when enabled and the entry carries a plan; interpreted as the final
/// fallback. All paths produce identical JSON bytes — views and strings
/// serialize the same.
void ExtractService::ExtractToJson(const WrapperRepository::Entry& entry,
                                   const std::string& page_html,
                                   obs::JsonWriter& json) const {
  json.Key("values");
  ExtractArray(entry, page_html, json);
}

void ExtractService::ExtractArray(const WrapperRepository::Entry& entry,
                                  const std::string& page_html,
                                  obs::JsonWriter& json) const {
  ServiceMetrics& metrics = ServiceMetrics::Get();
  int shard = options_.shard;
  auto start = std::chrono::steady_clock::now();
  if (options_.fast_path && options_.streaming && entry.compiled != nullptr &&
      (entry.compiled->dom_free() || entry.compiled->streamable())) {
    // Streaming no-DOM path: BMH over the StreamPage-built stream for
    // dom_free() plans, the fused tokenize→plan-execute machine for
    // streamable() XPath programs — neither builds an arena DOM. On the
    // zero-copy tier the values alias `page_html` directly — which
    // outlives the lease here.
    core::StreamBufferPool::Lease lease = stream_buffers_.Acquire();
    entry.compiled->ExtractStreaming(page_html, *lease, &lease->values);
    metrics.extract_latency->Record(shard, MicrosSince(start));
    json.BeginArray();
    for (std::string_view value : lease->values) json.String(value);
    json.EndArray();
    metrics.pages_extracted->Add(shard, 1);
    metrics.values_extracted->Add(shard,
                                  static_cast<int64_t>(lease->values.size()));
    ObserveDrift(entry, page_html, lease->values.data(),
                 lease->values.size());
    metrics.streaming_pages->Add(shard, 1);
    if (!entry.compiled->dom_free()) {
      // Fused XPath never Builds the StreamPage, so the tier counters
      // (which would read a stale tier) do not apply.
      metrics.streaming_xpath_pages->Add(shard, 1);
    } else {
      switch (lease->page.tier()) {
        case html::StreamPage::Tier::kVerbatim:
          metrics.streaming_verbatim_pages->Add(shard, 1);
          break;
        case html::StreamPage::Tier::kPatched:
          metrics.streaming_patched_pages->Add(shard, 1);
          break;
        case html::StreamPage::Tier::kFlattened:
          metrics.streaming_flattened_pages->Add(shard, 1);
          break;
      }
    }
    return;
  }
  // Off the streaming path: attribute the fallback to its reason.
  if (!options_.fast_path || !options_.streaming) {
    metrics.streaming_fallback_disabled->Add(shard, 1);
  } else if (entry.compiled == nullptr) {
    metrics.streaming_fallback_no_plan->Add(shard, 1);
  } else {
    metrics.streaming_fallback_unstreamable_xpath->Add(shard, 1);
  }
  if (options_.fast_path && entry.compiled != nullptr) {
    core::FastBufferPool::Lease lease = buffers_.Acquire();
    html::ArenaParse(page_html, &lease->doc);
    entry.compiled->Extract(*lease, &lease->values);
    metrics.extract_latency->Record(shard, MicrosSince(start));
    json.BeginArray();
    for (std::string_view value : lease->values) json.String(value);
    json.EndArray();
    metrics.pages_extracted->Add(shard, 1);
    metrics.values_extracted->Add(shard,
                                  static_cast<int64_t>(lease->values.size()));
    ObserveDrift(entry, page_html, lease->values.data(),
                 lease->values.size());
    const Arena& arena = lease->doc.arena();
    metrics.arena_bytes_reused->Add(
        shard, static_cast<int64_t>(arena.used() - arena.fresh_bytes()));
    return;
  }
  std::vector<std::string> values =
      ExtractValuesInterpreted(*entry.wrapper, page_html);
  metrics.extract_latency->Record(shard, MicrosSince(start));
  json.BeginArray();
  for (const std::string& value : values) json.String(value);
  json.EndArray();
  metrics.pages_extracted->Add(shard, 1);
  metrics.values_extracted->Add(shard, static_cast<int64_t>(values.size()));
  // The interpreted path already allocates per request; a small view
  // vector for the detector is in character.
  std::vector<std::string_view> views(values.begin(), values.end());
  ObserveDrift(entry, page_html, views.data(), views.size());
}

void ExtractService::ExtractAllToJson(
    const WrapperRepository::Snapshot& snapshot, const std::string& site,
    const std::vector<std::pair<std::string, const WrapperRepository::Entry*>>&
        entries,
    const std::string& page_html, obs::JsonWriter& json) const {
  ServiceMetrics& metrics = ServiceMetrics::Get();
  int shard = options_.shard;
  std::shared_ptr<const core::FusedSiteExtractor> fused;
  if (options_.fast_path && options_.streaming && options_.fused) {
    fused = snapshot.FindFused(site);
  }
  json.Key("attributes");
  json.BeginObject();
  if (fused != nullptr && !fused->attributes().empty()) {
    // One automaton pass yields every dom_free attribute's occurrence
    // lists; attributes the automaton does not cover (tree plans, or no
    // compiled form) fall through to per-attribute extraction below.
    auto start = std::chrono::steady_clock::now();
    core::StreamBufferPool::Lease page = stream_buffers_.Acquire();
    core::FusedScratchPool::Lease scratch = fused_scratch_.Acquire();
    fused->ExtractAllStreaming(page_html, *page, *scratch);
    metrics.extract_latency->Record(shard, MicrosSince(start));
    metrics.fused_scans->Add(shard, 1);
    metrics.streaming_pages->Add(shard, 1);
    switch (page->page.tier()) {
      case html::StreamPage::Tier::kVerbatim:
        metrics.streaming_verbatim_pages->Add(shard, 1);
        break;
      case html::StreamPage::Tier::kPatched:
        metrics.streaming_patched_pages->Add(shard, 1);
        break;
      case html::StreamPage::Tier::kFlattened:
        metrics.streaming_flattened_pages->Add(shard, 1);
        break;
    }
    for (const auto& [name, entry] : entries) {
      json.Key(name);
      size_t index = fused->FindAttribute(name);
      if (index == std::string_view::npos) {
        ExtractArray(*entry, page_html, json);
        continue;
      }
      const std::vector<std::string_view>& values = scratch->values[index];
      json.BeginArray();
      for (std::string_view value : values) json.String(value);
      json.EndArray();
      metrics.pages_extracted->Add(shard, 1);
      metrics.values_extracted->Add(shard,
                                    static_cast<int64_t>(values.size()));
      ObserveDrift(*entry, page_html, values.data(), values.size());
    }
  } else {
    for (const auto& [name, entry] : entries) {
      json.Key(name);
      ExtractArray(*entry, page_html, json);
    }
  }
  json.EndObject();
}

void ExtractService::ObserveDrift(const WrapperRepository::Entry& entry,
                                  const std::string& page_html,
                                  const std::string_view* values,
                                  size_t count) const {
  DriftState* state = entry.drift.get();
  if (state == nullptr || !options_.self_heal || reinducer_ == nullptr) {
    return;
  }
  DriftState::Action action =
      state->Observe(options_.shard, values, count, page_html);
  if (action != DriftState::Action::kReinduce) return;
  DriftState::Sample sample = state->TakeSample();
  ReinduceTask task;
  task.site = state->site();
  task.attribute = state->attribute();
  task.incumbent_record = state->record();
  task.pages = std::move(sample.pages);
  task.dictionary = std::move(sample.dictionary);
  task.state = entry.drift;
  if (!reinducer_->Enqueue(std::move(task))) state->EnterCooldown();
}

HttpResponse ExtractService::Driftz() const {
  WrapperRepository::PinnedSnapshot snapshot = repository_->Pin();
  obs::JsonWriter json;
  BeginSchemaDocument(json, "ntw-serve-drift", 1);
  json.KV("repository_version", static_cast<int64_t>(snapshot->version));
  json.KV("self_heal", options_.self_heal && reinducer_ != nullptr);
  json.Key("states");
  json.BeginArray();
  for (const auto& [key, entry] : snapshot->wrappers) {
    if (entry.drift != nullptr) entry.drift->WriteJson(json);
  }
  // Pack-backed pairs this snapshot has served (lazily materialized);
  // never overlaps the overlay map — Find() checks the overlay first.
  for (const auto& [key, entry] : snapshot->CachedEntries()) {
    if (entry->drift != nullptr) entry->drift->WriteJson(json);
  }
  json.EndArray();
  // The repair quality ledger: before/after scores of every self-heal
  // publish, oldest first (bounded tail; durable across restarts).
  json.Key("repairs");
  json.BeginArray();
  for (const WrapperRepository::RepairRecord& repair :
       repository_->repair_ledger()) {
    json.BeginObject();
    json.KV("sequence", repair.sequence);
    json.KV("site", repair.site);
    json.KV("attribute", repair.attribute);
    json.KV("incumbent_score", repair.incumbent_score);
    json.KV("repair_score", repair.repair_score);
    json.KV("labels", repair.labels);
    json.KV("published_version",
            static_cast<int64_t>(repair.published_version));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  HttpResponse response;
  response.body = json.Take();
  response.body.push_back('\n');
  return response;
}

HttpResponse ExtractService::Handle(const HttpRequest& request) const {
  if (request.path == "/healthz") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = "ok\n";
    return response;
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    HttpResponse response;
    response.body = MetricsJson();
    return response;
  }
  if (request.path == "/driftz") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return Driftz();
  }
  if (request.path == "/extract") {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    HttpResponse response = Extract(request);
    // Our pin is released; if a reload retired a snapshot while we held
    // it, free it here rather than waiting for the next reload.
    repository_->ReclaimRetired();
    return response;
  }
  if (request.path == "/extract_batch") {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    HttpResponse response = ExtractBatch(request);
    repository_->ReclaimRetired();
    return response;
  }
  return ErrorResponse(404, "unknown endpoint '" + request.path + "'");
}

HttpResponse ExtractService::Extract(const HttpRequest& request) const {
  // Wait-free read-side: the pin keeps this snapshot alive for the whole
  // request; a concurrent reload publishes a new one without blocking us.
  WrapperRepository::PinnedSnapshot snapshot = repository_->Pin();
  std::string site;
  std::string attribute;
  if (IsMultiAttribute(request, &site)) {
    return ExtractMulti(*snapshot, site, request);
  }
  HttpResponse error;
  const WrapperRepository::Entry* entry = LookupWrapper(
      *snapshot, request, options_.shard, &site, &attribute, &error);
  if (entry == nullptr) return error;

  obs::JsonWriter json;
  json.Reserve(entry->response_prefix.size() + 192);
  json.BeginObject();
  // Everything before "values" is constant per entry within a snapshot;
  // the repository escaped it once at load time.
  json.RawMembers(entry->response_prefix);
  ExtractToJson(*entry, request.body, json);
  json.EndObject();
  HttpResponse response;
  response.body = json.Take();
  response.body.push_back('\n');
  return response;
}

HttpResponse ExtractService::ExtractMulti(
    const WrapperRepository::Snapshot& snapshot, const std::string& site,
    const HttpRequest& request) const {
  std::vector<std::pair<std::string, const WrapperRepository::Entry*>>
      entries = snapshot.MaterializeSite(site);
  if (entries.empty()) {
    ServiceMetrics::Get().wrapper_misses->Add(options_.shard, 1);
    return ErrorResponse(404, "no wrappers for site '" + site + "'");
  }
  obs::JsonWriter json;
  BeginSchemaDocument(json, "ntw-serve-extract", 1);
  json.KV("site", site);
  json.KV("attribute", "*");
  json.KV("repository_version", static_cast<int64_t>(snapshot.version));
  ExtractAllToJson(snapshot, site, entries, request.body, json);
  json.EndObject();
  HttpResponse response;
  response.body = json.Take();
  response.body.push_back('\n');
  return response;
}

HttpResponse ExtractService::ExtractBatchMulti(
    const WrapperRepository::Snapshot& snapshot, const std::string& site,
    const HttpRequest& request) const {
  std::vector<std::pair<std::string, const WrapperRepository::Entry*>>
      entries = snapshot.MaterializeSite(site);
  if (entries.empty()) {
    ServiceMetrics::Get().wrapper_misses->Add(options_.shard, 1);
    return ErrorResponse(404, "no wrappers for site '" + site + "'");
  }
  std::vector<std::string> lines = Split(request.body, '\n');
  while (!lines.empty() && StripWhitespace(lines.back()).empty()) {
    lines.pop_back();
  }
  ServiceMetrics::Get().batch_lines->Add(options_.shard,
                                         static_cast<int64_t>(lines.size()));
  // Same slot-per-line determinism as the single-attribute batch; each
  // line scans the page once for all of the site's dom_free attributes.
  std::vector<std::string> results(lines.size());
  pool_->ParallelFor(lines.size(), [&](size_t i) {
    obs::JsonWriter json;
    json.BeginObject();
    json.KV("index", static_cast<int64_t>(i));
    Result<BatchLine> line = ParseBatchLine(lines[i]);
    if (!line.ok()) {
      json.KV("error", line.status().ToString());
    } else {
      if (line->has_id) json.KV("id", line->id);
      ExtractAllToJson(snapshot, site, entries, line->html, json);
    }
    json.EndObject();
    results[i] = json.Take();
  });
  HttpResponse response;
  response.content_type = "application/x-ndjson";
  size_t total = 0;
  for (const std::string& line : results) total += line.size() + 1;
  response.body.reserve(total);
  for (const std::string& line : results) {
    response.body += line;
    response.body += '\n';
  }
  return response;
}

HttpResponse ExtractService::ExtractBatch(const HttpRequest& request) const {
  WrapperRepository::PinnedSnapshot snapshot = repository_->Pin();
  std::string site;
  std::string attribute;
  if (IsMultiAttribute(request, &site)) {
    return ExtractBatchMulti(*snapshot, site, request);
  }
  HttpResponse error;
  const WrapperRepository::Entry* entry = LookupWrapper(
      *snapshot, request, options_.shard, &site, &attribute, &error);
  if (entry == nullptr) return error;

  // One result slot per input line, written independently and joined in
  // input order — the ParallelFor determinism discipline, so a batch
  // response is byte-identical at every thread count.
  std::vector<std::string> lines = Split(request.body, '\n');
  while (!lines.empty() && StripWhitespace(lines.back()).empty()) {
    lines.pop_back();
  }
  ServiceMetrics::Get().batch_lines->Add(options_.shard,
                                         static_cast<int64_t>(lines.size()));
  std::vector<std::string> results(lines.size());
  pool_->ParallelFor(lines.size(), [&](size_t i) {
    obs::JsonWriter json;
    json.BeginObject();
    json.KV("index", static_cast<int64_t>(i));
    Result<BatchLine> line = ParseBatchLine(lines[i]);
    if (!line.ok()) {
      json.KV("error", line.status().ToString());
    } else {
      if (line->has_id) json.KV("id", line->id);
      ExtractToJson(*entry, line->html, json);
    }
    json.EndObject();
    results[i] = json.Take();
  });
  HttpResponse response;
  response.content_type = "application/x-ndjson";
  // Exact-size join: one reserve, no re-allocation churn while appending.
  size_t total = 0;
  for (const std::string& line : results) total += line.size() + 1;
  response.body.reserve(total);
  for (const std::string& line : results) {
    response.body += line;
    response.body += '\n';
  }
  return response;
}

}  // namespace ntw::serve
