#include "serve/static_files.h"

#include <utility>
#include <vector>

#include "common/file_util.h"
#include "common/strings.h"

namespace ntw::serve {

namespace {

/// Root-confined path resolution: split, drop empties and ".", reject
/// any ".." that would climb above the root rather than resolving it —
/// a traversal attempt is a 404, not a normalization exercise.
bool ResolveWithinRoot(const std::string& root, const std::string& path,
                       std::string* resolved) {
  std::vector<std::string> kept;
  for (const std::string& segment : Split(path, '/')) {
    if (segment.empty() || segment == ".") continue;
    if (segment == "..") {
      if (kept.empty()) return false;
      kept.pop_back();
      continue;
    }
    kept.push_back(segment);
  }
  *resolved = root;
  for (const std::string& segment : kept) {
    *resolved += '/';
    *resolved += segment;
  }
  return true;
}

}  // namespace

std::string StaticContentType(const std::string& path) {
  if (EndsWith(path, ".html") || EndsWith(path, ".htm")) {
    return "text/html";
  }
  if (EndsWith(path, ".txt")) return "text/plain";
  if (EndsWith(path, ".json")) return "application/json";
  if (EndsWith(path, ".ndjson")) return "application/x-ndjson";
  return "application/octet-stream";
}

StaticFileHandler::StaticFileHandler(std::string root, std::string index_file)
    : root_(std::move(root)), index_file_(std::move(index_file)) {
  while (!root_.empty() && root_.back() == '/') root_.pop_back();
}

HttpResponse StaticFileHandler::Handle(const HttpRequest& request) const {
  if (request.method != "GET" && request.method != "HEAD") {
    return ErrorResponse(405, "use GET");
  }
  std::string path = request.path;
  if (path == "/" || path.empty()) {
    if (index_file_.empty()) return ErrorResponse(404, "no index configured");
    path = "/" + index_file_;
  }
  std::string resolved;
  if (!ResolveWithinRoot(root_, path, &resolved)) {
    return ErrorResponse(404, "not found");
  }
  Result<std::string> body = ReadFile(resolved);
  if (!body.ok()) return ErrorResponse(404, "not found");
  HttpResponse response;
  response.content_type = StaticContentType(resolved);
  response.body = request.method == "HEAD" ? "" : std::move(body.value());
  return response;
}

}  // namespace ntw::serve
