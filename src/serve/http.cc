#include "serve/http.h"

#include <algorithm>

#include "common/obs_export.h"
#include "common/strings.h"
#include "obs/json.h"

namespace ntw::serve {

namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Strips one trailing '\r' (header lines are split on '\n'; both CRLF
/// and bare-LF framing are accepted).
std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

std::string HttpRequest::QueryParam(std::string_view name) const {
  for (const auto& [key, value] : query) {
    if (key == name) return value;
  }
  return "";
}

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  obs::JsonWriter json;
  BeginSchemaDocument(json, "ntw-serve-error", 1);
  json.KV("status", static_cast<int64_t>(status));
  json.KV("error", message);
  json.EndObject();
  HttpResponse response;
  response.status = status;
  response.body = json.Take() + "\n";
  return response;
}

void SerializeResponseHead(const HttpResponse& response, bool keep_alive,
                           std::string* out) {
  *out += "HTTP/1.1 ";
  *out += std::to_string(response.status);
  *out += ' ';
  *out += ReasonPhrase(response.status);
  *out += "\r\nContent-Type: ";
  *out += response.content_type;
  *out += "\r\nContent-Length: ";
  *out += std::to_string(response.body.size());
  *out += "\r\nConnection: ";
  *out += keep_alive ? "keep-alive" : "close";
  *out += "\r\n\r\n";
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 128);
  SerializeResponseHead(response, keep_alive, &out);
  out += response.body;
  return out;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  UrlDecodeTo(s, &out);
  return out;
}

void UrlDecodeTo(std::string_view s, std::string* out) {
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      *out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && HexValue(s[i + 1]) >= 0 &&
               HexValue(s[i + 2]) >= 0) {
      *out += static_cast<char>(HexValue(s[i + 1]) * 16 + HexValue(s[i + 2]));
      i += 2;
    } else {
      *out += s[i];
    }
  }
}

void RequestParser::Reset() {
  // Clear contents but keep every buffer's capacity (including the header
  // and query slot strings, which ParseHeaderBlock overwrites in place):
  // a keep-alive connection parses its steady-state traffic without
  // allocating.
  request_.method.clear();
  request_.target.clear();
  request_.path.clear();
  request_.body.clear();
  request_.keep_alive = true;
  headers_complete_ = false;
  expects_continue_ = false;
  saw_bytes_ = false;
  content_length_ = 0;
  error_status_ = 0;
  error_message_.clear();
  phase_ = Phase::kNeedMore;
}

RequestParser::Phase RequestParser::Fail(int status, std::string message) {
  phase_ = Phase::kError;
  error_status_ = status;
  error_message_ = std::move(message);
  return phase_;
}

RequestParser::Phase RequestParser::ParseHeaderBlock(std::string_view block) {
  size_t line_end = block.find('\n');
  if (line_end == std::string_view::npos) {
    return Fail(400, "missing request line");
  }
  std::string_view request_line = StripCr(block.substr(0, line_end));
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return Fail(400, "malformed request line");
  }
  request_.method.assign(request_line.substr(0, sp1));
  request_.target.assign(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = request_line.substr(sp2 + 1);
  if (!version.starts_with("HTTP/1.")) {
    return Fail(505, "unsupported protocol version");
  }
  request_.keep_alive = version != "HTTP/1.0";
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    return Fail(400, "malformed request line");
  }

  // Split target into decoded path + query parameters. Query slots are
  // overwritten in place and trimmed at the end, so their string capacity
  // survives from request to request on a keep-alive connection.
  std::string_view target = request_.target;
  size_t qmark = target.find('?');
  request_.path.clear();
  UrlDecodeTo(target.substr(0, qmark), &request_.path);
  size_t query_count = 0;
  if (qmark != std::string_view::npos) {
    std::string_view pairs = target.substr(qmark + 1);
    while (!pairs.empty()) {
      size_t amp = pairs.find('&');
      std::string_view pair =
          amp == std::string_view::npos ? pairs : pairs.substr(0, amp);
      pairs = amp == std::string_view::npos ? std::string_view()
                                            : pairs.substr(amp + 1);
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      if (query_count == request_.query.size()) request_.query.emplace_back();
      auto& [key, value] = request_.query[query_count];
      key.clear();
      UrlDecodeTo(pair.substr(0, eq), &key);
      value.clear();
      if (eq != std::string_view::npos) {
        UrlDecodeTo(pair.substr(eq + 1), &value);
      }
      // A repeated name keeps its first position and the last value, the
      // semantics a map assignment had.
      bool duplicate = false;
      for (size_t i = 0; i < query_count; ++i) {
        if (request_.query[i].first == key) {
          std::swap(request_.query[i].second, value);
          duplicate = true;
          break;
        }
      }
      if (!duplicate) ++query_count;
    }
  }
  request_.query.resize(query_count);

  // Header fields, with the same in-place slot reuse as the query list.
  std::string_view rest = block.substr(line_end + 1);
  size_t header_count = 0;
  while (!rest.empty()) {
    size_t eol = rest.find('\n');
    std::string_view line =
        StripCr(eol == std::string_view::npos ? rest : rest.substr(0, eol));
    rest = eol == std::string_view::npos ? std::string_view() : rest.substr(eol + 1);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      request_.headers.resize(header_count);
      return Fail(400, "malformed header field");
    }
    if (header_count == request_.headers.size()) {
      request_.headers.emplace_back();
    }
    auto& [name, value] = request_.headers[header_count];
    name.assign(StripWhitespace(line.substr(0, colon)));
    for (char& c : name) c = AsciiToLower(c);
    if (name.empty()) {
      request_.headers.resize(header_count);
      return Fail(400, "malformed header field");
    }
    value.assign(StripWhitespace(line.substr(colon + 1)));
    bool duplicate = false;
    for (size_t i = 0; i < header_count; ++i) {
      if (request_.headers[i].first == name) {
        std::swap(request_.headers[i].second, value);
        duplicate = true;
        break;
      }
    }
    if (!duplicate) ++header_count;
  }
  request_.headers.resize(header_count);

  if (const std::string* connection = request_.FindHeader("connection")) {
    std::string value = ToLower(*connection);
    if (value == "close") request_.keep_alive = false;
    if (value == "keep-alive") request_.keep_alive = true;
  }
  const std::string* expect = request_.FindHeader("expect");
  if (expect != nullptr && ToLower(*expect) == "100-continue") {
    expects_continue_ = true;
  }

  if (request_.FindHeader("transfer-encoding") != nullptr) {
    return Fail(501, "transfer-encoding is not supported");
  }
  if (const std::string* length = request_.FindHeader("content-length")) {
    const std::string& digits = *length;
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos ||
        digits.size() > 18) {
      return Fail(400, "malformed content-length");
    }
    content_length_ = static_cast<size_t>(std::stoll(digits));
    if (content_length_ > limits_.max_body_bytes) {
      return Fail(413, "request body exceeds " +
                           std::to_string(limits_.max_body_bytes) + " bytes");
    }
  } else if (request_.method == "POST" || request_.method == "PUT") {
    return Fail(411, "content-length is required");
  }
  headers_complete_ = true;
  return Phase::kNeedMore;
}

RequestParser::Phase RequestParser::Consume(std::string* in) {
  if (phase_ == Phase::kError || phase_ == Phase::kComplete) return phase_;
  // The caller may have replaced or cleared the buffer (error paths);
  // never let the consumed prefix point past it.
  if (offset_ > in->size()) offset_ = in->size();
  // Lazy compaction: drop the consumed prefix only when it is the whole
  // buffer (free) or has grown large, so pipelined parsing is offset
  // arithmetic instead of a per-request front-erase memmove.
  if (offset_ > 0) {
    if (offset_ == in->size()) {
      in->clear();
      offset_ = 0;
    } else if (offset_ > (size_t{1} << 18)) {
      in->erase(0, offset_);
      offset_ = 0;
    }
  }
  std::string_view pending(in->data() + offset_, in->size() - offset_);
  if (!pending.empty()) saw_bytes_ = true;
  if (!headers_complete_) {
    // Find the blank line terminating the header block; accept CRLF or
    // bare LF framing (split lines tolerate a dangling '\r').
    size_t end = pending.find("\r\n\r\n");
    size_t skip = 4;
    size_t lf = pending.find("\n\n");
    if (lf != std::string_view::npos &&
        (end == std::string_view::npos || lf < end)) {
      end = lf;
      skip = 2;
    }
    if (end == std::string_view::npos) {
      if (pending.size() > limits_.max_header_bytes) {
        return Fail(431, "header block exceeds " +
                             std::to_string(limits_.max_header_bytes) +
                             " bytes");
      }
      return Phase::kNeedMore;
    }
    if (end + skip > limits_.max_header_bytes) {
      return Fail(431, "header block exceeds " +
                           std::to_string(limits_.max_header_bytes) +
                           " bytes");
    }
    Phase parsed = ParseHeaderBlock(pending.substr(0, end));
    offset_ += end + skip;
    pending.remove_prefix(end + skip);
    if (parsed == Phase::kError) return phase_;
  }
  if (pending.size() < content_length_) return Phase::kNeedMore;
  request_.body.assign(pending.data(), content_length_);
  offset_ += content_length_;
  phase_ = Phase::kComplete;
  return phase_;
}

}  // namespace ntw::serve
