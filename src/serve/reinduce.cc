#include "serve/reinduce.h"

#include <chrono>
#include <utility>

#include "annotate/dictionary_annotator.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/ntw.h"
#include "core/publication_model.h"
#include "core/wrapper_store.h"
#include "core/xpath_inductor.h"
#include "html/parser.h"
#include "obs/metrics.h"

namespace ntw::serve {

namespace {

struct ReinduceMetrics {
  obs::Counter* attempts;
  obs::Counter* published;
  obs::Counter* rejected;
  obs::Counter* failed;
  obs::Counter* queue_rejected;
  obs::Gauge* queue_depth;
  obs::Histogram* latency_micros;

  static ReinduceMetrics& Get() {
    static ReinduceMetrics m{
        obs::Registry::Global().GetCounter("ntw.serve.reinduce_attempts"),
        obs::Registry::Global().GetCounter("ntw.serve.reinduce_published"),
        obs::Registry::Global().GetCounter("ntw.serve.reinduce_rejected"),
        obs::Registry::Global().GetCounter("ntw.serve.reinduce_failed"),
        obs::Registry::Global().GetCounter(
            "ntw.serve.reinduce_queue_rejected"),
        obs::Registry::Global().GetGauge("ntw.serve.reinduce_queue_depth"),
        obs::Registry::Global().GetHistogram(
            "ntw.serve.reinduce_latency_micros"),
    };
    return m;
  }
};

/// Scores an arbitrary extraction exactly as Ranker::Rank scores a
/// candidate under kFull, so the incumbent-vs-repair comparison is
/// apples-to-apples.
double ScoreExtraction(const core::Ranker& ranker, const core::PageSet& pages,
                       const core::NodeSet& labels,
                       const core::NodeSet& extraction) {
  return ranker.annotation_model().LogProb(labels, extraction) +
         ranker.publication_model().LogProb(pages, extraction);
}

}  // namespace

ReinduceWorker::ReinduceWorker(WrapperRepository* repository,
                               ReinduceOptions options)
    : repository_(repository), options_(options) {
  if (options_.threads < 1) options_.threads = 1;
}

ReinduceWorker::~ReinduceWorker() { Stop(); }

void ReinduceWorker::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  threads_.reserve(static_cast<size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    threads_.emplace_back([this] { Loop(); });
  }
}

void ReinduceWorker::Stop() {
  std::vector<std::thread> joinable;
  std::deque<ReinduceTask> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    dropped.swap(queue_);
    joinable.swap(threads_);
  }
  cv_.notify_all();
  for (std::thread& thread : joinable) thread.join();
  // Dropped tasks never ran; re-arm their detectors so a restart of
  // drift detection is possible if the process keeps serving.
  for (ReinduceTask& task : dropped) {
    if (task.state != nullptr) task.state->EnterCooldown();
  }
  ReinduceMetrics::Get().queue_depth->Set(0);
}

bool ReinduceWorker::Enqueue(ReinduceTask task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !started_ || queue_.size() >= options_.max_queue) {
      ReinduceMetrics::Get().queue_rejected->Add(1);
      return false;
    }
    queue_.push_back(std::move(task));
    ReinduceMetrics::Get().queue_depth->Set(
        static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return true;
}

void ReinduceWorker::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ReinduceWorker::Loop() {
  for (;;) {
    ReinduceTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      ReinduceMetrics::Get().queue_depth->Set(
          static_cast<int64_t>(queue_.size()));
    }
    Process(std::move(task));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

void ReinduceWorker::Process(ReinduceTask task) {
  ReinduceMetrics& metrics = ReinduceMetrics::Get();
  metrics.attempts->Add(1);
  auto start = std::chrono::steady_clock::now();
  Result<Repair> repair = Reinduce(task, options_);
  bool published = false;
  if (repair.ok() && repair->beats_incumbent) {
    Status status = repository_->PublishWrapper(task.site, task.attribute,
                                                repair->wrapper);
    if (status.ok()) {
      published = true;
      metrics.published->Add(1);
      // Ledger the publish with its before/after evidence: what the
      // incumbent scored on the retained pages vs what the repair scored.
      WrapperRepository::RepairRecord entry;
      entry.site = task.site;
      entry.attribute = task.attribute;
      entry.incumbent_score = repair->incumbent_score;
      entry.repair_score = repair->score;
      entry.labels = static_cast<int64_t>(repair->labels);
      repository_->RecordRepair(std::move(entry));
    } else {
      metrics.failed->Add(1);
    }
  } else if (repair.ok()) {
    metrics.rejected->Add(1);
  } else {
    metrics.failed->Add(1);
  }
  // A successful publish installs a fresh DriftState (re-baselined on the
  // repaired wrapper); anything else re-arms the old one after a cooldown.
  if (!published && task.state != nullptr) task.state->EnterCooldown();
  metrics.latency_micros->Record(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

Result<ReinduceWorker::Repair> ReinduceWorker::Reinduce(
    const ReinduceTask& task, const ReinduceOptions& options) {
  if (task.pages.empty()) {
    return Status::InvalidArgument("reinduce: no retained pages");
  }
  if (task.dictionary.empty()) {
    return Status::FailedPrecondition("reinduce: empty dictionary");
  }
  core::PageSet pages;
  for (const std::string& body : task.pages) {
    Result<html::Document> doc = html::Parse(body);
    if (!doc.ok()) continue;  // One bad body must not sink the repair.
    pages.AddPage(std::move(*doc));
  }
  if (pages.size() == 0) {
    return Status::InvalidArgument("reinduce: no parsable retained pages");
  }

  // Re-annotate the drifted pages with the values the incumbent extracted
  // while healthy — the noisy-label input the NTW framework was built for.
  annotate::DictionaryAnnotatorOptions annotator_options;
  annotator_options.min_entry_length = 2;
  annotate::DictionaryAnnotator annotator(task.dictionary,
                                          annotator_options);
  core::NodeSet labels = annotator.Annotate(pages);
  if (labels.size() < options.min_labels) {
    return Status::FailedPrecondition(
        "reinduce: dictionary matched too few nodes");
  }

  // Re-learn a wrapper of the incumbent's kind.
  std::string kind = task.incumbent_record.substr(
      0, task.incumbent_record.find('\t'));
  std::unique_ptr<core::WrapperInductor> inductor;
  core::NtwOptions ntw_options;
  if (kind == "LR") {
    inductor = std::make_unique<core::LrInductor>();
    ntw_options.algorithm = core::EnumAlgorithm::kTopDown;
  } else if (kind == "HLRT") {
    inductor = std::make_unique<core::HlrtInductor>();
    // HLRT is not feature-based; only the blackbox bottom-up enumeration
    // applies (Theorem 2 regime).
    ntw_options.algorithm = core::EnumAlgorithm::kBottomUp;
  } else if (kind == "XPATH") {
    inductor = std::make_unique<core::XPathInductor>();
    ntw_options.algorithm = core::EnumAlgorithm::kTopDown;
  } else {
    return Status::InvalidArgument("reinduce: unsupported wrapper kind '" +
                                   kind + "'");
  }

  core::AnnotationModel annotation(options.annotator_precision,
                                   options.annotator_recall);
  // P(X) fitted from the labels' own list features on these pages: the
  // best available stand-in for the site's publication profile after a
  // redesign (KDE's bandwidth floor keeps the single-sample fit proper).
  core::ListFeatures label_features =
      core::ComputeListFeatures(core::SegmentRecords(pages, labels));
  Result<core::PublicationModel> publication =
      core::PublicationModel::Fit({label_features});
  if (!publication.ok()) return publication.status();
  core::Ranker ranker(annotation, std::move(*publication),
                      core::RankerVariant::kFull);

  NTW_ASSIGN_OR_RETURN(
      core::NtwOutcome outcome,
      core::LearnNoiseTolerant(*inductor, pages, labels, ranker,
                               ntw_options));
  if (outcome.best.wrapper == nullptr) {
    return Status::Internal("reinduce: learner returned no wrapper");
  }
  NTW_ASSIGN_OR_RETURN(std::string record,
                       core::SerializeWrapper(*outcome.best.wrapper));

  // The bar to clear: the incumbent, re-scored on the same pages with the
  // same ranker. An empty incumbent extraction scores the additive
  // constant; any candidate that recovers true values beats it.
  NTW_ASSIGN_OR_RETURN(core::WrapperPtr incumbent,
                       core::DeserializeWrapper(task.incumbent_record));
  core::NodeSet incumbent_extraction = incumbent->Extract(pages);
  double incumbent_score =
      ScoreExtraction(ranker, pages, labels, incumbent_extraction);

  Repair repair;
  repair.wrapper = outcome.best.wrapper;
  repair.record = std::move(record);
  repair.score = outcome.best_score.total;
  repair.incumbent_score = incumbent_score;
  repair.labels = labels.size();
  repair.beats_incumbent = !outcome.best.extraction.empty() &&
                           repair.score > incumbent_score &&
                           repair.record != task.incumbent_record;
  return repair;
}

}  // namespace ntw::serve
