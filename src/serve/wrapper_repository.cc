#include "serve/wrapper_repository.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/file_util.h"
#include "common/strings.h"
#include "common/obs_export.h"
#include "core/wrapper_store.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace ntw::serve {

namespace fs = std::filesystem;

namespace {

struct RepoMetrics {
  obs::Counter* reloads;
  obs::Counter* load_errors;
  obs::Counter* snapshots_retired;
  obs::Counter* snapshots_freed;
  obs::Counter* publishes;
  /// Directory reload entries reused because their file's (mtime, size)
  /// was unchanged — the incremental-reload win.
  obs::Counter* reload_entries_reused;
  /// Pack entries lazily finalized into a snapshot's compiled-plan cache.
  obs::Counter* pack_materializations;
  obs::Gauge* wrappers;
  obs::Gauge* version;
  /// Sites in the mapped pack generation (0 for the directory backend).
  obs::Gauge* pack_sites;
  /// Time from a snapshot's retirement (new one published) to its actual
  /// free — how long the epoch quiescence point took to pass. Large
  /// values mean a reader pinned an old snapshot for a long time.
  obs::Histogram* reload_quiesce_micros;

  static RepoMetrics& Get() {
    static RepoMetrics m{
        obs::Registry::Global().GetCounter("ntw.repo.reloads"),
        obs::Registry::Global().GetCounter("ntw.repo.load_errors"),
        obs::Registry::Global().GetCounter("ntw.repo.snapshots_retired"),
        obs::Registry::Global().GetCounter("ntw.repo.snapshots_freed"),
        obs::Registry::Global().GetCounter("ntw.repo.publishes"),
        obs::Registry::Global().GetCounter("ntw.repo.reload_entries_reused"),
        obs::Registry::Global().GetCounter("ntw.repo.pack_materializations"),
        obs::Registry::Global().GetGauge("ntw.repo.wrappers"),
        obs::Registry::Global().GetGauge("ntw.repo.version"),
        obs::Registry::Global().GetGauge("ntw.repo.pack_sites"),
        obs::Registry::Global().GetHistogram(
            "ntw.serve.reload_quiesce_micros"),
    };
    return m;
  }
};

constexpr char kSuffix[] = ".wrapper";

/// FNV-1a over a byte view — the fingerprint accumulator.
void HashBytes(std::string_view bytes, uint64_t* hash) {
  for (char c : bytes) {
    *hash ^= static_cast<unsigned char>(c);
    *hash *= 1099511628211ULL;
  }
}

void HashInt(uint64_t value, uint64_t* hash) {
  for (int i = 0; i < 8; ++i) {
    *hash ^= (value >> (i * 8)) & 0xFF;
    *hash *= 1099511628211ULL;
  }
}

/// (mtime, size) of one file; {0, 0} when unreadable.
std::pair<uint64_t, uint64_t> StatFile(const std::string& path) {
  std::error_code ec;
  auto mtime = static_cast<uint64_t>(
      fs::last_write_time(path, ec).time_since_epoch().count());
  if (ec) return {0, 0};
  auto size = static_cast<uint64_t>(fs::file_size(path, ec));
  if (ec) return {0, 0};
  return {mtime, size};
}

std::string StripRecord(std::string_view record) {
  while (!record.empty() &&
         (record.back() == '\n' || record.back() == '\r')) {
    record.remove_suffix(1);
  }
  return std::string(record);
}

/// Every /extract response member before "values" is fixed per entry
/// within a snapshot; serialize once through the same JsonWriter calls
/// the service used to make per request — stripping the enclosing braces
/// leaves exactly the member bytes to splice.
std::string BuildResponsePrefix(const std::string& site,
                                const std::string& attribute,
                                const std::string& record, uint64_t version) {
  obs::JsonWriter json;
  BeginSchemaDocument(json, "ntw-serve-extract", 1);
  json.KV("site", site);
  json.KV("attribute", attribute);
  json.KV("wrapper", record);
  json.KV("repository_version", static_cast<int64_t>(version));
  json.EndObject();
  std::string document = json.Take();
  return document.substr(1, document.size() - 2);
}

}  // namespace

void DriftRegistry::Configure(const DriftConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  enabled_ = config.enabled;
  if (!enabled_) states_.clear();
}

bool DriftRegistry::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

std::shared_ptr<DriftState> DriftRegistry::GetOrCreate(
    const std::string& site, const std::string& attribute,
    const std::string& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return nullptr;
  auto key = std::make_pair(site, attribute);
  auto it = states_.find(key);
  if (it != states_.end() && it->second->record() == record) {
    // Unchanged wrapper: carry the detector (and its baseline) over so
    // a routine reload does not restart warmup.
    return it->second;
  }
  auto state = std::make_shared<DriftState>(site, attribute, record, config_);
  states_[key] = state;
  return state;
}

void DriftRegistry::Drop(const std::string& site,
                         const std::string& attribute) {
  std::lock_guard<std::mutex> lock(mu_);
  states_.erase({site, attribute});
}

void DriftRegistry::PruneIf(
    const std::function<bool(const std::pair<std::string, std::string>&)>&
        dead) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = states_.begin(); it != states_.end();) {
    if (dead(it->first)) {
      it = states_.erase(it);
    } else {
      ++it;
    }
  }
}

const WrapperRepository::Entry* WrapperRepository::Snapshot::Find(
    const std::string& site, const std::string& attribute) const {
  auto it = wrappers.find({site, attribute});
  if (it != wrappers.end()) return &it->second;
  if (pack == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(cache_mu_);
  return MaterializeLocked(site, attribute);
}

const WrapperRepository::Entry* WrapperRepository::Snapshot::MaterializeLocked(
    const std::string& site, const std::string& attribute) const {
  auto key = std::make_pair(site, attribute);
  auto cached = cache_.find(key);
  if (cached != cache_.end()) return cached->second.get();
  auto pack_entry = pack->FindEntry(site, attribute);
  if (!pack_entry.has_value()) return nullptr;  // True miss: not cached.

  auto entry = std::make_unique<Entry>();
  entry->record = StripRecord(pack_entry->record());
  Result<core::WrapperPtr> wrapper = core::DeserializeWrapper(entry->record);
  if (!wrapper.ok()) return nullptr;  // Corrupt record: behave as a miss.
  entry->wrapper = std::move(*wrapper);
  // Finalize the compiled plan from the pack's fixed layout; a plan blob
  // that fails to decode falls back to compiling the parsed record.
  entry->compiled = pack_entry->CompilePlan();
  if (entry->compiled == nullptr) {
    entry->compiled = core::CompiledWrapper::Compile(*entry->wrapper);
  }
  entry->response_prefix =
      BuildResponsePrefix(site, attribute, entry->record, version);
  if (drift_registry_ != nullptr) {
    entry->drift = drift_registry_->GetOrCreate(site, attribute, entry->record);
  }
  RepoMetrics::Get().pack_materializations->Add(1);
  const Entry* out = entry.get();
  cache_.emplace(std::move(key), std::move(entry));
  return out;
}

std::shared_ptr<const core::FusedSiteExtractor>
WrapperRepository::Snapshot::FindFused(const std::string& site) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto hit = fused_cache_.find(site);
  if (hit != fused_cache_.end()) return hit->second;

  // Overlay (or directory-backend) plans for the site, ascending.
  std::vector<
      std::pair<std::string, std::shared_ptr<const core::CompiledWrapper>>>
      overlay;
  for (auto it = wrappers.lower_bound({site, std::string()});
       it != wrappers.end() && it->first.first == site; ++it) {
    overlay.emplace_back(it->first.second, it->second.compiled);
  }

  std::shared_ptr<const core::FusedSiteExtractor> fused;
  std::optional<core::WrapperPack::SiteView> pack_site;
  if (pack != nullptr) pack_site = pack->FindSite(site);
  if (!pack_site.has_value()) {
    if (overlay.empty()) return nullptr;  // Unknown site: not cached.
    fused = core::FusedSiteExtractor::Build(std::move(overlay));
  } else if (overlay.empty()) {
    // Pure pack site: bind the stored automaton to lazily finalized
    // plans — no automaton construction, just validation + binding.
    std::vector<core::FusedSiteExtractor::Attribute> attributes;
    for (size_t i = 0; i < pack_site->entry_count(); ++i) {
      auto pack_entry = pack_site->entry(i);
      if (!pack_entry.has_value()) continue;
      std::string attribute(pack_entry->attribute());
      const Entry* entry = MaterializeLocked(site, attribute);
      if (entry == nullptr || entry->compiled == nullptr ||
          !entry->compiled->dom_free()) {
        continue;
      }
      core::FusedSiteExtractor::Attribute bound;
      bound.name = std::move(attribute);
      bound.plan = entry->compiled;
      bound.left_pattern = pack_entry->left_pattern();
      bound.head_pattern = pack_entry->head_pattern();
      bound.tail_pattern = pack_entry->tail_pattern();
      attributes.push_back(std::move(bound));
    }
    fused = core::FusedSiteExtractor::FromBlob(pack_site->automaton(),
                                               std::move(attributes));
  } else {
    // Overlay shadows pack attributes: the stored automaton no longer
    // covers the site's live delimiter set, so rebuild in memory from
    // the merged plans.
    auto merged = overlay;
    for (size_t i = 0; i < pack_site->entry_count(); ++i) {
      auto pack_entry = pack_site->entry(i);
      if (!pack_entry.has_value()) continue;
      std::string attribute(pack_entry->attribute());
      bool shadowed = std::any_of(
          overlay.begin(), overlay.end(),
          [&](const auto& o) { return o.first == attribute; });
      if (shadowed) continue;
      const Entry* entry = MaterializeLocked(site, attribute);
      if (entry == nullptr) continue;
      merged.emplace_back(std::move(attribute), entry->compiled);
    }
    fused = core::FusedSiteExtractor::Build(std::move(merged));
  }
  // Cache even a null result (site exists, nothing dom_free): the
  // lookup answer is stable for the snapshot's lifetime.
  fused_cache_[site] = fused;
  return fused;
}

std::vector<std::pair<std::string, const WrapperRepository::Entry*>>
WrapperRepository::Snapshot::MaterializeSite(const std::string& site) const {
  std::vector<std::pair<std::string, const Entry*>> overlay;
  for (auto it = wrappers.lower_bound({site, std::string()});
       it != wrappers.end() && it->first.first == site; ++it) {
    overlay.emplace_back(it->first.second, &it->second);
  }
  if (pack == nullptr) return overlay;
  auto pack_site = pack->FindSite(site);
  if (!pack_site.has_value()) return overlay;

  std::vector<std::pair<std::string, const Entry*>> merged;
  std::lock_guard<std::mutex> lock(cache_mu_);
  size_t oi = 0;
  for (size_t i = 0; i < pack_site->entry_count(); ++i) {
    auto pack_entry = pack_site->entry(i);
    if (!pack_entry.has_value()) continue;
    std::string attribute(pack_entry->attribute());
    // Merge with the (also ascending) overlay; overlay shadows equal names.
    while (oi < overlay.size() && overlay[oi].first < attribute) {
      merged.push_back(overlay[oi++]);
    }
    if (oi < overlay.size() && overlay[oi].first == attribute) {
      merged.push_back(overlay[oi++]);
      continue;
    }
    const Entry* entry = MaterializeLocked(site, attribute);
    if (entry != nullptr) merged.emplace_back(std::move(attribute), entry);
  }
  while (oi < overlay.size()) merged.push_back(overlay[oi++]);
  return merged;
}

std::vector<std::pair<std::pair<std::string, std::string>,
                      const WrapperRepository::Entry*>>
WrapperRepository::Snapshot::CachedEntries() const {
  std::vector<std::pair<std::pair<std::string, std::string>, const Entry*>>
      out;
  std::lock_guard<std::mutex> lock(cache_mu_);
  out.reserve(cache_.size());
  for (const auto& [key, entry] : cache_) {
    out.emplace_back(key, entry.get());
  }
  return out;
}

size_t WrapperRepository::Snapshot::TotalWrapperCount() const {
  size_t count = wrappers.size();
  if (pack != nullptr) {
    count += static_cast<size_t>(pack->header().entry_count);
  }
  return count;
}

WrapperRepository::WrapperRepository(Options options)
    : root_(std::move(options.root)),
      pack_path_(std::move(options.pack_path)),
      drift_registry_(std::make_shared<DriftRegistry>()) {
  snapshot_ = NewSnapshot();
  current_.store(snapshot_.get(), std::memory_order_seq_cst);
}

std::shared_ptr<WrapperRepository::Snapshot> WrapperRepository::NewSnapshot()
    const {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->drift_registry_ = drift_registry_;
  return snapshot;
}

uint64_t WrapperRepository::DiskFingerprint() const {
  // (path, mtime, size) of the pack file and every wrapper file, folded
  // in sorted order. Any publish — even one keeping mtime granularity-
  // equal sizes — that adds, removes or rewrites a file with a new
  // timestamp changes this.
  uint64_t hash = 1469598103934665603ULL;  // FNV offset basis.
  if (!pack_path_.empty()) {
    auto [mtime, size] = StatFile(pack_path_);
    HashBytes(pack_path_, &hash);
    HashInt(mtime, &hash);
    HashInt(size, &hash);
  }
  if (root_.empty()) return hash;
  Result<std::vector<std::string>> sites = ListSubdirectories(root_);
  if (!sites.ok()) return hash;
  for (const std::string& site_dir : *sites) {
    Result<std::vector<std::string>> files = ListFiles(site_dir, kSuffix);
    if (!files.ok()) continue;
    for (const std::string& file : *files) {
      auto [mtime, size] = StatFile(file);
      HashBytes(file, &hash);
      HashInt(mtime, &hash);
      HashInt(size, &hash);
    }
  }
  return hash;
}

Status WrapperRepository::Load() {
  uint64_t fingerprint = DiskFingerprint();
  auto next = NewSnapshot();

  // Pack backend: map (or re-use) the pack generation. Failures warn and
  // fall back to the directory backend — a bad pack must not take down a
  // daemon that still has its overlay directory.
  std::shared_ptr<const Snapshot> prev;
  std::pair<uint64_t, uint64_t> prev_pack_meta;
  std::map<std::string, std::pair<uint64_t, uint64_t>> prev_file_meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    prev = snapshot_;
    prev_pack_meta = pack_meta_;
    prev_file_meta = std::move(file_meta_);
    file_meta_.clear();
  }
  std::pair<uint64_t, uint64_t> new_pack_meta{0, 0};
  if (!pack_path_.empty()) {
    new_pack_meta = StatFile(pack_path_);
    if (prev->pack != nullptr && new_pack_meta == prev_pack_meta &&
        new_pack_meta != std::make_pair<uint64_t, uint64_t>(0, 0)) {
      next->pack = prev->pack;  // Unchanged file: keep the warm mapping.
    } else {
      auto pack = core::WrapperPack::Open(pack_path_);
      if (pack.ok()) {
        next->pack = std::move(*pack);
      } else {
        std::fprintf(stderr,
                     "[repo] warning: %s — falling back to directory "
                     "backend\n",
                     pack.status().ToString().c_str());
        next->errors.push_back(pack_path_ + ": " + pack.status().ToString());
        new_pack_meta = {0, 0};
      }
    }
  }

  // Directory scan: the whole repository (directory backend) or the
  // overlay delta (pack backend). Incremental: a file whose (mtime,
  // size) is unchanged reuses the previous snapshot's parsed entry —
  // SIGHUP on a large repository re-parses only what changed.
  std::map<std::string, std::pair<uint64_t, uint64_t>> new_file_meta;
  size_t reused = 0;
  if (!root_.empty()) {
    Result<std::vector<std::string>> site_dirs = ListSubdirectories(root_);
    if (!site_dirs.ok()) {
      if (next->pack == nullptr) return site_dirs.status();
      // Pack-only serving with a missing overlay directory is fine.
    } else {
      for (const std::string& site_dir : *site_dirs) {
        std::string site = fs::path(site_dir).filename().string();
        Result<std::vector<std::string>> files = ListFiles(site_dir, kSuffix);
        if (!files.ok()) {
          next->errors.push_back(site_dir + ": " + files.status().ToString());
          continue;
        }
        for (const std::string& file : *files) {
          std::string attribute = fs::path(file).filename().string();
          attribute.resize(attribute.size() - (sizeof(kSuffix) - 1));
          auto meta = StatFile(file);
          new_file_meta[file] = meta;
          auto prev_meta = prev_file_meta.find(file);
          if (prev_meta != prev_file_meta.end() &&
              prev_meta->second == meta && meta.second != 0) {
            auto prev_entry = prev->wrappers.find({site, attribute});
            if (prev_entry != prev->wrappers.end()) {
              // Unchanged on disk: reuse the parsed wrapper and compiled
              // plan (shared, immutable). The response prefix and drift
              // state are (re)attached at swap time as always.
              Entry entry;
              entry.wrapper = prev_entry->second.wrapper;
              entry.record = prev_entry->second.record;
              entry.compiled = prev_entry->second.compiled;
              next->wrappers[{site, attribute}] = std::move(entry);
              ++reused;
              continue;
            }
          }
          Result<std::string> record = ReadFile(file);
          if (!record.ok()) {
            next->errors.push_back(file + ": " + record.status().ToString());
            continue;
          }
          Result<core::WrapperPtr> wrapper = core::DeserializeWrapper(*record);
          if (!wrapper.ok()) {
            next->errors.push_back(file + ": " + wrapper.status().ToString());
            continue;
          }
          Entry entry;
          entry.wrapper = std::move(*wrapper);
          entry.record = StripRecord(*record);
          // Compile once per load; every request then executes the plan.
          entry.compiled = core::CompiledWrapper::Compile(*entry.wrapper);
          next->wrappers[{site, attribute}] = std::move(entry);
        }
      }
    }
  } else if (next->pack == nullptr) {
    // No directory and no (working) pack: nothing to serve from.
    if (!next->errors.empty()) {
      return Status::FailedPrecondition(next->errors.back());
    }
    return Status::InvalidArgument("repository has neither root nor pack");
  }

  RepoMetrics& metrics = RepoMetrics::Get();
  metrics.reloads->Add(1);
  metrics.reload_entries_reused->Add(static_cast<int64_t>(reused));
  metrics.load_errors->Add(static_cast<int64_t>(next->errors.size()));
  std::shared_ptr<const Snapshot> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    file_meta_ = std::move(new_file_meta);
    pack_meta_ = new_pack_meta;
    SwapSnapshotLocked(std::move(next), fingerprint, &old);
  }
  RetireSnapshot(std::move(old));
  return Status::OK();
}

void WrapperRepository::SetDriftConfig(const DriftConfig& config) {
  drift_registry_->Configure(config);
}

void WrapperRepository::AttachDriftStates(Snapshot* next) {
  if (!drift_registry_->enabled()) return;
  for (auto& [key, entry] : next->wrappers) {
    entry.drift =
        drift_registry_->GetOrCreate(key.first, key.second, entry.record);
  }
  if (next->pack == nullptr) {
    // Prune detectors whose (site, attribute) vanished from disk. With a
    // pack the registry holds only pairs that served traffic, and the
    // overlay map is not the full universe — never prune there.
    const auto& live = next->wrappers;
    drift_registry_->PruneIf(
        [&live](const std::pair<std::string, std::string>& key) {
          return live.find(key) == live.end();
        });
  }
}

void WrapperRepository::SwapSnapshotLocked(
    std::shared_ptr<Snapshot> next, uint64_t fingerprint,
    std::shared_ptr<const Snapshot>* old) {
  RepoMetrics& metrics = RepoMetrics::Get();
  next->version = snapshot_->version + 1;
  AttachDriftStates(next.get());
  // The version is now known, so the constant response members can be
  // serialized per entry.
  for (auto& [key, entry] : next->wrappers) {
    entry.response_prefix =
        BuildResponsePrefix(key.first, key.second, entry.record, next->version);
  }
  metrics.wrappers->Set(static_cast<int64_t>(next->TotalWrapperCount()));
  metrics.version->Set(static_cast<int64_t>(next->version));
  metrics.pack_sites->Set(
      next->pack == nullptr
          ? 0
          : static_cast<int64_t>(next->pack->header().site_count));
  *old = std::move(snapshot_);
  snapshot_ = std::move(next);
  // The publish: from here every Pin() sees the new snapshot. Readers
  // mid-request keep the old one alive through their epoch pin.
  current_.store(snapshot_.get(), std::memory_order_seq_cst);
  loaded_fingerprint_ = fingerprint;
}

void WrapperRepository::RetireSnapshot(
    std::shared_ptr<const Snapshot> old) const {
  // Retire the replaced snapshot: stamped with the pre-advance epoch, it
  // is freed (the shared_ptr released) once every reader pinned before
  // the publish has unpinned — the per-shard quiescence point. The free
  // runs from whichever thread's ReclaimRetired() observes quiescence.
  // With a pack backend this is also what retires a *pack generation*:
  // the snapshot's shared mapping handle drops here, unmapping the old
  // file once no reader can still reference it.
  RepoMetrics& metrics = RepoMetrics::Get();
  metrics.snapshots_retired->Add(1);
  auto retired_at = std::chrono::steady_clock::now();
  epochs_.Retire([old = std::move(old), retired_at]() mutable {
    RepoMetrics& m = RepoMetrics::Get();
    m.reload_quiesce_micros->Record(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - retired_at)
            .count());
    old.reset();
    m.snapshots_freed->Add(1);
  });
  // Usually the old snapshot is already quiescent (requests are micro-
  // seconds, reloads are seconds apart) — try once, non-blocking; if a
  // reader is still pinned the next ReclaimRetired() picks it up.
  epochs_.TryReclaim();
}

Status WrapperRepository::PublishWrapper(const std::string& site,
                                         const std::string& attribute,
                                         const core::WrapperPtr& wrapper) {
  if (wrapper == nullptr) {
    return Status::InvalidArgument("PublishWrapper: null wrapper");
  }
  NTW_ASSIGN_OR_RETURN(std::string record, core::SerializeWrapper(*wrapper));
  bool persisted = false;
  uint64_t fingerprint = 0;
  if (!root_.empty()) {
    // Persist before publishing: a repair must survive a restart, and the
    // write-temp + rename keeps a concurrent Load() (or a crash) from ever
    // seeing a torn wrapper file. The dot prefix keeps the temp name out of
    // the ListFiles(".wrapper") scan until the rename. With a pack backend
    // this writes the *overlay* file that shadows the mapped entry.
    std::string dir = root_ + "/" + site;
    NTW_RETURN_IF_ERROR(MakeDirs(dir));
    std::string path = dir + "/" + attribute + kSuffix;
    std::string temp = dir + "/." + attribute + kSuffix + ".tmp";
    NTW_RETURN_IF_ERROR(WriteFile(temp, record + "\n"));
    std::error_code ec;
    fs::rename(temp, path, ec);
    if (ec) {
      return Status::Internal("PublishWrapper: rename " + temp + ": " +
                              ec.message());
    }
    // Recorded so the poll loop does not immediately re-Load what we just
    // wrote. A racing external publish can make this momentarily stale; the
    // next PollForChanges() then simply triggers a converging reload.
    fingerprint = DiskFingerprint();
    persisted = true;
  }

  Entry entry;
  entry.wrapper = wrapper;
  entry.record = record;
  entry.compiled = core::CompiledWrapper::Compile(*wrapper);

  std::shared_ptr<const Snapshot> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Pack-only mode persisted nothing: keep the incumbent fingerprint
    // (read under mu_ — a concurrent Load() writes it there too).
    if (!persisted) fingerprint = loaded_fingerprint_;
    // Snapshots are non-copyable (they own lazy caches); clone the
    // immutable parts and start with cold caches — entries and fused
    // extractors re-materialize against the bumped version, so stale
    // response prefixes can never leak across the publish.
    auto next = NewSnapshot();
    next->wrappers = snapshot_->wrappers;
    next->errors = snapshot_->errors;
    next->pack = snapshot_->pack;
    next->wrappers[{site, attribute}] = std::move(entry);
    // Force a re-baseline: drop the drifted detector so AttachDriftStates
    // creates a fresh one for the repaired wrapper (its healthy signal
    // profile is different).
    drift_registry_->Drop(site, attribute);
    SwapSnapshotLocked(std::move(next), fingerprint, &old);
  }
  RepoMetrics::Get().publishes->Add(1);
  RetireSnapshot(std::move(old));
  return Status::OK();
}

std::shared_ptr<const WrapperRepository::Snapshot> WrapperRepository::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

void WrapperRepository::ReclaimRetired() const {
  if (!epochs_.has_retired()) return;
  epochs_.TryReclaim();
}

bool WrapperRepository::PollForChanges() const {
  uint64_t fingerprint = DiskFingerprint();
  std::lock_guard<std::mutex> lock(mu_);
  return fingerprint != loaded_fingerprint_;
}

void WrapperRepository::EnsureLedgerLoadedLocked() const {
  if (ledger_loaded_) return;
  ledger_loaded_ = true;
  Result<std::string> body = ReadFile(root_ + "/.repairs.tsv");
  if (!body.ok()) return;  // No ledger yet — a fresh repository.
  for (const std::string& line : Split(*body, '\n')) {
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 7) continue;  // Torn tail line: skip, keep rest.
    RepairRecord record;
    record.sequence = std::strtoll(fields[0].c_str(), nullptr, 10);
    record.site = fields[1];
    record.attribute = fields[2];
    record.incumbent_score = std::strtod(fields[3].c_str(), nullptr);
    record.repair_score = std::strtod(fields[4].c_str(), nullptr);
    record.labels = std::strtoll(fields[5].c_str(), nullptr, 10);
    record.published_version =
        std::strtoull(fields[6].c_str(), nullptr, 10);
    if (record.sequence > ledger_sequence_) {
      ledger_sequence_ = record.sequence;
    }
    ledger_.push_back(std::move(record));
    if (ledger_.size() > kLedgerCapacity) {
      ledger_.erase(ledger_.begin());
    }
  }
}

void WrapperRepository::RecordRepair(RepairRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureLedgerLoadedLocked();
  record.sequence = ++ledger_sequence_;
  record.published_version = snapshot_->version;
  // Durable first (append-only; a torn tail line is skipped on reload),
  // then the in-memory tail /driftz serves from.
  std::string line = StrFormat(
      "%lld\t%s\t%s\t%.17g\t%.17g\t%lld\t%llu\n",
      static_cast<long long>(record.sequence), record.site.c_str(),
      record.attribute.c_str(), record.incumbent_score, record.repair_score,
      static_cast<long long>(record.labels),
      static_cast<unsigned long long>(record.published_version));
  std::FILE* file = std::fopen((root_ + "/.repairs.tsv").c_str(), "ab");
  if (file != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file);
    std::fclose(file);
  }
  ledger_.push_back(std::move(record));
  if (ledger_.size() > kLedgerCapacity) {
    ledger_.erase(ledger_.begin());
  }
}

std::vector<WrapperRepository::RepairRecord> WrapperRepository::repair_ledger()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureLedgerLoadedLocked();
  return ledger_;
}

}  // namespace ntw::serve
