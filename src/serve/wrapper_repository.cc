#include "serve/wrapper_repository.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/file_util.h"
#include "common/strings.h"
#include "common/obs_export.h"
#include "core/wrapper_store.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace ntw::serve {

namespace fs = std::filesystem;

namespace {

struct RepoMetrics {
  obs::Counter* reloads;
  obs::Counter* load_errors;
  obs::Counter* snapshots_retired;
  obs::Counter* snapshots_freed;
  obs::Counter* publishes;
  obs::Gauge* wrappers;
  obs::Gauge* version;
  /// Time from a snapshot's retirement (new one published) to its actual
  /// free — how long the epoch quiescence point took to pass. Large
  /// values mean a reader pinned an old snapshot for a long time.
  obs::Histogram* reload_quiesce_micros;

  static RepoMetrics& Get() {
    static RepoMetrics m{
        obs::Registry::Global().GetCounter("ntw.repo.reloads"),
        obs::Registry::Global().GetCounter("ntw.repo.load_errors"),
        obs::Registry::Global().GetCounter("ntw.repo.snapshots_retired"),
        obs::Registry::Global().GetCounter("ntw.repo.snapshots_freed"),
        obs::Registry::Global().GetCounter("ntw.repo.publishes"),
        obs::Registry::Global().GetGauge("ntw.repo.wrappers"),
        obs::Registry::Global().GetGauge("ntw.repo.version"),
        obs::Registry::Global().GetHistogram(
            "ntw.serve.reload_quiesce_micros"),
    };
    return m;
  }
};

constexpr char kSuffix[] = ".wrapper";

/// FNV-1a over a byte view — the fingerprint accumulator.
void HashBytes(std::string_view bytes, uint64_t* hash) {
  for (char c : bytes) {
    *hash ^= static_cast<unsigned char>(c);
    *hash *= 1099511628211ULL;
  }
}

void HashInt(uint64_t value, uint64_t* hash) {
  for (int i = 0; i < 8; ++i) {
    *hash ^= (value >> (i * 8)) & 0xFF;
    *hash *= 1099511628211ULL;
  }
}

/// Every /extract response member before "values" is fixed per entry
/// within a snapshot; serialize once through the same JsonWriter calls
/// the service used to make per request — stripping the enclosing braces
/// leaves exactly the member bytes to splice.
void BuildResponsePrefixes(WrapperRepository::Snapshot* next) {
  for (auto& [key, entry] : next->wrappers) {
    obs::JsonWriter json;
    BeginSchemaDocument(json, "ntw-serve-extract", 1);
    json.KV("site", key.first);
    json.KV("attribute", key.second);
    json.KV("wrapper", entry.record);
    json.KV("repository_version", static_cast<int64_t>(next->version));
    json.EndObject();
    std::string document = json.Take();
    entry.response_prefix = document.substr(1, document.size() - 2);
  }
}

}  // namespace

const WrapperRepository::Entry* WrapperRepository::Snapshot::Find(
    const std::string& site, const std::string& attribute) const {
  auto it = wrappers.find({site, attribute});
  return it == wrappers.end() ? nullptr : &it->second;
}

uint64_t WrapperRepository::DiskFingerprint() const {
  // (path, mtime, size) of every wrapper file, folded in sorted order.
  // Any publish — even one keeping mtime granularity-equal sizes — that
  // adds, removes or rewrites a file with a new timestamp changes this.
  uint64_t hash = 1469598103934665603ULL;  // FNV offset basis.
  Result<std::vector<std::string>> sites = ListSubdirectories(root_);
  if (!sites.ok()) return hash;
  for (const std::string& site_dir : *sites) {
    Result<std::vector<std::string>> files = ListFiles(site_dir, kSuffix);
    if (!files.ok()) continue;
    for (const std::string& file : *files) {
      std::error_code ec;
      uint64_t mtime = static_cast<uint64_t>(
          fs::last_write_time(file, ec).time_since_epoch().count());
      uint64_t size = ec ? 0 : static_cast<uint64_t>(fs::file_size(file, ec));
      HashBytes(file, &hash);
      HashInt(mtime, &hash);
      HashInt(size, &hash);
    }
  }
  return hash;
}

Status WrapperRepository::Load() {
  uint64_t fingerprint = DiskFingerprint();
  NTW_ASSIGN_OR_RETURN(std::vector<std::string> site_dirs,
                       ListSubdirectories(root_));
  auto next = std::make_shared<Snapshot>();
  for (const std::string& site_dir : site_dirs) {
    std::string site = fs::path(site_dir).filename().string();
    Result<std::vector<std::string>> files = ListFiles(site_dir, kSuffix);
    if (!files.ok()) {
      next->errors.push_back(site_dir + ": " + files.status().ToString());
      continue;
    }
    for (const std::string& file : *files) {
      std::string attribute = fs::path(file).filename().string();
      attribute.resize(attribute.size() - (sizeof(kSuffix) - 1));
      Result<std::string> record = ReadFile(file);
      if (!record.ok()) {
        next->errors.push_back(file + ": " + record.status().ToString());
        continue;
      }
      Result<core::WrapperPtr> wrapper = core::DeserializeWrapper(*record);
      if (!wrapper.ok()) {
        next->errors.push_back(file + ": " + wrapper.status().ToString());
        continue;
      }
      std::string_view trimmed = *record;
      while (!trimmed.empty() &&
             (trimmed.back() == '\n' || trimmed.back() == '\r')) {
        trimmed.remove_suffix(1);
      }
      Entry entry{std::move(*wrapper), std::string(trimmed), nullptr, {},
                  nullptr};
      // Compile once per load; every request then executes the plan.
      entry.compiled = core::CompiledWrapper::Compile(*entry.wrapper);
      next->wrappers[{site, attribute}] = std::move(entry);
    }
  }
  RepoMetrics& metrics = RepoMetrics::Get();
  metrics.reloads->Add(1);
  metrics.load_errors->Add(static_cast<int64_t>(next->errors.size()));
  std::shared_ptr<const Snapshot> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SwapSnapshotLocked(std::move(next), fingerprint, &old);
  }
  RetireSnapshot(std::move(old));
  return Status::OK();
}

void WrapperRepository::SetDriftConfig(const DriftConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  drift_config_ = config;
  drift_enabled_ = config.enabled;
  if (!drift_enabled_) drift_states_.clear();
}

void WrapperRepository::AttachDriftStatesLocked(Snapshot* next) {
  if (!drift_enabled_) return;
  for (auto& [key, entry] : next->wrappers) {
    auto it = drift_states_.find(key);
    if (it != drift_states_.end() && it->second->record() == entry.record) {
      // Unchanged wrapper: carry the detector (and its baseline) over so
      // a routine reload does not restart warmup.
      entry.drift = it->second;
    } else {
      entry.drift = std::make_shared<DriftState>(key.first, key.second,
                                                 entry.record, drift_config_);
      drift_states_[key] = entry.drift;
    }
  }
  // Prune detectors whose (site, attribute) vanished from disk.
  for (auto it = drift_states_.begin(); it != drift_states_.end();) {
    if (next->wrappers.find(it->first) == next->wrappers.end()) {
      it = drift_states_.erase(it);
    } else {
      ++it;
    }
  }
}

void WrapperRepository::SwapSnapshotLocked(
    std::shared_ptr<Snapshot> next, uint64_t fingerprint,
    std::shared_ptr<const Snapshot>* old) {
  RepoMetrics& metrics = RepoMetrics::Get();
  next->version = snapshot_->version + 1;
  AttachDriftStatesLocked(next.get());
  // The version is now known, so the constant response members can be
  // serialized per entry.
  BuildResponsePrefixes(next.get());
  metrics.wrappers->Set(static_cast<int64_t>(next->wrappers.size()));
  metrics.version->Set(static_cast<int64_t>(next->version));
  *old = std::move(snapshot_);
  snapshot_ = std::move(next);
  // The publish: from here every Pin() sees the new snapshot. Readers
  // mid-request keep the old one alive through their epoch pin.
  current_.store(snapshot_.get(), std::memory_order_seq_cst);
  loaded_fingerprint_ = fingerprint;
}

void WrapperRepository::RetireSnapshot(
    std::shared_ptr<const Snapshot> old) const {
  // Retire the replaced snapshot: stamped with the pre-advance epoch, it
  // is freed (the shared_ptr released) once every reader pinned before
  // the publish has unpinned — the per-shard quiescence point. The free
  // runs from whichever thread's ReclaimRetired() observes quiescence.
  RepoMetrics& metrics = RepoMetrics::Get();
  metrics.snapshots_retired->Add(1);
  auto retired_at = std::chrono::steady_clock::now();
  epochs_.Retire([old = std::move(old), retired_at]() mutable {
    RepoMetrics& m = RepoMetrics::Get();
    m.reload_quiesce_micros->Record(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - retired_at)
            .count());
    old.reset();
    m.snapshots_freed->Add(1);
  });
  // Usually the old snapshot is already quiescent (requests are micro-
  // seconds, reloads are seconds apart) — try once, non-blocking; if a
  // reader is still pinned the next ReclaimRetired() picks it up.
  epochs_.TryReclaim();
}

Status WrapperRepository::PublishWrapper(const std::string& site,
                                         const std::string& attribute,
                                         const core::WrapperPtr& wrapper) {
  if (wrapper == nullptr) {
    return Status::InvalidArgument("PublishWrapper: null wrapper");
  }
  NTW_ASSIGN_OR_RETURN(std::string record, core::SerializeWrapper(*wrapper));
  // Persist before publishing: a repair must survive a restart, and the
  // write-temp + rename keeps a concurrent Load() (or a crash) from ever
  // seeing a torn wrapper file. The dot prefix keeps the temp name out of
  // the ListFiles(".wrapper") scan until the rename.
  std::string dir = root_ + "/" + site;
  NTW_RETURN_IF_ERROR(MakeDirs(dir));
  std::string path = dir + "/" + attribute + kSuffix;
  std::string temp = dir + "/." + attribute + kSuffix + ".tmp";
  NTW_RETURN_IF_ERROR(WriteFile(temp, record + "\n"));
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) {
    return Status::Internal("PublishWrapper: rename " + temp + ": " +
                            ec.message());
  }
  // Recorded so the poll loop does not immediately re-Load what we just
  // wrote. A racing external publish can make this momentarily stale; the
  // next PollForChanges() then simply triggers a converging reload.
  uint64_t fingerprint = DiskFingerprint();

  Entry entry;
  entry.wrapper = wrapper;
  entry.record = record;
  entry.compiled = core::CompiledWrapper::Compile(*wrapper);

  std::shared_ptr<const Snapshot> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto next = std::make_shared<Snapshot>(*snapshot_);
    next->wrappers[{site, attribute}] = std::move(entry);
    if (drift_enabled_) {
      // Force a re-baseline: drop the drifted detector so
      // AttachDriftStatesLocked creates a fresh one for the repaired
      // wrapper (its healthy signal profile is different).
      drift_states_.erase({site, attribute});
    }
    SwapSnapshotLocked(std::move(next), fingerprint, &old);
  }
  RepoMetrics::Get().publishes->Add(1);
  RetireSnapshot(std::move(old));
  return Status::OK();
}

std::shared_ptr<const WrapperRepository::Snapshot> WrapperRepository::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

void WrapperRepository::ReclaimRetired() const {
  if (!epochs_.has_retired()) return;
  epochs_.TryReclaim();
}

bool WrapperRepository::PollForChanges() const {
  uint64_t fingerprint = DiskFingerprint();
  std::lock_guard<std::mutex> lock(mu_);
  return fingerprint != loaded_fingerprint_;
}

void WrapperRepository::EnsureLedgerLoadedLocked() const {
  if (ledger_loaded_) return;
  ledger_loaded_ = true;
  Result<std::string> body = ReadFile(root_ + "/.repairs.tsv");
  if (!body.ok()) return;  // No ledger yet — a fresh repository.
  for (const std::string& line : Split(*body, '\n')) {
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 7) continue;  // Torn tail line: skip, keep rest.
    RepairRecord record;
    record.sequence = std::strtoll(fields[0].c_str(), nullptr, 10);
    record.site = fields[1];
    record.attribute = fields[2];
    record.incumbent_score = std::strtod(fields[3].c_str(), nullptr);
    record.repair_score = std::strtod(fields[4].c_str(), nullptr);
    record.labels = std::strtoll(fields[5].c_str(), nullptr, 10);
    record.published_version =
        std::strtoull(fields[6].c_str(), nullptr, 10);
    if (record.sequence > ledger_sequence_) {
      ledger_sequence_ = record.sequence;
    }
    ledger_.push_back(std::move(record));
    if (ledger_.size() > kLedgerCapacity) {
      ledger_.erase(ledger_.begin());
    }
  }
}

void WrapperRepository::RecordRepair(RepairRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureLedgerLoadedLocked();
  record.sequence = ++ledger_sequence_;
  record.published_version = snapshot_->version;
  // Durable first (append-only; a torn tail line is skipped on reload),
  // then the in-memory tail /driftz serves from.
  std::string line = StrFormat(
      "%lld\t%s\t%s\t%.17g\t%.17g\t%lld\t%llu\n",
      static_cast<long long>(record.sequence), record.site.c_str(),
      record.attribute.c_str(), record.incumbent_score, record.repair_score,
      static_cast<long long>(record.labels),
      static_cast<unsigned long long>(record.published_version));
  std::FILE* file = std::fopen((root_ + "/.repairs.tsv").c_str(), "ab");
  if (file != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file);
    std::fclose(file);
  }
  ledger_.push_back(std::move(record));
  if (ledger_.size() > kLedgerCapacity) {
    ledger_.erase(ledger_.begin());
  }
}

std::vector<WrapperRepository::RepairRecord> WrapperRepository::repair_ledger()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureLedgerLoadedLocked();
  return ledger_;
}

}  // namespace ntw::serve
