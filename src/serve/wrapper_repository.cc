#include "serve/wrapper_repository.h"

#include <chrono>
#include <filesystem>

#include "common/file_util.h"
#include "common/obs_export.h"
#include "core/wrapper_store.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace ntw::serve {

namespace fs = std::filesystem;

namespace {

struct RepoMetrics {
  obs::Counter* reloads;
  obs::Counter* load_errors;
  obs::Counter* snapshots_retired;
  obs::Counter* snapshots_freed;
  obs::Gauge* wrappers;
  obs::Gauge* version;
  /// Time from a snapshot's retirement (new one published) to its actual
  /// free — how long the epoch quiescence point took to pass. Large
  /// values mean a reader pinned an old snapshot for a long time.
  obs::Histogram* reload_quiesce_micros;

  static RepoMetrics& Get() {
    static RepoMetrics m{
        obs::Registry::Global().GetCounter("ntw.repo.reloads"),
        obs::Registry::Global().GetCounter("ntw.repo.load_errors"),
        obs::Registry::Global().GetCounter("ntw.repo.snapshots_retired"),
        obs::Registry::Global().GetCounter("ntw.repo.snapshots_freed"),
        obs::Registry::Global().GetGauge("ntw.repo.wrappers"),
        obs::Registry::Global().GetGauge("ntw.repo.version"),
        obs::Registry::Global().GetHistogram(
            "ntw.serve.reload_quiesce_micros"),
    };
    return m;
  }
};

constexpr char kSuffix[] = ".wrapper";

/// FNV-1a over a byte view — the fingerprint accumulator.
void HashBytes(std::string_view bytes, uint64_t* hash) {
  for (char c : bytes) {
    *hash ^= static_cast<unsigned char>(c);
    *hash *= 1099511628211ULL;
  }
}

void HashInt(uint64_t value, uint64_t* hash) {
  for (int i = 0; i < 8; ++i) {
    *hash ^= (value >> (i * 8)) & 0xFF;
    *hash *= 1099511628211ULL;
  }
}

}  // namespace

const WrapperRepository::Entry* WrapperRepository::Snapshot::Find(
    const std::string& site, const std::string& attribute) const {
  auto it = wrappers.find({site, attribute});
  return it == wrappers.end() ? nullptr : &it->second;
}

uint64_t WrapperRepository::DiskFingerprint() const {
  // (path, mtime, size) of every wrapper file, folded in sorted order.
  // Any publish — even one keeping mtime granularity-equal sizes — that
  // adds, removes or rewrites a file with a new timestamp changes this.
  uint64_t hash = 1469598103934665603ULL;  // FNV offset basis.
  Result<std::vector<std::string>> sites = ListSubdirectories(root_);
  if (!sites.ok()) return hash;
  for (const std::string& site_dir : *sites) {
    Result<std::vector<std::string>> files = ListFiles(site_dir, kSuffix);
    if (!files.ok()) continue;
    for (const std::string& file : *files) {
      std::error_code ec;
      uint64_t mtime = static_cast<uint64_t>(
          fs::last_write_time(file, ec).time_since_epoch().count());
      uint64_t size = ec ? 0 : static_cast<uint64_t>(fs::file_size(file, ec));
      HashBytes(file, &hash);
      HashInt(mtime, &hash);
      HashInt(size, &hash);
    }
  }
  return hash;
}

Status WrapperRepository::Load() {
  uint64_t fingerprint = DiskFingerprint();
  NTW_ASSIGN_OR_RETURN(std::vector<std::string> site_dirs,
                       ListSubdirectories(root_));
  auto next = std::make_shared<Snapshot>();
  for (const std::string& site_dir : site_dirs) {
    std::string site = fs::path(site_dir).filename().string();
    Result<std::vector<std::string>> files = ListFiles(site_dir, kSuffix);
    if (!files.ok()) {
      next->errors.push_back(site_dir + ": " + files.status().ToString());
      continue;
    }
    for (const std::string& file : *files) {
      std::string attribute = fs::path(file).filename().string();
      attribute.resize(attribute.size() - (sizeof(kSuffix) - 1));
      Result<std::string> record = ReadFile(file);
      if (!record.ok()) {
        next->errors.push_back(file + ": " + record.status().ToString());
        continue;
      }
      Result<core::WrapperPtr> wrapper = core::DeserializeWrapper(*record);
      if (!wrapper.ok()) {
        next->errors.push_back(file + ": " + wrapper.status().ToString());
        continue;
      }
      std::string_view trimmed = *record;
      while (!trimmed.empty() &&
             (trimmed.back() == '\n' || trimmed.back() == '\r')) {
        trimmed.remove_suffix(1);
      }
      Entry entry{std::move(*wrapper), std::string(trimmed), nullptr, {}};
      // Compile once per load; every request then executes the plan.
      entry.compiled = core::CompiledWrapper::Compile(*entry.wrapper);
      next->wrappers[{site, attribute}] = std::move(entry);
    }
  }
  RepoMetrics& metrics = RepoMetrics::Get();
  metrics.reloads->Add(1);
  metrics.load_errors->Add(static_cast<int64_t>(next->errors.size()));
  metrics.wrappers->Set(static_cast<int64_t>(next->wrappers.size()));
  std::shared_ptr<const Snapshot> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    next->version = snapshot_->version + 1;
    // The version is now known, so every /extract response member before
    // "values" is fixed per entry. Serialize once through the same
    // JsonWriter calls the service used to make per request — stripping
    // the enclosing braces leaves exactly the member bytes to splice.
    for (auto& [key, entry] : next->wrappers) {
      obs::JsonWriter json;
      BeginSchemaDocument(json, "ntw-serve-extract", 1);
      json.KV("site", key.first);
      json.KV("attribute", key.second);
      json.KV("wrapper", entry.record);
      json.KV("repository_version", static_cast<int64_t>(next->version));
      json.EndObject();
      std::string document = json.Take();
      entry.response_prefix = document.substr(1, document.size() - 2);
    }
    metrics.version->Set(static_cast<int64_t>(next->version));
    old = std::move(snapshot_);
    snapshot_ = std::move(next);
    // The publish: from here every Pin() sees the new snapshot. Readers
    // mid-request keep the old one alive through their epoch pin.
    current_.store(snapshot_.get(), std::memory_order_seq_cst);
    loaded_fingerprint_ = fingerprint;
  }
  // Retire the replaced snapshot: stamped with the pre-advance epoch, it
  // is freed (the shared_ptr released) once every reader pinned before
  // the publish has unpinned — the per-shard quiescence point. The free
  // runs from whichever thread's ReclaimRetired() observes quiescence.
  metrics.snapshots_retired->Add(1);
  auto retired_at = std::chrono::steady_clock::now();
  epochs_.Retire([old = std::move(old), retired_at]() mutable {
    RepoMetrics& m = RepoMetrics::Get();
    m.reload_quiesce_micros->Record(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - retired_at)
            .count());
    old.reset();
    m.snapshots_freed->Add(1);
  });
  // Usually the old snapshot is already quiescent (requests are micro-
  // seconds, reloads are seconds apart) — try once, non-blocking; if a
  // reader is still pinned the next ReclaimRetired() picks it up.
  epochs_.TryReclaim();
  return Status::OK();
}

std::shared_ptr<const WrapperRepository::Snapshot> WrapperRepository::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

void WrapperRepository::ReclaimRetired() const {
  if (!epochs_.has_retired()) return;
  epochs_.TryReclaim();
}

bool WrapperRepository::PollForChanges() const {
  uint64_t fingerprint = DiskFingerprint();
  std::lock_guard<std::mutex> lock(mu_);
  return fingerprint != loaded_fingerprint_;
}

}  // namespace ntw::serve
