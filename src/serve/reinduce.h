#ifndef NTW_SERVE_REINDUCE_H_
#define NTW_SERVE_REINDUCE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/wrapper.h"
#include "serve/drift.h"
#include "serve/wrapper_repository.h"

namespace ntw::serve {

struct ReinduceOptions {
  int threads = 1;
  /// Tasks queued beyond this are dropped (the state re-enters cooldown).
  size_t max_queue = 16;
  /// Minimum dictionary labels found on the retained pages; below this
  /// re-induction fails rather than learn from near-nothing.
  size_t min_labels = 2;
  /// Assumed annotator parameters for the re-induction ranker — the
  /// dictionary labeler is precise (p) but incomplete (r), matching the
  /// paper's business-name annotator regime.
  double annotator_precision = 0.98;
  double annotator_recall = 0.5;
};

/// One queued repair: everything the worker needs, captured at drift time
/// so re-induction is independent of later snapshot churn.
struct ReinduceTask {
  std::string site;
  std::string attribute;
  /// Serialized record of the wrapper that drifted — the incumbent the
  /// repair must beat, and the source of the wrapper kind to re-learn.
  std::string incumbent_record;
  /// Retained request bodies (the drift ring).
  std::vector<std::string> pages;
  /// Values the incumbent extracted while healthy — the re-annotation
  /// dictionary (Lerman-style wrapper maintenance: the old wrapper's
  /// output labels the new template).
  std::vector<std::string> dictionary;
  /// The drifted detector; re-armed via cooldown when the repair is
  /// rejected. May be null in tests.
  std::shared_ptr<DriftState> state;
};

/// Background re-induction worker (DESIGN.md §13): drains drifted
/// (site, attribute) tasks, re-runs NTW enumerate+rank on the retained
/// pages with dictionary re-annotation, and hot-publishes the winner via
/// WrapperRepository::PublishWrapper — but only when it strictly beats
/// the incumbent under the same ranker on the same pages.
class ReinduceWorker {
 public:
  explicit ReinduceWorker(WrapperRepository* repository,
                          ReinduceOptions options = {});
  ~ReinduceWorker();

  ReinduceWorker(const ReinduceWorker&) = delete;
  ReinduceWorker& operator=(const ReinduceWorker&) = delete;

  void Start();
  /// Stops after in-flight tasks finish; queued tasks are dropped into
  /// cooldown. Idempotent; the destructor calls it.
  void Stop();

  /// False when stopped or the queue is full (the caller should put the
  /// state into cooldown).
  bool Enqueue(ReinduceTask task);

  /// Blocks until the queue is empty and no task is in flight. Tests only.
  void WaitIdle();

  /// The outcome of one re-induction, before publish.
  struct Repair {
    core::WrapperPtr wrapper;
    std::string record;
    double score = 0.0;
    double incumbent_score = 0.0;
    bool beats_incumbent = false;
    size_t labels = 0;
  };

  /// The deterministic re-induction pipeline: parse retained pages,
  /// re-annotate with the dictionary, learn a wrapper of the incumbent's
  /// kind with LearnNoiseTolerant, and score incumbent vs candidate with
  /// the identical ranker. Exposed so tests can compute the exact
  /// expected repair for byte-identity assertions.
  static Result<Repair> Reinduce(const ReinduceTask& task,
                                 const ReinduceOptions& options);

 private:
  void Loop();
  void Process(ReinduceTask task);

  WrapperRepository* repository_;
  ReinduceOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<ReinduceTask> queue_;
  int active_ = 0;
  bool stopping_ = false;
  bool started_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ntw::serve

#endif  // NTW_SERVE_REINDUCE_H_
