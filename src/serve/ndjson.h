#ifndef NTW_SERVE_NDJSON_H_
#define NTW_SERVE_NDJSON_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace ntw::serve {

/// One line of a `POST /extract_batch` body. The wire format is NDJSON:
/// every line is a flat JSON object with string values,
///
///   {"id": "page-17", "html": "<html>...</html>"}
///
/// `html` is required, `id` is optional (echoed back for correlation),
/// unknown string-valued keys are ignored. The parser accepts exactly the
/// escapes of RFC 8259 including \uXXXX surrogate pairs; anything else is
/// a ParseError so a malformed line yields a per-line error record
/// instead of silently extracting from garbage.
struct BatchLine {
  std::string id;
  std::string html;
  bool has_id = false;
};

Result<BatchLine> ParseBatchLine(std::string_view line);

}  // namespace ntw::serve

#endif  // NTW_SERVE_NDJSON_H_
