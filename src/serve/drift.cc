#include "serve/drift.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace ntw::serve {

namespace {

/// Global drift instruments. Per-page observation costs no global counter
/// add — per-state totals live in the stripes; only rare transitions
/// (evaluations, triggers, cooldowns) are exported.
struct DriftMetrics {
  obs::Counter* evaluations;
  obs::Counter* events;
  obs::Counter* suppressed_hysteresis;
  obs::Counter* pages_retained;
  obs::Counter* samples_taken;
  obs::Counter* cooldowns;

  static DriftMetrics& Get() {
    static DriftMetrics m{
        obs::Registry::Global().GetCounter("ntw.serve.drift_evaluations"),
        obs::Registry::Global().GetCounter("ntw.serve.drift_events"),
        obs::Registry::Global().GetCounter(
            "ntw.serve.drift_suppressed_hysteresis"),
        obs::Registry::Global().GetCounter("ntw.serve.drift_pages_retained"),
        obs::Registry::Global().GetCounter("ntw.serve.drift_samples_taken"),
        obs::Registry::Global().GetCounter("ntw.serve.drift_cooldowns"),
    };
    return m;
  }
};

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = 1469598103934665603ULL;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

DriftState::DriftState(std::string site, std::string attribute,
                       std::string record, const DriftConfig& config)
    : site_(std::move(site)),
      attribute_(std::move(attribute)),
      record_(std::move(record)),
      config_(config) {}

const char* DriftState::PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kWarmup:
      return "warmup";
    case Phase::kSteady:
      return "steady";
    case Phase::kCollecting:
      return "collecting";
    case Phase::kQueued:
      return "queued";
    case Phase::kCooldown:
      return "cooldown";
  }
  return "unknown";
}

bool DriftState::FilterTest(uint64_t hash) const {
  size_t b1 = hash & (kFilterWords * 64 - 1);
  size_t b2 = (hash >> 32) & (kFilterWords * 64 - 1);
  return (filter_[b1 >> 6] >> (b1 & 63)) & 1 &&
         (filter_[b2 >> 6] >> (b2 & 63)) & 1;
}

void DriftState::FilterInsert(uint64_t hash) {
  size_t b1 = hash & (kFilterWords * 64 - 1);
  size_t b2 = (hash >> 32) & (kFilterWords * 64 - 1);
  filter_[b1 >> 6] |= uint64_t{1} << (b1 & 63);
  filter_[b2 >> 6] |= uint64_t{1} << (b2 & 63);
}

DriftState::Action DriftState::Observe(int shard,
                                       const std::string_view* values,
                                       size_t count,
                                       const std::string& page_html) {
  for (;;) {
    switch (phase()) {
      case Phase::kWarmup: {
        std::lock_guard<std::mutex> lock(mu_);
        // Warmup may have finished while we waited for the lock.
        if (static_cast<Phase>(phase_.load(std::memory_order_relaxed)) !=
            Phase::kWarmup) {
          continue;
        }
        ObserveWarmupLocked(values, count);
        return Action::kNone;
      }
      case Phase::kSteady:
        return ObserveSteady(shard, values, count);
      case Phase::kCollecting: {
        std::lock_guard<std::mutex> lock(mu_);
        if (static_cast<Phase>(phase_.load(std::memory_order_relaxed)) !=
            Phase::kCollecting) {
          continue;
        }
        // Bounded ring: copying the body is fine here — collection only
        // runs on the (rare) drifted path, never in steady state.
        bool fits =
            retained_bytes_ + page_html.size() <= config_.retain_bytes;
        if (retained_.empty() || fits) {
          retained_.push_back(page_html);
          retained_bytes_ += page_html.size();
          DriftMetrics::Get().pages_retained->Add(1);
        }
        // Full on the page cap, or as soon as the byte cap blocks another
        // page — with ≥1 page retained, waiting longer can never help.
        bool full =
            retained_.size() >= static_cast<size_t>(std::max(
                                    1, config_.retain_pages)) ||
            !fits;
        if (full) {
          phase_.store(static_cast<int>(Phase::kQueued),
                       std::memory_order_release);
          return Action::kReinduce;
        }
        return Action::kNone;
      }
      case Phase::kQueued:
        return Action::kNone;
      case Phase::kCooldown: {
        // Exactly one observer sees the 1→0 transition and re-arms.
        if (cooldown_left_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          Totals totals = MergeStripes();
          last_pages_.store(totals.pages, std::memory_order_relaxed);
          last_empty_.store(totals.empty_pages, std::memory_order_relaxed);
          last_values_.store(totals.values, std::memory_order_relaxed);
          last_value_bytes_.store(totals.value_bytes,
                                  std::memory_order_relaxed);
          last_known_.store(totals.known_values, std::memory_order_relaxed);
          empty_streak_.store(0, std::memory_order_relaxed);
          hysteresis_.store(0, std::memory_order_relaxed);
          tick_.store(0, std::memory_order_relaxed);
          phase_.store(static_cast<int>(Phase::kSteady),
                       std::memory_order_release);
        }
        return Action::kNone;
      }
    }
  }
}

void DriftState::ObserveWarmupLocked(const std::string_view* values,
                                     size_t count) {
  ++warmup_seen_;
  int filter_half = std::max(1, config_.warmup_pages / 2);
  bool building_filter = warmup_seen_ <= filter_half;
  if (count == 0) {
    ++warm_empty_;
  } else {
    warm_values_ += static_cast<int64_t>(count);
    for (size_t i = 0; i < count; ++i) {
      warm_value_bytes_ += static_cast<int64_t>(values[i].size());
      uint64_t hash = Fnv1a(values[i]);
      if (building_filter) {
        FilterInsert(hash);
        if (dictionary_.size() < config_.dictionary_values &&
            dictionary_bytes_ + values[i].size() <=
                config_.dictionary_bytes) {
          bool seen = false;
          for (const std::string& entry : dictionary_) {
            if (entry == values[i]) {
              seen = true;
              break;
            }
          }
          if (!seen) {
            dictionary_.emplace_back(values[i]);
            dictionary_bytes_ += values[i].size();
          }
        }
      } else {
        // Second half: measure how often a healthy extraction repeats a
        // first-half value — the baseline the likelihood signal is
        // judged against.
        ++warm_probe_values_;
        if (FilterTest(hash)) ++warm_probe_known_;
      }
    }
  }
  if (warmup_seen_ >= std::max(1, config_.warmup_pages)) {
    FinishWarmupLocked();
  }
}

void DriftState::FinishWarmupLocked() {
  baseline_.pages = warmup_seen_;
  baseline_.empty_ratio =
      static_cast<double>(warm_empty_) / static_cast<double>(warmup_seen_);
  int64_t nonempty = warmup_seen_ - warm_empty_;
  baseline_.mean_values_per_page =
      nonempty > 0
          ? static_cast<double>(warm_values_) / static_cast<double>(nonempty)
          : 0.0;
  baseline_.mean_value_length =
      warm_values_ > 0 ? static_cast<double>(warm_value_bytes_) /
                             static_cast<double>(warm_values_)
                       : 0.0;
  baseline_.known_ratio =
      warm_probe_values_ > 0 ? static_cast<double>(warm_probe_known_) /
                                   static_cast<double>(warm_probe_values_)
                             : 0.0;
  baseline_.armed_empty = baseline_.empty_ratio <= config_.empty_arm_ratio;
  baseline_.armed_likelihood =
      baseline_.known_ratio >= config_.likelihood_arm_floor;
  // The release store publishes the baseline and filter to steady readers.
  phase_.store(static_cast<int>(Phase::kSteady), std::memory_order_release);
}

DriftState::Action DriftState::ObserveSteady(int shard,
                                             const std::string_view* values,
                                             size_t count) {
  Stripe& stripe = stripes_[static_cast<size_t>(shard) & (kStripes - 1)];
  stripe.pages.fetch_add(1, std::memory_order_relaxed);
  if (count == 0) {
    stripe.empty_pages.fetch_add(1, std::memory_order_relaxed);
    empty_streak_.fetch_add(1, std::memory_order_relaxed);
  } else {
    empty_streak_.store(0, std::memory_order_relaxed);
    int64_t bytes = 0;
    int64_t known = 0;
    for (size_t i = 0; i < count; ++i) {
      bytes += static_cast<int64_t>(values[i].size());
      if (FilterTest(Fnv1a(values[i]))) ++known;
    }
    stripe.values.fetch_add(static_cast<int64_t>(count),
                            std::memory_order_relaxed);
    stripe.value_bytes.fetch_add(bytes, std::memory_order_relaxed);
    stripe.known_values.fetch_add(known, std::memory_order_relaxed);
  }
  int tick = tick_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (tick >= config_.evaluate_every &&
      !evaluating_.exchange(true, std::memory_order_acquire)) {
    tick_.store(0, std::memory_order_relaxed);
    Evaluate();
    evaluating_.store(false, std::memory_order_release);
  }
  return Action::kNone;
}

DriftState::Totals DriftState::MergeStripes() const {
  Totals totals;
  for (const Stripe& stripe : stripes_) {
    totals.pages += stripe.pages.load(std::memory_order_relaxed);
    totals.empty_pages += stripe.empty_pages.load(std::memory_order_relaxed);
    totals.values += stripe.values.load(std::memory_order_relaxed);
    totals.value_bytes += stripe.value_bytes.load(std::memory_order_relaxed);
    totals.known_values +=
        stripe.known_values.load(std::memory_order_relaxed);
  }
  return totals;
}

void DriftState::Evaluate() {
  Totals totals = MergeStripes();
  int64_t window_pages =
      totals.pages - last_pages_.load(std::memory_order_relaxed);
  if (window_pages < config_.evaluate_every) return;  // Tick raced a reset.
  int64_t window_empty =
      totals.empty_pages - last_empty_.load(std::memory_order_relaxed);
  int64_t window_values =
      totals.values - last_values_.load(std::memory_order_relaxed);
  int64_t window_bytes =
      totals.value_bytes - last_value_bytes_.load(std::memory_order_relaxed);
  int64_t window_known =
      totals.known_values - last_known_.load(std::memory_order_relaxed);
  int64_t window_nonempty = window_pages - window_empty;

  const char* signal = nullptr;
  if (baseline_.armed_empty &&
      empty_streak_.load(std::memory_order_relaxed) >=
          config_.empty_streak_limit) {
    signal = "empty_streak";
  }
  if (signal == nullptr && window_values >= config_.min_window_values) {
    if (baseline_.armed_likelihood) {
      double known_ratio = static_cast<double>(window_known) /
                           static_cast<double>(window_values);
      if (known_ratio <
          config_.likelihood_collapse * baseline_.known_ratio) {
        signal = "likelihood_collapse";
      }
    }
    if (signal == nullptr && window_nonempty > 0 &&
        baseline_.mean_values_per_page > 0.0) {
      double per_page = static_cast<double>(window_values) /
                        static_cast<double>(window_nonempty);
      if (per_page <
          baseline_.mean_values_per_page * config_.schema_collapse) {
        signal = "schema_collapse";
      } else if (per_page >
                 baseline_.mean_values_per_page * config_.schema_explosion) {
        signal = "schema_explosion";
      }
    }
    if (signal == nullptr && baseline_.mean_value_length > 0.0) {
      double mean_length = static_cast<double>(window_bytes) /
                           static_cast<double>(window_values);
      if (std::abs(mean_length - baseline_.mean_value_length) >
          config_.length_shift * baseline_.mean_value_length) {
        signal = "alignment_shift";
      }
    }
  }

  last_pages_.store(totals.pages, std::memory_order_relaxed);
  last_empty_.store(totals.empty_pages, std::memory_order_relaxed);
  last_values_.store(totals.values, std::memory_order_relaxed);
  last_value_bytes_.store(totals.value_bytes, std::memory_order_relaxed);
  last_known_.store(totals.known_values, std::memory_order_relaxed);
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  DriftMetrics::Get().evaluations->Add(1);

  if (signal == nullptr) {
    hysteresis_.store(0, std::memory_order_relaxed);
    return;
  }
  int consecutive = hysteresis_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (consecutive < config_.hysteresis) {
    DriftMetrics::Get().suppressed_hysteresis->Add(1);
    return;
  }
  hysteresis_.store(0, std::memory_order_relaxed);
  Trigger(signal);
}

void DriftState::Trigger(const char* signal) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    retained_.clear();
    retained_bytes_ = 0;
  }
  last_signal_.store(signal, std::memory_order_relaxed);
  events_.fetch_add(1, std::memory_order_relaxed);
  DriftMetrics::Get().events->Add(1);
  phase_.store(static_cast<int>(Phase::kCollecting),
               std::memory_order_release);
}

DriftState::Sample DriftState::TakeSample() {
  std::lock_guard<std::mutex> lock(mu_);
  Sample sample;
  sample.pages = std::move(retained_);
  retained_.clear();
  retained_bytes_ = 0;
  sample.dictionary = dictionary_;
  DriftMetrics::Get().samples_taken->Add(1);
  return sample;
}

void DriftState::EnterCooldown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    retained_.clear();
    retained_bytes_ = 0;
  }
  cooldown_left_.store(std::max(1, config_.cooldown_pages),
                       std::memory_order_relaxed);
  DriftMetrics::Get().cooldowns->Add(1);
  phase_.store(static_cast<int>(Phase::kCooldown),
               std::memory_order_release);
}

void DriftState::WriteJson(obs::JsonWriter& json) const {
  Phase current = phase();
  Totals totals = MergeStripes();
  json.BeginObject();
  json.KV("site", site_);
  json.KV("attribute", attribute_);
  json.KV("phase", PhaseName(current));
  json.KV("wrapper", record_);
  json.KV("pages", totals.pages);
  json.KV("empty_pages", totals.empty_pages);
  json.KV("values", totals.values);
  json.KV("known_values", totals.known_values);
  json.KV("empty_streak", empty_streak_.load(std::memory_order_relaxed));
  json.KV("evaluations", evaluations_.load(std::memory_order_relaxed));
  json.KV("drift_events", events_.load(std::memory_order_relaxed));
  const char* signal = last_signal_.load(std::memory_order_relaxed);
  json.KV("last_signal", signal == nullptr ? "" : signal);
  json.Key("baseline");
  json.BeginObject();
  if (current == Phase::kWarmup) {
    // Baseline not frozen yet; report progress only (the fields are
    // written under mu_ until the release store to kSteady).
    std::lock_guard<std::mutex> lock(mu_);
    json.KV("warmup_seen", static_cast<int64_t>(warmup_seen_));
    json.KV("warmup_pages", static_cast<int64_t>(config_.warmup_pages));
  } else {
    json.KV("pages", static_cast<int64_t>(baseline_.pages));
    json.KV("empty_ratio", baseline_.empty_ratio);
    json.KV("mean_values_per_page", baseline_.mean_values_per_page);
    json.KV("mean_value_length", baseline_.mean_value_length);
    json.KV("known_ratio", baseline_.known_ratio);
    json.KV("armed_empty", baseline_.armed_empty);
    json.KV("armed_likelihood", baseline_.armed_likelihood);
  }
  json.EndObject();
  {
    std::lock_guard<std::mutex> lock(mu_);
    json.KV("retained_pages", static_cast<int64_t>(retained_.size()));
    json.KV("dictionary_size", static_cast<int64_t>(dictionary_.size()));
  }
  json.EndObject();
}

}  // namespace ntw::serve
