#include "text/char_view.h"

#include <algorithm>

#include "common/strings.h"

namespace ntw::text {

CharView::CharView(const html::Document& doc) {
  span_index_by_node_.assign(doc.node_count(), 0);
  Flatten(doc.root());
}

void CharView::Flatten(const html::Node* node) {
  switch (node->kind()) {
    case html::NodeKind::kDocument:
      for (const auto& child : node->children()) Flatten(child.get());
      return;
    case html::NodeKind::kText: {
      TextSpan span;
      span.node = node;
      span.begin = stream_.size();
      stream_.append(node->text());
      span.end = stream_.size();
      span_index_by_node_[static_cast<size_t>(node->preorder_index())] =
          static_cast<int>(spans_.size()) + 1;
      spans_.push_back(span);
      return;
    }
    case html::NodeKind::kElement:
      break;
  }
  stream_.push_back('<');
  stream_.append(node->tag());
  for (const auto& [name, value] : node->attrs()) {
    stream_.push_back(' ');
    stream_.append(name);
    stream_.append("=\"");
    stream_.append(value);
    stream_.push_back('"');
  }
  stream_.push_back('>');
  if (html::IsVoidElementTag(node->tag())) return;
  for (const auto& child : node->children()) Flatten(child.get());
  stream_.append("</");
  stream_.append(node->tag());
  stream_.push_back('>');
}

const TextSpan* CharView::SpanForNode(int preorder_index) const {
  if (preorder_index < 0 ||
      static_cast<size_t>(preorder_index) >= span_index_by_node_.size()) {
    return nullptr;
  }
  int idx = span_index_by_node_[static_cast<size_t>(preorder_index)];
  if (idx == 0) return nullptr;
  return &spans_[static_cast<size_t>(idx - 1)];
}

std::string_view CharView::Before(const TextSpan& span, size_t k) const {
  size_t start = span.begin >= k ? span.begin - k : 0;
  return std::string_view(stream_).substr(start, span.begin - start);
}

std::string_view CharView::After(const TextSpan& span, size_t k) const {
  size_t len = std::min(k, stream_.size() - span.end);
  return std::string_view(stream_).substr(span.end, len);
}

std::string LongestCommonSuffix(
    const std::vector<std::string_view>& strings) {
  if (strings.empty()) return "";
  size_t max_len = strings[0].size();
  for (const auto& s : strings) max_len = std::min(max_len, s.size());
  size_t k = 0;
  while (k < max_len) {
    char c = strings[0][strings[0].size() - 1 - k];
    for (const auto& s : strings) {
      if (s[s.size() - 1 - k] != c) {
        return std::string(strings[0].substr(strings[0].size() - k));
      }
    }
    ++k;
  }
  return std::string(strings[0].substr(strings[0].size() - k));
}

std::string LongestCommonPrefix(
    const std::vector<std::string_view>& strings) {
  if (strings.empty()) return "";
  size_t max_len = strings[0].size();
  for (const auto& s : strings) max_len = std::min(max_len, s.size());
  size_t k = 0;
  while (k < max_len) {
    char c = strings[0][k];
    for (const auto& s : strings) {
      if (s[k] != c) return std::string(strings[0].substr(0, k));
    }
    ++k;
  }
  return std::string(strings[0].substr(0, k));
}

}  // namespace ntw::text
