#ifndef NTW_TEXT_CHAR_VIEW_H_
#define NTW_TEXT_CHAR_VIEW_H_

#include <string>
#include <string_view>
#include <vector>

#include "html/dom.h"

namespace ntw::text {

/// Position of one text node's character span inside the flattened page.
struct TextSpan {
  const html::Node* node = nullptr;
  size_t begin = 0;  // Inclusive offset into CharView::stream.
  size_t end = 0;    // Exclusive.
};

/// The WIEN/LR view of a page: the serialized markup as one character
/// stream, with the span of every text node recorded. LR wrappers reason
/// about the strings immediately preceding/following a candidate item
/// (Sec. 5), which are exactly prefix/suffix windows around these spans.
class CharView {
 public:
  /// Builds the view for a finalized document.
  explicit CharView(const html::Document& doc);

  const std::string& stream() const { return stream_; }
  const std::vector<TextSpan>& spans() const { return spans_; }

  /// Span for the text node with the given pre-order index, or nullptr
  /// when that node is not a text node of this document.
  const TextSpan* SpanForNode(int preorder_index) const;

  /// The k characters before span.begin (shorter near the page start).
  std::string_view Before(const TextSpan& span, size_t k) const;

  /// The k characters from span.end (shorter near the page end).
  std::string_view After(const TextSpan& span, size_t k) const;

 private:
  void Flatten(const html::Node* node);

  std::string stream_;
  std::vector<TextSpan> spans_;
  std::vector<int> span_index_by_node_;  // preorder index -> spans_ index+1.
};

/// Longest common suffix of a set of strings (the LR left delimiter).
std::string LongestCommonSuffix(const std::vector<std::string_view>& strings);

/// Longest common prefix of a set of strings (the LR right delimiter).
std::string LongestCommonPrefix(const std::vector<std::string_view>& strings);

}  // namespace ntw::text

#endif  // NTW_TEXT_CHAR_VIEW_H_
