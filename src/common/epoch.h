#ifndef NTW_COMMON_EPOCH_H_
#define NTW_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace ntw {

/// Epoch-based reclamation for read-mostly published pointers — the
/// serving repository's snapshot-swap protocol (DESIGN.md §11).
///
/// The shape of the problem: N reactor threads each dereference "the
/// current snapshot" on every request, while a rare reload publishes a
/// replacement and must eventually free the old one. A shared_ptr copy
/// under a mutex serializes every request on one cache line; epochs make
/// the reader side wait-free in the absence of reloads and keep the
/// writer entirely off the request path.
///
/// Protocol:
///   - Each reader thread owns one cache-line-padded slot. To read, it
///     announces the current global epoch in its slot (Pin), loads the
///     published pointer, uses it, and clears the slot (Unpin). The pin
///     is a store + a load; it only retries when a writer advanced the
///     epoch in between, which happens once per reload — effectively
///     wait-free on the steady-state request path, and never a lock.
///   - The writer publishes the replacement pointer first, then calls
///     Retire(): the object is stamped with the current epoch E and the
///     global epoch advances to E+1. Any reader that can still hold the
///     old pointer is pinned at an epoch <= E (a reader pinned at E+1
///     provably loaded the new pointer — all epoch and pointer accesses
///     are seq_cst, so the publish is ordered before the advance in the
///     single total order).
///   - TryReclaim() scans the slots; an object retired at E is freed
///     once every occupied slot announces an epoch > E. The scan is
///     non-blocking — a pinned reader just defers the free to a later
///     call — so a reload never stalls in-flight extraction.
///
/// The retire list itself is mutex-guarded: Retire and TryReclaim are
/// cold-path (once per reload / once per idle check), and taking the
/// same mutex in both is what makes the "scan after retire" ordering
/// argument airtight. `has_retired()` is the hot-path gate: a single
/// relaxed load callers can afford per request.
class EpochDomain {
 public:
  /// Upper bound on concurrently registered reader threads. Slots are
  /// assigned per (thread, domain) and reused for the thread's lifetime;
  /// shard reactors plus a worker pool stay far under this. When the
  /// table is full, extra readers fall back to slot-sharing via a
  /// CAS-free modulo map — still safe (a shared slot is only ever *more*
  /// conservative: it pins for two threads), never unsound.
  static constexpr int kMaxReaders = 64;

  EpochDomain();
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// RAII pin: announces the current epoch for this thread's slot. Hold
  /// it across every dereference of the protected pointer.
  class Pin {
   public:
    explicit Pin(EpochDomain* domain)
        : domain_(domain), slot_(domain->ReaderSlot()) {
      domain_->PinSlot(slot_);
    }
    ~Pin() { domain_->UnpinSlot(slot_); }

    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    EpochDomain* domain_;
    int slot_;
  };

  /// Hands the object's release over to the domain: stamps it with the
  /// current epoch and advances the epoch, so readers pinned from now on
  /// can be proven clear of it. `free_fn` runs exactly once, from
  /// whichever thread's TryReclaim() finds the object quiescent.
  void Retire(std::function<void()> free_fn);

  /// Frees every retired object whose epoch has been vacated by all
  /// pinned readers. Non-blocking (a pinned reader defers, never stalls
  /// the caller); returns the number of objects freed.
  size_t TryReclaim();

  /// True when Retire()d objects are awaiting reclamation — one relaxed
  /// load, cheap enough to gate a TryReclaim() per request.
  bool has_retired() const {
    return retired_count_.load(std::memory_order_relaxed) != 0;
  }

  uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};  // 0 = quiescent (not in a read).
  };

  struct Retired {
    std::function<void()> free_fn;
    uint64_t epoch = 0;
  };

  /// The calling thread's slot in this domain (registered on first use,
  /// cached in a thread-local afterwards).
  int ReaderSlot();
  void PinSlot(int slot);
  void UnpinSlot(int slot);

  const uint64_t domain_id_;  // Process-unique; keys the thread-local cache.
  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxReaders];
  std::atomic<int> slot_count_{0};

  std::mutex retired_mu_;
  std::vector<Retired> retired_;
  std::atomic<size_t> retired_count_{0};
};

}  // namespace ntw

#endif  // NTW_COMMON_EPOCH_H_
