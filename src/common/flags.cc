#include "common/flags.h"

#include <cstdlib>

namespace ntw {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_done || arg.size() < 2 || arg.compare(0, 2, "--") != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::ParseError("malformed flag '" + arg + "'");
      }
      flags.values_[name] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not a flag; else boolean.
    if (i + 1 < argc) {
      std::string next = argv[i + 1];
      if (next.size() < 2 || next.compare(0, 2, "--") != 0) {
        flags.values_[body] = next;
        ++i;
        continue;
      }
    }
    flags.values_[body] = "";
  }
  return flags;
}

std::string Flags::Get(const std::string& name,
                       const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    return Status::OutOfRange("--" + name + " expects an integer, got '" +
                              it->second + "'");
  }
  return static_cast<int64_t>(parsed);
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    return Status::OutOfRange("--" + name + " expects a number, got '" +
                              it->second + "'");
  }
  return parsed;
}

std::vector<std::string> Flags::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const std::string& candidate : known) {
      if (name == candidate) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace ntw
