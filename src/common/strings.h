#ifndef NTW_COMMON_STRINGS_H_
#define NTW_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ntw {

/// ASCII-only helpers; the generated corpora are ASCII so full Unicode
/// casefolding is unnecessary. The per-character classifiers are inline:
/// the tokenizer and the streaming extractors call them once per input
/// byte, where an out-of-line call would dominate the loop body.
inline constexpr char AsciiToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
inline constexpr char AsciiToUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

inline constexpr bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
inline constexpr bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }
inline constexpr bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
inline constexpr bool IsAsciiAlnum(char c) {
  return IsAsciiAlpha(c) || IsAsciiDigit(c);
}

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Collapses runs of whitespace to a single space and trims the ends.
/// Used to normalise DOM text for annotation matching.
std::string CollapseWhitespace(std::string_view s);

/// Splits on a single character; no empty-segment suppression.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of whitespace; empty segments are suppressed.
std::vector<std::string> SplitWords(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// True when `needle` appears in `haystack` delimited by non-alphanumeric
/// characters (or string boundaries) on both sides, case-insensitively.
/// This is the "exact mention" test the dictionary annotators use.
bool ContainsWordIgnoreCase(std::string_view haystack, std::string_view needle);

/// Escapes the five standard HTML metacharacters.
std::string HtmlEscape(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// C-style escaping: backslash, tab, newline, CR and non-printable bytes
/// become \\, \t, \n, \r, \xHH. The result is single-line and
/// tab-separable — used by the wrapper/corpus serialization formats.
std::string CEscape(std::string_view s);

/// Inverse of CEscape; fails on malformed escapes.
Result<std::string> CUnescape(std::string_view s);

}  // namespace ntw

#endif  // NTW_COMMON_STRINGS_H_
