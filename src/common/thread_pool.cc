#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ntw {
namespace {

/// Pool instruments, registered once. Counters are updated per loop (not
/// per index), so instrumentation adds O(1) relaxed atomics per
/// ParallelFor — nothing on the index hot path.
struct PoolMetrics {
  obs::Counter* parallel_for;     // Fanned-out loops.
  obs::Counter* inline_loops;     // Loops degraded to inline execution.
  obs::Counter* tasks;            // Total indices executed.
  obs::Counter* submitted_tasks;  // Fire-and-forget Submit() tasks.
  obs::Gauge* threads;            // Width of the most recent pool.

  static PoolMetrics& Get() {
    static PoolMetrics m{
        obs::Registry::Global().GetCounter("ntw.pool.parallel_for"),
        obs::Registry::Global().GetCounter("ntw.pool.inline_loops"),
        obs::Registry::Global().GetCounter("ntw.pool.tasks"),
        obs::Registry::Global().GetCounter("ntw.pool.submitted_tasks"),
        obs::Registry::Global().GetGauge("ntw.pool.threads"),
    };
    return m;
  }
};

/// Set while a thread is executing pool work, so nested ParallelFor calls
/// degrade to inline execution instead of deadlocking on a busy pool.
thread_local bool t_in_pool_work = false;

/// State shared between the caller of one ParallelFor and the helper tasks
/// it enqueued. Helpers may still be queued when the caller returns (they
/// will find the counter exhausted and exit), so lifetime is shared.
struct LoopState {
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // Guarded by mu; first failure wins.

  /// Claims indices until the range is drained. Returns after contributing
  /// its share of completions.
  void Drain() {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      if (completed.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  PoolMetrics::Get().threads->Set(threads_);
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_work = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.tasks->Add(static_cast<int64_t>(n));
  // Inline paths: trivial loops, a serial pool, or a nested call from
  // inside pool work (the outer loop already owns the workers).
  if (n == 1 || threads_ == 1 || t_in_pool_work) {
    metrics.inline_loops->Add(1);
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  metrics.parallel_for->Add(1);
  obs::Span loop_span("pool.parallel_for");

  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->fn = &fn;

  size_t helpers = static_cast<size_t>(threads_ - 1);
  if (helpers > n - 1) helpers = n - 1;  // The caller claims work too.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) {
      // The helper span records this worker's share of the loop — the
      // per-thread pool activity view of the trace.
      queue_.push_back([state] {
        obs::Span span("pool.drain");
        state->Drain();
      });
    }
  }
  cv_.notify_all();

  // The caller participates: this both bounds latency when the pool is
  // saturated and guarantees progress even if every worker is busy.
  bool was_in_pool_work = t_in_pool_work;
  t_in_pool_work = true;
  state->Drain();
  t_in_pool_work = was_in_pool_work;

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] {
    return state->completed.load() == state->n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::Submit(std::function<void()> task) {
  PoolMetrics::Get().submitted_tasks->Add(1);
  // A submitted task is standalone work, not a share of a ParallelFor:
  // clear the worker's in-pool-work mark for its duration so nested
  // ParallelFor calls fan out instead of degrading to inline execution.
  auto run = [t = std::move(task)] {
    bool saved = t_in_pool_work;
    t_in_pool_work = false;
    t();
    t_in_pool_work = saved;
  };
  if (threads_ == 1) {
    run();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(run));
  }
  cv_.notify_one();
}

void ThreadPool::TaskGroup::Run() {
  std::vector<std::function<void()>> tasks = std::move(tasks_);
  tasks_.clear();
  pool_->ParallelFor(tasks.size(), [&tasks](size_t i) { tasks[i](); });
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // NOLINT: intentional process lifetime.
int g_threads = 0;                   // 0 = hardware concurrency.

}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(
        g_threads > 0 ? g_threads : HardwareConcurrency());
  }
  return *g_pool;
}

void ThreadPool::SetGlobalThreads(int threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_threads = threads < 0 ? 0 : threads;
  int width = g_threads > 0 ? g_threads : HardwareConcurrency();
  if (g_pool && g_pool->threads() != width) g_pool.reset();
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(width);
}

int ThreadPool::GlobalThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool) return g_pool->threads();
  return g_threads > 0 ? g_threads : HardwareConcurrency();
}

int HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

Result<int> ConfigureGlobalThreadPool(const Flags& flags) {
  NTW_ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 0));
  if (threads < 0) {
    return Status::OutOfRange("--threads must be >= 0 (0 = hardware)");
  }
  ThreadPool::SetGlobalThreads(static_cast<int>(threads));
  return ThreadPool::GlobalThreads();
}

}  // namespace ntw
