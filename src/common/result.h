#ifndef NTW_COMMON_RESULT_H_
#define NTW_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace ntw {

/// Result<T> holds either a value of type T or a non-OK Status — the
/// StatusOr/arrow::Result idiom. Construction from a value or a Status is
/// implicit so `return MakeThing();` and `return Status::ParseError(...);`
/// both work inside a function returning Result<T>.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, see above.
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "Result<T> must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure status; OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Value accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `expr` (a Result<T>), propagating failure; on success binds the
/// value to `lhs`. Use inside functions returning Status or Result<U>.
#define NTW_ASSIGN_OR_RETURN(lhs, expr)            \
  NTW_ASSIGN_OR_RETURN_IMPL_(                      \
      NTW_RESULT_CONCAT_(_ntw_result, __LINE__), lhs, expr)

#define NTW_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define NTW_RESULT_CONCAT_INNER_(a, b) a##b
#define NTW_RESULT_CONCAT_(a, b) NTW_RESULT_CONCAT_INNER_(a, b)

}  // namespace ntw

#endif  // NTW_COMMON_RESULT_H_
