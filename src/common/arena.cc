#include "common/arena.h"

#include <algorithm>
#include <cstring>

namespace ntw {

char* Arena::Allocate(size_t n, size_t align) {
  uintptr_t p = reinterpret_cast<uintptr_t>(ptr_);
  uintptr_t aligned = (p + (align - 1)) & ~(uintptr_t{align} - 1);
  size_t pad = aligned - p;
  if (ptr_ != nullptr && n + pad <= static_cast<size_t>(end_ - ptr_)) {
    used_ += n + pad;
    ptr_ = reinterpret_cast<char*>(aligned) + n;
    return reinterpret_cast<char*>(aligned);
  }
  return AllocateSlow(n, align);
}

char* Arena::AllocateSlow(size_t n, size_t align) {
  // A fresh chunk from operator new is max_align_t-aligned, so its base
  // satisfies any `align` we accept.
  size_t want = std::max(n, std::max(min_chunk_bytes_, capacity_));
  Chunk chunk;
  chunk.data = std::make_unique<char[]>(want);
  chunk.size = want;
  ptr_ = chunk.data.get();
  end_ = ptr_ + want;
  capacity_ += want;
  fresh_bytes_ += n;
  used_ += n;
  chunks_.push_back(std::move(chunk));
  char* out = ptr_;
  ptr_ += n;
  (void)align;
  return out;
}

std::string_view Arena::CopyString(std::string_view s) {
  if (s.empty()) return std::string_view();
  char* dst = Allocate(s.size(), 1);
  std::memcpy(dst, s.data(), s.size());
  return std::string_view(dst, s.size());
}

void Arena::Reset() {
  used_ = 0;
  fresh_bytes_ = 0;
  if (chunks_.empty()) return;
  if (chunks_.size() > 1) {
    // Consolidate: one chunk of the combined capacity, so the next cycle
    // bumps within a single contiguous run and never spills.
    size_t total = capacity_;
    chunks_.clear();
    Chunk chunk;
    chunk.data = std::make_unique<char[]>(total);
    chunk.size = total;
    chunks_.push_back(std::move(chunk));
  }
  ptr_ = chunks_.back().data.get();
  end_ = ptr_ + chunks_.back().size;
}

}  // namespace ntw
