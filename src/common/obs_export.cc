#include "common/obs_export.h"

#include "common/file_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ntw {

void BeginSchemaDocument(obs::JsonWriter& json, std::string_view schema,
                         int64_t version) {
  json.BeginObject();
  json.KV("schema", schema);
  json.KV("schema_version", version);
}

std::string MetricsJson() { return obs::Registry::Global().ToJson() + "\n"; }

ObsExporter ObsExporter::FromFlags(const Flags& flags) {
  ObsExporter exporter;
  exporter.metrics_path_ = flags.Get("metrics-json");
  exporter.trace_path_ = flags.Get("trace");
  if (!exporter.trace_path_.empty()) obs::Tracer::Global().Enable();
  return exporter;
}

Status ObsExporter::Write() const {
  if (!metrics_path_.empty()) {
    NTW_RETURN_IF_ERROR(WriteFile(metrics_path_, MetricsJson()));
  }
  if (!trace_path_.empty()) {
    obs::Tracer::Global().Disable();
    NTW_RETURN_IF_ERROR(
        WriteFile(trace_path_, obs::Tracer::Global().ToJson() + "\n"));
  }
  return Status::OK();
}

}  // namespace ntw
