#include "common/obs_export.h"

#include "common/file_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ntw {

ObsExporter ObsExporter::FromFlags(const Flags& flags) {
  ObsExporter exporter;
  exporter.metrics_path_ = flags.Get("metrics-json");
  exporter.trace_path_ = flags.Get("trace");
  if (!exporter.trace_path_.empty()) obs::Tracer::Global().Enable();
  return exporter;
}

Status ObsExporter::Write() const {
  if (!metrics_path_.empty()) {
    NTW_RETURN_IF_ERROR(
        WriteFile(metrics_path_, obs::Registry::Global().ToJson() + "\n"));
  }
  if (!trace_path_.empty()) {
    obs::Tracer::Global().Disable();
    NTW_RETURN_IF_ERROR(
        WriteFile(trace_path_, obs::Tracer::Global().ToJson() + "\n"));
  }
  return Status::OK();
}

}  // namespace ntw
