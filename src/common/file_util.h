#ifndef NTW_COMMON_FILE_UTIL_H_
#define NTW_COMMON_FILE_UTIL_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace ntw {

/// Reads a whole file into memory; NotFound/Internal on failure.
Result<std::string> ReadFile(const std::string& path);

/// Writes (truncating) a whole file; Internal on failure.
Status WriteFile(const std::string& path, const std::string& contents);

/// Creates a directory (and parents); ok when it already exists.
Status MakeDirs(const std::string& path);

/// Lists regular files in a directory whose names end with `suffix`
/// (empty = all), sorted lexicographically. NotFound when the directory
/// does not exist.
Result<std::vector<std::string>> ListFiles(const std::string& directory,
                                           const std::string& suffix = "");

/// Lists immediate subdirectories of `directory` (full paths), sorted
/// lexicographically. NotFound when the directory does not exist.
Result<std::vector<std::string>> ListSubdirectories(
    const std::string& directory);

/// True when the path names an existing regular file.
bool FileExists(const std::string& path);

}  // namespace ntw

#endif  // NTW_COMMON_FILE_UTIL_H_
