#ifndef NTW_COMMON_STOPWATCH_H_
#define NTW_COMMON_STOPWATCH_H_

#include <chrono>

namespace ntw {

/// Monotonic wall-clock stopwatch used by the enumeration-time experiments
/// (Fig. 2(c)).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ntw

#endif  // NTW_COMMON_STOPWATCH_H_
