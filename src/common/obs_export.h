#ifndef NTW_COMMON_OBS_EXPORT_H_
#define NTW_COMMON_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/flags.h"
#include "common/status.h"
#include "obs/json.h"

namespace ntw {

/// Opens the root object of a schema-stamped JSON document and emits the
/// "schema"/"schema_version" preamble. Every machine-readable surface
/// (ntw_eval --json, ntw_serve responses, --metrics-json, bench output)
/// must start its document here so the framing and the JsonWriter's fixed
/// float formatting cannot drift between surfaces. The caller still owns
/// the writer: add members, EndObject(), Take().
void BeginSchemaDocument(obs::JsonWriter& json, std::string_view schema,
                         int64_t version);

/// The canonical serialization of the global metrics registry, newline
/// terminated — the one body shared by `--metrics-json` files and the
/// daemon's `GET /metrics` endpoint.
std::string MetricsJson();

/// Shared handling of the observability flags every tool exposes:
///   --metrics-json=PATH   dump the metrics registry as JSON at exit
///   --trace=PATH          record phase spans and dump the trace at exit
///
/// FromFlags reads both flags and enables the global tracer when --trace
/// is present (tracing is off by default — spans cost two atomic loads
/// when disabled). Write() serializes whatever was requested; it is a
/// no-op when neither flag was given. Instrumentation never alters
/// extraction output — the exports go to side files only.
class ObsExporter {
 public:
  static ObsExporter FromFlags(const Flags& flags);

  /// Writes the requested JSON files. Call once, after the workload.
  Status Write() const;

  bool metrics_requested() const { return !metrics_path_.empty(); }
  bool trace_requested() const { return !trace_path_.empty(); }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

}  // namespace ntw

#endif  // NTW_COMMON_OBS_EXPORT_H_
