#include "common/build_info.h"

#include <thread>

#include "obs/json.h"

#ifndef NTW_GIT_SHA
#define NTW_GIT_SHA "unknown"
#endif
#ifndef NTW_BUILD_TYPE
#define NTW_BUILD_TYPE "unknown"
#endif

namespace ntw {

BuildInfo GetBuildInfo() {
  BuildInfo info;
  info.cpu_count = static_cast<int>(std::thread::hardware_concurrency());
  info.build_type = NTW_BUILD_TYPE;
  info.git_sha = NTW_GIT_SHA;
  return info;
}

void WriteMachineInfo(obs::JsonWriter& json) {
  BuildInfo info = GetBuildInfo();
  json.Key("machine");
  json.BeginObject();
  json.KV("cpu_count", static_cast<int64_t>(info.cpu_count));
  json.KV("build_type", info.build_type);
  json.KV("git_sha", info.git_sha);
  json.EndObject();
}

}  // namespace ntw
