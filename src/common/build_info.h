#ifndef NTW_COMMON_BUILD_INFO_H_
#define NTW_COMMON_BUILD_INFO_H_

#include <string>

namespace ntw {

namespace obs {
class JsonWriter;
}  // namespace obs

// Machine/build metadata recorded in benchmark artifacts so the bench
// trajectory is comparable across commits and hosts.
struct BuildInfo {
  int cpu_count = 0;          // std::thread::hardware_concurrency
  std::string build_type;     // CMAKE_BUILD_TYPE at configure time
  std::string git_sha;        // `git rev-parse --short HEAD` at configure time
};

BuildInfo GetBuildInfo();

// Appends `"machine": {"cpu_count": N, "build_type": "...", "git_sha": "..."}`
// to an open JSON object.
void WriteMachineInfo(obs::JsonWriter& json);

}  // namespace ntw

#endif  // NTW_COMMON_BUILD_INFO_H_
