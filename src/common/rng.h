#ifndef NTW_COMMON_RNG_H_
#define NTW_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ntw {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component of the library takes an explicit
/// Rng so dataset generation, annotation noise and experiments are exactly
/// reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Gaussian draw via Marsaglia polar method.
  double NextGaussian(double mean, double stddev);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; used to give each website its
  /// own stream so adding a site does not perturb the others.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ntw

#endif  // NTW_COMMON_RNG_H_
