#ifndef NTW_COMMON_THREAD_POOL_H_
#define NTW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/result.h"

namespace ntw {

/// A fixed-size worker pool for the enumeration hot loops.
///
/// Determinism contract: ParallelFor(n, fn) runs fn(0..n-1) exactly once
/// each and returns only when all have finished. Which worker runs which
/// index is unspecified, so fn must confine its writes to per-index state
/// (the callers all write into pre-sized result slots and merge them
/// serially in index order afterwards). Under that discipline the
/// observable output of a parallel loop is byte-identical at every thread
/// count, including 1.
///
/// Nesting: a ParallelFor issued from inside a pool worker runs inline on
/// the calling thread (serially). This keeps nested fan-out (per-site loop
/// → per-round enumeration loop) deadlock-free without oversubscription.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates in every
  /// ParallelFor, so `threads` is the true parallel width). Clamped to ≥1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, n); blocks until all complete. The
  /// first exception thrown by fn (if any) is rethrown in the caller once
  /// the loop has drained.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Enqueues a standalone fire-and-forget task for the workers and
  /// returns immediately — the serving layer's dispatch path. On a serial
  /// pool (threads() == 1 spawns no workers) the task runs inline in the
  /// caller before Submit returns. Unlike ParallelFor helper tasks, a
  /// submitted task does not count as "pool work": a ParallelFor issued
  /// from inside it fans out normally, which is deadlock-free because the
  /// ParallelFor caller always participates and can drain the whole loop
  /// itself even when every other worker is busy. Tasks still queued at
  /// pool destruction are executed before the workers join.
  void Submit(std::function<void()> task);

  /// A batch of heterogeneous tasks executed with ParallelFor semantics.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
    void Add(std::function<void()> task) { tasks_.push_back(std::move(task)); }
    /// Runs every added task, blocks until done, then clears the group.
    void Run();

   private:
    ThreadPool* pool_;
    std::vector<std::function<void()>> tasks_;
  };

  /// The process-wide pool used by the enumeration stack. Created on first
  /// use with GlobalThreads() width.
  static ThreadPool& Global();

  /// Sets the width of the global pool (0 = hardware concurrency) and
  /// rebuilds it if it already exists. Must not be called while global
  /// ParallelFor loops are in flight — configure at startup or between
  /// runs.
  static void SetGlobalThreads(int threads);

  /// The width the global pool has (or would be created with).
  static int GlobalThreads();

 private:
  void WorkerLoop();

  int threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// std::thread::hardware_concurrency with a ≥1 floor.
int HardwareConcurrency();

/// Reads the process-wide `--threads` flag (0 or absent = hardware
/// concurrency) and configures the global pool. Returns the width in use,
/// or OutOfRange on a malformed or negative value.
Result<int> ConfigureGlobalThreadPool(const Flags& flags);

}  // namespace ntw

#endif  // NTW_COMMON_THREAD_POOL_H_
