#include "common/file_util.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace ntw {

namespace fs = std::filesystem;

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string contents;
  char buffer[1 << 16];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, got);
  }
  bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::Internal("read error on " + path);
  }
  return contents;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create " + path + ": " +
                            std::strerror(errno));
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  bool failed = written != contents.size() || std::fclose(file) != 0;
  if (failed) {
    return Status::Internal("write error on " + path);
  }
  return Status::OK();
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec && !fs::is_directory(path)) {
    return Status::Internal("cannot create directory " + path + ": " +
                            ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListFiles(const std::string& directory,
                                           const std::string& suffix) {
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Status::NotFound(directory + " is not a directory");
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (!suffix.empty()) {
      if (name.size() < suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
              0) {
        continue;
      }
    }
    files.push_back(entry.path().string());
  }
  if (ec) {
    return Status::Internal("cannot list " + directory + ": " + ec.message());
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<std::vector<std::string>> ListSubdirectories(
    const std::string& directory) {
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Status::NotFound(directory + " is not a directory");
  }
  std::vector<std::string> dirs;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_directory()) continue;
    dirs.push_back(entry.path().string());
  }
  if (ec) {
    return Status::Internal("cannot list " + directory + ": " + ec.message());
  }
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

}  // namespace ntw
