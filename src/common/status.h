#ifndef NTW_COMMON_STATUS_H_
#define NTW_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace ntw {

/// Error category for a failed operation. Mirrors the small set of failure
/// modes the library can actually produce; extend conservatively.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kParseError,
  kFailedPrecondition,
  kInternal,
};

/// Returns the canonical spelling of a status code, e.g. "ParseError".
const char* StatusCodeToString(StatusCode code);

/// Lightweight Status object in the RocksDB/Arrow idiom. Fallible library
/// operations return a `Status` (or a `Result<T>`, see result.h) instead of
/// throwing: the public API boundary is exception-free.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Use inside functions that
/// themselves return Status.
#define NTW_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::ntw::Status _ntw_status = (expr);            \
    if (!_ntw_status.ok()) return _ntw_status;     \
  } while (false)

}  // namespace ntw

#endif  // NTW_COMMON_STATUS_H_
