#include "common/epoch.h"

#include <algorithm>

namespace ntw {

namespace {

std::atomic<uint64_t> g_next_domain_id{1};

/// One thread's slot assignments, keyed by domain id rather than domain
/// address — ids are never reused, so a cache entry can never alias a
/// newer domain that happens to land at a destroyed one's address. A
/// thread touches very few domains (the daemon has exactly one), so a
/// linear scan beats any map.
struct CachedSlot {
  uint64_t domain_id;
  int slot;
};
thread_local std::vector<CachedSlot> t_slots;

}  // namespace

EpochDomain::EpochDomain()
    : domain_id_(g_next_domain_id.fetch_add(1, std::memory_order_relaxed)) {}

EpochDomain::~EpochDomain() {
  // Anything still retired is freed unconditionally: the owner is tearing
  // the domain down, so no reader may be pinned anymore (same contract as
  // destroying any object readers still use).
  for (Retired& entry : retired_) entry.free_fn();
}

int EpochDomain::ReaderSlot() {
  for (const CachedSlot& cached : t_slots) {
    if (cached.domain_id == domain_id_) return cached.slot;
  }
  int index = slot_count_.fetch_add(1, std::memory_order_relaxed);
  // Table full: share a slot by modulo. Two threads writing one slot is
  // conservative — the slot reads as pinned whenever either is — which
  // can only defer reclamation, never allow a premature free. The
  // Unpin() of one thread while the other is pinned could clear the
  // other's announcement, so sharing degrades Unpin to a no-op epoch
  // re-announce; see UnpinSlot.
  if (index >= kMaxReaders) index %= kMaxReaders;
  t_slots.push_back({domain_id_, index});
  return index;
}

void EpochDomain::PinSlot(int slot) {
  Slot& s = slots_[slot];
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    s.epoch.store(e, std::memory_order_seq_cst);
    uint64_t current = global_epoch_.load(std::memory_order_seq_cst);
    if (current == e) return;
    // A writer advanced the epoch between our load and our announcement;
    // re-announce so a concurrent slot scan cannot miss us. At most one
    // retry per concurrent reload — reloads are rare, so the loop is
    // wait-free in steady state.
    e = current;
  }
}

void EpochDomain::UnpinSlot(int slot) {
  if (slot_count_.load(std::memory_order_relaxed) > kMaxReaders) {
    // Slot-sharing fallback: clearing could erase another thread's pin.
    // Leave the announcement in place — it reads as "pinned at an old
    // epoch", which only defers reclamation until the next Pin on this
    // slot re-announces a current epoch.
    return;
  }
  slots_[slot].epoch.store(0, std::memory_order_seq_cst);
}

void EpochDomain::Retire(std::function<void()> free_fn) {
  std::lock_guard<std::mutex> lock(retired_mu_);
  // Stamp with the pre-advance epoch E, then advance to E+1: the pointer
  // swap the caller performed before Retire() is seq_cst-ordered before
  // this fetch_add, so any reader pinned at >= E+1 saw the new pointer.
  uint64_t epoch = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  retired_.push_back({std::move(free_fn), epoch});
  retired_count_.store(retired_.size(), std::memory_order_relaxed);
}

size_t EpochDomain::TryReclaim() {
  if (!has_retired()) return 0;
  std::vector<std::function<void()>> ready;
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    // Scan the slots *after* taking the same mutex Retire() holds: every
    // entry in the list was retired before this scan, so a reader that
    // still holds a retired pointer had already announced an epoch <= the
    // entry's — the scan cannot miss it (a pin racing with the scan
    // re-validates against the advanced global epoch and re-announces).
    uint64_t min_pinned = UINT64_MAX;
    int occupied =
        std::min(slot_count_.load(std::memory_order_seq_cst),
                 static_cast<int>(kMaxReaders));
    for (int i = 0; i < occupied; ++i) {
      uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
      if (e != 0) min_pinned = std::min(min_pinned, e);
    }
    auto quiescent = [min_pinned](const Retired& entry) {
      return entry.epoch < min_pinned;
    };
    for (Retired& entry : retired_) {
      if (quiescent(entry)) ready.push_back(std::move(entry.free_fn));
    }
    retired_.erase(
        std::remove_if(retired_.begin(), retired_.end(), quiescent),
        retired_.end());
    retired_count_.store(retired_.size(), std::memory_order_relaxed);
  }
  // Destructors run outside the mutex — a free function that takes its
  // own locks (metrics, allocator) cannot deadlock against Retire().
  for (std::function<void()>& free_fn : ready) free_fn();
  return ready.size();
}

}  // namespace ntw
