#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace ntw {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  has_cached_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return mean + stddev * u * factor;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Guard against floating-point round-off.
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa0761d6478bd642fULL); }

}  // namespace ntw
