#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace ntw {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToLower(c);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToUpper(c);
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsAsciiSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // Suppress leading whitespace.
  for (char c : s) {
    if (IsAsciiSpace(c)) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string> SplitWords(std::string_view s) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsAsciiSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsAsciiSpace(s[i])) ++i;
    if (i > start) parts.emplace_back(s.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

namespace {

bool EqualsIgnoreCaseAt(std::string_view haystack, size_t pos,
                        std::string_view needle) {
  if (pos + needle.size() > haystack.size()) return false;
  for (size_t i = 0; i < needle.size(); ++i) {
    if (AsciiToLower(haystack[pos + i]) != AsciiToLower(needle[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t pos = 0; pos + needle.size() <= haystack.size(); ++pos) {
    if (EqualsIgnoreCaseAt(haystack, pos, needle)) return true;
  }
  return false;
}

bool ContainsWordIgnoreCase(std::string_view haystack,
                            std::string_view needle) {
  if (needle.empty()) return false;
  for (size_t pos = 0; pos + needle.size() <= haystack.size(); ++pos) {
    if (!EqualsIgnoreCaseAt(haystack, pos, needle)) continue;
    bool left_ok = pos == 0 || !IsAsciiAlnum(haystack[pos - 1]);
    size_t end = pos + needle.size();
    bool right_ok = end == haystack.size() || !IsAsciiAlnum(haystack[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

std::string HtmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '"':
        out.append("&quot;");
        break;
      case '\'':
        out.append("&#39;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string CEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '\t':
        out.append("\\t");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20 ||
            static_cast<unsigned char>(c) == 0x7f) {
          out += StrFormat("\\x%02x", static_cast<unsigned char>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

Result<std::string> CUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 1 >= s.size()) {
      return Status::ParseError("trailing backslash in escaped string");
    }
    char c = s[++i];
    switch (c) {
      case '\\':
        out.push_back('\\');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 'x': {
        if (i + 2 >= s.size()) {
          return Status::ParseError("truncated \\x escape");
        }
        auto hex = [](char h) -> int {
          if (h >= '0' && h <= '9') return h - '0';
          if (h >= 'a' && h <= 'f') return h - 'a' + 10;
          if (h >= 'A' && h <= 'F') return h - 'A' + 10;
          return -1;
        };
        int hi = hex(s[i + 1]);
        int lo = hex(s[i + 2]);
        if (hi < 0 || lo < 0) {
          return Status::ParseError("bad \\x escape digits");
        }
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        break;
      }
      default:
        return Status::ParseError(std::string("unknown escape \\") + c);
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ntw
