#ifndef NTW_COMMON_ARENA_H_
#define NTW_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace ntw {

// Chunked bump allocator. Allocations are O(1) pointer bumps; nothing is
// freed individually — Reset() recycles every byte at once while keeping the
// underlying chunks, so a steady-state consumer (one page parse per request)
// performs no heap traffic at all after warm-up.
//
// Lifetime rule: every pointer or string_view handed out by an Arena is
// invalidated by Reset() and by the Arena's destruction. Nothing else ever
// moves an allocation.
//
// Not thread-safe; each Arena belongs to one request/buffer at a time.
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(size_t min_chunk_bytes = kDefaultChunkBytes)
      : min_chunk_bytes_(min_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `n` bytes aligned to `align` (a power of two, <= alignof(max_align_t)).
  char* Allocate(size_t n, size_t align = alignof(std::max_align_t));

  // Copies `s` into the arena and returns a view of the copy. Empty input
  // returns an empty view without touching the arena.
  std::string_view CopyString(std::string_view s);

  // Recycles all allocations. Chunk memory is retained; if the previous cycle
  // spilled into multiple chunks, they are consolidated into one large chunk
  // so subsequent cycles bump within a single run.
  void Reset();

  // Bytes handed out since the last Reset (including alignment padding).
  size_t used() const { return used_; }
  // Portion of used() that forced fresh chunk growth this cycle. The
  // difference used() - fresh_bytes() was served from recycled capacity —
  // that is what the serving layer reports as arena_bytes_reused.
  size_t fresh_bytes() const { return fresh_bytes_; }
  // Total bytes owned across all chunks.
  size_t capacity() const { return capacity_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  char* AllocateSlow(size_t n, size_t align);

  size_t min_chunk_bytes_;
  std::vector<Chunk> chunks_;
  char* ptr_ = nullptr;   // next free byte in the active (last) chunk
  char* end_ = nullptr;   // one past the active chunk
  size_t used_ = 0;
  size_t fresh_bytes_ = 0;
  size_t capacity_ = 0;
};

}  // namespace ntw

#endif  // NTW_COMMON_ARENA_H_
