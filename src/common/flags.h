#ifndef NTW_COMMON_FLAGS_H_
#define NTW_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace ntw {

/// Minimal command-line parser for the tools: `--name=value`,
/// `--name value` and boolean `--name` forms, everything else positional.
/// `--` ends flag parsing. Unknown flags are kept (callers validate).
class Flags {
 public:
  /// Parses argv; ParseError on malformed input (e.g. "--=x").
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// Flag value, or `fallback` when absent. Boolean flags have value "".
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const;

  /// Integer-valued flag; `fallback` when absent, OutOfRange on garbage.
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;

  /// Double-valued flag; `fallback` when absent, OutOfRange on garbage.
  Result<double> GetDouble(const std::string& name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of flags not in `known` (for strict validation).
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ntw

#endif  // NTW_COMMON_FLAGS_H_
