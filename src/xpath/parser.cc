#include "xpath/parser.h"

#include <algorithm>

#include "common/strings.h"

namespace ntw::xpath {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Expr> Parse() {
    Expr expr;
    if (input_.empty()) {
      return Status::ParseError("empty xpath");
    }
    bool first = true;
    while (pos_ < input_.size()) {
      Step step;
      if (Peek() == '/') {
        ++pos_;
        if (pos_ < input_.size() && Peek() == '/') {
          ++pos_;
          step.axis = Axis::kDescendant;
        } else {
          step.axis = Axis::kChild;
        }
      } else if (first) {
        // Relative shorthand: treat as descendant from root.
        step.axis = Axis::kDescendant;
      } else {
        return Error("expected '/'");
      }
      first = false;
      NTW_RETURN_IF_ERROR(ParseNodeTest(&step));
      NTW_RETURN_IF_ERROR(ParsePredicates(&step));
      expr.steps.push_back(std::move(step));
    }
    if (expr.steps.empty()) {
      return Status::ParseError("xpath has no steps");
    }
    return expr;
  }

 private:
  char Peek() const { return input_[pos_]; }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_) +
                              " in '" + std::string(input_) + "'");
  }

  Status ParseNodeTest(Step* step) {
    if (pos_ >= input_.size()) return Error("expected node test");
    if (Peek() == '*') {
      ++pos_;
      step->test = NodeTest::kAnyElement;
      return Status::OK();
    }
    if (!IsAsciiAlpha(Peek())) return Error("expected node test");
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (IsAsciiAlnum(Peek()) || Peek() == '-' || Peek() == '_')) {
      ++pos_;
    }
    std::string name = ToLower(input_.substr(start, pos_ - start));
    if (name == "text" && pos_ + 1 < input_.size() && Peek() == '(' &&
        input_[pos_ + 1] == ')') {
      pos_ += 2;
      step->test = NodeTest::kText;
      return Status::OK();
    }
    step->test = NodeTest::kTag;
    step->tag = std::move(name);
    return Status::OK();
  }

  Status ParsePredicates(Step* step) {
    while (pos_ < input_.size() && Peek() == '[') {
      ++pos_;
      if (pos_ >= input_.size()) return Error("unterminated predicate");
      if (Peek() == '@') {
        ++pos_;
        size_t name_start = pos_;
        while (pos_ < input_.size() && Peek() != '=') ++pos_;
        if (pos_ >= input_.size()) return Error("expected '=' in predicate");
        std::string name =
            ToLower(StripWhitespace(input_.substr(name_start,
                                                  pos_ - name_start)));
        ++pos_;  // '='
        if (pos_ >= input_.size() || (Peek() != '\'' && Peek() != '"')) {
          return Error("expected quoted value");
        }
        char quote = Peek();
        ++pos_;
        size_t value_start = pos_;
        while (pos_ < input_.size() && Peek() != quote) ++pos_;
        if (pos_ >= input_.size()) return Error("unterminated value");
        std::string value(input_.substr(value_start, pos_ - value_start));
        ++pos_;  // Closing quote.
        if (pos_ >= input_.size() || Peek() != ']') {
          return Error("expected ']'");
        }
        ++pos_;
        step->attr_filters.emplace_back(std::move(name), std::move(value));
      } else if (IsAsciiDigit(Peek())) {
        int number = 0;
        while (pos_ < input_.size() && IsAsciiDigit(Peek())) {
          number = number * 10 + (Peek() - '0');
          ++pos_;
        }
        if (pos_ >= input_.size() || Peek() != ']') {
          return Error("expected ']'");
        }
        ++pos_;
        if (number < 1) return Error("child number must be >= 1");
        if (step->child_number.has_value()) {
          return Error("duplicate child-number predicate");
        }
        step->child_number = number;
      } else {
        return Error("unsupported predicate");
      }
    }
    // Canonicalize attribute filter order so parsed and constructed
    // expressions compare equal.
    std::sort(step->attr_filters.begin(), step->attr_filters.end());
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<Expr> ParseXPath(std::string_view input) {
  return Parser(StripWhitespace(input)).Parse();
}

}  // namespace ntw::xpath
