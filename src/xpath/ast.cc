#include "xpath/ast.h"

namespace ntw::xpath {

bool Step::operator==(const Step& other) const {
  return axis == other.axis && test == other.test && tag == other.tag &&
         child_number == other.child_number &&
         attr_filters == other.attr_filters;
}

std::string Step::ToString() const {
  std::string out = axis == Axis::kChild ? "/" : "//";
  switch (test) {
    case NodeTest::kTag:
      out += tag;
      break;
    case NodeTest::kAnyElement:
      out += "*";
      break;
    case NodeTest::kText:
      out += "text()";
      break;
  }
  if (child_number.has_value()) {
    out += "[" + std::to_string(*child_number) + "]";
  }
  for (const auto& [name, value] : attr_filters) {
    out += "[@" + name + "='" + value + "']";
  }
  return out;
}

std::string Expr::ToString() const {
  std::string out;
  for (const auto& step : steps) {
    out += step.ToString();
  }
  return out;
}

}  // namespace ntw::xpath
