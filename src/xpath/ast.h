#ifndef NTW_XPATH_AST_H_
#define NTW_XPATH_AST_H_

#include <optional>
#include <string>
#include <vector>

namespace ntw::xpath {

/// Axis connecting a step to its predecessor: `/` (child) or `//`
/// (descendant-or-self, as in the paper's fragment).
enum class Axis {
  kChild,
  kDescendant,
};

/// Node test of a step.
enum class NodeTest {
  kTag,         // A specific element tag name.
  kAnyElement,  // `*`
  kText,        // `text()`
};

/// One location step of the paper's xpath fragment (Sec. 5): an axis, a node
/// test, an optional child-number filter (`td[2]`), and zero or more
/// attribute filters (`[@class='listing']`).
struct Step {
  Axis axis = Axis::kChild;
  NodeTest test = NodeTest::kTag;
  std::string tag;  // Valid when test == kTag.
  std::optional<int> child_number;
  // Attribute equality filters, sorted by name for canonical comparison.
  std::vector<std::pair<std::string, std::string>> attr_filters;

  bool operator==(const Step& other) const;
  std::string ToString() const;
};

/// A complete xpath expression: an absolute path (evaluated from the
/// document root) made of steps.
struct Expr {
  std::vector<Step> steps;

  bool operator==(const Expr& other) const { return steps == other.steps; }

  /// Canonical textual rendering, e.g.
  /// "//div[@class='content']/table[1]/tr/td[2]/text()".
  std::string ToString() const;
};

}  // namespace ntw::xpath

#endif  // NTW_XPATH_AST_H_
