#ifndef NTW_XPATH_EVALUATOR_H_
#define NTW_XPATH_EVALUATOR_H_

#include <vector>

#include "html/dom.h"
#include "xpath/ast.h"

namespace ntw::xpath {

/// Evaluates an expression against a finalized document, returning the
/// matched nodes in document (pre-order) order without duplicates.
///
/// Semantics follow the paper's fragment:
///  - steps are evaluated left to right from the document root;
///  - `/` selects children, `//` selects descendants (any depth);
///  - a child-number filter `tag[k]` selects nodes whose 1-based position
///    among same-tag element siblings is k;
///  - `[@name='value']` tests attribute equality (names lowercased);
///  - `text()` selects text nodes.
std::vector<const html::Node*> Evaluate(const Expr& expr,
                                        const html::Document& doc);

/// True when `node` satisfies the node test and predicates of `step`
/// (ignoring the axis).
bool StepMatches(const Step& step, const html::Node* node);

}  // namespace ntw::xpath

#endif  // NTW_XPATH_EVALUATOR_H_
