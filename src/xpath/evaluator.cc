#include "xpath/evaluator.h"

#include <algorithm>
#include <unordered_set>

namespace ntw::xpath {
namespace {

void CollectDescendants(const html::Node* node,
                        std::vector<const html::Node*>* out) {
  for (const auto& child : node->children()) {
    out->push_back(child.get());
    CollectDescendants(child.get(), out);
  }
}

}  // namespace

bool StepMatches(const Step& step, const html::Node* node) {
  switch (step.test) {
    case NodeTest::kText:
      if (!node->is_text()) return false;
      break;
    case NodeTest::kAnyElement:
      if (!node->is_element()) return false;
      break;
    case NodeTest::kTag:
      if (!node->is_element() || node->tag() != step.tag) return false;
      break;
  }
  if (step.child_number.has_value()) {
    if (step.test == NodeTest::kTag) {
      if (node->same_tag_child_number() != *step.child_number) return false;
    } else {
      // For `*[k]` / `text()[k]` use the position in the parent's child
      // list (1-based).
      if (node->sibling_index() + 1 != *step.child_number) return false;
    }
  }
  for (const auto& [name, value] : step.attr_filters) {
    const std::string* actual = node->GetAttr(name);
    if (actual == nullptr || *actual != value) return false;
  }
  return true;
}

std::vector<const html::Node*> Evaluate(const Expr& expr,
                                        const html::Document& doc) {
  std::vector<const html::Node*> current = {doc.root()};
  std::vector<const html::Node*> candidates;
  for (const auto& step : expr.steps) {
    std::vector<const html::Node*> next;
    std::unordered_set<const html::Node*> seen;
    for (const html::Node* context : current) {
      candidates.clear();
      if (step.axis == Axis::kChild) {
        for (const auto& child : context->children()) {
          candidates.push_back(child.get());
        }
      } else {
        CollectDescendants(context, &candidates);
      }
      for (const html::Node* candidate : candidates) {
        if (StepMatches(step, candidate) && seen.insert(candidate).second) {
          next.push_back(candidate);
        }
      }
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  std::sort(current.begin(), current.end(),
            [](const html::Node* a, const html::Node* b) {
              return a->preorder_index() < b->preorder_index();
            });
  return current;
}

}  // namespace ntw::xpath
