#ifndef NTW_XPATH_PARSER_H_
#define NTW_XPATH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xpath/ast.h"

namespace ntw::xpath {

/// Parses the paper's xpath fragment:
///
///   path       := step+
///   step       := ("/" | "//") nodetest predicate*
///   nodetest   := NAME | "*" | "text()"
///   predicate  := "[" NUMBER "]" | "[@" NAME "='" VALUE "']"
///
/// A path without a leading slash is accepted and treated as "//" + path
/// (the common shorthand in the paper's prose). Returns ParseError with a
/// character offset on malformed input.
Result<Expr> ParseXPath(std::string_view input);

}  // namespace ntw::xpath

#endif  // NTW_XPATH_PARSER_H_
