#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/json.h"

namespace ntw::obs {

size_t Histogram::BucketIndex(int64_t sample) {
  if (sample <= 0) return 0;
  return static_cast<size_t>(std::bit_width(static_cast<uint64_t>(sample)));
}

int64_t Histogram::BucketLowerBound(size_t index) {
  if (index == 0) return INT64_MIN;
  return int64_t{1} << (index - 1);
}

void Histogram::Record(int64_t sample) {
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen &&
         !min_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  int64_t v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}

int64_t Histogram::max() const {
  int64_t v = max_.load(std::memory_order_relaxed);
  return v == INT64_MIN ? 0 : v;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

HistogramView SnapshotHistogram(const Histogram& histogram) {
  HistogramView view;
  view.count = histogram.count();
  view.sum = histogram.sum();
  view.min = histogram.min();
  view.max = histogram.max();
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    view.buckets[i] = histogram.bucket(i);
  }
  return view;
}

int64_t HistogramPercentile(const HistogramView& view, double q) {
  if (view.count <= 0) return 0;
  int64_t rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(view.count)));
  if (rank < 1) rank = 1;
  int64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    cumulative += view.buckets[i];
    if (cumulative < rank) continue;
    if (i == 0) return std::min<int64_t>(view.min, 0);  // The ≤0 bucket.
    double lower = static_cast<double>(Histogram::BucketLowerBound(i));
    int64_t estimate =
        static_cast<int64_t>(std::llround(lower * std::sqrt(2.0)));
    return std::clamp(estimate, view.min, view.max);
  }
  return view.max;
}

int64_t ShardedCounter::value() const {
  int64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void ShardedCounter::Reset() {
  for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

HistogramView ShardedHistogram::Merged() const {
  HistogramView merged;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  for (const Stripes& stripe : stripes_) {
    const Histogram& h = stripe.histogram;
    int64_t count = h.count();
    if (count == 0) continue;
    merged.count += count;
    merged.sum += h.sum();
    min = std::min(min, h.min());
    max = std::max(max, h.max());
    for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
      merged.buckets[i] += h.bucket(i);
    }
  }
  merged.min = merged.count > 0 ? min : 0;
  merged.max = merged.count > 0 ? max : 0;
  return merged;
}

void ShardedHistogram::Reset() {
  for (Stripes& stripe : stripes_) stripe.histogram.Reset();
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // Never destroyed: worker
  return *registry;  // threads may still record during static teardown.
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

ShardedCounter* Registry::GetShardedCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sharded_counters_[name];
  if (!slot) slot = std::make_unique<ShardedCounter>();
  return slot.get();
}

ShardedHistogram* Registry::GetShardedHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sharded_histograms_[name];
  if (!slot) slot = std::make_unique<ShardedHistogram>();
  return slot.get();
}

void Registry::SetShardCount(int shards) {
  shard_count_.store(shards < 1 ? 1 : shards, std::memory_order_relaxed);
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, counter] : sharded_counters_) counter->Reset();
  for (auto& [name, histogram] : sharded_histograms_) histogram->Reset();
}

namespace {

void WriteHistogramView(JsonWriter& json, const HistogramView& view) {
  json.BeginObject();
  json.KV("count", view.count);
  json.KV("sum", view.sum);
  json.KV("min", view.min);
  json.KV("max", view.max);
  json.Key("buckets");
  json.BeginArray();
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    if (view.buckets[i] == 0) continue;
    json.BeginArray();
    // The ≤0 bucket reports lower bound 0 (INT64_MIN is not meaningful
    // for the non-negative quantities the library records).
    json.Int(i == 0 ? 0 : Histogram::BucketLowerBound(i));
    json.Int(view.buckets[i]);
    json.EndArray();
  }
  json.EndArray();
  json.EndObject();
}

/// Emits two sorted maps' members interleaved so the output object stays
/// sorted by name regardless of which map a name lives in.
template <typename MapA, typename MapB, typename EmitA, typename EmitB>
void EmitMergedSorted(const MapA& a, const MapB& b, EmitA emit_a,
                      EmitB emit_b) {
  auto it_a = a.begin();
  auto it_b = b.begin();
  while (it_a != a.end() || it_b != b.end()) {
    if (it_b == b.end() ||
        (it_a != a.end() && it_a->first < it_b->first)) {
      emit_a(it_a->first, *it_a->second);
      ++it_a;
    } else {
      emit_b(it_b->first, *it_b->second);
      ++it_b;
    }
  }
}

}  // namespace

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  int shards = shard_count();
  JsonWriter json;
  json.BeginObject();
  json.KV("schema", "ntw-metrics");
  json.KV("schema_version", int64_t{4});
  json.KV("shard_count", static_cast<int64_t>(shards));

  // Sharded instruments appear merged here under their plain names, so
  // consumers keyed on totals ("ntw.serve.requests") are agnostic to
  // whether a metric is striped.
  json.Key("counters");
  json.BeginObject();
  EmitMergedSorted(
      counters_, sharded_counters_,
      [&json](const std::string& name, const Counter& counter) {
        json.KV(name, counter.value());
      },
      [&json](const std::string& name, const ShardedCounter& counter) {
        json.KV(name, counter.value());
      });
  json.EndObject();

  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.KV(name, gauge->value());
  }
  json.EndObject();

  json.Key("histograms");
  json.BeginObject();
  EmitMergedSorted(
      histograms_, sharded_histograms_,
      [&json](const std::string& name, const Histogram& histogram) {
        json.Key(name);
        WriteHistogramView(json, SnapshotHistogram(histogram));
      },
      [&json](const std::string& name, const ShardedHistogram& histogram) {
        json.Key(name);
        WriteHistogramView(json, histogram.Merged());
      });
  json.EndObject();

  // The shard dimension: per-shard values for every sharded instrument,
  // arrays indexed by shard id and trimmed to the configured shard count.
  json.Key("shards");
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, counter] : sharded_counters_) {
    json.Key(name);
    json.BeginArray();
    for (int s = 0; s < shards; ++s) json.Int(counter->shard_value(s));
    json.EndArray();
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, histogram] : sharded_histograms_) {
    json.Key(name);
    json.BeginArray();
    for (int s = 0; s < shards; ++s) {
      const Histogram& h = histogram->shard(s);
      json.BeginObject();
      json.KV("count", h.count());
      json.KV("sum", h.sum());
      json.EndObject();
    }
    json.EndArray();
  }
  json.EndObject();
  json.EndObject();

  json.EndObject();
  return json.Take();
}

}  // namespace ntw::obs
