#include "obs/metrics.h"

#include <bit>

#include "obs/json.h"

namespace ntw::obs {

size_t Histogram::BucketIndex(int64_t sample) {
  if (sample <= 0) return 0;
  return static_cast<size_t>(std::bit_width(static_cast<uint64_t>(sample)));
}

int64_t Histogram::BucketLowerBound(size_t index) {
  if (index == 0) return INT64_MIN;
  return int64_t{1} << (index - 1);
}

void Histogram::Record(int64_t sample) {
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen &&
         !min_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  int64_t v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}

int64_t Histogram::max() const {
  int64_t v = max_.load(std::memory_order_relaxed);
  return v == INT64_MIN ? 0 : v;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // Never destroyed: worker
  return *registry;  // threads may still record during static teardown.
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter json;
  json.BeginObject();
  json.KV("schema", "ntw-metrics");
  json.KV("schema_version", int64_t{1});

  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.KV(name, counter->value());
  }
  json.EndObject();

  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.KV(name, gauge->value());
  }
  json.EndObject();

  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name);
    json.BeginObject();
    json.KV("count", histogram->count());
    json.KV("sum", histogram->sum());
    json.KV("min", histogram->min());
    json.KV("max", histogram->max());
    json.Key("buckets");
    json.BeginArray();
    for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
      int64_t count = histogram->bucket(i);
      if (count == 0) continue;
      json.BeginArray();
      // The ≤0 bucket reports lower bound 0 (INT64_MIN is not meaningful
      // for the non-negative quantities the library records).
      json.Int(i == 0 ? 0 : Histogram::BucketLowerBound(i));
      json.Int(count);
      json.EndArray();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();

  json.EndObject();
  return json.Take();
}

}  // namespace ntw::obs
