#include "obs/json.h"

#include <cinttypes>
#include <cstdio>

namespace ntw::obs {

void JsonWriter::Escape(std::string_view value, std::string* out) {
  // Bulk-append runs of clean bytes; the per-byte loop only classifies.
  // Most strings escape nothing, so the common cost is one branch per
  // byte plus a single append.
  size_t start = 0;
  for (size_t i = 0; i < value.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(value[i]);
    if (c != '"' && c != '\\' && c >= 0x20) continue;
    out->append(value.data() + start, i - start);
    start = i + 1;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default: {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        *out += buf;
      }
    }
  }
  out->append(value.data() + start, value.size() - start);
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (has_member_.back()) out_ += ',';
    has_member_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(true);
  has_member_.push_back(false);
}

void JsonWriter::EndObject() {
  stack_.pop_back();
  has_member_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(false);
  has_member_.push_back(false);
}

void JsonWriter::EndArray() {
  stack_.pop_back();
  has_member_.pop_back();
  out_ += ']';
}

void JsonWriter::RawMembers(std::string_view members) {
  if (members.empty()) return;
  if (has_member_.back()) out_ += ',';
  has_member_.back() = true;
  out_.append(members.data(), members.size());
}

void JsonWriter::Key(std::string_view name) {
  if (has_member_.back()) out_ += ',';
  has_member_.back() = true;
  out_ += '"';
  Escape(name, &out_);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  Escape(value, &out_);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::KV(std::string_view name, std::string_view value) {
  Key(name);
  String(value);
}

void JsonWriter::KV(std::string_view name, const char* value) {
  Key(name);
  String(value);
}

void JsonWriter::KV(std::string_view name, int64_t value) {
  Key(name);
  Int(value);
}

void JsonWriter::KV(std::string_view name, double value) {
  Key(name);
  Double(value);
}

void JsonWriter::KV(std::string_view name, bool value) {
  Key(name);
  Bool(value);
}

std::string JsonWriter::Take() { return std::move(out_); }

}  // namespace ntw::obs
