#include "obs/proc.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ntw::obs {

int64_t PeakRssBytes() {
#if defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss);  // Bytes on macOS.
#elif defined(__unix__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux.
#else
  return 0;
#endif
}

}  // namespace ntw::obs
