#include "obs/proc.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__unix__) && !defined(__APPLE__)
#include <unistd.h>
#endif

namespace ntw::obs {

int64_t PeakRssBytes() {
#if defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss);  // Bytes on macOS.
#elif defined(__unix__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux.
#else
  return 0;
#endif
}

int64_t CurrentRssBytes() {
#if defined(__unix__) && !defined(__APPLE__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long total = 0;
  unsigned long long resident = 0;
  int fields = std::fscanf(statm, "%llu %llu", &total, &resident);
  std::fclose(statm);
  if (fields != 2) return 0;
  long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  return static_cast<int64_t>(resident) * page;
#else
  return 0;  // macOS has no statm; the bench falls back to the peak.
#endif
}

}  // namespace ntw::obs
