#ifndef NTW_OBS_JSON_H_
#define NTW_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ntw::obs {

/// Minimal streaming JSON emitter used by the observability exports
/// (--metrics-json, --trace, ntw_bench). Commas and nesting are handled by
/// an internal container stack; keys must be supplied for object members
/// and must not be supplied inside arrays. Output is deterministic: the
/// caller controls member order and doubles are formatted with a fixed
/// `%.10g` so identical inputs always serialize to identical bytes.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the key of the next object member.
  void Key(std::string_view name);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Splices pre-serialized object members into the current object. The
  /// fragment must be the exact bytes this writer would have produced for
  /// the same members (callers build it once with a scratch JsonWriter and
  /// memoize it — see WrapperRepository's per-entry response prefix).
  void RawMembers(std::string_view members);

  /// Pre-sizes the output buffer when the caller can bound the document.
  void Reserve(size_t bytes) { out_.reserve(bytes); }

  /// Convenience: Key(name) + the value.
  void KV(std::string_view name, std::string_view value);
  void KV(std::string_view name, const char* value);
  void KV(std::string_view name, int64_t value);
  void KV(std::string_view name, double value);
  void KV(std::string_view name, bool value);

  /// The serialized document. The writer must be back at top level (every
  /// container closed).
  std::string Take();

  /// Appends a JSON-escaped rendering of `value` (without quotes) to out.
  static void Escape(std::string_view value, std::string* out);

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open container: true = object, false = array.
  std::vector<bool> stack_;
  // Whether the current container already holds a member (comma needed).
  std::vector<bool> has_member_;
  bool pending_key_ = false;
};

}  // namespace ntw::obs

#endif  // NTW_OBS_JSON_H_
