#include "obs/trace.h"

#include "obs/json.h"

namespace ntw::obs {

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // Never destroyed: pool workers
  return *tracer;                        // may outlive static teardown.
}

void Tracer::Enable() {
  Reset();
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::Reset() {
  enabled_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  // Bump the generation so thread-local pointers into the old buffers are
  // recognized as stale and re-registered on next use.
  generation_.fetch_add(1, std::memory_order_release);
}

Tracer::ThreadBuffer* Tracer::GetThreadBuffer() {
  thread_local ThreadBuffer* t_buffer = nullptr;
  thread_local uint64_t t_generation = 0;
  uint64_t current = generation_.load(std::memory_order_acquire);
  if (t_buffer == nullptr || t_generation != current) {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-check under the lock: Reset may have bumped the generation again.
    current = generation_.load(std::memory_order_relaxed);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    t_buffer = buffers_.back().get();
    t_generation = current;
  }
  return t_buffer;
}

size_t Tracer::SpanCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->spans.size();
  return total;
}

std::string Tracer::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter json;
  json.BeginObject();
  json.KV("schema", "ntw-trace");
  json.KV("schema_version", int64_t{1});
  json.Key("spans");
  json.BeginArray();
  for (size_t t = 0; t < buffers_.size(); ++t) {
    for (const SpanRecord& span : buffers_[t]->spans) {
      json.BeginObject();
      json.KV("name", span.name);
      json.KV("thread", static_cast<int64_t>(t));
      json.KV("depth", static_cast<int64_t>(span.depth));
      json.Key("start_ns");
      json.UInt(span.start_ns);
      json.Key("dur_ns");
      json.UInt(span.end_ns >= span.start_ns ? span.end_ns - span.start_ns
                                             : 0);
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();
  return json.Take();
}

Span::Span(const char* name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  buffer_ = tracer.GetThreadBuffer();
  index_ = buffer_->spans.size();
  buffer_->spans.push_back(Tracer::SpanRecord{
      name, buffer_->depth, tracer.NowNs(), 0});
  ++buffer_->depth;
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  buffer_->spans[index_].end_ns = Tracer::Global().NowNs();
  --buffer_->depth;
}

}  // namespace ntw::obs
