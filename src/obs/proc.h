#ifndef NTW_OBS_PROC_H_
#define NTW_OBS_PROC_H_

#include <cstdint>

namespace ntw::obs {

/// Peak resident set size of the current process in bytes (ru_maxrss via
/// getrusage, scaled from the platform unit). Returns 0 when unavailable.
int64_t PeakRssBytes();

/// Current resident set size in bytes (/proc/self/statm on Linux).
/// Unlike the peak, this goes back down when pages are released — what
/// the repository bench needs to show cold pack opens stay small.
/// Returns 0 when unavailable.
int64_t CurrentRssBytes();

}  // namespace ntw::obs

#endif  // NTW_OBS_PROC_H_
