#ifndef NTW_OBS_METRICS_H_
#define NTW_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ntw::obs {

/// Structured runtime metrics for the extraction pipeline.
///
/// Hot-path contract: once a Counter/Gauge/Histogram pointer has been
/// obtained from the Registry it is stable for the process lifetime
/// (ResetValues zeroes values but never invalidates instruments), and
/// every mutation is a relaxed atomic operation — no locks, no
/// allocation. Registration itself takes the registry mutex and is meant
/// to happen once per call site (function-local static pointer).
///
/// Determinism contract (DESIGN.md §7): instruments only *observe*; no
/// library control flow ever reads a metric, so enabling or exporting
/// metrics cannot change extraction output bytes.

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. configured thread count).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log-scale (power-of-two) histogram over int64 samples.
///
/// Bucket 0 holds samples ≤ 0; bucket i (1 ≤ i ≤ 63) holds samples in
/// [2^(i-1), 2^i). INT64_MAX lands in the last bucket — the layout covers
/// the whole int64 range, so no sample can overflow past it. All updates
/// are relaxed atomics: totals are exact, and min/max are maintained with
/// CAS loops.
class Histogram {
 public:
  static constexpr size_t kBucketCount = 64;

  /// Bucket a sample falls into (see class comment).
  static size_t BucketIndex(int64_t sample);

  /// Inclusive lower bound of bucket `index`: 0 → INT64_MIN (the ≤0
  /// bucket), i ≥ 1 → 2^(i-1).
  static int64_t BucketLowerBound(size_t index);

  void Record(int64_t sample);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample; 0 when empty.
  int64_t min() const;
  int64_t max() const;
  int64_t bucket(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBucketCount]{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// A point-in-time copy of one histogram's aggregates — what exports
/// serialize and what ShardedHistogram::Merged() returns. Decoupling the
/// view from the live atomics lets per-shard stripes merge lock-free.
struct HistogramView {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  int64_t buckets[Histogram::kBucketCount] = {};
};

/// Reads a consistent-enough view of a live histogram (each field is a
/// relaxed load; totals can be mid-update, which regression tooling
/// tolerates the same way it tolerates sampling skew).
HistogramView SnapshotHistogram(const Histogram& histogram);

/// Percentile estimate from the log-scale histogram: the *geometric
/// midpoint* of the power-of-two bucket holding the q-quantile sample,
/// clamped to the recorded [min, max]. A sample in [2^(i-1), 2^i) is
/// estimated as 2^(i-1)·√2, so the estimate is within a factor of √2 of
/// the true order statistic in either direction (DESIGN.md §11) —
/// reporting the bucket's upper bound instead biases every percentile
/// high and can make p50 exceed the exact mean, which is computed from
/// the untruncated sum. Shared by ntw_loadgen and bench_crawl.
int64_t HistogramPercentile(const HistogramView& view, double q);

/// Per-shard counter for the serving reactors: each shard increments its
/// own cache-line-padded cell, so N reactors counting requests never
/// contend on one line. The merged value() is a lock-free sum at scrape
/// time — writers are never stopped. Shard ids beyond kStripes fold
/// modulo (totals stay exact; only the per-shard attribution folds).
class ShardedCounter {
 public:
  static constexpr int kStripes = 32;

  void Add(int shard, int64_t delta = 1) {
    cells_[Stripe(shard)].value.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Merged total across all shards.
  int64_t value() const;
  /// One shard's contribution (modulo-folded like Add).
  int64_t shard_value(int shard) const {
    return cells_[Stripe(shard)].value.load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  static size_t Stripe(int shard) {
    return static_cast<size_t>(shard) & (kStripes - 1);
  }
  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };
  Cell cells_[kStripes];
};

/// Per-shard histogram: one full log-scale Histogram per stripe, merged
/// lock-free at scrape. Same stripe mapping as ShardedCounter.
class ShardedHistogram {
 public:
  static constexpr int kStripes = 32;

  void Record(int shard, int64_t sample) {
    stripes_[Stripe(shard)].histogram.Record(sample);
  }
  const Histogram& shard(int shard) const {
    return stripes_[Stripe(shard)].histogram;
  }
  /// Lock-free merge of every stripe (sum of counts/sums/buckets,
  /// min-of-mins, max-of-maxes).
  HistogramView Merged() const;
  void Reset();

 private:
  static size_t Stripe(int shard) {
    return static_cast<size_t>(shard) & (kStripes - 1);
  }
  struct alignas(64) Stripes {
    Histogram histogram;
  };
  Stripes stripes_[kStripes];
};

/// Process-wide instrument registry. Thread-safe; instrument pointers are
/// stable for the process lifetime.
class Registry {
 public:
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the named instrument. Names are dotted lowercase
  /// paths, e.g. "ntw.enumerate.inductor_calls". Each name maps to one
  /// kind — asking for an existing name with a different kind returns a
  /// distinct instrument (the kinds live in separate namespaces; a name
  /// should belong to exactly one kind or the export would emit it twice).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  ShardedCounter* GetShardedCounter(const std::string& name);
  ShardedHistogram* GetShardedHistogram(const std::string& name);

  /// Number of serving shards the export reports per-shard values for
  /// (trims the stripe arrays in ToJson). Defaults to 1; the daemon and
  /// loadgen set it at startup.
  void SetShardCount(int shards);
  int shard_count() const {
    return shard_count_.load(std::memory_order_relaxed);
  }

  /// Zeroes every instrument's value. Pointers stay valid — call sites
  /// caching instruments across a reset keep working.
  void ResetValues();

  /// Serializes all instruments, sorted by name:
  /// Schema history: v4 added the ntw.serve.streaming_xpath_pages /
  /// streaming_flattened_pages / streaming_fallback_* counters.
  ///   {"schema":"ntw-metrics","schema_version":4,"shard_count":N,
  ///    "counters":{...},"gauges":{...},
  ///    "histograms":{name:{count,sum,min,max,buckets:[[lower,count]..]}},
  ///    "shards":{"counters":{name:[v0..]},
  ///              "histograms":{name:[{"count":..,"sum":..}..]}}}
  /// Sharded instruments appear merged in "counters"/"histograms" (so
  /// dashboards keyed on totals keep working) and broken out by shard
  /// under "shards". Histogram buckets with zero count are omitted.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<ShardedCounter>> sharded_counters_;
  std::map<std::string, std::unique_ptr<ShardedHistogram>>
      sharded_histograms_;
  std::atomic<int> shard_count_{1};
};

}  // namespace ntw::obs

#endif  // NTW_OBS_METRICS_H_
