#ifndef NTW_OBS_TRACE_H_
#define NTW_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ntw::obs {

/// Hierarchical phase tracer for the extraction pipeline
/// (annotate → induce → enumerate → rank → extract, plus per-thread pool
/// activity).
///
/// Spans are recorded into per-thread append-only buffers, so the hot
/// path touches no lock after a thread's first span: Span's constructor
/// reads one atomic (the enabled flag), stamps a steady-clock time and
/// appends to a thread-local vector. When tracing is disabled (the
/// default) a Span is two relaxed loads and nothing else.
///
/// Aggregation (ToJson / Reset / Enable / Disable) must run quiescently —
/// no spans in flight on any thread. Every caller in this codebase has a
/// natural quiescent point because ThreadPool::ParallelFor joins before
/// returning.
///
/// Determinism contract (DESIGN.md §7): spans only observe; tracing never
/// changes library control flow, so extraction output bytes are identical
/// with tracing on or off.
class Tracer {
 public:
  static Tracer& Global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Clears previous spans and starts recording. The span clock restarts
  /// at zero.
  void Enable();

  /// Stops recording; already-recorded spans remain exportable.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every recorded span and detaches all thread buffers.
  void Reset();

  /// Number of spans recorded so far.
  size_t SpanCount() const;

  /// Serializes the trace:
  ///   {"schema":"ntw-trace","schema_version":1,
  ///    "spans":[{"name","thread","depth","start_ns","dur_ns"}...]}
  /// Spans are ordered by (thread, start). `thread` is the buffer
  /// registration index, not an OS id; `depth` reconstructs the hierarchy
  /// within a thread (a span's parent is the nearest preceding span of
  /// smaller depth that still covers its start time).
  std::string ToJson() const;

 private:
  friend class Span;

  struct SpanRecord {
    const char* name;  // Must outlive the tracer (string literals).
    int32_t depth;
    uint64_t start_ns;
    uint64_t end_ns;
  };

  struct ThreadBuffer {
    std::vector<SpanRecord> spans;
    int32_t depth = 0;
  };

  /// The calling thread's buffer for the current trace generation,
  /// registering a new one (under the mutex) on first use.
  ThreadBuffer* GetThreadBuffer();

  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> generation_{1};
  std::chrono::steady_clock::time_point epoch_{};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span on the global tracer. `name` must be a string literal (the
/// tracer stores the pointer). No-op while tracing is disabled.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer::ThreadBuffer* buffer_ = nullptr;
  size_t index_ = 0;
};

}  // namespace ntw::obs

#endif  // NTW_OBS_TRACE_H_
