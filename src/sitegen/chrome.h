#ifndef NTW_SITEGEN_CHROME_H_
#define NTW_SITEGEN_CHROME_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "sitegen/page_builder.h"

namespace ntw::sitegen {

/// Page chrome shared by every page of a site: header + navigation,
/// optional sidebar, footer. The chrome is where most annotation noise
/// lives — sidebars listing "popular brands", footers with street
/// addresses and promo sentences that mention dictionary entries — so its
/// shape matters for reproducing the paper's noise mechanisms.
struct ChromeTemplate {
  std::string site_title;
  std::vector<std::string> nav_items;
  bool has_sidebar = false;
  std::string sidebar_heading;
  bool footer_has_address = false;
  std::string header_class;
  std::string sidebar_class;
  std::string footer_class;

  /// Draws a random chrome for a site.
  static ChromeTemplate Random(Rng* rng, std::string site_title);
};

/// Renders the header/nav (and opens the sidebar if any); returns the
/// content container the listing should be rendered into.
/// `sidebar_items` and `footer_promos` are free text the caller can use to
/// plant noise mentions; `footer_promos` lines are emitted as footer
/// paragraphs.
html::Node* RenderChromeTop(PageBuilder* builder, const ChromeTemplate& chrome,
                            const std::vector<std::string>& sidebar_items);

/// Renders the footer; call after the listing has been rendered.
void RenderChromeBottom(PageBuilder* builder, html::Node* body,
                        const ChromeTemplate& chrome, Rng* rng,
                        const std::vector<std::string>& footer_promos);

/// Builds <html><head><title>…</title></head><body> and returns body.
html::Node* BeginPage(PageBuilder* builder, const std::string& title);

}  // namespace ntw::sitegen

#endif  // NTW_SITEGEN_CHROME_H_
