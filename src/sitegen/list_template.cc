#include "sitegen/list_template.h"

#include <array>

namespace ntw::sitegen {
namespace {

constexpr std::array<const char*, 8> kClassWords = {
    "results", "listing", "dealerlinks", "content",
    "items",   "records", "storelist",   "data"};

constexpr std::array<const char*, 6> kPrimaryTags = {"u",    "b", "strong",
                                                     "span", "em", "a"};

/// Emits one auxiliary field's text, registering it when it is a target.
void EmitField(PageBuilder* b, html::Node* parent, const ListRecord& record,
               size_t i) {
  if (record.field_types.size() > i && !record.field_types[i].empty()) {
    b->TargetText(parent, record.fields[i], record.field_types[i]);
  } else {
    b->Text(parent, record.fields[i]);
  }
}

bool FieldPresent(const ListRecord& record, size_t i) {
  if (i >= record.fields.size()) return false;
  if (i < record.present.size() && !record.present[i]) return false;
  return true;
}

}  // namespace

ListRecord ListRecord::Of(std::vector<std::string> fields) {
  ListRecord record;
  record.field_types.assign(fields.size(), "");
  record.present.assign(fields.size(), true);
  record.fields = std::move(fields);
  return record;
}

std::string RandomCssClass(Rng* rng) {
  std::string name = kClassWords[rng->NextBounded(kClassWords.size())];
  if (rng->NextBernoulli(0.3)) {
    name += std::to_string(rng->NextInRange(1, 9));
  }
  return name;
}

ListTemplate ListTemplate::Random(Rng* rng, size_t num_fields) {
  ListTemplate t;
  switch (rng->NextBounded(5)) {
    case 0:
      t.layout_ = ListLayout::kTableRowPerRecord;
      break;
    case 1:
      t.layout_ = ListLayout::kTableCellPerRecord;
      break;
    case 2:
      t.layout_ = ListLayout::kDivBlocks;
      break;
    case 3:
      t.layout_ = ListLayout::kListItems;
      break;
    default:
      t.layout_ = ListLayout::kHeadingBlocks;
      break;
  }
  t.num_fields_ = num_fields;
  t.container_class_ = RandomCssClass(rng);
  t.record_class_ = RandomCssClass(rng);
  t.primary_tag_ = kPrimaryTags[rng->NextBounded(kPrimaryTags.size())];
  t.primary_in_anchor_ =
      t.primary_tag_ != "a" && rng->NextBernoulli(0.25);
  t.header_row_ = rng->NextBernoulli(0.4);
  t.trailing_link_ = rng->NextBernoulli(0.35);
  t.field_label_spans_ = rng->NextBernoulli(0.4);
  t.bullet_ = rng->NextBernoulli(0.5) ? " - " : " | ";
  return t;
}

void ListTemplate::EmitPrimary(PageBuilder* b, html::Node* parent,
                               const ListRecord& record) const {
  html::Node* holder = parent;
  if (primary_in_anchor_) {
    holder = b->El(holder, "a", {{"href", "#detail"}});
  }
  holder = b->El(holder, primary_tag_,
                 primary_tag_ == "a"
                     ? std::initializer_list<
                           std::pair<const char*, std::string>>{
                           {"href", "#store"}}
                     : std::initializer_list<
                           std::pair<const char*, std::string>>{});
  if (!record.field_types.empty() && !record.field_types[0].empty()) {
    b->TargetText(holder, record.fields[0], record.field_types[0]);
  } else {
    b->Text(holder, record.fields[0]);
  }
}

void ListTemplate::Render(PageBuilder* b, html::Node* parent,
                          const std::vector<ListRecord>& records) const {
  switch (layout_) {
    case ListLayout::kTableRowPerRecord:
      RenderTableRows(b, parent, records);
      return;
    case ListLayout::kTableCellPerRecord:
      RenderTableCells(b, parent, records);
      return;
    case ListLayout::kDivBlocks:
      RenderDivBlocks(b, parent, records);
      return;
    case ListLayout::kListItems:
      RenderListItems(b, parent, records);
      return;
    case ListLayout::kHeadingBlocks:
      RenderHeadingBlocks(b, parent, records);
      return;
  }
}

void ListTemplate::RenderTableRows(
    PageBuilder* b, html::Node* parent,
    const std::vector<ListRecord>& records) const {
  html::Node* table =
      b->El(parent, "table", {{"class", container_class_}});
  if (header_row_) {
    html::Node* tr = b->El(table, "tr", {{"class", "hdr"}});
    for (size_t i = 0; i < num_fields_; ++i) {
      b->Text(b->El(tr, "th"), "Column " + std::to_string(i + 1));
    }
  }
  for (const ListRecord& record : records) {
    html::Node* tr = b->El(table, "tr", {{"class", record_class_}});
    html::Node* first_td = b->El(tr, "td");
    EmitPrimary(b, first_td, record);
    for (size_t i = 1; i < num_fields_ && i < record.fields.size(); ++i) {
      html::Node* td = b->El(tr, "td");
      if (FieldPresent(record, i)) EmitField(b, td, record, i);
    }
    if (trailing_link_) {
      b->Text(b->El(b->El(tr, "td"), "a", {{"href", "#map"}}),
              "Map & Directions");
    }
  }
}

void ListTemplate::RenderTableCells(
    PageBuilder* b, html::Node* parent,
    const std::vector<ListRecord>& records) const {
  html::Node* div = b->El(parent, "div", {{"class", container_class_}});
  html::Node* table = b->El(div, "table");
  for (const ListRecord& record : records) {
    html::Node* tr = b->El(table, "tr");
    html::Node* td = b->El(tr, "td", {{"class", record_class_}});
    EmitPrimary(b, td, record);
    for (size_t i = 1; i < num_fields_ && i < record.fields.size(); ++i) {
      b->El(td, "br");
      if (FieldPresent(record, i)) EmitField(b, td, record, i);
    }
    if (trailing_link_) {
      html::Node* second_td = b->El(tr, "td");
      b->Text(b->El(second_td, "a", {{"href", "#dir"}}), "Directions To Us");
    }
  }
}

void ListTemplate::RenderDivBlocks(
    PageBuilder* b, html::Node* parent,
    const std::vector<ListRecord>& records) const {
  static constexpr std::array<const char*, 4> kLabels = {
      "Address: ", "Location: ", "Phone: ", "Info: "};
  html::Node* container =
      b->El(parent, "div", {{"class", container_class_}});
  for (const ListRecord& record : records) {
    html::Node* block =
        b->El(container, "div", {{"class", record_class_}});
    html::Node* name_span = b->El(block, "span", {{"class", "name"}});
    EmitPrimary(b, name_span, record);
    for (size_t i = 1; i < num_fields_ && i < record.fields.size(); ++i) {
      html::Node* field_div = b->El(
          block, "div", {{"class", "f" + std::to_string(i)}});
      if (field_label_spans_) {
        b->Text(b->El(field_div, "span", {{"class", "lbl"}}),
                kLabels[(i - 1) % kLabels.size()]);
      }
      if (FieldPresent(record, i)) EmitField(b, field_div, record, i);
    }
    if (trailing_link_) {
      b->Text(b->El(block, "a", {{"href", "#more"}}), "Show Details");
    }
  }
}

void ListTemplate::RenderListItems(
    PageBuilder* b, html::Node* parent,
    const std::vector<ListRecord>& records) const {
  html::Node* ul = b->El(parent, "ul", {{"class", container_class_}});
  for (const ListRecord& record : records) {
    html::Node* li = b->El(ul, "li", {{"class", record_class_}});
    EmitPrimary(b, li, record);
    for (size_t i = 1; i < num_fields_ && i < record.fields.size(); ++i) {
      b->Text(li, bullet_);
      if (FieldPresent(record, i)) {
        html::Node* span =
            b->El(li, "span", {{"class", "f" + std::to_string(i)}});
        EmitField(b, span, record, i);
      }
    }
    if (trailing_link_) {
      b->Text(b->El(li, "a", {{"href", "#more"}}), "more");
    }
  }
}

void ListTemplate::RenderHeadingBlocks(
    PageBuilder* b, html::Node* parent,
    const std::vector<ListRecord>& records) const {
  html::Node* container =
      b->El(parent, "div", {{"class", container_class_}});
  for (const ListRecord& record : records) {
    html::Node* heading = b->El(container, "h3");
    EmitPrimary(b, heading, record);
    for (size_t i = 1; i < num_fields_ && i < record.fields.size(); ++i) {
      html::Node* p = b->El(container, "p",
                            {{"class", "f" + std::to_string(i)}});
      if (FieldPresent(record, i)) EmitField(b, p, record, i);
    }
    if (trailing_link_) {
      b->Text(b->El(container, "a", {{"href", "#more"}}), "Read more");
    }
  }
}

}  // namespace ntw::sitegen
