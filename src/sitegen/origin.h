#ifndef NTW_SITEGEN_ORIGIN_H_
#define NTW_SITEGEN_ORIGIN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sitegen/site.h"

namespace ntw::sitegen {

/// Configuration of a multi-site crawl origin: a miniature "web" of
/// script-generated dealer-locator sites, materialized as files so the
/// crawler can fetch it over file:// or through the static-file HTTP
/// origin with zero external dependencies.
struct OriginOptions {
  size_t sites = 8;
  size_t pages_per_site = 6;
  size_t min_records = 2;
  size_t max_records = 8;
  uint64_t seed = 17;
  /// Emit `<root>/index.html` linking every page in sorted order — the
  /// single seed a depth-1 crawl discovers the whole corpus from, in an
  /// order that matches offline LoadPagesFromDirectory iteration.
  bool write_root_index = true;
  /// Verbatim `<root>/robots.txt` content; empty = no file (allow-all).
  std::string robots_txt;
};

/// One generated site of the origin plus everything needed to learn its
/// wrappers and to verify a crawl against ground truth.
struct OriginSite {
  /// Directory name and repository site key ("site_0000", ...).
  std::string key;
  /// Pages + per-type ground truth (truth["name"]) for inductor input.
  GeneratedSite site;
  /// Serialized page bytes, index-aligned with `site.pages` — exactly
  /// what WriteOriginTree puts into page_NNNN.html.
  std::vector<std::string> page_html;
};

struct OriginCorpus {
  OriginOptions options;
  std::vector<OriginSite> sites;

  /// "page_0007.html" — the on-disk name of page `page` of a site.
  static std::string PageFileName(size_t page);
};

/// Deterministically generates the corpus (pure function of options).
/// Every site renders three fields per record (business name — the
/// "name" extraction target — street, phone) through its own random
/// ListTemplate and chrome, so the 8+ sites cover several markup idioms
/// and both delimiter-friendly and tree-only wrapper shapes.
OriginCorpus MakeOriginCorpus(const OriginOptions& options);

/// Materializes `<root>/<site>/page_NNNN.html` (+ optional index.html and
/// robots.txt at the root).
Status WriteOriginTree(const OriginCorpus& corpus, const std::string& root);

/// Learns wrappers for every site from its ground truth and writes a
/// WrapperRepository tree: `<root>/<site>/name.wrapper` (XPATH; arena
/// fast path) and `<root>/<site>/name_lr.wrapper` (LR; dom_free, the
/// streaming tier) — the crawl then exercises every extraction tier.
Status WriteOriginWrapperRepository(const OriginCorpus& corpus,
                                    const std::string& root);

/// Scale-mode repository generator (`ntw_origin --sites N --attrs M`):
/// writes `<root>/site_NNNNNN/attr_NN.wrapper` for `sites` sites with
/// `attrs` wrappers each — records only, no page trees — cycling plan
/// kinds (LR, HLRT, XPATH) with seed-varied delimiters. Pure function of
/// the options; feeds the repository bench and pack roundtrip tests,
/// where the interesting axis is repository size, not page content.
struct SyntheticRepositoryOptions {
  size_t sites = 1000;
  size_t attrs = 2;
  uint64_t seed = 17;
};

/// Streams every record of the synthetic repository to `fn(site,
/// attribute, record)` in (site, attribute) order without touching the
/// filesystem — the record string includes the trailing newline that
/// WriteSyntheticWrapperRepository stores on disk, so consumers that pack
/// records directly (bench_repo) produce byte-identical entries to a
/// pack built from the written tree. Stops at the first non-OK status
/// from `fn` and returns it.
Status ForEachSyntheticWrapperRecord(
    const SyntheticRepositoryOptions& options,
    const std::function<Status(const std::string& site,
                               const std::string& attribute,
                               const std::string& record)>& fn);

/// Materializes the same records as a `<root>/site_NNNNNN/attr_NN.wrapper`
/// tree (one ForEachSyntheticWrapperRecord pass + WriteFile per record).
Status WriteSyntheticWrapperRepository(
    const SyntheticRepositoryOptions& options, const std::string& root);

}  // namespace ntw::sitegen

#endif  // NTW_SITEGEN_ORIGIN_H_
