#include "sitegen/page_builder.h"

namespace ntw::sitegen {

html::Node* PageBuilder::El(
    html::Node* parent, const std::string& tag,
    std::initializer_list<std::pair<const char*, std::string>> attrs) {
  auto element = std::make_unique<html::Node>(tag);
  for (const auto& [name, value] : attrs) {
    element->SetAttr(name, value);
  }
  return parent->AppendChild(std::move(element));
}

html::Node* PageBuilder::Text(html::Node* parent, const std::string& text) {
  return parent->AppendChild(html::Node::MakeText(text));
}

html::Node* PageBuilder::TargetText(html::Node* parent,
                                    const std::string& text,
                                    const std::string& type) {
  html::Node* node = Text(parent, text);
  MarkTarget(type, node);
  return node;
}

void PageBuilder::MarkTarget(const std::string& type,
                             html::Node* text_node) {
  marks_.emplace_back(type, text_node);
}

PageBuilder::Built PageBuilder::Finish() {
  doc_.Finalize();
  Built built;
  for (const auto& [type, node] : marks_) {
    built.targets[type].push_back(node->preorder_index());
  }
  built.doc = std::move(doc_);
  return built;
}

}  // namespace ntw::sitegen
