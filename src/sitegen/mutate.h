#ifndef NTW_SITEGEN_MUTATE_H_
#define NTW_SITEGEN_MUTATE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ntw::sitegen {

/// String-level template mutators for fault injection: each models one
/// flavor of site redesign the self-healing pipeline must detect and
/// recover from (tests/self_heal_test.cc, the wellbehaved drift corpus).
/// They operate on serialized HTML so a mutated page is exactly what a
/// redesigned origin would serve — no DOM round-trip laundering.
///
/// The transforms assume generated-page discipline (attribute values and
/// text content do not contain '<', '>' or the literal `class="` string);
/// they are test infrastructure, not a general HTML rewriter.
enum class MutationKind {
  /// Appends a suffix to every `class="..."` value — the CSS-refactor
  /// redesign that breaks attribute-predicate XPath wrappers.
  kClassRename,
  /// Wraps the body content in one extra `<div>` — the layout-shell
  /// redesign that shifts depths, absolute paths and pre-order indices.
  kWrapperDivInsertion,
  /// Renames a delimiter tag (e.g. <b> → <strong>) — the markup redesign
  /// that breaks byte-delimiter (LR/HLRT) wrappers.
  kDelimiterTextChange,
  /// Reverses the attribute order inside every start tag — byte-level
  /// churn that leaves the DOM identical (benign for tree wrappers, a
  /// redesign for delimiter wrappers whose contexts span attributes).
  kAttributeReorder,
  /// Benign churn: pads whitespace inside the first long text run (in
  /// generated pages, the varying page title) — no new nodes, no shape
  /// change; a correct detector must stay silent.
  kWhitespaceChurn,
};

struct Mutation {
  MutationKind kind;
  /// kDelimiterTextChange: the tag to rename and its replacement.
  std::string from_tag = "b";
  std::string to_tag = "strong";
  /// kClassRename: appended to every class attribute value.
  std::string class_suffix = "-v2";
  /// kWrapperDivInsertion: class of the inserted shell div.
  std::string shell_class = "shell";
  /// kWhitespaceChurn: deterministic padding amount selector.
  uint64_t seed = 1;
  /// kWhitespaceChurn: only text runs at least this long are padded.
  size_t min_text_length = 8;
};

/// Applies one mutation; the input is returned unchanged when the
/// mutation finds nothing to rewrite.
std::string MutatePage(const std::string& html, const Mutation& mutation);

/// Applies mutations left to right.
std::string MutatePage(const std::string& html,
                       const std::vector<Mutation>& mutations);

}  // namespace ntw::sitegen

#endif  // NTW_SITEGEN_MUTATE_H_
