#ifndef NTW_SITEGEN_PAGE_BUILDER_H_
#define NTW_SITEGEN_PAGE_BUILDER_H_

#include <map>
#include <string>
#include <vector>

#include "html/dom.h"

namespace ntw::sitegen {

/// Fluent DOM construction for page templates, with ground-truth target
/// registration: while a rendering script emits nodes it marks which text
/// nodes carry the entities of interest; Finish() finalizes the document
/// and resolves the marks to pre-order indices.
class PageBuilder {
 public:
  PageBuilder() = default;

  /// The document root.
  html::Node* root() { return doc_.root(); }

  /// Appends an element child. `attrs` as {{"class","listing"},...}.
  html::Node* El(html::Node* parent, const std::string& tag,
                 std::initializer_list<std::pair<const char*, std::string>>
                     attrs = {});

  /// Appends a text child.
  html::Node* Text(html::Node* parent, const std::string& text);

  /// Appends a text child and marks it as a target of `type`.
  html::Node* TargetText(html::Node* parent, const std::string& text,
                         const std::string& type);

  /// Marks an existing text node as a target of `type`.
  void MarkTarget(const std::string& type, html::Node* text_node);

  /// The completed page: a finalized document plus, per type, the
  /// pre-order indices of its target text nodes.
  struct Built {
    html::Document doc;
    std::map<std::string, std::vector<int>> targets;
  };

  /// Finalizes and returns the page. The builder must not be reused.
  Built Finish();

 private:
  html::Document doc_;
  std::vector<std::pair<std::string, html::Node*>> marks_;
};

}  // namespace ntw::sitegen

#endif  // NTW_SITEGEN_PAGE_BUILDER_H_
