#include "sitegen/mutate.h"

#include <cctype>
#include <cstddef>

namespace ntw::sitegen {

namespace {

std::string ClassRename(const std::string& html, const Mutation& mutation) {
  static constexpr char kNeedle[] = "class=\"";
  std::string out;
  out.reserve(html.size() + 64);
  size_t pos = 0;
  for (;;) {
    size_t hit = html.find(kNeedle, pos);
    if (hit == std::string::npos) break;
    size_t value_start = hit + sizeof(kNeedle) - 1;
    size_t value_end = html.find('"', value_start);
    if (value_end == std::string::npos) break;
    out.append(html, pos, value_end - pos);
    out.append(mutation.class_suffix);
    pos = value_end;
  }
  out.append(html, pos, html.size() - pos);
  return out;
}

std::string WrapperDivInsertion(const std::string& html,
                                const Mutation& mutation) {
  size_t body_open = html.find("<body");
  if (body_open == std::string::npos) return html;
  size_t open_end = html.find('>', body_open);
  if (open_end == std::string::npos) return html;
  size_t body_close = html.rfind("</body>");
  if (body_close == std::string::npos || body_close <= open_end) return html;
  std::string out;
  out.reserve(html.size() + 64);
  out.append(html, 0, open_end + 1);
  out.append("<div class=\"" + mutation.shell_class + "\">");
  out.append(html, open_end + 1, body_close - (open_end + 1));
  out.append("</div>");
  out.append(html, body_close, html.size() - body_close);
  return out;
}

std::string DelimiterTextChange(const std::string& html,
                                const Mutation& mutation) {
  std::string out;
  out.reserve(html.size() + 64);
  size_t pos = 0;
  while (pos < html.size()) {
    size_t lt = html.find('<', pos);
    if (lt == std::string::npos) break;
    out.append(html, pos, lt - pos);
    pos = lt;
    size_t name_start = lt + 1;
    bool closer = name_start < html.size() && html[name_start] == '/';
    if (closer) ++name_start;
    size_t name_end = name_start;
    while (name_end < html.size() &&
           (std::isalnum(static_cast<unsigned char>(html[name_end])) != 0)) {
      ++name_end;
    }
    std::string name = html.substr(name_start, name_end - name_start);
    // Only rename at a tag boundary (next char ends the name) so `<b>` is
    // rewritten but `<br>` is untouched.
    if (name == mutation.from_tag) {
      out.push_back('<');
      if (closer) out.push_back('/');
      out.append(mutation.to_tag);
      pos = name_end;
    } else {
      out.push_back('<');
      pos = lt + 1;
    }
  }
  out.append(html, pos, html.size() - pos);
  return out;
}

/// Splits the inside of a start tag into "name" + attribute chunks
/// (quote-aware) and reverses the attributes.
std::string AttributeReorder(const std::string& html) {
  std::string out;
  out.reserve(html.size());
  size_t pos = 0;
  while (pos < html.size()) {
    size_t lt = html.find('<', pos);
    if (lt == std::string::npos) break;
    out.append(html, pos, lt - pos);
    if (lt + 1 < html.size() &&
        (html[lt + 1] == '/' || html[lt + 1] == '!')) {
      out.push_back('<');
      pos = lt + 1;
      continue;
    }
    // Find the tag end, skipping quoted attribute values.
    size_t cursor = lt + 1;
    bool in_quote = false;
    while (cursor < html.size() &&
           (in_quote || html[cursor] != '>')) {
      if (html[cursor] == '"') in_quote = !in_quote;
      ++cursor;
    }
    if (cursor >= html.size()) break;
    std::string inside = html.substr(lt + 1, cursor - (lt + 1));
    // Tokenize: name, then space-separated attrs (quote-aware).
    std::vector<std::string> parts;
    size_t i = 0;
    while (i < inside.size()) {
      while (i < inside.size() &&
             std::isspace(static_cast<unsigned char>(inside[i])) != 0) {
        ++i;
      }
      if (i >= inside.size()) break;
      size_t start = i;
      bool quoted = false;
      while (i < inside.size() &&
             (quoted ||
              std::isspace(static_cast<unsigned char>(inside[i])) == 0)) {
        if (inside[i] == '"') quoted = !quoted;
        ++i;
      }
      parts.push_back(inside.substr(start, i - start));
    }
    out.push_back('<');
    if (parts.size() >= 3) {
      out.append(parts[0]);
      for (size_t j = parts.size(); j > 1; --j) {
        out.push_back(' ');
        out.append(parts[j - 1]);
      }
    } else {
      out.append(inside);
    }
    out.push_back('>');
    pos = cursor + 1;
  }
  out.append(html, pos, html.size() - pos);
  return out;
}

std::string WhitespaceChurn(const std::string& html,
                            const Mutation& mutation) {
  // Pad inside the first sufficiently long text run: after its first
  // word, insert 1-3 extra spaces. No nodes are added or removed and the
  // document shape is untouched — churn a healthy detector must absorb.
  size_t pos = 0;
  while (pos < html.size()) {
    size_t gt = html.find('>', pos);
    if (gt == std::string::npos) break;
    size_t text_start = gt + 1;
    size_t lt = html.find('<', text_start);
    if (lt == std::string::npos) break;
    if (lt - text_start >= mutation.min_text_length) {
      size_t space = html.find(' ', text_start);
      if (space != std::string::npos && space < lt) {
        std::string padding(1 + mutation.seed % 3, ' ');
        std::string out = html;
        out.insert(space, padding);
        return out;
      }
    }
    pos = lt;
  }
  return html;
}

}  // namespace

std::string MutatePage(const std::string& html, const Mutation& mutation) {
  switch (mutation.kind) {
    case MutationKind::kClassRename:
      return ClassRename(html, mutation);
    case MutationKind::kWrapperDivInsertion:
      return WrapperDivInsertion(html, mutation);
    case MutationKind::kDelimiterTextChange:
      return DelimiterTextChange(html, mutation);
    case MutationKind::kAttributeReorder:
      return AttributeReorder(html);
    case MutationKind::kWhitespaceChurn:
      return WhitespaceChurn(html, mutation);
  }
  return html;
}

std::string MutatePage(const std::string& html,
                       const std::vector<Mutation>& mutations) {
  std::string out = html;
  for (const Mutation& mutation : mutations) {
    out = MutatePage(out, mutation);
  }
  return out;
}

}  // namespace ntw::sitegen
