#ifndef NTW_SITEGEN_SITE_H_
#define NTW_SITEGEN_SITE_H_

#include <map>
#include <string>
#include <vector>

#include "core/label.h"
#include "sitegen/page_builder.h"

namespace ntw::sitegen {

/// One generated website: the unit a wrapper is learned for. Pages share a
/// rendering script (same template, different data), mirroring the web
/// publication model of Sec. 2.1; different sites have unrelated
/// templates.
struct GeneratedSite {
  std::string name;
  core::PageSet pages;
  /// Ground truth per type, e.g. truth["name"] = the dealer-name nodes.
  std::map<std::string, core::NodeSet> truth;
};

/// Accumulates built pages into a GeneratedSite, rebasing each page's
/// target indices onto (page, node) references.
class SiteAccumulator {
 public:
  explicit SiteAccumulator(std::string name) { site_.name = std::move(name); }

  void Add(PageBuilder::Built built);

  /// Returns the finished site; the accumulator must not be reused.
  GeneratedSite Take() { return std::move(site_); }

 private:
  GeneratedSite site_;
};

}  // namespace ntw::sitegen

#endif  // NTW_SITEGEN_SITE_H_
