#include "sitegen/vocab.h"

#include <array>
#include <unordered_set>

#include "common/strings.h"

namespace ntw::sitegen {
namespace {

constexpr std::array<const char*, 40> kSurnames = {
    "PORTER",   "WOODLAND", "HELLER",   "STANLEY", "ALBANY",  "BENTON",
    "CARTER",   "DAWSON",   "ELLIS",    "FOSTER",  "GRAYSON", "HARMON",
    "IRVING",   "JENSEN",   "KIRBY",    "LAWSON",  "MERCER",  "NORWOOD",
    "OAKLEY",   "PRESTON",  "QUINCY",   "RAMSEY",  "SAWYER",  "TILDEN",
    "UPTON",    "VANCE",    "WHITMAN",  "YATES",   "ZIMMER",  "BARLOW",
    "CALDWELL", "DELANEY",  "EVERETT",  "FLYNN",   "GRIGGS",  "HOLDEN",
    "INGRAM",   "JARVIS",   "KEATING",  "LOMBARD"};

constexpr std::array<const char*, 24> kBusinessAdjectives = {
    "Lakeside",  "Summit",    "Golden",   "Premier",  "Classic",  "Royal",
    "Heritage",  "Liberty",   "Pioneer",  "Sterling", "Crescent", "Harbor",
    "Evergreen", "Brightway", "Cornerstone", "Redwood", "Metro", "Valley",
    "Coastal",   "Northgate", "Suncrest", "BestValue", "Prime",   "Apex"};

constexpr std::array<const char*, 16> kBusinessCategories = {
    "FURNITURE",  "Appliance",   "Electronics", "Hardware",
    "Interiors",  "Lighting",    "Flooring",    "Kitchens",
    "Bedding",    "Cabinetry",   "Decor",       "Outfitters",
    "Galleries",  "Showrooms",   "Supply",      "Design"};

constexpr std::array<const char*, 10> kBusinessSuffixes = {
    "",        "",        "",      " Inc",    " Co.",
    " Outlet", " Center", " Shop", " & Sons", " LLC"};

constexpr std::array<const char*, 20> kStreetNames = {
    "MAIN",    "OAK",      "MAPLE",   "MARKET",   "POST",
    "CHURCH",  "HIGHLAND", "RIVER",   "SPRING",   "WASHINGTON",
    "LINCOLN", "JACKSON",  "ELM",     "CEDAR",    "WALNUT",
    "HICKORY", "MONROE",   "FRANKLIN", "LAUREL",  "SYCAMORE"};

constexpr std::array<const char*, 8> kStreetTypes = {
    "ST.", "AVE.", "BLVD.", "RD.", "LANE", "DRIVE", "WAY", "PKWY"};

constexpr std::array<const char*, 24> kCities = {
    "NEW ALBANY",  "WOODLAND",   "SAN MATEO",  "SAN JOSE",   "SAN BRUNO",
    "SAN RAFAEL",  "FAIRVIEW",   "GREENVILLE", "BRISTOL",    "CLINTON",
    "SPRINGFIELD", "MADISON",    "GEORGETOWN", "SALEM",      "ASHLAND",
    "OXFORD",      "CLAYTON",    "DOVER",      "HUDSON",     "MILTON",
    "NEWPORT",     "RIVERSIDE",  "LEBANON",    "WINCHESTER"};

constexpr std::array<const char*, 16> kStates = {
    "MS", "CA", "TX", "NY", "OH", "GA", "TN", "NC",
    "VA", "IL", "MO", "KY", "AL", "FL", "PA", "WA"};

constexpr std::array<const char*, 28> kFillerWords = {
    "quality",  "service",  "trusted",   "local",    "family",  "owned",
    "since",    "offering", "finest",    "selection", "homes",  "customers",
    "delivery", "available", "authorized", "dealer",  "visit",  "store",
    "hours",    "weekly",   "savings",   "showroom", "products", "brands",
    "discount", "special",  "order",     "today"};

constexpr std::array<const char*, 20> kAlbumWords = {
    "Midnight", "Water",   "Silver",  "Dreams", "Echoes",  "Harvest",
    "Golden",   "Shadows", "Morning", "Rain",   "Highway", "Stars",
    "Winter",   "Garden",  "Fire",    "Blue",   "Horizon", "Tides",
    "Velvet",   "Thunder"};

constexpr std::array<const char*, 26> kTrackWords = {
    "Love",   "Night",  "Heart",   "Road",    "Summer", "Goodbye",
    "Dancing", "Lonely", "Sweet",  "Tomorrow", "River",  "Angel",
    "Broken", "Golden", "Silent",  "Wild",    "Forever", "Home",
    "Light",  "Crazy",  "Falling", "Dream",   "Sun",     "Moonlight",
    "Whisper", "Stormy"};

constexpr std::array<const char*, 16> kFirstNames = {
    "Johnny", "Maria",  "Frank",  "Elena", "Tony",  "Barbara",
    "Michel", "Danielle", "Ray",  "Nina",  "Louis", "Grace",
    "Victor", "Helen",  "Sam",    "Clara"};

constexpr std::array<const char*, 5> kPhoneBrands = {
    "Nokia", "Samsung", "Motorola", "SonyEricsson", "LG"};

constexpr std::array<const char*, 14> kPhoneSeries = {
    "Astra", "Vortex", "Pulse", "Slide", "Chrome", "Flare", "Quartz",
    "Nova",  "Echo",   "Titan", "Omni",  "Razor",  "Pixelo", "Mira"};

template <size_t N>
const char* Pick(Rng* rng, const std::array<const char*, N>& pool) {
  return pool[rng->NextBounded(N)];
}

std::string TitleWords(Rng* rng, int count,
                       const std::array<const char*, 26>& pool) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    if (i > 0) out += " ";
    out += pool[rng->NextBounded(pool.size())];
  }
  return out;
}

}  // namespace

std::string BusinessName(Rng* rng) {
  switch (rng->NextBounded(3)) {
    case 0:
      // "PORTER FURNITURE" style.
      return std::string(Pick(rng, kSurnames)) + " " +
             ToUpper(Pick(rng, kBusinessCategories));
    case 1:
      // "Lakeside Appliance Outlet" style.
      return std::string(Pick(rng, kBusinessAdjectives)) + " " +
             Pick(rng, kBusinessCategories) + Pick(rng, kBusinessSuffixes);
    default:
      // "CARTER & OAKLEY INTERIORS" style.
      return std::string(Pick(rng, kSurnames)) + " & " +
             Pick(rng, kSurnames) + " " +
             ToUpper(Pick(rng, kBusinessCategories));
  }
}

std::vector<std::string> BusinessNameUniverse(size_t n, uint64_t seed) {
  Rng rng(seed);
  // Reject names that contain (or are contained in) an existing name as a
  // contiguous word sequence: dictionary containment would otherwise make
  // "KIRBY FLOORING" match inside "KIRBY & KIRBY FLOORING Inc", conflating
  // distinct entities and inflating annotator noise beyond the intended
  // rates. Tracked via two hash sets so each candidate checks in O(words²).
  std::unordered_set<std::string> full_names;    // Accepted names.
  std::unordered_set<std::string> all_sublists;  // Their word sub-spans.
  std::vector<std::string> names;
  names.reserve(n);

  auto sublists_of = [](const std::string& lower) {
    std::vector<std::string> words = SplitWords(lower);
    std::vector<std::string> subs;
    for (size_t i = 0; i < words.size(); ++i) {
      std::string acc;
      for (size_t j = i; j < words.size(); ++j) {
        if (!acc.empty()) acc += " ";
        acc += words[j];
        subs.push_back(acc);
      }
    }
    return subs;
  };

  size_t attempts = 0;
  while (names.size() < n && attempts < n * 400) {
    ++attempts;
    std::string name = BusinessName(&rng);
    std::string lower = ToLower(name);
    std::vector<std::string> subs = sublists_of(lower);
    bool overlaps = all_sublists.count(lower) > 0;
    for (const std::string& sub : subs) {
      if (full_names.count(sub) > 0) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    full_names.insert(lower);
    for (std::string& sub : subs) all_sublists.insert(std::move(sub));
    names.push_back(std::move(name));
  }
  return names;
}

std::string StreetAddress(Rng* rng) {
  std::string number = std::to_string(rng->NextInRange(100, 9999));
  switch (rng->NextBounded(4)) {
    case 0:
      return number + " " + Pick(rng, kStreetNames) + " " +
             Pick(rng, kStreetTypes);
    case 1:
      return number + " HWY. " + std::to_string(rng->NextInRange(1, 99)) +
             (rng->NextBernoulli(0.5) ? " WEST" : " EAST");
    case 2:
      return "P.O. BOX " + std::to_string(rng->NextInRange(10, 9999));
    default:
      return number + " " + Pick(rng, kStreetNames) + " " +
             Pick(rng, kStreetTypes) + ", SUITE " +
             std::to_string(rng->NextInRange(1, 400));
  }
}

CityStateZip RandomCityStateZip(Rng* rng) {
  CityStateZip out;
  out.city = Pick(rng, kCities);
  out.state = Pick(rng, kStates);
  out.zip = std::to_string(rng->NextInRange(10000, 99999));
  return out;
}

std::string PhoneNumber(Rng* rng) {
  return std::to_string(rng->NextInRange(200, 989)) + "-" +
         std::to_string(rng->NextInRange(200, 989)) + "-" +
         std::to_string(rng->NextInRange(1000, 9999));
}

std::string FillerSentence(Rng* rng, int words, const std::string& embed) {
  std::string out;
  int embed_at = embed.empty() ? -1 : static_cast<int>(
                                          rng->NextBounded(
                                              static_cast<uint64_t>(words)));
  for (int i = 0; i < words; ++i) {
    if (!out.empty()) out += " ";
    if (i == embed_at) {
      out += embed;
    } else {
      out += Pick(rng, kFillerWords);
    }
  }
  return out;
}

std::string AlbumTitle(Rng* rng) {
  switch (rng->NextBounded(3)) {
    case 0:
      return std::string(kAlbumWords[rng->NextBounded(kAlbumWords.size())]) +
             " " + kAlbumWords[rng->NextBounded(kAlbumWords.size())];
    case 1:
      return std::string("The ") +
             kAlbumWords[rng->NextBounded(kAlbumWords.size())] + " Sessions";
    default:
      return std::string(kAlbumWords[rng->NextBounded(kAlbumWords.size())]) +
             " on the " + kAlbumWords[rng->NextBounded(kAlbumWords.size())];
  }
}

std::string TrackTitle(Rng* rng) {
  switch (rng->NextBounded(4)) {
    case 0:
      return TitleWords(rng, 2, kTrackWords);
    case 1:
      return TitleWords(rng, 3, kTrackWords);
    case 2:
      return std::string("The ") + TitleWords(rng, 2, kTrackWords);
    default:
      return TitleWords(rng, 1, kTrackWords) + " in the " +
             TitleWords(rng, 1, kTrackWords);
  }
}

std::string ArtistName(Rng* rng) {
  std::string surname = Pick(rng, kSurnames);
  // Mixed case for artists: "Johnny Mercer".
  std::string mixed;
  mixed += surname[0];
  for (size_t i = 1; i < surname.size(); ++i) {
    mixed += AsciiToLower(surname[i]);
  }
  return std::string(Pick(rng, kFirstNames)) + " " + mixed;
}

std::string TrackDuration(Rng* rng) {
  int seconds = static_cast<int>(rng->NextInRange(95, 420));
  std::string sec = std::to_string(seconds % 60);
  if (sec.size() == 1) sec = "0" + sec;
  return std::to_string(seconds / 60) + ":" + sec;
}

const std::vector<std::string>& PhoneBrands() {
  static const std::vector<std::string>* brands =
      new std::vector<std::string>(kPhoneBrands.begin(), kPhoneBrands.end());
  return *brands;
}

std::string PhoneModel(Rng* rng, const std::string& brand) {
  std::string series = Pick(rng, kPhoneSeries);
  switch (rng->NextBounded(3)) {
    case 0:
      return brand + " " + series + " " +
             std::to_string(rng->NextInRange(100, 9999));
    case 1:
      return brand + " " + series +
             std::string(1, static_cast<char>('A' + rng->NextBounded(26))) +
             std::to_string(rng->NextInRange(10, 99));
    default:
      return brand + " " + std::to_string(rng->NextInRange(1000, 9999)) +
             (rng->NextBernoulli(0.4) ? " Slim" : "");
  }
}

std::vector<std::string> PhoneModelCatalogue(size_t per_brand,
                                             uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> models;
  for (const std::string& brand : PhoneBrands()) {
    size_t added = 0;
    while (added < per_brand) {
      std::string model = PhoneModel(&rng, brand);
      if (seen.insert(ToLower(model)).second) {
        models.push_back(std::move(model));
        ++added;
      }
    }
  }
  return models;
}

std::string Price(Rng* rng) {
  return "$" + std::to_string(rng->NextInRange(19, 799)) + ".99";
}

std::string ManufacturerBrand(Rng* rng) {
  static constexpr std::array<const char*, 14> kBrandStems = {
      "DuraRest", "ComfortLine", "TruCraft",  "HomeRight", "FlexForm",
      "SoftTouch", "EverCool",   "MaxLoft",   "SereneLux", "FirmaPed",
      "RestWell",  "CozyCore",   "PlushTek",  "SturdiBilt"};
  static constexpr std::array<const char*, 5> kBrandSuffixes = {
      " Collection", " Series", "", " Signature", " Select"};
  return std::string(kBrandStems[rng->NextBounded(kBrandStems.size())]) +
         kBrandSuffixes[rng->NextBounded(kBrandSuffixes.size())];
}

const std::vector<SeedAlbum>& SeedAlbums() {
  // Titles/artists follow the paper's Figure 9; the track lists are
  // synthetic but deterministic, so every generated discography site and
  // the annotator's seed database agree on them.
  static const std::vector<SeedAlbum>* albums = [] {
    const std::vector<std::pair<const char*, const char*>> kSeeds = {
        {"Bach for Breakfast", "Johann Sebastian Bach"},
        {"Abbey Road", "Beatles"},
        {"If It Rains on Tuesday", "Michelle Suesens"},
        {"Notre Dame Lullabies", "The O'Neill Brothers"},
        {"Love is the Answer", "Barbra Streisand"},
        {"Strangers In the Night", "Frank Sinatra"},
        {"I Left My Heart In San Francisco", "Tony Bennett"},
        {"Au Nom d'Une Femme", "Helcne Segara"},
        {"Yesterday & Forever", "Beatles"},
        {"Mi Plan", "Nelly Furtado"},
        {"She Walks In Beauty", "Danielle Woerner"},
    };
    auto* out = new std::vector<SeedAlbum>();
    Rng rng(0x5eedA1b0a1b0ULL);
    for (const auto& [title, artist] : kSeeds) {
      SeedAlbum album;
      album.title = title;
      album.artist = artist;
      int tracks = static_cast<int>(rng.NextInRange(8, 14));
      std::unordered_set<std::string> seen;
      while (static_cast<int>(album.tracks.size()) < tracks) {
        std::string t = TrackTitle(&rng);
        if (seen.insert(t).second) album.tracks.push_back(std::move(t));
      }
      out->push_back(std::move(album));
    }
    // One album's opening track shares the album title — the "title
    // track" noise source the paper calls out for the DISC annotator.
    (*out)[2].tracks[0] = (*out)[2].title;
    (*out)[9].tracks[0] = (*out)[9].title;
    return out;
  }();
  return *albums;
}

}  // namespace ntw::sitegen
