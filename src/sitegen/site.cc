#include "sitegen/site.h"

namespace ntw::sitegen {

void SiteAccumulator::Add(PageBuilder::Built built) {
  int page_index = static_cast<int>(site_.pages.size());
  for (const auto& [type, indices] : built.targets) {
    core::NodeSet& truth = site_.truth[type];
    for (int node_index : indices) {
      truth.Insert(core::NodeRef{page_index, node_index});
    }
  }
  site_.pages.AddPage(std::move(built.doc));
}

}  // namespace ntw::sitegen
