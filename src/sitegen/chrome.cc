#include "sitegen/chrome.h"

#include <array>

#include "sitegen/list_template.h"
#include "sitegen/vocab.h"

namespace ntw::sitegen {
namespace {

constexpr std::array<const char*, 10> kNavWords = {
    "About Us",   "Our Products", "Dealer Locator", "Contact Us",
    "Events",     "Employment",   "Home",           "FAQ",
    "Specials",   "Support"};

// The body node is the second child of <html> (head, body).
html::Node* BodyOf(PageBuilder* builder) {
  html::Node* root = builder->root();
  html::Node* html_el = root->child(root->child_count() - 1);
  return html_el->child(html_el->child_count() - 1);
}

}  // namespace

ChromeTemplate ChromeTemplate::Random(Rng* rng, std::string site_title) {
  ChromeTemplate chrome;
  chrome.site_title = std::move(site_title);
  size_t nav_count = 3 + rng->NextBounded(5);
  std::vector<size_t> picks;
  for (size_t i = 0; i < kNavWords.size(); ++i) picks.push_back(i);
  rng->Shuffle(&picks);
  for (size_t i = 0; i < nav_count; ++i) {
    chrome.nav_items.emplace_back(kNavWords[picks[i]]);
  }
  chrome.has_sidebar = rng->NextBernoulli(0.5);
  chrome.sidebar_heading =
      rng->NextBernoulli(0.5) ? "Popular Brands" : "Featured Partners";
  chrome.footer_has_address = rng->NextBernoulli(0.7);
  chrome.header_class = "hdr-" + RandomCssClass(rng);
  chrome.sidebar_class = "side-" + RandomCssClass(rng);
  chrome.footer_class = "ftr-" + RandomCssClass(rng);
  return chrome;
}

html::Node* BeginPage(PageBuilder* builder, const std::string& title) {
  html::Node* html_el = builder->El(builder->root(), "html");
  html::Node* head = builder->El(html_el, "head");
  builder->Text(builder->El(head, "title"), title);
  return builder->El(html_el, "body");
}

html::Node* RenderChromeTop(PageBuilder* builder,
                            const ChromeTemplate& chrome,
                            const std::vector<std::string>& sidebar_items) {
  html::Node* body = BodyOf(builder);

  html::Node* header =
      builder->El(body, "div", {{"class", chrome.header_class}});
  builder->Text(builder->El(header, "h1"), chrome.site_title);
  html::Node* nav = builder->El(header, "ul", {{"class", "nav"}});
  for (const std::string& item : chrome.nav_items) {
    html::Node* li = builder->El(nav, "li");
    builder->Text(builder->El(li, "a", {{"href", "#nav"}}), item);
  }

  if (chrome.has_sidebar) {
    html::Node* sidebar =
        builder->El(body, "div", {{"class", chrome.sidebar_class}});
    builder->Text(builder->El(sidebar, "h4"), chrome.sidebar_heading);
    html::Node* ul = builder->El(sidebar, "ul");
    for (const std::string& item : sidebar_items) {
      html::Node* li = builder->El(ul, "li");
      builder->Text(builder->El(li, "a", {{"href", "#brand"}}), item);
    }
  }

  return builder->El(body, "div", {{"class", "main"}});
}

void RenderChromeBottom(PageBuilder* builder, html::Node* body,
                        const ChromeTemplate& chrome, Rng* rng,
                        const std::vector<std::string>& footer_promos) {
  html::Node* footer =
      builder->El(body, "div", {{"class", chrome.footer_class}});
  for (const std::string& promo : footer_promos) {
    builder->Text(builder->El(footer, "p"), promo);
  }
  if (chrome.footer_has_address) {
    CityStateZip csz = RandomCityStateZip(rng);
    builder->Text(builder->El(footer, "p", {{"class", "addr"}}),
                  "Corporate Offices: " + StreetAddress(rng) + ", " +
                      csz.ToString());
  }
  builder->Text(builder->El(footer, "p", {{"class", "copy"}}),
                "(c) 2010 " + chrome.site_title +
                    " | All rights reserved | Web design by " +
                    "Computing Technologies");
}

}  // namespace ntw::sitegen
