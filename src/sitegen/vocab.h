#ifndef NTW_SITEGEN_VOCAB_H_
#define NTW_SITEGEN_VOCAB_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace ntw::sitegen {

/// Deterministic generators for the entity vocabularies the three datasets
/// draw from. Everything is a pure function of the Rng stream, so the
/// corpora are exactly reproducible from a seed.

/// A random business name like "PORTER FURNITURE", "Lakeside Appliance
/// Outlet" or "BestValue Electronics Inc".
std::string BusinessName(Rng* rng);

/// A universe of `n` distinct business names — the stand-in for the
/// Yahoo! Local database the paper's DEALERS annotator uses.
std::vector<std::string> BusinessNameUniverse(size_t n, uint64_t seed);

/// Street address line like "201 HWY. 30 WEST" or "2565 El Camino Real".
std::string StreetAddress(Rng* rng);

/// "NEW ALBANY, MS 38652" (city, two-letter state, 5-digit zip).
struct CityStateZip {
  std::string city;
  std::string state;
  std::string zip;
  std::string ToString() const { return city + ", " + state + " " + zip; }
};
CityStateZip RandomCityStateZip(Rng* rng);

/// "662-534-3672".
std::string PhoneNumber(Rng* rng);

/// Sentence-ish filler text of roughly `words` words. When `embed` is
/// non-empty it is spliced into the middle — the mechanism that plants
/// dictionary mentions inside descriptions/footers (annotation noise).
std::string FillerSentence(Rng* rng, int words, const std::string& embed = "");

/// A random album title like "Midnight on the Water".
std::string AlbumTitle(Rng* rng);

/// A random track title.
std::string TrackTitle(Rng* rng);

/// A random artist name.
std::string ArtistName(Rng* rng);

/// Track duration like "3:47".
std::string TrackDuration(Rng* rng);

/// A cellphone brand (five fixed brands, mirroring Appendix B.1).
const std::vector<std::string>& PhoneBrands();

/// A model name for the given brand, like "Nokia Astra 3310".
std::string PhoneModel(Rng* rng, const std::string& brand);

/// The catalogue of `per_brand` distinct models per brand (the PRODUCTS
/// dictionary; the paper's totalled 463 entries over five brands).
std::vector<std::string> PhoneModelCatalogue(size_t per_brand, uint64_t seed);

/// Price like "$129.99".
std::string Price(Rng* rng);

/// A manufacturer/product-line name for sidebars ("DuraRest Collection") —
/// deliberately disjoint from the business-name universe so sidebar noise
/// stays at its configured rate.
std::string ManufacturerBrand(Rng* rng);

/// The 11 seed albums of the DISC dataset (titles and artists follow the
/// paper's Figure 9) with deterministic synthetic track lists.
struct SeedAlbum {
  std::string title;
  std::string artist;
  std::vector<std::string> tracks;
};
const std::vector<SeedAlbum>& SeedAlbums();

}  // namespace ntw::sitegen

#endif  // NTW_SITEGEN_VOCAB_H_
