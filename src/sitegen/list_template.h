#ifndef NTW_SITEGEN_LIST_TEMPLATE_H_
#define NTW_SITEGEN_LIST_TEMPLATE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "sitegen/page_builder.h"

namespace ntw::sitegen {

/// A record to render: parallel arrays of field strings, target-type tags
/// ("" = not a target) and presence flags (optional fields may be absent
/// from individual records — the missing-field complication of Appendix A).
struct ListRecord {
  std::vector<std::string> fields;
  std::vector<std::string> field_types;
  std::vector<bool> present;

  /// Convenience: all fields present, no target types.
  static ListRecord Of(std::vector<std::string> fields);
};

/// Structural layout family of a listing region. Each family corresponds
/// to one of the real-world markup idioms the paper's datasets exhibit
/// (Figures 1, 5, 6).
enum class ListLayout {
  kTableRowPerRecord,   // <tr><td>f0</td><td>f1</td>…</tr>
  kTableCellPerRecord,  // <tr><td><u>f0</u><br>f1<br>…</td></tr> (Fig. 1)
  kDivBlocks,           // <div class=rec><span>f0</span><div>f1</div>…</div>
  kListItems,           // <ul><li><b>f0</b> f1 — f2</li>…</ul>
  kHeadingBlocks,       // <h3>f0</h3><p>f1</p><p>f2</p>…
};

/// A randomized "rendering script" for a list of records. Constructed once
/// per website (so all pages of the site share structure) and applied to
/// each page's records. Randomized aspects: layout family, container tag
/// and class, the inline tag wrapping the primary field, optional extra
/// markup (anchors around names, separator <br>/<hr>, a header row, a
/// per-record trailing link), and class-name vocabulary.
class ListTemplate {
 public:
  /// Draws a random template. `num_fields` is the per-record field count
  /// the site renders (fields beyond a record's size are skipped).
  static ListTemplate Random(Rng* rng, size_t num_fields);

  /// Renders the records under `parent`, registering target text nodes.
  void Render(PageBuilder* builder, html::Node* parent,
              const std::vector<ListRecord>& records) const;

  ListLayout layout() const { return layout_; }
  const std::string& container_class() const { return container_class_; }

 private:
  ListLayout layout_ = ListLayout::kTableRowPerRecord;
  size_t num_fields_ = 0;
  std::string container_class_;
  std::string record_class_;
  std::string primary_tag_;       // Tag wrapping field 0 (u/b/strong/...).
  bool primary_in_anchor_ = false;  // Extra <a> around the primary field.
  bool header_row_ = false;         // Table layouts: leading header row.
  bool trailing_link_ = false;      // Per-record "» details" link.
  bool field_label_spans_ = false;  // Div layout: "Phone: " label texts.
  std::string bullet_;              // List layout: separator text.

  void RenderTableRows(PageBuilder* b, html::Node* parent,
                       const std::vector<ListRecord>& records) const;
  void RenderTableCells(PageBuilder* b, html::Node* parent,
                        const std::vector<ListRecord>& records) const;
  void RenderDivBlocks(PageBuilder* b, html::Node* parent,
                       const std::vector<ListRecord>& records) const;
  void RenderListItems(PageBuilder* b, html::Node* parent,
                       const std::vector<ListRecord>& records) const;
  void RenderHeadingBlocks(PageBuilder* b, html::Node* parent,
                           const std::vector<ListRecord>& records) const;

  /// Emits field 0 with its wrapping markup under `parent`.
  void EmitPrimary(PageBuilder* b, html::Node* parent,
                   const ListRecord& record) const;
};

/// A plausible class attribute value like "dealerlinks" or "results2".
std::string RandomCssClass(Rng* rng);

}  // namespace ntw::sitegen

#endif  // NTW_SITEGEN_LIST_TEMPLATE_H_
