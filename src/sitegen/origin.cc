#include "sitegen/origin.h"

#include <utility>

#include "common/file_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/wrapper_store.h"
#include "core/xpath_inductor.h"
#include "html/serializer.h"
#include "sitegen/chrome.h"
#include "sitegen/list_template.h"
#include "sitegen/vocab.h"

namespace ntw::sitegen {

namespace {

OriginSite MakeOriginSite(Rng* rng, const OriginOptions& options,
                          size_t index) {
  OriginSite out;
  out.key = StrFormat("site_%04zu", index);

  std::string brand = BusinessName(rng);
  SiteAccumulator accumulator(out.key + " (" + brand + ")");
  ChromeTemplate chrome = ChromeTemplate::Random(rng, brand + " Stores");
  ListTemplate list_template = ListTemplate::Random(rng, 3);

  std::vector<std::string> sidebar_items;
  size_t sidebar_count = 2 + rng->NextBounded(4);
  for (size_t i = 0; i < sidebar_count; ++i) {
    sidebar_items.push_back(ManufacturerBrand(rng));
  }

  for (size_t page = 0; page < options.pages_per_site; ++page) {
    PageBuilder builder;
    CityStateZip query = RandomCityStateZip(rng);
    html::Node* body =
        BeginPage(&builder, brand + " - Stores near " + query.zip);
    html::Node* content = RenderChromeTop(&builder, chrome, sidebar_items);

    size_t records =
        options.min_records +
        rng->NextBounded(options.max_records - options.min_records + 1);
    builder.Text(builder.El(content, "h2"),
                 "Found " + std::to_string(records) + " stores near " +
                     query.city + ", " + query.state);

    std::vector<ListRecord> page_records;
    for (size_t i = 0; i < records; ++i) {
      ListRecord record;
      record.fields = {BusinessName(rng), StreetAddress(rng),
                       "Phone: " + PhoneNumber(rng)};
      record.field_types = {"name", "", ""};
      record.present = {true, true, true};
      page_records.push_back(std::move(record));
    }
    list_template.Render(&builder, content, page_records);
    RenderChromeBottom(&builder, body, chrome, rng,
                       {FillerSentence(rng, 10)});
    accumulator.Add(builder.Finish());
  }

  out.site = accumulator.Take();
  out.page_html.reserve(out.site.pages.size());
  for (size_t p = 0; p < out.site.pages.size(); ++p) {
    out.page_html.push_back(html::Serialize(out.site.pages.page(p).root()));
  }
  return out;
}

}  // namespace

std::string OriginCorpus::PageFileName(size_t page) {
  return StrFormat("page_%04zu.html", page);
}

OriginCorpus MakeOriginCorpus(const OriginOptions& options) {
  OriginCorpus corpus;
  corpus.options = options;
  corpus.sites.reserve(options.sites);
  for (size_t s = 0; s < options.sites; ++s) {
    // One Rng per site: adding sites never perturbs earlier ones.
    Rng rng(options.seed * 1000003 + s);
    corpus.sites.push_back(MakeOriginSite(&rng, options, s));
  }
  return corpus;
}

Status WriteOriginTree(const OriginCorpus& corpus, const std::string& root) {
  NTW_RETURN_IF_ERROR(MakeDirs(root));
  std::string index;
  index += "<html><head><title>origin index</title></head><body><ul>\n";
  for (const OriginSite& site : corpus.sites) {
    std::string dir = root + "/" + site.key;
    NTW_RETURN_IF_ERROR(MakeDirs(dir));
    for (size_t p = 0; p < site.page_html.size(); ++p) {
      std::string name = OriginCorpus::PageFileName(p);
      NTW_RETURN_IF_ERROR(WriteFile(dir + "/" + name, site.page_html[p]));
      // Relative hrefs, emitted in (site, page) sorted order — a depth-1
      // crawl of the index discovers pages in the exact order offline
      // LoadPagesFromDirectory reads them.
      index += "<li><a href=\"" + site.key + "/" + name + "\">" + site.key +
               "/" + name + "</a></li>\n";
    }
  }
  index += "</ul></body></html>\n";
  if (corpus.options.write_root_index) {
    NTW_RETURN_IF_ERROR(WriteFile(root + "/index.html", index));
  }
  if (!corpus.options.robots_txt.empty()) {
    NTW_RETURN_IF_ERROR(
        WriteFile(root + "/robots.txt", corpus.options.robots_txt));
  }
  return Status::OK();
}

Status WriteOriginWrapperRepository(const OriginCorpus& corpus,
                                    const std::string& root) {
  core::XPathInductor xpath_inductor;
  core::LrInductor lr_inductor;
  struct Learn {
    const core::WrapperInductor* inductor;
    const char* file;
  };
  NTW_RETURN_IF_ERROR(MakeDirs(root));
  for (const OriginSite& site : corpus.sites) {
    auto truth = site.site.truth.find("name");
    if (truth == site.site.truth.end() || truth->second.empty()) {
      return Status::Internal("origin site " + site.key +
                              " has no 'name' ground truth");
    }
    std::string dir = root + "/" + site.key;
    NTW_RETURN_IF_ERROR(MakeDirs(dir));
    for (const Learn& learn :
         {Learn{&xpath_inductor, "name.wrapper"},
          Learn{&lr_inductor, "name_lr.wrapper"}}) {
      core::Induction induction =
          learn.inductor->Induce(site.site.pages, truth->second);
      if (induction.wrapper == nullptr) {
        return Status::Internal("origin site " + site.key +
                                ": induction failed for " + learn.file);
      }
      NTW_ASSIGN_OR_RETURN(std::string record,
                           core::SerializeWrapper(*induction.wrapper));
      NTW_RETURN_IF_ERROR(
          WriteFile(dir + "/" + learn.file, record + "\n"));
    }
  }
  return Status::OK();
}

Status ForEachSyntheticWrapperRecord(
    const SyntheticRepositoryOptions& options,
    const std::function<Status(const std::string& site,
                               const std::string& attribute,
                               const std::string& record)>& fn) {
  for (size_t s = 0; s < options.sites; ++s) {
    std::string key = StrFormat("site_%06zu", s);
    Rng rng(options.seed * 1000003 + s);
    for (size_t a = 0; a < options.attrs; ++a) {
      // Seed-varied delimiters: enough diversity that per-site automata
      // differ, enough repetition that the pack's interning has work to do.
      auto variant = static_cast<unsigned long long>(rng.NextBounded(512));
      std::string record;
      switch ((s + a) % 3) {
        case 0: {
          core::LrWrapper wrapper(
              StrFormat("<span class=\"f%llu\">", variant), "</span>");
          NTW_ASSIGN_OR_RETURN(record, core::SerializeWrapper(wrapper));
          break;
        }
        case 1: {
          core::HlrtWrapper wrapper(
              StrFormat("<ul id=\"list%llu\">", variant), "</ul>",
              StrFormat("<li class=\"v%llu\">", variant), "</li>");
          NTW_ASSIGN_OR_RETURN(record, core::SerializeWrapper(wrapper));
          break;
        }
        default: {
          xpath::Expr expr;
          xpath::Step div;
          div.axis = xpath::Axis::kDescendant;
          div.tag = "div";
          div.attr_filters.emplace_back("class",
                                        StrFormat("c%llu", variant));
          xpath::Step li;
          li.tag = "li";
          li.child_number = static_cast<int>(1 + rng.NextBounded(4));
          xpath::Step text;
          text.test = xpath::NodeTest::kText;
          expr.steps = {div, li, text};
          core::XPathWrapper wrapper(std::move(expr));
          NTW_ASSIGN_OR_RETURN(record, core::SerializeWrapper(wrapper));
          break;
        }
      }
      NTW_RETURN_IF_ERROR(
          fn(key, StrFormat("attr_%02zu", a), record + "\n"));
    }
  }
  return Status::OK();
}

Status WriteSyntheticWrapperRepository(
    const SyntheticRepositoryOptions& options, const std::string& root) {
  NTW_RETURN_IF_ERROR(MakeDirs(root));
  std::string last_dir;
  return ForEachSyntheticWrapperRecord(
      options, [&](const std::string& site, const std::string& attribute,
                   const std::string& record) -> Status {
        std::string dir = root + "/" + site;
        if (dir != last_dir) {  // Records arrive grouped by site.
          NTW_RETURN_IF_ERROR(MakeDirs(dir));
          last_dir = dir;
        }
        return WriteFile(dir + "/" + attribute + ".wrapper", record);
      });
}

}  // namespace ntw::sitegen
