#include "datasets/dataset.h"

#include <set>

namespace ntw::datasets {

Split MakeSplit(const Dataset& dataset) {
  Split split;
  for (size_t i = 0; i < dataset.sites.size(); ++i) {
    (i % 2 == 0 ? split.train : split.test).push_back(i);
  }
  return split;
}

Result<TrainedModels> LearnModels(const Dataset& dataset,
                                  const std::string& type,
                                  const std::vector<size_t>& train_sites) {
  core::AnnotationModel::Accumulator annotation_acc;
  std::vector<core::ListFeatures> features;

  for (size_t index : train_sites) {
    const SiteData& data = dataset.sites[index];
    auto truth_it = data.site.truth.find(type);
    auto labels_it = data.annotations.find(type);
    if (truth_it == data.site.truth.end() ||
        labels_it == data.annotations.end()) {
      continue;
    }
    annotation_acc.Observe(labels_it->second, truth_it->second,
                           data.site.pages.TextNodeCount());
    features.push_back(core::ComputeListFeatures(
        core::SegmentRecords(data.site.pages, truth_it->second)));
  }

  NTW_ASSIGN_OR_RETURN(core::AnnotationModel annotation,
                       annotation_acc.Finish());
  NTW_ASSIGN_OR_RETURN(core::PublicationModel publication,
                       core::PublicationModel::Fit(features));
  return TrainedModels{std::move(annotation), std::move(publication)};
}

core::Prf AnnotatorQualityOnAnnotatedPages(const Dataset& dataset,
                                           const std::string& type) {
  size_t true_positives = 0;
  size_t labeled = 0;
  size_t expected = 0;
  for (const SiteData& data : dataset.sites) {
    auto truth_it = data.site.truth.find(type);
    auto labels_it = data.annotations.find(type);
    if (truth_it == data.site.truth.end() ||
        labels_it == data.annotations.end()) {
      continue;
    }
    // Pages with at least one annotation of this type.
    std::set<int> annotated_pages;
    for (const core::NodeRef& ref : labels_it->second) {
      annotated_pages.insert(ref.page);
    }
    true_positives +=
        labels_it->second.IntersectSize(truth_it->second);
    labeled += labels_it->second.size();
    for (const core::NodeRef& ref : truth_it->second) {
      if (annotated_pages.count(ref.page) > 0) ++expected;
    }
  }
  core::Prf prf;
  prf.true_positives = true_positives;
  prf.extracted = labeled;
  prf.expected = expected;
  prf.precision = labeled == 0 ? 1.0
                               : static_cast<double>(true_positives) /
                                     static_cast<double>(labeled);
  prf.recall = expected == 0 ? 1.0
                             : static_cast<double>(true_positives) /
                                   static_cast<double>(expected);
  prf.f1 = (prf.precision + prf.recall) > 0
               ? 2 * prf.precision * prf.recall /
                     (prf.precision + prf.recall)
               : 0.0;
  return prf;
}

core::Prf AnnotatorQuality(const Dataset& dataset, const std::string& type) {
  size_t true_positives = 0;
  size_t labeled = 0;
  size_t expected = 0;
  for (const SiteData& data : dataset.sites) {
    auto truth_it = data.site.truth.find(type);
    auto labels_it = data.annotations.find(type);
    if (truth_it == data.site.truth.end() ||
        labels_it == data.annotations.end()) {
      continue;
    }
    true_positives += labels_it->second.IntersectSize(truth_it->second);
    labeled += labels_it->second.size();
    expected += truth_it->second.size();
  }
  core::Prf prf;
  prf.true_positives = true_positives;
  prf.extracted = labeled;
  prf.expected = expected;
  prf.precision = labeled == 0 ? 1.0
                               : static_cast<double>(true_positives) /
                                     static_cast<double>(labeled);
  prf.recall = expected == 0 ? 1.0
                             : static_cast<double>(true_positives) /
                                   static_cast<double>(expected);
  prf.f1 = (prf.precision + prf.recall) > 0
               ? 2 * prf.precision * prf.recall /
                     (prf.precision + prf.recall)
               : 0.0;
  return prf;
}

}  // namespace ntw::datasets
