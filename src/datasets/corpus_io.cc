#include "datasets/corpus_io.h"

#include <map>

#include "common/file_util.h"
#include "common/strings.h"
#include "html/parser.h"
#include "html/serializer.h"

namespace ntw::datasets {
namespace {

std::string RefTable(const std::map<std::string, core::NodeSet>& by_type) {
  std::string out;
  for (const auto& [type, refs] : by_type) {
    for (const core::NodeRef& ref : refs) {
      out += type + "\t" + std::to_string(ref.page) + "\t" +
             std::to_string(ref.node) + "\n";
    }
  }
  return out;
}

Result<std::map<std::string, core::NodeSet>> ParseRefTable(
    const std::string& contents, const std::string& what) {
  std::map<std::string, core::NodeSet> by_type;
  size_t line_number = 0;
  for (const std::string& line : ::ntw::Split(contents, '\n')) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields = ::ntw::Split(line, '\t');
    if (fields.size() != 3) {
      return Status::ParseError(what + " line " +
                                std::to_string(line_number) +
                                ": expected 3 tab-separated fields");
    }
    char* end = nullptr;
    long page = std::strtol(fields[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::ParseError(what + ": bad page index " + fields[1]);
    }
    long node = std::strtol(fields[2].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::ParseError(what + ": bad node index " + fields[2]);
    }
    by_type[fields[0]].Insert(
        core::NodeRef{static_cast<int>(page), static_cast<int>(node)});
  }
  return by_type;
}

std::string PageFileName(size_t index) {
  return StrFormat("page_%04zu.html", index);
}

}  // namespace

Status ExportSite(const SiteData& site, const std::string& directory) {
  NTW_RETURN_IF_ERROR(MakeDirs(directory));
  NTW_RETURN_IF_ERROR(
      WriteFile(directory + "/site.txt", site.site.name + "\n"));
  for (size_t p = 0; p < site.site.pages.size(); ++p) {
    NTW_RETURN_IF_ERROR(
        WriteFile(directory + "/" + PageFileName(p),
                  html::Serialize(site.site.pages.page(p).root())));
  }
  NTW_RETURN_IF_ERROR(
      WriteFile(directory + "/truth.tsv", RefTable(site.site.truth)));
  NTW_RETURN_IF_ERROR(
      WriteFile(directory + "/annotations.tsv", RefTable(site.annotations)));
  return Status::OK();
}

Result<core::PageSet> LoadPagesFromDirectory(const std::string& directory) {
  NTW_ASSIGN_OR_RETURN(std::vector<std::string> files,
                       ListFiles(directory, ".html"));
  if (files.empty()) {
    return Status::NotFound("no .html files in " + directory);
  }
  core::PageSet pages;
  for (const std::string& path : files) {
    NTW_ASSIGN_OR_RETURN(std::string contents, ReadFile(path));
    NTW_ASSIGN_OR_RETURN(html::Document doc, html::Parse(contents));
    pages.AddPage(std::move(doc));
  }
  return pages;
}

Result<std::vector<std::string>> LoadPageSourcesFromDirectory(
    const std::string& directory) {
  NTW_ASSIGN_OR_RETURN(std::vector<std::string> files,
                       ListFiles(directory, ".html"));
  if (files.empty()) {
    return Status::NotFound("no .html files in " + directory);
  }
  std::vector<std::string> sources;
  sources.reserve(files.size());
  for (const std::string& path : files) {
    NTW_ASSIGN_OR_RETURN(std::string contents, ReadFile(path));
    sources.push_back(std::move(contents));
  }
  return sources;
}

Result<SiteData> ImportSite(const std::string& directory) {
  SiteData site;
  NTW_ASSIGN_OR_RETURN(std::string name, ReadFile(directory + "/site.txt"));
  site.site.name = std::string(StripWhitespace(name));
  NTW_ASSIGN_OR_RETURN(site.site.pages, LoadPagesFromDirectory(directory));

  NTW_ASSIGN_OR_RETURN(std::string truth_tsv,
                       ReadFile(directory + "/truth.tsv"));
  NTW_ASSIGN_OR_RETURN(site.site.truth, ParseRefTable(truth_tsv, "truth.tsv"));
  NTW_ASSIGN_OR_RETURN(std::string annotations_tsv,
                       ReadFile(directory + "/annotations.tsv"));
  NTW_ASSIGN_OR_RETURN(
      site.annotations, ParseRefTable(annotations_tsv, "annotations.tsv"));

  // Validate references against the parsed pages.
  for (const auto* table : {&site.site.truth, &site.annotations}) {
    for (const auto& [type, refs] : *table) {
      for (const core::NodeRef& ref : refs) {
        if (site.site.pages.Resolve(ref) == nullptr) {
          return Status::OutOfRange(
              "reference (" + std::to_string(ref.page) + "," +
              std::to_string(ref.node) + ") of type " + type +
              " does not resolve in " + directory);
        }
      }
    }
  }
  return site;
}

Status ExportDataset(const Dataset& dataset, const std::string& directory) {
  NTW_RETURN_IF_ERROR(MakeDirs(directory));
  std::string meta = dataset.name + "\n";
  for (const std::string& type : dataset.types) meta += type + "\n";
  NTW_RETURN_IF_ERROR(WriteFile(directory + "/dataset.txt", meta));
  for (size_t s = 0; s < dataset.sites.size(); ++s) {
    NTW_RETURN_IF_ERROR(ExportSite(
        dataset.sites[s], directory + "/" + StrFormat("site_%04zu", s)));
  }
  return Status::OK();
}

Result<Dataset> ImportDataset(const std::string& directory) {
  Dataset dataset;
  NTW_ASSIGN_OR_RETURN(std::string meta,
                       ReadFile(directory + "/dataset.txt"));
  std::vector<std::string> lines = ::ntw::Split(meta, '\n');
  if (lines.empty() || lines[0].empty()) {
    return Status::ParseError("dataset.txt: missing dataset name");
  }
  dataset.name = lines[0];
  for (size_t i = 1; i < lines.size(); ++i) {
    if (!lines[i].empty()) dataset.types.push_back(lines[i]);
  }
  for (size_t s = 0;; ++s) {
    std::string site_dir = directory + "/" + StrFormat("site_%04zu", s);
    if (!FileExists(site_dir + "/site.txt")) break;
    NTW_ASSIGN_OR_RETURN(SiteData site, ImportSite(site_dir));
    dataset.sites.push_back(std::move(site));
  }
  if (dataset.sites.empty()) {
    return Status::NotFound("no site_NNNN directories under " + directory);
  }
  return dataset;
}

}  // namespace ntw::datasets
