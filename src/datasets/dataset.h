#ifndef NTW_DATASETS_DATASET_H_
#define NTW_DATASETS_DATASET_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/annotation_model.h"
#include "core/metrics.h"
#include "core/publication_model.h"
#include "sitegen/site.h"

namespace ntw::datasets {

/// One website plus the (noisy) annotations its automatic annotators
/// produced, per type.
struct SiteData {
  sitegen::GeneratedSite site;
  std::map<std::string, core::NodeSet> annotations;
};

/// A full dataset in the paper's sense: many script-generated websites in
/// one domain, the types to extract, and the annotations.
struct Dataset {
  std::string name;
  std::vector<std::string> types;
  std::vector<SiteData> sites;
};

/// Models learned from the training half of a dataset (Sec. 7: "the
/// probability distribution of the two features ... and the p and r of the
/// annotators are learned from a sample of half the websites").
struct TrainedModels {
  core::AnnotationModel annotation;
  core::PublicationModel publication;
};

/// Indices of the train/test split: even sites train, odd sites test.
struct Split {
  std::vector<size_t> train;
  std::vector<size_t> test;
};
Split MakeSplit(const Dataset& dataset);

/// Learns the annotation (p, r) and publication (schema/alignment KDE)
/// models for `type` from the training sites' ground truth.
Result<TrainedModels> LearnModels(const Dataset& dataset,
                                  const std::string& type,
                                  const std::vector<size_t>& train_sites);

/// Measured annotator quality over the whole dataset (reported next to
/// each experiment, mirroring the paper's "0.95 precision / 0.24 recall").
core::Prf AnnotatorQuality(const Dataset& dataset, const std::string& type);

/// Annotator quality with recall restricted to pages that carry at least
/// one annotation — the paper's DISC convention ("the recall is only
/// measured w.r.t. pages with at least one annotation").
core::Prf AnnotatorQualityOnAnnotatedPages(const Dataset& dataset,
                                           const std::string& type);

}  // namespace ntw::datasets

#endif  // NTW_DATASETS_DATASET_H_
