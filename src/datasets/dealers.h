#ifndef NTW_DATASETS_DEALERS_H_
#define NTW_DATASETS_DEALERS_H_

#include <cstdint>

#include "datasets/dataset.h"

namespace ntw::datasets {

/// Configuration of the DEALERS dataset (Sec. 7): dealer-locator pages of
/// many businesses, produced by automatic zipcode form fills. Types:
/// "name" (the store name, the paper's single-type target) and "zip" (the
/// city/state/zip line, the second type of the Appendix A experiment).
struct DealersConfig {
  size_t num_sites = 330;
  size_t pages_per_site = 12;    // Simulated zipcode form fills per site.
  size_t min_records = 2;        // Dealers listed per page.
  size_t max_records = 10;
  size_t universe_size = 2400;   // Business-name universe (Yahoo! Local).
  double dictionary_fraction = 0.17;  // Fraction of the universe the
                                      // annotator's dictionary covers —
                                      // drives its ~0.24 recall.
  /// Probability a record's street line embeds a dictionary name ("201
  /// BESTVALUE ELECTRONICS PLAZA") — the paper's street-address noise.
  double street_noise_prob = 0.002;
  /// Some sites are "mall-style": their dealers are anchor stores inside
  /// named shopping plazas, so street lines embed business names often.
  /// This correlated noise puts a competing, equally-well-structured list
  /// (the address column) into the wrapper space — the failure mode that
  /// separates NTW-X from full NTW in Fig. 2(h).
  double mall_site_prob = 0.12;
  double mall_street_noise_prob = 0.10;
  /// Probability a page's intro/footer sentence embeds a dictionary name
  /// ("authorized dealer of X products") — description noise.
  double promo_noise_prob = 0.012;
  /// Fraction of sidebar brand entries drawn from the dictionary.
  double sidebar_dictionary_fraction = 0.005;
  /// Probability that the phone field is present on a record.
  double phone_present_prob = 0.85;
  /// Probability a street number has five digits (zipcode-annotator noise).
  double five_digit_street_prob = 0.06;
  /// Minimum dictionary hits planted per site so every site is learnable
  /// (the paper's sites were chosen to overlap the Yahoo! Local database).
  size_t min_dictionary_hits = 3;
  uint64_t seed = 11;
};

/// Generates the DEALERS dataset, including the dictionary annotations for
/// "name" and the regex (\b\d{5}\b) annotations for "zip".
Dataset MakeDealers(const DealersConfig& config);

}  // namespace ntw::datasets

#endif  // NTW_DATASETS_DEALERS_H_
