#include "datasets/dealers.h"

#include <unordered_set>

#include "annotate/dictionary_annotator.h"
#include "annotate/regex_annotator.h"
#include "common/strings.h"
#include "sitegen/chrome.h"
#include "sitegen/list_template.h"
#include "sitegen/vocab.h"

namespace ntw::datasets {
namespace {

using sitegen::ListRecord;

struct DealerUniverse {
  std::vector<std::string> names;       // All business names.
  std::vector<std::string> dictionary;  // The annotator's subset.
  std::unordered_set<std::string> dictionary_lookup;  // Lowercased.

  bool InDictionary(const std::string& name) const {
    return dictionary_lookup.count(ToLower(name)) > 0;
  }
};

DealerUniverse MakeUniverse(const DealersConfig& config) {
  DealerUniverse universe;
  universe.names =
      sitegen::BusinessNameUniverse(config.universe_size, config.seed * 977);
  size_t dict_size = static_cast<size_t>(
      config.dictionary_fraction * static_cast<double>(universe.names.size()));
  Rng rng(config.seed * 31 + 7);
  std::vector<size_t> order(universe.names.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  for (size_t i = 0; i < dict_size; ++i) {
    universe.dictionary.push_back(universe.names[order[i]]);
    universe.dictionary_lookup.insert(ToLower(universe.names[order[i]]));
  }
  return universe;
}

/// Which auxiliary fields a site's rendering script displays, and in what
/// order. Real dealer locators vary widely (name+city only, full records
/// with phone and distance, ...): per-site field plans give the corpus the
/// cross-site schema diversity the publication model has to cope with.
struct FieldPlan {
  bool street = true;
  bool phone = true;
  bool miles = false;
  std::vector<int> aux_order;  // Permutation of the included aux fields.

  static FieldPlan Random(Rng* rng) {
    FieldPlan plan;
    plan.street = rng->NextBernoulli(0.75);
    plan.phone = rng->NextBernoulli(0.6);
    plan.miles = rng->NextBernoulli(0.4);
    // Aux field ids: 0 = street, 1 = citystatezip, 2 = phone, 3 = miles.
    // Always-present fields (street, city/state/zip) render before the
    // per-record optional ones (phone, miles): scripts emit the stable
    // columns first, which keeps required fields at stable positions —
    // without this no exact rule exists for the zip line in flat layouts.
    std::vector<int> required = {1};
    if (plan.street) required.push_back(0);
    rng->Shuffle(&required);
    plan.aux_order = std::move(required);
    if (plan.phone) plan.aux_order.push_back(2);
    if (plan.miles) plan.aux_order.push_back(3);
    return plan;
  }

  size_t field_count() const { return 1 + aux_order.size(); }
};

/// Builds one record of the dealer listing according to the site's field
/// plan. Field 0 is always the store name; the city/state/zip line is
/// always present (it is the second type of the Appendix A experiment).
ListRecord MakeDealerRecord(Rng* rng, const DealerUniverse& universe,
                            const DealersConfig& config,
                            const FieldPlan& plan,
                            bool force_dictionary_name,
                            double street_noise_prob) {
  ListRecord record;

  std::string name;
  if (force_dictionary_name && !universe.dictionary.empty()) {
    name = universe.dictionary[rng->NextBounded(universe.dictionary.size())];
  } else {
    name = universe.names[rng->NextBounded(universe.names.size())];
  }

  std::string street = sitegen::StreetAddress(rng);
  if (rng->NextBernoulli(street_noise_prob) &&
      !universe.dictionary.empty()) {
    // The paper's street-address noise: an address line containing a
    // dictionary business name.
    street = std::to_string(rng->NextInRange(100, 999)) + " " +
             ToUpper(universe.dictionary[rng->NextBounded(
                 universe.dictionary.size())]) +
             " PLAZA";
  } else if (rng->NextBernoulli(config.five_digit_street_prob)) {
    // Five-digit street number: zipcode-annotator noise.
    street = std::to_string(rng->NextInRange(10000, 99999)) + " " + street;
  }

  sitegen::CityStateZip csz = sitegen::RandomCityStateZip(rng);

  // Candidate aux fields, indexed as in FieldPlan::aux_order.
  const std::string aux_fields[4] = {
      street, csz.ToString(), "Phone: " + sitegen::PhoneNumber(rng),
      "Miles: " + std::to_string(rng->NextInRange(1, 60)) + "." +
          std::to_string(rng->NextBounded(10))};
  const std::string aux_types[4] = {"", "zip", "phone", ""};

  record.fields = {name};
  record.field_types = {"name"};
  record.present = {true};
  for (int aux : plan.aux_order) {
    record.fields.push_back(aux_fields[aux]);
    record.field_types.push_back(aux_types[aux]);
    bool present = true;
    if (aux == 2) present = rng->NextBernoulli(config.phone_present_prob);
    if (aux == 3) present = rng->NextBernoulli(0.7);
    record.present.push_back(present);
  }
  return record;
}

sitegen::GeneratedSite MakeDealerSite(Rng* rng,
                                      const DealerUniverse& universe,
                                      const DealersConfig& config,
                                      size_t site_index) {
  // The brand (site owner) appears in the chrome of every page; draw it
  // from outside the dictionary — the paper's dictionary holds retail
  // store names, not the manufacturers whose locator sites were crawled.
  std::string brand;
  do {
    brand = universe.names[rng->NextBounded(universe.names.size())];
  } while (universe.InDictionary(brand));
  sitegen::SiteAccumulator accumulator(
      "dealers-" + std::to_string(site_index) + " (" + brand + ")");

  sitegen::ChromeTemplate chrome =
      sitegen::ChromeTemplate::Random(rng, brand + " Dealer Locator");
  FieldPlan plan = FieldPlan::Random(rng);
  sitegen::ListTemplate list_template =
      sitegen::ListTemplate::Random(rng, plan.field_count());

  // The sidebar brand list is fixed per site (it is part of the chrome).
  // Entries are manufacturer product lines; occasionally one is a
  // dictionary business name — a persistent per-site false positive.
  std::vector<std::string> sidebar_items;
  size_t sidebar_count = 3 + rng->NextBounded(5);
  for (size_t i = 0; i < sidebar_count; ++i) {
    if (rng->NextBernoulli(config.sidebar_dictionary_fraction) &&
        !universe.dictionary.empty()) {
      sidebar_items.push_back(
          universe.dictionary[rng->NextBounded(universe.dictionary.size())]);
    } else {
      sidebar_items.push_back(sitegen::ManufacturerBrand(rng));
    }
  }

  // Plan dictionary hits: spread `min_dictionary_hits` forced hits over
  // the site's pages so that every site is learnable.
  size_t forced_remaining = config.min_dictionary_hits;

  // Mall-style sites put store names into street lines for many records
  // (correlated annotator noise — see DealersConfig::mall_site_prob).
  double street_noise_prob = rng->NextBernoulli(config.mall_site_prob)
                                 ? config.mall_street_noise_prob
                                 : config.street_noise_prob;

  for (size_t page = 0; page < config.pages_per_site; ++page) {
    sitegen::PageBuilder builder;
    sitegen::CityStateZip query = sitegen::RandomCityStateZip(rng);
    html::Node* body = sitegen::BeginPage(
        &builder, brand + " - Dealers near " + query.zip);
    html::Node* content =
        sitegen::RenderChromeTop(&builder, chrome, sidebar_items);

    size_t records =
        config.min_records +
        rng->NextBounded(config.max_records - config.min_records + 1);

    builder.Text(
        builder.El(content, "h2"),
        "There are " + std::to_string(records) + " stores within 50 miles " +
            "of " + query.city + ", " + query.state);

    // Intro sentence; sometimes embeds a dictionary name (promo noise).
    std::string intro_embed;
    if (rng->NextBernoulli(config.promo_noise_prob) &&
        !universe.dictionary.empty()) {
      intro_embed =
          universe.dictionary[rng->NextBounded(universe.dictionary.size())];
    }
    builder.Text(builder.El(content, "p", {{"class", "intro"}}),
                 sitegen::FillerSentence(rng, 14, intro_embed));

    std::vector<ListRecord> page_records;
    for (size_t i = 0; i < records; ++i) {
      bool force = forced_remaining > 0 &&
                   rng->NextBernoulli(0.5 / config.pages_per_site +
                                      (page + 1 == config.pages_per_site
                                           ? 1.0
                                           : 0.25));
      if (force) --forced_remaining;
      page_records.push_back(MakeDealerRecord(rng, universe, config, plan,
                                              force, street_noise_prob));
    }
    list_template.Render(&builder, content, page_records);

    // Footer promos; sometimes embed a dictionary name.
    std::vector<std::string> promos;
    if (rng->NextBernoulli(config.promo_noise_prob) &&
        !universe.dictionary.empty()) {
      promos.push_back(sitegen::FillerSentence(
          rng, 12,
          universe.dictionary[rng->NextBounded(universe.dictionary.size())]));
    } else {
      promos.push_back(sitegen::FillerSentence(rng, 10));
    }
    sitegen::RenderChromeBottom(&builder, body, chrome, rng, promos);

    accumulator.Add(builder.Finish());
  }
  return accumulator.Take();
}

}  // namespace

Dataset MakeDealers(const DealersConfig& config) {
  Dataset dataset;
  dataset.name = "DEALERS";
  dataset.types = {"name", "zip", "phone"};

  DealerUniverse universe = MakeUniverse(config);
  annotate::DictionaryAnnotator name_annotator(universe.dictionary);
  annotate::RegexAnnotator zip_annotator = annotate::RegexAnnotator::Zipcode();
  Result<annotate::RegexAnnotator> phone_annotator =
      annotate::RegexAnnotator::Create("phone", R"(\b\d{3}-\d{3}-\d{4}\b)");

  Rng master(config.seed);
  for (size_t s = 0; s < config.num_sites; ++s) {
    Rng site_rng = master.Fork();
    SiteData data;
    data.site = MakeDealerSite(&site_rng, universe, config, s);
    data.annotations["name"] = name_annotator.Annotate(data.site.pages);
    data.annotations["zip"] = zip_annotator.Annotate(data.site.pages);
    if (phone_annotator.ok()) {
      data.annotations["phone"] = phone_annotator->Annotate(data.site.pages);
    }
    dataset.sites.push_back(std::move(data));
  }
  return dataset;
}

}  // namespace ntw::datasets
