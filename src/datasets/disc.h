#ifndef NTW_DATASETS_DISC_H_
#define NTW_DATASETS_DISC_H_

#include <cstdint>

#include "datasets/dataset.h"

namespace ntw::datasets {

/// Configuration of the DISC dataset (Sec. 7): 15 discography websites,
/// each with structurally similar per-album pages listing the album's
/// tracks. Types: "track" (the list target) and "album" (single entity per
/// page, used by the Appendix B.2 experiment).
struct DiscConfig {
  size_t num_sites = 15;
  /// Seed albums present per site (the annotator's database has 11; any
  /// site carries at least a few of them).
  size_t min_seed_albums = 6;
  size_t max_seed_albums = 11;
  /// Additional non-seed albums per site.
  size_t min_extra_albums = 3;
  size_t max_extra_albums = 8;
  /// Probability a track title is rendered with a "(Remastered)"-style
  /// suffix, defeating the exact-match annotator (recall noise).
  double suffix_prob = 0.08;
  /// Probability a page's review section quotes a track title as its own
  /// text node (precision noise).
  double review_quote_prob = 0.35;
  uint64_t seed = 17;
};

/// Generates the DISC dataset with track annotations (exact track-name
/// matching against the seed database) and album annotations (exact album
/// title matching, very noisy — titles recur in reviews and title tracks).
Dataset MakeDisc(const DiscConfig& config);

}  // namespace ntw::datasets

#endif  // NTW_DATASETS_DISC_H_
