#ifndef NTW_DATASETS_CORPUS_IO_H_
#define NTW_DATASETS_CORPUS_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "datasets/dataset.h"

namespace ntw::datasets {

/// On-disk corpus format — makes the generated datasets a portable
/// artifact (and exercises the HTML parser on the exact bytes a crawler
/// would hand the production system):
///
///   <dir>/
///     site.txt                site name
///     page_0000.html ...      serialized pages, zero-padded, in order
///     truth.tsv               type \t page \t preorder-index
///     annotations.tsv         type \t page \t preorder-index
///
/// Node references survive the round trip because Serialize → Parse is
/// structure-preserving for generated pages (a tested invariant).

/// Writes one site (pages + ground truth + annotations) to a directory.
Status ExportSite(const SiteData& site, const std::string& directory);

/// Reads a site back: parses every page_*.html and loads both TSV files.
Result<SiteData> ImportSite(const std::string& directory);

/// Writes a whole dataset, one subdirectory per site (site_0000, ...).
Status ExportDataset(const Dataset& dataset, const std::string& directory);

/// Reads a dataset exported by ExportDataset.
Result<Dataset> ImportDataset(const std::string& directory);

/// Parses a directory of raw .html files into a PageSet (no truth /
/// annotations) — the entry point for user-supplied crawls.
Result<core::PageSet> LoadPagesFromDirectory(const std::string& directory);

/// Reads the same .html files in the same (sorted) order as
/// LoadPagesFromDirectory, but returns the raw bytes unparsed — the input
/// the compiled fast path (arena DOM) consumes. Index i here corresponds
/// to page i of the PageSet the sibling function builds.
Result<std::vector<std::string>> LoadPageSourcesFromDirectory(
    const std::string& directory);

}  // namespace ntw::datasets

#endif  // NTW_DATASETS_CORPUS_IO_H_
