#ifndef NTW_DATASETS_PRODUCTS_H_
#define NTW_DATASETS_PRODUCTS_H_

#include <cstdint>

#include "datasets/dataset.h"

namespace ntw::datasets {

/// Configuration of the PRODUCTS dataset (Appendix B.1): 10 shopping
/// websites selling cellphones; the task is to extract all phones sold.
/// The dictionary is the Wikipedia-derived model catalogue (463 entries
/// over five brands in the paper).
struct ProductsConfig {
  size_t num_sites = 10;
  size_t pages_per_site = 5;
  size_t min_records = 4;
  size_t max_records = 14;
  /// Catalogue entries per brand; 5 brands. The paper's dictionary had
  /// 463 entries; 93×5 = 465 with two trimmed gives exactly 463.
  size_t catalogue_per_brand = 93;
  /// Fraction of listed phones that come from the dictionary's brands
  /// (others are off-catalogue brands: recall noise).
  double catalogue_fraction = 0.65;
  /// Probability a product description mentions a catalogue model
  /// (precision noise).
  double description_mention_prob = 0.18;
  uint64_t seed = 23;
};

/// Generates the PRODUCTS dataset with "model" annotations.
Dataset MakeProducts(const ProductsConfig& config);

}  // namespace ntw::datasets

#endif  // NTW_DATASETS_PRODUCTS_H_
