#include "datasets/disc.h"

#include <unordered_set>

#include "common/strings.h"
#include "sitegen/chrome.h"
#include "sitegen/list_template.h"
#include "sitegen/vocab.h"

namespace ntw::datasets {
namespace {

using sitegen::ListRecord;
using sitegen::SeedAlbum;

/// The 15 site names follow the paper's Figure 8.
constexpr const char* kDiscSiteNames[] = {
    "cduniverse.com",      "music.barnesandnoble.com",
    "tower.com",           "cdbaby.com",
    "musicishere.com",     "home.napster.com",
    "mog.com",             "mp3.rhapsody.com",
    "shockhound.com",      "rollingstone.com",
    "play.com",            "wayango.com",
    "audiolunchbox.com",   "amazon.com",
    "allmusic.com"};

/// Exact whole-node matching against a set of strings (the DISC annotators
/// "look for exact track names on the webpages").
class ExactSetAnnotator {
 public:
  explicit ExactSetAnnotator(const std::vector<std::string>& entries) {
    for (const std::string& entry : entries) {
      entries_.insert(ToLower(CollapseWhitespace(entry)));
    }
  }

  core::NodeSet Annotate(const core::PageSet& pages) const {
    std::vector<core::NodeRef> refs;
    for (size_t p = 0; p < pages.size(); ++p) {
      for (const html::Node* node : pages.page(p).text_nodes()) {
        if (entries_.count(ToLower(CollapseWhitespace(node->text())))) {
          refs.push_back(
              core::NodeRef{static_cast<int>(p), node->preorder_index()});
        }
      }
    }
    return core::NodeSet(std::move(refs));
  }

 private:
  std::unordered_set<std::string> entries_;
};

struct Album {
  std::string title;
  std::string artist;
  std::vector<std::string> tracks;
  bool is_seed = false;
};

std::vector<Album> PlanSiteAlbums(Rng* rng, const DiscConfig& config) {
  const std::vector<SeedAlbum>& seeds = sitegen::SeedAlbums();
  std::vector<size_t> order(seeds.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  size_t seed_count =
      config.min_seed_albums +
      rng->NextBounded(config.max_seed_albums - config.min_seed_albums + 1);
  seed_count = std::min(seed_count, seeds.size());

  std::vector<Album> albums;
  for (size_t i = 0; i < seed_count; ++i) {
    const SeedAlbum& seed = seeds[order[i]];
    albums.push_back(Album{seed.title, seed.artist, seed.tracks, true});
  }
  size_t extra_count =
      config.min_extra_albums +
      rng->NextBounded(config.max_extra_albums - config.min_extra_albums + 1);
  for (size_t i = 0; i < extra_count; ++i) {
    Album album;
    album.title = sitegen::AlbumTitle(rng);
    album.artist = sitegen::ArtistName(rng);
    int tracks = static_cast<int>(rng->NextInRange(8, 13));
    std::unordered_set<std::string> seen;
    while (static_cast<int>(album.tracks.size()) < tracks) {
      std::string t = sitegen::TrackTitle(rng);
      if (seen.insert(t).second) album.tracks.push_back(std::move(t));
    }
    albums.push_back(std::move(album));
  }
  rng->Shuffle(&albums);
  return albums;
}

sitegen::GeneratedSite MakeDiscSite(Rng* rng, const DiscConfig& config,
                                    size_t site_index) {
  std::string site_name = kDiscSiteNames[site_index % 15];
  sitegen::SiteAccumulator accumulator(site_name);

  sitegen::ChromeTemplate chrome =
      sitegen::ChromeTemplate::Random(rng, site_name);
  // Fields: track title, duration, bitrate/format note.
  sitegen::ListTemplate list_template = sitegen::ListTemplate::Random(rng, 3);
  bool head_title_exact = rng->NextBernoulli(0.4);
  bool has_details_tab = rng->NextBernoulli(0.4);
  std::string title_class = sitegen::RandomCssClass(rng);

  std::vector<std::string> sidebar_items;
  size_t sidebar_count = 3 + rng->NextBounded(4);
  for (size_t i = 0; i < sidebar_count; ++i) {
    sidebar_items.push_back("Genre: " + sitegen::TrackTitle(rng));
  }

  for (const Album& album : PlanSiteAlbums(rng, config)) {
    sitegen::PageBuilder builder;
    html::Node* body = sitegen::BeginPage(
        &builder,
        head_title_exact ? album.title : site_name + " : " + album.title);
    html::Node* content =
        sitegen::RenderChromeTop(&builder, chrome, sidebar_items);

    // Album header: the title node is the "album" single-entity target.
    html::Node* header =
        builder.El(content, "div", {{"class", title_class}});
    builder.TargetText(builder.El(header, "h2"), album.title, "album");
    builder.Text(builder.El(header, "p", {{"class", "artist"}}),
                 "by " + album.artist);
    builder.Text(builder.El(header, "p", {{"class", "blurb"}}),
                 sitegen::FillerSentence(rng, 16));
    if (has_details_tab) {
      html::Node* tab = builder.El(content, "div", {{"class", "details"}});
      builder.Text(builder.El(tab, "span", {{"class", "lbl"}}), "Album:");
      builder.Text(builder.El(tab, "span", {{"class", "val"}}), album.title);
    }

    // Track listing.
    std::vector<ListRecord> records;
    for (const std::string& track : album.tracks) {
      std::string rendered = track;
      if (rng->NextBernoulli(config.suffix_prob)) {
        rendered += rng->NextBernoulli(0.5) ? " (Remastered)" : " [Live]";
      }
      ListRecord record;
      record.fields = {rendered, sitegen::TrackDuration(rng),
                       rng->NextBernoulli(0.5) ? "MP3 320k" : "FLAC"};
      record.field_types = {"track", "", ""};
      record.present = {true, true, rng->NextBernoulli(0.6)};
      records.push_back(std::move(record));
    }
    list_template.Render(&builder, content, records);

    // Reviews: quoted track titles become their own text nodes — the
    // precision noise of the DISC annotator ("track titles ... present
    // inside album descriptions/user comments").
    html::Node* reviews = builder.El(content, "div", {{"class", "reviews"}});
    builder.Text(builder.El(reviews, "h4"), "User Reviews");
    if (rng->NextBernoulli(config.review_quote_prob) &&
        !album.tracks.empty()) {
      size_t quotes = 1 + rng->NextBounded(3);
      for (size_t q = 0; q < quotes; ++q) {
        html::Node* p = builder.El(reviews, "p", {{"class", "review"}});
        builder.Text(p, sitegen::FillerSentence(rng, 6) + " ");
        builder.Text(
            builder.El(p, "i"),
            album.tracks[rng->NextBounded(album.tracks.size())]);
        builder.Text(p, " " + sitegen::FillerSentence(rng, 5));
      }
      // Some reviews also name the album itself (album-annotator noise).
      if (rng->NextBernoulli(0.5)) {
        html::Node* p = builder.El(reviews, "p", {{"class", "review"}});
        builder.Text(p, sitegen::FillerSentence(rng, 4) + " ");
        builder.Text(builder.El(p, "b"), album.title);
        builder.Text(p, " " + sitegen::FillerSentence(rng, 4));
      }
    } else {
      builder.Text(builder.El(reviews, "p"),
                   sitegen::FillerSentence(rng, 12));
    }

    sitegen::RenderChromeBottom(&builder, body, chrome, rng,
                                {sitegen::FillerSentence(rng, 8)});
    accumulator.Add(builder.Finish());
  }
  return accumulator.Take();
}

}  // namespace

Dataset MakeDisc(const DiscConfig& config) {
  Dataset dataset;
  dataset.name = "DISC";
  dataset.types = {"track", "album"};

  // The annotator's seed database: the 11 albums of Figure 9.
  std::vector<std::string> seed_tracks;
  std::vector<std::string> seed_titles;
  for (const SeedAlbum& album : sitegen::SeedAlbums()) {
    seed_titles.push_back(album.title);
    for (const std::string& track : album.tracks) {
      seed_tracks.push_back(track);
    }
  }
  ExactSetAnnotator track_annotator(seed_tracks);
  ExactSetAnnotator album_annotator(seed_titles);

  Rng master(config.seed);
  for (size_t s = 0; s < config.num_sites; ++s) {
    Rng site_rng = master.Fork();
    SiteData data;
    data.site = MakeDiscSite(&site_rng, config, s);
    data.annotations["track"] = track_annotator.Annotate(data.site.pages);
    data.annotations["album"] = album_annotator.Annotate(data.site.pages);
    dataset.sites.push_back(std::move(data));
  }
  return dataset;
}

}  // namespace ntw::datasets
