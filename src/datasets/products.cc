#include "datasets/products.h"

#include "annotate/dictionary_annotator.h"
#include "common/strings.h"
#include "sitegen/chrome.h"
#include "sitegen/list_template.h"
#include "sitegen/vocab.h"

namespace ntw::datasets {
namespace {

using sitegen::ListRecord;

/// Site names follow the paper's Figure 4.
constexpr const char* kProductSiteNames[] = {
    "bizrate.com",         "shopping.yahoo.com", "pricegrabber.com",
    "google.com/products", "shopper.cnet.com",   "puremobile.com",
    "letstalk.com",        "mysimon.com",        "tigerdirect.com",
    "shopping.com"};

constexpr const char* kOffCatalogueBrands[] = {"HTC", "Palm", "BlackBerry",
                                               "Sanyo", "Kyocera"};

ListRecord MakeProductRecord(Rng* rng, const std::vector<std::string>& catalogue,
                             const ProductsConfig& config) {
  ListRecord record;
  std::string model;
  if (rng->NextBernoulli(config.catalogue_fraction)) {
    model = catalogue[rng->NextBounded(catalogue.size())];
    if (rng->NextBernoulli(0.25)) {
      model += rng->NextBernoulli(0.5) ? " - Black" : " - Unlocked";
    }
  } else {
    std::string brand =
        kOffCatalogueBrands[rng->NextBounded(std::size(kOffCatalogueBrands))];
    model = sitegen::PhoneModel(rng, brand);
  }

  std::string description = sitegen::FillerSentence(rng, 10);
  if (rng->NextBernoulli(config.description_mention_prob)) {
    // "Compare with <catalogue model>" — the precision noise: a catalogue
    // mention outside the true list position.
    description = "Compare with " +
                  catalogue[rng->NextBounded(catalogue.size())] + ". " +
                  description;
  }

  record.fields = {model, sitegen::Price(rng), description,
                   "In stock - ships in " +
                       std::to_string(rng->NextInRange(1, 5)) + " days"};
  record.field_types = {"model", "", "", ""};
  record.present = {true, true, rng->NextBernoulli(0.8),
                    rng->NextBernoulli(0.6)};
  return record;
}

sitegen::GeneratedSite MakeProductSite(
    Rng* rng, const std::vector<std::string>& catalogue,
    const ProductsConfig& config, size_t site_index) {
  std::string site_name = kProductSiteNames[site_index % 10];
  sitegen::SiteAccumulator accumulator(site_name);

  sitegen::ChromeTemplate chrome =
      sitegen::ChromeTemplate::Random(rng, site_name);
  sitegen::ListTemplate list_template = sitegen::ListTemplate::Random(rng, 4);

  std::vector<std::string> sidebar_items;
  for (const std::string& brand : sitegen::PhoneBrands()) {
    sidebar_items.push_back(brand + " phones");
  }

  for (size_t page = 0; page < config.pages_per_site; ++page) {
    sitegen::PageBuilder builder;
    html::Node* body = sitegen::BeginPage(
        &builder, site_name + " - Cell Phones page " +
                      std::to_string(page + 1));
    html::Node* content =
        sitegen::RenderChromeTop(&builder, chrome, sidebar_items);

    size_t records =
        config.min_records +
        rng->NextBounded(config.max_records - config.min_records + 1);
    builder.Text(builder.El(content, "h2"),
                 "Cell Phones (" + std::to_string(records) + " results)");

    std::vector<ListRecord> page_records;
    for (size_t i = 0; i < records; ++i) {
      page_records.push_back(MakeProductRecord(rng, catalogue, config));
    }
    list_template.Render(&builder, content, page_records);

    sitegen::RenderChromeBottom(&builder, body, chrome, rng,
                                {sitegen::FillerSentence(rng, 9)});
    accumulator.Add(builder.Finish());
  }
  return accumulator.Take();
}

}  // namespace

Dataset MakeProducts(const ProductsConfig& config) {
  Dataset dataset;
  dataset.name = "PRODUCTS";
  dataset.types = {"model"};

  std::vector<std::string> catalogue = sitegen::PhoneModelCatalogue(
      config.catalogue_per_brand, config.seed * 131);
  while (catalogue.size() > 463 && catalogue.size() > 1) {
    catalogue.pop_back();  // The paper's dictionary had exactly 463 models.
  }
  annotate::DictionaryAnnotator annotator(catalogue);

  Rng master(config.seed);
  for (size_t s = 0; s < config.num_sites; ++s) {
    Rng site_rng = master.Fork();
    SiteData data;
    data.site = MakeProductSite(&site_rng, catalogue, config, s);
    data.annotations["model"] = annotator.Annotate(data.site.pages);
    dataset.sites.push_back(std::move(data));
  }
  return dataset;
}

}  // namespace ntw::datasets
