#include "datasets/runner.h"

#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ntw::datasets {

Result<RunSummary> RunSingleType(const Dataset& dataset,
                                 const core::WrapperInductor& inductor,
                                 const RunConfig& config) {
  obs::Span run_span("run.single_type");
  static obs::Counter* const sites_evaluated =
      obs::Registry::Global().GetCounter("ntw.run.sites");
  static obs::Counter* const sites_skipped =
      obs::Registry::Global().GetCounter("ntw.run.skipped_sites");
  Split split = MakeSplit(dataset);
  Result<TrainedModels> models_or = [&] {
    obs::Span span("run.learn_models");
    return LearnModels(dataset, config.type, split.train);
  }();
  NTW_ASSIGN_OR_RETURN(TrainedModels models, std::move(models_or));
  core::Ranker ranker(models.annotation, models.publication, config.variant);

  RunSummary summary;
  summary.annotator = AnnotatorQuality(dataset, config.type);

  std::vector<size_t> eval_sites =
      config.test_half_only ? split.test : [&] {
        std::vector<size_t> all(dataset.sites.size());
        for (size_t i = 0; i < all.size(); ++i) all[i] = i;
        return all;
      }();

  // Sites are independent given the trained models — this per-site loop
  // is the dataset-level fan-out the whole run spends its time in. Filter
  // serially (to keep skipped-site accounting deterministic), learn in
  // parallel into per-site slots, then merge in evaluation order.
  struct SiteJob {
    const SiteData* data = nullptr;
    const core::NodeSet* labels = nullptr;
    const core::NodeSet* truth = nullptr;
  };
  std::vector<SiteJob> jobs;
  for (size_t index : eval_sites) {
    const SiteData& data = dataset.sites[index];
    auto labels_it = data.annotations.find(config.type);
    auto truth_it = data.site.truth.find(config.type);
    if (truth_it == data.site.truth.end()) continue;
    if (labels_it == data.annotations.end() || labels_it->second.empty()) {
      ++summary.skipped_sites;
      continue;
    }
    jobs.push_back(SiteJob{&data, &labels_it->second, &truth_it->second});
  }

  sites_evaluated->Add(static_cast<int64_t>(jobs.size()));
  sites_skipped->Add(static_cast<int64_t>(summary.skipped_sites));

  std::vector<SiteOutcome> outcomes(jobs.size());
  ThreadPool::Global().ParallelFor(jobs.size(), [&](size_t i) {
    obs::Span site_span("run.site");
    const SiteData& data = *jobs[i].data;
    const core::NodeSet& labels = *jobs[i].labels;
    const core::NodeSet& truth = *jobs[i].truth;

    SiteOutcome& outcome = outcomes[i];
    outcome.site_name = data.site.name;
    outcome.labels = labels.size();

    Stopwatch watch;
    core::NtwOptions options;
    options.algorithm = config.algorithm;
    Result<core::NtwOutcome> ntw_outcome = core::LearnNoiseTolerant(
        inductor, data.site.pages, labels, ranker, options);
    outcome.seconds = watch.ElapsedSeconds();
    if (ntw_outcome.ok()) {
      outcome.ntw = core::Evaluate(ntw_outcome->best.extraction, truth);
      outcome.space_size = ntw_outcome->space_size;
      outcome.inductor_calls = ntw_outcome->inductor_calls;
      outcome.cache_hits = ntw_outcome->cache_hits;
      outcome.cache_misses = ntw_outcome->cache_misses;
      outcome.ntw_wrapper = ntw_outcome->best.wrapper->ToString();
    } else {
      outcome.ntw = core::Evaluate(core::NodeSet(), truth);
    }

    core::Induction naive =
        core::LearnNaive(inductor, data.site.pages, labels);
    outcome.naive = core::Evaluate(naive.extraction, truth);
    outcome.naive_wrapper = naive.wrapper->ToString();
  });

  std::vector<core::Prf> ntw_results;
  std::vector<core::Prf> naive_results;
  ntw_results.reserve(outcomes.size());
  naive_results.reserve(outcomes.size());
  for (SiteOutcome& outcome : outcomes) {
    ntw_results.push_back(outcome.ntw);
    naive_results.push_back(outcome.naive);
    summary.sites.push_back(std::move(outcome));
  }

  summary.ntw_avg = core::MacroAverage(ntw_results);
  summary.naive_avg = core::MacroAverage(naive_results);
  return summary;
}

std::string FormatSummary(const std::string& title,
                          const RunSummary& summary) {
  std::string out = title + "\n";
  out += StrFormat("  annotator: precision=%.3f recall=%.3f (%zu sites"
                   " evaluated, %zu skipped)\n",
                   summary.annotator.precision, summary.annotator.recall,
                   summary.sites.size(), summary.skipped_sites);
  out += StrFormat("  %-6s precision=%.3f recall=%.3f f1=%.3f\n", "NTW",
                   summary.ntw_avg.precision, summary.ntw_avg.recall,
                   summary.ntw_avg.f1);
  out += StrFormat("  %-6s precision=%.3f recall=%.3f f1=%.3f\n", "NAIVE",
                   summary.naive_avg.precision, summary.naive_avg.recall,
                   summary.naive_avg.f1);
  return out;
}

}  // namespace ntw::datasets
