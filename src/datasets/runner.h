#ifndef NTW_DATASETS_RUNNER_H_
#define NTW_DATASETS_RUNNER_H_

#include <string>
#include <vector>

#include "core/ntw.h"
#include "datasets/dataset.h"

namespace ntw::datasets {

/// Configuration of one dataset × inductor experiment.
struct RunConfig {
  std::string type;  // Which type to extract (e.g. "name").
  core::EnumAlgorithm algorithm = core::EnumAlgorithm::kTopDown;
  core::RankerVariant variant = core::RankerVariant::kFull;
  /// Evaluate on the held-out half only (models are always learned on the
  /// training half); false evaluates on every site.
  bool test_half_only = true;
};

/// Per-site outcome.
struct SiteOutcome {
  std::string site_name;
  size_t labels = 0;
  core::Prf ntw;
  core::Prf naive;
  size_t space_size = 0;
  int64_t inductor_calls = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double seconds = 0.0;
  std::string ntw_wrapper;
  std::string naive_wrapper;
};

/// Aggregate outcome of a run.
struct RunSummary {
  core::Prf ntw_avg;
  core::Prf naive_avg;
  std::vector<SiteOutcome> sites;
  size_t skipped_sites = 0;  // Sites with no annotations.
  core::Prf annotator;       // Measured annotator quality on the dataset.
};

/// Runs NTW and NAIVE for every evaluated site of the dataset and macro-
/// averages the results (the Fig. 2(d–i) / Fig. 3(c) harness).
Result<RunSummary> RunSingleType(const Dataset& dataset,
                                 const core::WrapperInductor& inductor,
                                 const RunConfig& config);

/// Formats a summary as the two rows the paper's bar charts encode.
std::string FormatSummary(const std::string& title, const RunSummary& summary);

}  // namespace ntw::datasets

#endif  // NTW_DATASETS_RUNNER_H_
