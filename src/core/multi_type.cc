#include "core/multi_type.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

namespace ntw::core {

NodeSet RecordSet::TypeNodes(size_t type_index) const {
  std::vector<NodeRef> refs;
  refs.reserve(records.size());
  for (const auto& record : records) {
    refs.push_back(record[type_index]);
  }
  return NodeSet(std::move(refs));
}

RecordSet AssembleRecords(const PageSet& pages,
                          const std::vector<NodeSet>& typed_extractions) {
  RecordSet out;
  const size_t num_types = typed_extractions.size();
  if (num_types == 0) return out;

  for (size_t p = 0; p < pages.size(); ++p) {
    // Typed occurrences on this page in document order.
    std::vector<std::pair<NodeRef, size_t>> occurrences;
    for (size_t t = 0; t < num_types; ++t) {
      for (const NodeRef& ref : typed_extractions[t]) {
        if (ref.page == static_cast<int>(p)) occurrences.emplace_back(ref, t);
      }
    }
    std::sort(occurrences.begin(), occurrences.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (occurrences.empty()) continue;

    // A node claimed by two types is ambiguous: the page cannot assemble.
    bool duplicate_node = false;
    for (size_t i = 1; i < occurrences.size(); ++i) {
      if (occurrences[i].first == occurrences[i - 1].first) {
        duplicate_node = true;
      }
    }
    if (duplicate_node) {
      out.failed_pages.push_back(static_cast<int>(p));
      continue;
    }

    // The sequence must be k repetitions of one type permutation.
    if (occurrences.size() % num_types != 0) {
      out.failed_pages.push_back(static_cast<int>(p));
      continue;
    }
    std::vector<size_t> pattern;
    for (size_t i = 0; i < num_types; ++i) {
      pattern.push_back(occurrences[i].second);
    }
    std::vector<size_t> sorted_pattern = pattern;
    std::sort(sorted_pattern.begin(), sorted_pattern.end());
    bool is_permutation = true;
    for (size_t i = 0; i < num_types; ++i) {
      if (sorted_pattern[i] != i) is_permutation = false;
    }
    bool repeats = true;
    for (size_t i = 0; i < occurrences.size(); ++i) {
      if (occurrences[i].second != pattern[i % num_types]) repeats = false;
    }
    if (!is_permutation || !repeats) {
      out.failed_pages.push_back(static_cast<int>(p));
      continue;
    }

    for (size_t rec = 0; rec < occurrences.size() / num_types; ++rec) {
      std::vector<NodeRef> record(num_types);
      for (size_t i = 0; i < num_types; ++i) {
        size_t type = occurrences[rec * num_types + i].second;
        record[type] = occurrences[rec * num_types + i].first;
      }
      out.records.push_back(std::move(record));
    }
  }
  return out;
}

Prf EvaluateRecords(const PageSet& pages, const RecordSet& extracted,
                    const std::vector<NodeSet>& typed_truth) {
  RecordSet truth_records = AssembleRecords(pages, typed_truth);

  auto record_key = [](const std::vector<NodeRef>& record) {
    std::string key;
    for (const NodeRef& ref : record) {
      key += std::to_string(ref.page) + ":" + std::to_string(ref.node) + ";";
    }
    return key;
  };
  std::set<std::string> truth_keys;
  for (const auto& record : truth_records.records) {
    truth_keys.insert(record_key(record));
  }

  Prf prf;
  prf.extracted = extracted.records.size();
  prf.expected = truth_records.records.size();
  for (const auto& record : extracted.records) {
    if (truth_keys.count(record_key(record)) > 0) ++prf.true_positives;
  }
  prf.precision = prf.extracted == 0
                      ? 1.0
                      : static_cast<double>(prf.true_positives) /
                            static_cast<double>(prf.extracted);
  prf.recall = prf.expected == 0
                   ? 1.0
                   : static_cast<double>(prf.true_positives) /
                         static_cast<double>(prf.expected);
  prf.f1 = (prf.precision + prf.recall) > 0
               ? 2 * prf.precision * prf.recall /
                     (prf.precision + prf.recall)
               : 0.0;
  return prf;
}

namespace {

Status ValidateLabels(const MultiTypeLabels& labels) {
  if (labels.labels.empty() ||
      labels.labels.size() != labels.type_names.size()) {
    return Status::InvalidArgument("malformed multi-type label sets");
  }
  for (const NodeSet& l : labels.labels) {
    if (l.empty()) {
      return Status::InvalidArgument("a type has no labels");
    }
  }
  return Status::OK();
}

}  // namespace

Result<MultiTypeOutcome> LearnMultiTypeNtw(
    const WrapperInductor& inductor, const PageSet& pages,
    const MultiTypeLabels& labels,
    const std::vector<AnnotationModel>& annotation_models,
    const PublicationModel& publication_model,
    const MultiTypeOptions& options) {
  NTW_RETURN_IF_ERROR(ValidateLabels(labels));
  if (annotation_models.size() != labels.labels.size()) {
    return Status::InvalidArgument(
        "need one annotation model per type");
  }
  const size_t num_types = labels.labels.size();

  // Per-type enumeration + shortlist by annotation likelihood.
  std::vector<std::vector<Candidate>> shortlists(num_types);
  int64_t total_calls = 0;
  for (size_t t = 0; t < num_types; ++t) {
    NTW_ASSIGN_OR_RETURN(
        WrapperSpace space,
        Enumerate(options.algorithm, inductor, pages, labels.labels[t]));
    total_calls += space.inductor_calls;
    std::vector<std::pair<double, size_t>> scored;
    for (size_t i = 0; i < space.candidates.size(); ++i) {
      scored.emplace_back(annotation_models[t].LogProb(
                              labels.labels[t],
                              space.candidates[i].extraction),
                          i);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      return a.first > b.first;
    });
    size_t keep = std::min(options.shortlist, scored.size());
    for (size_t i = 0; i < keep; ++i) {
      shortlists[t].push_back(space.candidates[scored[i].second]);
    }
    if (shortlists[t].empty()) {
      return Status::FailedPrecondition("empty wrapper space for type " +
                                        labels.type_names[t]);
    }
  }

  // Joint ranking over the cross product.
  std::vector<size_t> pick(num_types, 0);
  MultiTypeOutcome best;
  best.score = -std::numeric_limits<double>::infinity();
  bool found = false;

  for (;;) {
    // Score this combination.
    std::vector<NodeSet> extractions;
    extractions.reserve(num_types);
    double annotation_score = 0.0;
    for (size_t t = 0; t < num_types; ++t) {
      const Candidate& candidate = shortlists[t][pick[t]];
      extractions.push_back(candidate.extraction);
      annotation_score +=
          annotation_models[t].LogProb(labels.labels[t],
                                       candidate.extraction);
    }
    RecordSet records = AssembleRecords(pages, extractions);
    if (!records.records.empty()) {
      // Publication score on the typed segmentation: boundaries from the
      // assembled records' first type; typed nodes get distinct tokens so
      // alignment requires types to correspond.
      std::vector<NodeSet> typed_nodes;
      typed_nodes.reserve(num_types);
      for (size_t t = 0; t < num_types; ++t) {
        typed_nodes.push_back(records.TypeNodes(t));
      }
      std::vector<const NodeSet*> typed_ptrs;
      for (const NodeSet& ns : typed_nodes) typed_ptrs.push_back(&ns);
      ListFeatures features =
          ComputeListFeatures(SegmentRecords(pages, typed_ptrs));
      double score = annotation_score + publication_model.LogProb(features);
      // Penalize combinations that fail on pages: each failed page voids
      // its records, which the annotation term already partially reflects,
      // but an explicit penalty keeps fragile combinations down-ranked.
      score -= 2.0 * static_cast<double>(records.failed_pages.size());
      if (score > best.score) {
        best.score = score;
        best.per_type.clear();
        for (size_t t = 0; t < num_types; ++t) {
          best.per_type.push_back(shortlists[t][pick[t]]);
        }
        best.records = std::move(records);
        found = true;
      }
    }

    // Advance the cross-product odometer.
    size_t t = 0;
    while (t < num_types && ++pick[t] == shortlists[t].size()) {
      pick[t] = 0;
      ++t;
    }
    if (t == num_types) break;
  }

  if (!found) {
    return Status::NotFound(
        "no wrapper combination assembles records on any page");
  }
  best.inductor_calls = total_calls;
  return best;
}

Result<MultiTypeOutcome> LearnMultiTypeNaive(const WrapperInductor& inductor,
                                             const PageSet& pages,
                                             const MultiTypeLabels& labels) {
  NTW_RETURN_IF_ERROR(ValidateLabels(labels));
  const size_t num_types = labels.labels.size();

  MultiTypeOutcome outcome;
  std::vector<NodeSet> extractions;
  for (size_t t = 0; t < num_types; ++t) {
    Induction induction = inductor.Induce(pages, labels.labels[t]);
    ++outcome.inductor_calls;
    Candidate candidate;
    candidate.wrapper = induction.wrapper;
    candidate.extraction = induction.extraction;
    candidate.trained_on = labels.labels[t];
    extractions.push_back(candidate.extraction);
    outcome.per_type.push_back(std::move(candidate));
  }
  outcome.records = AssembleRecords(pages, extractions);
  return outcome;
}

}  // namespace ntw::core
