#ifndef NTW_CORE_COMPILED_WRAPPER_H_
#define NTW_CORE_COMPILED_WRAPPER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/wrapper.h"
#include "html/arena_dom.h"
#include "html/stream_page.h"

namespace ntw::core {

/// Precomputed Boyer–Moore–Horspool substring search. Find() returns the
/// same positions as std::string::find (including the empty-needle edge
/// cases), just faster on long haystacks: the skip table lets the scan
/// advance needle-length bytes on a mismatching last character.
class StringSearcher {
 public:
  StringSearcher() = default;
  explicit StringSearcher(std::string needle);

  /// First occurrence at or after `from`; std::string_view::npos if none.
  size_t Find(std::string_view haystack, size_t from = 0) const;

  const std::string& needle() const { return needle_; }
  bool empty() const { return needle_.empty(); }

 private:
  std::string needle_;
  // Shift for each possible last-window byte.
  size_t skip_[256] = {};
};

/// Reusable per-request buffers for the DOM fast path: the arena document
/// plus the evaluator scratch. Acquire one from a BufferPool, parse into
/// `doc`, run CompiledWrapper::Extract, copy the values out, release.
/// Everything keeps its capacity across uses; steady state allocates
/// nothing.
class FastPageBuffer {
 public:
  html::ArenaDocument doc;
  /// Output slot for CompiledWrapper::Extract — views into `doc`.
  std::vector<std::string_view> values;

  /// Recycles for the next request (keeps capacity).
  void Clear();

 private:
  friend class CompiledWrapper;

  // XPath step-machine scratch: current/next context sets and an
  // epoch-marked dedup table.
  std::vector<int32_t> current_;
  std::vector<int32_t> next_;
  std::vector<uint32_t> marks_;
  uint32_t epoch_ = 0;
};

/// One open element's state in the fused streaming-XPath executor
/// (CompiledWrapper::ExtractStreaming on streamable() plans): the
/// per-step match bitsets plus the child counters the arena tree builder
/// would keep on its frames. Pooled by depth inside StreamPageBuffer so
/// the tag_counts vectors keep capacity across pages.
struct StreamXPathFrame {
  std::string_view tag;  // Interned — process-stable across the build.
  int32_t tag_id = -1;
  uint64_t match = 0;    // Bit j: this node matches the first j steps.
  uint64_t anc = 0;      // Union of every ancestor's match bits.
  int32_t children = 0;  // Child nodes appended so far (0-based index).
  // CloseImpliedBy(tag, ·) can return true for some incoming tag —
  // cached at push so the per-start-tag implied-close probe is one bool
  // instead of the parse_rules string comparisons. (Scope boundaries are
  // never implied-closable, so this also covers the IsScopeBoundary
  // break in the builders' loops.)
  bool may_imply_close = false;
  // (tag_id, count) for element children seen so far — same_tag_child_
  // number bookkeeping, linear scan as in ArenaTreeBuilder::Frame.
  std::vector<std::pair<int32_t, int32_t>> tag_counts;
};

/// Reusable per-request buffer for the streaming (no-DOM) path: the
/// flattened stream page, the value slot, and the fused streaming-XPath
/// executor's scratch. Much lighter than FastPageBuffer — no arena and
/// no node arrays; the XPath scratch is a depth-pooled frame stack plus
/// one capture string for matched text.
class StreamPageBuffer {
 public:
  html::StreamPage page;
  /// Output slot for CompiledWrapper::ExtractStreaming — views into
  /// `page` or into the XPath capture buffer (either of which may alias
  /// the request body; see StreamPage).
  std::vector<std::string_view> values;

  /// Recycles for the next request (keeps capacity).
  void Clear() {
    page.Clear();
    values.clear();
    xcapture_.clear();
    xextents_.clear();
  }

 private:
  friend class CompiledWrapper;

  std::vector<StreamXPathFrame> xframes_;  // Open-element stack, pooled.
  html::Token xtoken_;                     // Tokenizer slot.
  std::string xcapture_;                   // Matched text, collapsed.
  // Result extents into xcapture_ in document order; npos marks an
  // element match (its value is the empty string, as on the DOM path).
  std::vector<std::pair<size_t, size_t>> xextents_;
};

/// A thread-safe free list of per-request buffers (FastPageBuffer for the
/// DOM fast path, StreamPageBuffer for the streaming path). Lease
/// RAII-returns the buffer (Clear()ed) on destruction.
template <class Buffer>
class BufferPool {
 public:
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), buffer_(other.buffer_) {
      other.pool_ = nullptr;
      other.buffer_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    ~Lease() {
      if (pool_ == nullptr) return;
      buffer_->Clear();
      std::lock_guard<std::mutex> lock(pool_->mu_);
      for (auto& slot : pool_->free_) {
        if (slot == nullptr) {
          slot.reset(buffer_);
          return;
        }
      }
      pool_->free_.emplace_back(buffer_);
    }

    Buffer* operator->() { return buffer_; }
    Buffer& operator*() { return *buffer_; }

   private:
    friend class BufferPool;
    Lease(BufferPool* pool, Buffer* buffer) : pool_(pool), buffer_(buffer) {}
    BufferPool* pool_;
    Buffer* buffer_;
  };

  Lease Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& slot : free_) {
      if (slot != nullptr) {
        return Lease(this, slot.release());
      }
    }
    return Lease(this, new Buffer());
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> free_;
};

using FastBufferPool = BufferPool<FastPageBuffer>;
using StreamBufferPool = BufferPool<StreamPageBuffer>;

/// A wrapper compiled into an executable plan:
///   - XPATH  → a step program over interned tag/attr ids (no string
///              compares on the hot path); needs the arena DOM;
///   - LR     → occurrence-driven scan of the flattened stream using a BMH
///              searcher for the left delimiter;
///   - HLRT   → BMH head/tail region narrowing, then anchored LR checks.
///
/// LR and HLRT are defined purely over the flattened character stream —
/// they never touch the tree — so they are classified dom_free() and can
/// additionally execute via ExtractStreaming(), which builds the stream
/// with a StreamPage (no DOM at all) instead of flattening an arena DOM.
///
/// XPath plans are not dom_free(), but almost all of them are
/// streamable(): the step program can run as a bitset NFA directly
/// against the tokenizer event stream — an explicit open-tag depth stack
/// carrying per-step match frames, interned-id tag/attr comparison
/// through the intern front cache, positional filters computed from the
/// same per-frame counters the tree builder keeps — so matching requests
/// never construct arena nodes and only matched text is ever copied.
/// ExtractStreaming() takes that fused path for streamable() XPath plans.
///
/// Extract() returns, for the single page in `buffer.doc`, exactly the
/// values the interpreted Wrapper::Extract + node->text() pipeline returns
/// for the same input, in the same order — the byte-identity contract the
/// serving layer relies on (tests/fastpath_equivalence_test.cc pins it).
/// ExtractStreaming() returns those same bytes again, because StreamPage
/// reproduces the arena flatten byte for byte. The returned string_views
/// point into the buffer (and, on the streaming path's zero-copy tier,
/// possibly into the raw input); consume them before releasing either.
class CompiledWrapper {
 public:
  /// Compiles `wrapper` (an XPathWrapper, LrWrapper or HlrtWrapper).
  /// Returns nullptr for wrapper kinds without a compiled form — callers
  /// fall back to the interpreted path.
  static std::shared_ptr<const CompiledWrapper> Compile(
      const Wrapper& wrapper);

  /// One XPath step in source form, for building a plan without going
  /// through the parsed Wrapper (the wrapper-pack finalize path). The
  /// fields mirror xpath::Step; Compile() and MakeXPath() produce
  /// identical plans for the same steps.
  struct XPathStepSpec {
    bool descendant = false;
    enum class Test { kTag, kAnyElement, kText };
    Test test = Test::kTag;
    std::string tag;            // Test::kTag only
    int32_t child_number = -1;  // -1 = no filter
    std::vector<std::pair<std::string, std::string>> attr_filters;
  };

  /// Direct constructors for the pack's fixed-layout plans — bitwise the
  /// same plans Compile() builds from the equivalent Wrapper.
  static std::shared_ptr<const CompiledWrapper> MakeLr(std::string left,
                                                       std::string right);
  static std::shared_ptr<const CompiledWrapper> MakeHlrt(std::string head,
                                                         std::string tail,
                                                         std::string left,
                                                         std::string right);
  static std::shared_ptr<const CompiledWrapper> MakeXPath(
      const std::vector<XPathStepSpec>& steps);

  void Extract(FastPageBuffer& buffer,
               std::vector<std::string_view>* values) const;

  /// Streaming no-DOM execution over the raw request bytes: the stream
  /// matchers for dom_free() plans (LR/HLRT), the fused tokenize→
  /// plan-execute machine for streamable() XPath plans. An XPath plan
  /// that is not streamable() yields no values — callers route those to
  /// the DOM path.
  void ExtractStreaming(std::string_view raw_page, StreamPageBuffer& buffer,
                        std::vector<std::string_view>* values) const;

  /// Occurrence-driven variant of the streaming matchers for the fused
  /// multi-attribute path: instead of running its own BMH scans, the plan
  /// consumes precomputed ascending occurrence-begin lists (from one
  /// shared Aho–Corasick pass — see fused_matcher.h). Byte-identical to
  /// ExtractStreaming on the same stream/spans. `left_occ` is required
  /// for LR plans with a non-empty left; `head_occ`/`tail_occ` for HLRT
  /// plans with non-empty head/tail; unused lists may be null. XPath
  /// plans yield no values.
  void ExtractWithOccurrences(std::string_view stream,
                              const std::vector<html::StreamSpan>& spans,
                              const std::vector<size_t>* left_occ,
                              const std::vector<size_t>* head_occ,
                              const std::vector<size_t>* tail_occ,
                              std::vector<std::string_view>* values) const;

  /// Capability flag: true when the plan is defined over the flattened
  /// character stream alone and never needs a DOM (LR/HLRT).
  bool dom_free() const { return kind_ != Kind::kXPath; }

  /// Capability flag: true for XPath step programs the fused streaming
  /// executor can run — any program of 1..63 steps (the per-node match
  /// bitset spends one bit per step plus the accept bit). Child/
  /// descendant axes, tag/any-element/text tests, positional filters and
  /// attribute filters are all prefix-computable from the event stream;
  /// nothing learned by the inductors falls outside this today.
  bool streamable() const { return kind_ == Kind::kXPath && streamable_; }

  /// "xpath", "lr" or "hlrt" — for routing metrics and bench phase labels.
  const char* plan_kind() const;

  bool is_lr() const { return kind_ == Kind::kLr; }
  bool is_hlrt() const { return kind_ == Kind::kHlrt; }
  // Delimiters (empty when absent or not applicable to the plan kind).
  const std::string& left() const { return left_; }
  const std::string& right() const { return right_; }
  const std::string& head() const { return head_; }
  const std::string& tail() const { return tail_; }

 private:
  enum class Kind { kXPath, kLr, kHlrt };

  struct StepOp {
    bool descendant = false;  // child vs descendant axis
    // Node test: kText (tag_id == -2), any element (tag_id == -1), or a
    // specific interned tag id.
    int32_t tag_id = -1;
    bool is_text = false;
    bool any_element = false;
    int32_t child_number = -1;  // -1 = no filter (0 is a legal, unmatchable
                                // value: child numbers are 1-based)
    struct AttrFilter {
      int32_t name_id;    // Arena path: interned-id FindAttr lookup.
      std::string name;   // Fused path: raw byte compare (the tokenizer
                          // already lowercases), no per-attr interning.
      std::string value;
    };
    std::vector<AttrFilter> attr_filters;
  };

  void ExtractXPath(FastPageBuffer& buffer,
                    std::vector<std::string_view>* values) const;
  // The fused tokenize→plan-execute machine (streamable() plans only).
  void ExtractXPathStreaming(std::string_view raw_page,
                             StreamPageBuffer& buffer,
                             std::vector<std::string_view>* values) const;
  // Computes streamable_ and the per-axis step masks from steps_.
  void FinalizeXPath();
  // The LR/HLRT matchers, shared by the DOM path (ArenaDocument spans)
  // and the streaming path (StreamPage spans): any span type with
  // .begin/.end works, so both paths run the identical matching logic.
  template <typename Span>
  void MatchLr(std::string_view stream, const std::vector<Span>& spans,
               std::vector<std::string_view>* values) const;
  template <typename Span>
  void MatchHlrt(std::string_view stream, const std::vector<Span>& spans,
                 std::vector<std::string_view>* values) const;
  bool SpanMatchesLr(std::string_view stream, size_t begin,
                     size_t end) const;

  Kind kind_ = Kind::kXPath;
  std::vector<StepOp> steps_;        // XPATH
  bool streamable_ = false;          // XPATH: fused executor eligible.
  uint64_t child_steps_ = 0;         // XPATH: bit j = step j is child axis.
  uint64_t desc_steps_ = 0;          // XPATH: bit j = step j is descendant.
  // Tags named by a tag[k] step: the fused executor maintains same-tag
  // child counts only for these (no other step ever reads them).
  std::vector<int32_t> positional_tag_ids_;
  std::string left_, right_;         // LR / HLRT
  StringSearcher left_searcher_;     // LR / HLRT (non-empty left only)
  StringSearcher head_searcher_;     // HLRT
  StringSearcher tail_searcher_;     // HLRT
  std::string head_, tail_;          // HLRT
};

}  // namespace ntw::core

#endif  // NTW_CORE_COMPILED_WRAPPER_H_
