#ifndef NTW_CORE_COMPILED_WRAPPER_H_
#define NTW_CORE_COMPILED_WRAPPER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/wrapper.h"
#include "html/arena_dom.h"
#include "html/stream_page.h"

namespace ntw::core {

/// Precomputed Boyer–Moore–Horspool substring search. Find() returns the
/// same positions as std::string::find (including the empty-needle edge
/// cases), just faster on long haystacks: the skip table lets the scan
/// advance needle-length bytes on a mismatching last character.
class StringSearcher {
 public:
  StringSearcher() = default;
  explicit StringSearcher(std::string needle);

  /// First occurrence at or after `from`; std::string_view::npos if none.
  size_t Find(std::string_view haystack, size_t from = 0) const;

  const std::string& needle() const { return needle_; }
  bool empty() const { return needle_.empty(); }

 private:
  std::string needle_;
  // Shift for each possible last-window byte.
  size_t skip_[256] = {};
};

/// Reusable per-request buffers for the DOM fast path: the arena document
/// plus the evaluator scratch. Acquire one from a BufferPool, parse into
/// `doc`, run CompiledWrapper::Extract, copy the values out, release.
/// Everything keeps its capacity across uses; steady state allocates
/// nothing.
class FastPageBuffer {
 public:
  html::ArenaDocument doc;
  /// Output slot for CompiledWrapper::Extract — views into `doc`.
  std::vector<std::string_view> values;

  /// Recycles for the next request (keeps capacity).
  void Clear();

 private:
  friend class CompiledWrapper;

  // XPath step-machine scratch: current/next context sets and an
  // epoch-marked dedup table.
  std::vector<int32_t> current_;
  std::vector<int32_t> next_;
  std::vector<uint32_t> marks_;
  uint32_t epoch_ = 0;
};

/// Reusable per-request buffer for the streaming (no-DOM) path: the
/// flattened stream page and the value slot. Much lighter than
/// FastPageBuffer — no arena, no node arrays, no XPath scratch.
class StreamPageBuffer {
 public:
  html::StreamPage page;
  /// Output slot for CompiledWrapper::ExtractStreaming — views into
  /// `page` (which may alias the request body; see StreamPage).
  std::vector<std::string_view> values;

  /// Recycles for the next request (keeps capacity).
  void Clear() {
    page.Clear();
    values.clear();
  }
};

/// A thread-safe free list of per-request buffers (FastPageBuffer for the
/// DOM fast path, StreamPageBuffer for the streaming path). Lease
/// RAII-returns the buffer (Clear()ed) on destruction.
template <class Buffer>
class BufferPool {
 public:
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), buffer_(other.buffer_) {
      other.pool_ = nullptr;
      other.buffer_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    ~Lease() {
      if (pool_ == nullptr) return;
      buffer_->Clear();
      std::lock_guard<std::mutex> lock(pool_->mu_);
      for (auto& slot : pool_->free_) {
        if (slot == nullptr) {
          slot.reset(buffer_);
          return;
        }
      }
      pool_->free_.emplace_back(buffer_);
    }

    Buffer* operator->() { return buffer_; }
    Buffer& operator*() { return *buffer_; }

   private:
    friend class BufferPool;
    Lease(BufferPool* pool, Buffer* buffer) : pool_(pool), buffer_(buffer) {}
    BufferPool* pool_;
    Buffer* buffer_;
  };

  Lease Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& slot : free_) {
      if (slot != nullptr) {
        return Lease(this, slot.release());
      }
    }
    return Lease(this, new Buffer());
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> free_;
};

using FastBufferPool = BufferPool<FastPageBuffer>;
using StreamBufferPool = BufferPool<StreamPageBuffer>;

/// A wrapper compiled into an executable plan:
///   - XPATH  → a step program over interned tag/attr ids (no string
///              compares on the hot path); needs the arena DOM;
///   - LR     → occurrence-driven scan of the flattened stream using a BMH
///              searcher for the left delimiter;
///   - HLRT   → BMH head/tail region narrowing, then anchored LR checks.
///
/// LR and HLRT are defined purely over the flattened character stream —
/// they never touch the tree — so they are classified dom_free() and can
/// additionally execute via ExtractStreaming(), which builds the stream
/// with a StreamPage (no DOM at all) instead of flattening an arena DOM.
///
/// Extract() returns, for the single page in `buffer.doc`, exactly the
/// values the interpreted Wrapper::Extract + node->text() pipeline returns
/// for the same input, in the same order — the byte-identity contract the
/// serving layer relies on (tests/fastpath_equivalence_test.cc pins it).
/// ExtractStreaming() returns those same bytes again, because StreamPage
/// reproduces the arena flatten byte for byte. The returned string_views
/// point into the buffer (and, on the streaming path's zero-copy tier,
/// possibly into the raw input); consume them before releasing either.
class CompiledWrapper {
 public:
  /// Compiles `wrapper` (an XPathWrapper, LrWrapper or HlrtWrapper).
  /// Returns nullptr for wrapper kinds without a compiled form — callers
  /// fall back to the interpreted path.
  static std::shared_ptr<const CompiledWrapper> Compile(
      const Wrapper& wrapper);

  /// One XPath step in source form, for building a plan without going
  /// through the parsed Wrapper (the wrapper-pack finalize path). The
  /// fields mirror xpath::Step; Compile() and MakeXPath() produce
  /// identical plans for the same steps.
  struct XPathStepSpec {
    bool descendant = false;
    enum class Test { kTag, kAnyElement, kText };
    Test test = Test::kTag;
    std::string tag;            // Test::kTag only
    int32_t child_number = -1;  // -1 = no filter
    std::vector<std::pair<std::string, std::string>> attr_filters;
  };

  /// Direct constructors for the pack's fixed-layout plans — bitwise the
  /// same plans Compile() builds from the equivalent Wrapper.
  static std::shared_ptr<const CompiledWrapper> MakeLr(std::string left,
                                                       std::string right);
  static std::shared_ptr<const CompiledWrapper> MakeHlrt(std::string head,
                                                         std::string tail,
                                                         std::string left,
                                                         std::string right);
  static std::shared_ptr<const CompiledWrapper> MakeXPath(
      const std::vector<XPathStepSpec>& steps);

  void Extract(FastPageBuffer& buffer,
               std::vector<std::string_view>* values) const;

  /// Streaming no-DOM execution over the raw request bytes. Only valid
  /// for dom_free() plans (LR/HLRT); XPath plans yield no values.
  void ExtractStreaming(std::string_view raw_page, StreamPageBuffer& buffer,
                        std::vector<std::string_view>* values) const;

  /// Occurrence-driven variant of the streaming matchers for the fused
  /// multi-attribute path: instead of running its own BMH scans, the plan
  /// consumes precomputed ascending occurrence-begin lists (from one
  /// shared Aho–Corasick pass — see fused_matcher.h). Byte-identical to
  /// ExtractStreaming on the same stream/spans. `left_occ` is required
  /// for LR plans with a non-empty left; `head_occ`/`tail_occ` for HLRT
  /// plans with non-empty head/tail; unused lists may be null. XPath
  /// plans yield no values.
  void ExtractWithOccurrences(std::string_view stream,
                              const std::vector<html::StreamSpan>& spans,
                              const std::vector<size_t>* left_occ,
                              const std::vector<size_t>* head_occ,
                              const std::vector<size_t>* tail_occ,
                              std::vector<std::string_view>* values) const;

  /// Capability flag: true when the plan is defined over the flattened
  /// character stream alone and never needs a DOM (LR/HLRT).
  bool dom_free() const { return kind_ != Kind::kXPath; }

  /// "xpath", "lr" or "hlrt" — for routing metrics and bench phase labels.
  const char* plan_kind() const;

  bool is_lr() const { return kind_ == Kind::kLr; }
  bool is_hlrt() const { return kind_ == Kind::kHlrt; }
  // Delimiters (empty when absent or not applicable to the plan kind).
  const std::string& left() const { return left_; }
  const std::string& right() const { return right_; }
  const std::string& head() const { return head_; }
  const std::string& tail() const { return tail_; }

 private:
  enum class Kind { kXPath, kLr, kHlrt };

  struct StepOp {
    bool descendant = false;  // child vs descendant axis
    // Node test: kText (tag_id == -2), any element (tag_id == -1), or a
    // specific interned tag id.
    int32_t tag_id = -1;
    bool is_text = false;
    bool any_element = false;
    int32_t child_number = -1;  // -1 = no filter (0 is a legal, unmatchable
                                // value: child numbers are 1-based)
    std::vector<std::pair<int32_t, std::string>> attr_filters;
  };

  void ExtractXPath(FastPageBuffer& buffer,
                    std::vector<std::string_view>* values) const;
  // The LR/HLRT matchers, shared by the DOM path (ArenaDocument spans)
  // and the streaming path (StreamPage spans): any span type with
  // .begin/.end works, so both paths run the identical matching logic.
  template <typename Span>
  void MatchLr(std::string_view stream, const std::vector<Span>& spans,
               std::vector<std::string_view>* values) const;
  template <typename Span>
  void MatchHlrt(std::string_view stream, const std::vector<Span>& spans,
                 std::vector<std::string_view>* values) const;
  bool SpanMatchesLr(std::string_view stream, size_t begin,
                     size_t end) const;

  Kind kind_ = Kind::kXPath;
  std::vector<StepOp> steps_;        // XPATH
  std::string left_, right_;         // LR / HLRT
  StringSearcher left_searcher_;     // LR / HLRT (non-empty left only)
  StringSearcher head_searcher_;     // HLRT
  StringSearcher tail_searcher_;     // HLRT
  std::string head_, tail_;          // HLRT
};

}  // namespace ntw::core

#endif  // NTW_CORE_COMPILED_WRAPPER_H_
