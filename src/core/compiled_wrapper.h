#ifndef NTW_CORE_COMPILED_WRAPPER_H_
#define NTW_CORE_COMPILED_WRAPPER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/wrapper.h"
#include "html/arena_dom.h"

namespace ntw::core {

/// Precomputed Boyer–Moore–Horspool substring search. Find() returns the
/// same positions as std::string::find (including the empty-needle edge
/// cases), just faster on long haystacks: the skip table lets the scan
/// advance needle-length bytes on a mismatching last character.
class StringSearcher {
 public:
  StringSearcher() = default;
  explicit StringSearcher(std::string needle);

  /// First occurrence at or after `from`; std::string_view::npos if none.
  size_t Find(std::string_view haystack, size_t from = 0) const;

  const std::string& needle() const { return needle_; }
  bool empty() const { return needle_.empty(); }

 private:
  std::string needle_;
  // Shift for each possible last-window byte.
  size_t skip_[256] = {};
};

/// Reusable per-request buffers for the fast path: the arena document plus
/// the evaluator scratch. Acquire one from a FastBufferPool, parse into
/// `doc`, run CompiledWrapper::Extract, copy the values out, release.
/// Everything keeps its capacity across uses; steady state allocates
/// nothing.
class FastPageBuffer {
 public:
  html::ArenaDocument doc;
  /// Output slot for CompiledWrapper::Extract — views into `doc`.
  std::vector<std::string_view> values;

  /// Recycles for the next request (keeps capacity).
  void Clear();

 private:
  friend class CompiledWrapper;

  // XPath step-machine scratch: current/next context sets and an
  // epoch-marked dedup table.
  std::vector<int32_t> current_;
  std::vector<int32_t> next_;
  std::vector<uint32_t> marks_;
  uint32_t epoch_ = 0;
};

/// A thread-safe free list of FastPageBuffers. Lease RAII-returns the
/// buffer (Clear()ed) on destruction.
class FastBufferPool {
 public:
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), buffer_(other.buffer_) {
      other.pool_ = nullptr;
      other.buffer_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    ~Lease();

    FastPageBuffer* operator->() { return buffer_; }
    FastPageBuffer& operator*() { return *buffer_; }

   private:
    friend class FastBufferPool;
    Lease(FastBufferPool* pool, FastPageBuffer* buffer)
        : pool_(pool), buffer_(buffer) {}
    FastBufferPool* pool_;
    FastPageBuffer* buffer_;
  };

  Lease Acquire();

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<FastPageBuffer>> free_;
};

/// A wrapper compiled into an executable plan over the arena DOM:
///   - XPATH  → a step program over interned tag/attr ids (no string
///              compares on the hot path);
///   - LR     → occurrence-driven scan of the flattened stream using a BMH
///              searcher for the left delimiter;
///   - HLRT   → BMH head/tail region narrowing, then anchored LR checks.
///
/// Extract() returns, for the single page in `buffer.doc`, exactly the
/// values the interpreted Wrapper::Extract + node->text() pipeline returns
/// for the same input, in the same order — the byte-identity contract the
/// serving layer relies on (tests/fastpath_equivalence_test.cc pins it).
/// The returned string_views point into the buffer; consume them before
/// releasing it.
class CompiledWrapper {
 public:
  /// Compiles `wrapper` (an XPathWrapper, LrWrapper or HlrtWrapper).
  /// Returns nullptr for wrapper kinds without a compiled form — callers
  /// fall back to the interpreted path.
  static std::shared_ptr<const CompiledWrapper> Compile(
      const Wrapper& wrapper);

  void Extract(FastPageBuffer& buffer,
               std::vector<std::string_view>* values) const;

 private:
  enum class Kind { kXPath, kLr, kHlrt };

  struct StepOp {
    bool descendant = false;  // child vs descendant axis
    // Node test: kText (tag_id == -2), any element (tag_id == -1), or a
    // specific interned tag id.
    int32_t tag_id = -1;
    bool is_text = false;
    bool any_element = false;
    int32_t child_number = -1;  // -1 = no filter (0 is a legal, unmatchable
                                // value: child numbers are 1-based)
    std::vector<std::pair<int32_t, std::string>> attr_filters;
  };

  void ExtractXPath(FastPageBuffer& buffer,
                    std::vector<std::string_view>* values) const;
  void ExtractLr(FastPageBuffer& buffer,
                 std::vector<std::string_view>* values) const;
  void ExtractHlrt(FastPageBuffer& buffer,
                   std::vector<std::string_view>* values) const;
  bool SpanMatchesLr(const std::string& stream, size_t begin,
                     size_t end) const;

  Kind kind_ = Kind::kXPath;
  std::vector<StepOp> steps_;        // XPATH
  std::string left_, right_;         // LR / HLRT
  StringSearcher left_searcher_;     // LR / HLRT (non-empty left only)
  StringSearcher head_searcher_;     // HLRT
  StringSearcher tail_searcher_;     // HLRT
  std::string head_, tail_;          // HLRT
};

}  // namespace ntw::core

#endif  // NTW_CORE_COMPILED_WRAPPER_H_
