#include "core/label.h"

#include <atomic>

namespace ntw::core {

void NodeSet::Insert(const NodeRef& ref) {
  auto it = std::lower_bound(refs_.begin(), refs_.end(), ref);
  if (it != refs_.end() && *it == ref) return;
  refs_.insert(it, ref);
}

bool NodeSet::IsSubsetOf(const NodeSet& other) const {
  return std::includes(other.refs_.begin(), other.refs_.end(),
                       refs_.begin(), refs_.end());
}

NodeSet NodeSet::Union(const NodeSet& other) const {
  std::vector<NodeRef> out;
  out.reserve(refs_.size() + other.refs_.size());
  std::set_union(refs_.begin(), refs_.end(), other.refs_.begin(),
                 other.refs_.end(), std::back_inserter(out));
  NodeSet result;
  result.refs_ = std::move(out);  // Already sorted and unique.
  return result;
}

NodeSet NodeSet::Intersect(const NodeSet& other) const {
  std::vector<NodeRef> out;
  std::set_intersection(refs_.begin(), refs_.end(), other.refs_.begin(),
                        other.refs_.end(), std::back_inserter(out));
  NodeSet result;
  result.refs_ = std::move(out);
  return result;
}

NodeSet NodeSet::Difference(const NodeSet& other) const {
  std::vector<NodeRef> out;
  std::set_difference(refs_.begin(), refs_.end(), other.refs_.begin(),
                      other.refs_.end(), std::back_inserter(out));
  NodeSet result;
  result.refs_ = std::move(out);
  return result;
}

size_t NodeSet::IntersectSize(const NodeSet& other) const {
  size_t count = 0;
  auto a = refs_.begin();
  auto b = other.refs_.begin();
  while (a != refs_.end() && b != other.refs_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

uint64_t NodeSet::Fingerprint() const {
  // FNV-1a over the (page, node) stream.
  uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (v >> shift) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  };
  for (const NodeRef& ref : refs_) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(ref.page)));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(ref.node)));
  }
  return hash;
}

std::string NodeSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < refs_.size(); ++i) {
    if (i > 0) out += ",";
    out += "(" + std::to_string(refs_[i].page) + "," +
           std::to_string(refs_[i].node) + ")";
  }
  out += "}";
  return out;
}

const html::Node* PageSet::Resolve(const NodeRef& ref) const {
  if (ref.page < 0 || static_cast<size_t>(ref.page) >= pages_.size()) {
    return nullptr;
  }
  const html::Document& doc = pages_[static_cast<size_t>(ref.page)];
  if (ref.node < 0 || static_cast<size_t>(ref.node) >= doc.node_count()) {
    return nullptr;
  }
  return doc.node(ref.node);
}

NodeSet PageSet::AllTextNodes() const {
  std::vector<NodeRef> refs;
  for (size_t p = 0; p < pages_.size(); ++p) {
    for (const html::Node* node : pages_[p].text_nodes()) {
      refs.push_back(
          NodeRef{static_cast<int>(p), node->preorder_index()});
    }
  }
  return NodeSet(std::move(refs));
}

size_t PageSet::TextNodeCount() const {
  size_t count = 0;
  for (const auto& page : pages_) count += page.text_nodes().size();
  return count;
}

uint64_t PageSet::NextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ntw::core
