#ifndef NTW_CORE_TABLE_INDUCTOR_H_
#define NTW_CORE_TABLE_INDUCTOR_H_

#include <optional>
#include <string>
#include <vector>

#include "core/wrapper.h"

namespace ntw::core {

/// The TABLE wrapper inductor of Example 1 — the paper's pedagogical
/// running example, implemented in its feature-based form (Example 3):
/// every text node inside a table cell carries two attributes,
///   row — identifies the <tr> the cell belongs to (page-qualified), and
///   col — the <td>/<th> child number within the row.
/// φ(L) intersects the labels' features: a singleton stays itself, labels
/// in one row generalize to the row, one column to the column, and labels
/// spanning ≥2 rows and columns to the entire table (all cell text nodes).
///
/// Besides reproducing the example, TABLE is the reference inductor for
/// the enumeration tests: its wrapper space on an n×m fully-labeled table
/// is exactly nm + n + m + 1.
class TableInductor : public FeatureBasedInductor {
 public:
  Induction Induce(const PageSet& pages, const NodeSet& labels) const override;
  std::string Name() const override { return "TABLE"; }

  std::vector<AttrHandle> Attributes(const PageSet& pages,
                                     const NodeSet& labels) const override;
  std::vector<NodeSet> Subdivide(const PageSet& pages, const NodeSet& s,
                                 AttrHandle attr) const override;

  /// Cell coordinates of a node: row is the page-qualified pre-order index
  /// of the enclosing <tr>, col the cell's child number. nullopt when the
  /// node is not inside a table cell.
  struct Cell {
    int64_t row;
    int col;
  };
  static std::optional<Cell> CellOf(const PageSet& pages, const NodeRef& ref);

  /// All candidate nodes: text nodes inside table cells.
  static NodeSet CellTextNodes(const PageSet& pages);
};

}  // namespace ntw::core

#endif  // NTW_CORE_TABLE_INDUCTOR_H_
