#ifndef NTW_CORE_HLRT_INDUCTOR_H_
#define NTW_CORE_HLRT_INDUCTOR_H_

#include <string>

#include "core/wrapper.h"

namespace ntw::core {

/// The HLRT extension of the WIEN family (Sec. 5: "various extensions of
/// this basic language, e.g., HLRT wrappers, which, in addition, have
/// strings H and T that limit the context under which LR can be applied").
///
/// A rule is a quadruple (h, t, l, r): on each page, extraction starts
/// after the first occurrence of the head delimiter h, stops at the first
/// occurrence of the tail delimiter t after that, and within the region
/// extracts the text nodes whose left/right contexts match l and r — so a
/// "Popular Brands" sidebar above the listing or a footer below it cannot
/// pollute the extraction even when l/r are weak.
///
/// Learning: l and r as in LR; h is the longest common suffix of the page
/// prefixes ending just before the first label's l-context, and t the
/// longest common prefix of the page suffixes starting after the last
/// label's r-context (computed over pages that carry labels).
///
/// Unlike LR, HLRT is not feature-based (the head/tail constraints couple
/// all labels on a page), so only the blackbox BottomUp enumeration
/// applies; requesting TopDown yields FailedPrecondition. HLRT is
/// well-behaved on script-generated page sets — the h/t delimiters are
/// template chunks that bracket the listing region — which the test suite
/// verifies empirically over the generated corpora.
class HlrtInductor : public WrapperInductor {
 public:
  explicit HlrtInductor(size_t max_context = 256, size_t max_head_tail = 128)
      : max_context_(max_context), max_head_tail_(max_head_tail) {}

  Induction Induce(const PageSet& pages, const NodeSet& labels) const override;
  std::string Name() const override { return "HLRT"; }

 private:
  size_t max_context_;
  size_t max_head_tail_;
};

/// The learned (h, t, l, r) rule.
class HlrtWrapper : public Wrapper {
 public:
  HlrtWrapper(std::string head, std::string tail, std::string left,
              std::string right)
      : head_(std::move(head)),
        tail_(std::move(tail)),
        left_(std::move(left)),
        right_(std::move(right)) {}

  NodeSet Extract(const PageSet& pages) const override;
  std::string ToString() const override;

  const std::string& head() const { return head_; }
  const std::string& tail() const { return tail_; }
  const std::string& left() const { return left_; }
  const std::string& right() const { return right_; }

 private:
  std::string head_;
  std::string tail_;
  std::string left_;
  std::string right_;
};

}  // namespace ntw::core

#endif  // NTW_CORE_HLRT_INDUCTOR_H_
