#ifndef NTW_CORE_INDUCTION_CACHE_H_
#define NTW_CORE_INDUCTION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/wrapper.h"

namespace ntw::core {

/// Invokes `inductor.Induce` wrapped in the observability instruments: an
/// "induce" trace span, the `ntw.induce.calls` counter and the
/// `ntw.induce.ns` latency histogram. Every real inductor invocation the
/// enumeration engines make routes through here, so the Figure-2 call
/// accounting is also visible in the metrics registry. Pure pass-through
/// otherwise — the returned Induction is exactly `inductor.Induce(...)`.
Induction InstrumentedInduce(const WrapperInductor& inductor,
                             const PageSet& pages, const NodeSet& labels);

/// Memoizes Induce() results within one enumeration run, keyed by the
/// label subset's Fingerprint() (verified against the actual NodeSet, so a
/// fingerprint collision can never serve the wrong result).
///
/// Thread-safe with single-flight semantics: when several workers ask for
/// the same subset concurrently, exactly one invokes the inductor and the
/// others block on its result. That makes the hit/miss totals — and the
/// number of real inductor invocations — deterministic at every thread
/// count: misses == number of distinct subsets requested, hits == total
/// requests − misses.
///
/// Why memoization preserves the enumeration semantics: φ is a pure
/// function of (pages, labels) — Definition 1 wrappers are deterministic
/// rules — so replaying a cached Induction is observationally identical to
/// re-running φ. Fidelity, closure and monotonicity are properties of
/// φ's outputs and therefore survive unchanged.
class InductionCache {
 public:
  InductionCache() = default;
  InductionCache(const InductionCache&) = delete;
  InductionCache& operator=(const InductionCache&) = delete;

  /// Returns φ(labels), invoking `inductor` at most once per distinct
  /// label set over the cache's lifetime. The cache must only ever see one
  /// (inductor, pages) pair — it is scoped to a single enumeration run.
  Induction GetOrInduce(const WrapperInductor& inductor, const PageSet& pages,
                        const NodeSet& labels);

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Number of distinct subsets stored.
  size_t size() const;

 private:
  struct Entry {
    NodeSet labels;
    std::shared_future<Induction> result;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<Entry>> entries_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace ntw::core

#endif  // NTW_CORE_INDUCTION_CACHE_H_
