#include "core/table_inductor.h"

#include <map>

namespace ntw::core {
namespace {

constexpr AttrHandle kAttrRow = 0;
constexpr AttrHandle kAttrCol = 1;

/// Wrapper over the grid: optional row constraint, optional column
/// constraint; both empty means the entire table.
class TableWrapper : public Wrapper {
 public:
  TableWrapper(std::optional<int64_t> row, std::optional<int> col)
      : row_(row), col_(col) {}

  NodeSet Extract(const PageSet& pages) const override {
    std::vector<NodeRef> out;
    for (const NodeRef& ref : TableInductor::CellTextNodes(pages)) {
      auto cell = TableInductor::CellOf(pages, ref);
      if (!cell.has_value()) continue;
      if (row_.has_value() && cell->row != *row_) continue;
      if (col_.has_value() && cell->col != *col_) continue;
      out.push_back(ref);
    }
    return NodeSet(std::move(out));
  }

  std::string ToString() const override {
    std::string out = "TABLE[";
    out += row_.has_value() ? "row=" + std::to_string(*row_) : "row=*";
    out += ",";
    out += col_.has_value() ? "col=" + std::to_string(*col_) : "col=*";
    out += "]";
    return out;
  }

 private:
  std::optional<int64_t> row_;
  std::optional<int> col_;
};

/// The φ(∅) wrapper: extracts nothing.
class EmptyTableWrapper : public Wrapper {
 public:
  NodeSet Extract(const PageSet&) const override { return NodeSet(); }
  std::string ToString() const override { return "TABLE[empty]"; }
};

}  // namespace

std::optional<TableInductor::Cell> TableInductor::CellOf(const PageSet& pages,
                                                         const NodeRef& ref) {
  const html::Node* node = pages.Resolve(ref);
  if (node == nullptr || !node->is_text()) return std::nullopt;
  const html::Node* cell = nullptr;
  const html::Node* row = nullptr;
  for (const html::Node* cur = node->parent(); cur != nullptr;
       cur = cur->parent()) {
    if (!cur->is_element()) break;
    if (cell == nullptr && (cur->tag() == "td" || cur->tag() == "th")) {
      cell = cur;
    } else if (cell != nullptr && cur->tag() == "tr") {
      row = cur;
      break;
    }
  }
  if (cell == nullptr || row == nullptr) return std::nullopt;
  int64_t row_id = (static_cast<int64_t>(ref.page) << 32) |
                   static_cast<uint32_t>(row->preorder_index());
  return Cell{row_id, cell->same_tag_child_number()};
}

NodeSet TableInductor::CellTextNodes(const PageSet& pages) {
  std::vector<NodeRef> refs;
  for (size_t p = 0; p < pages.size(); ++p) {
    for (const html::Node* node : pages.page(p).text_nodes()) {
      NodeRef ref{static_cast<int>(p), node->preorder_index()};
      if (CellOf(pages, ref).has_value()) refs.push_back(ref);
    }
  }
  return NodeSet(std::move(refs));
}

Induction TableInductor::Induce(const PageSet& pages,
                                const NodeSet& labels) const {
  if (labels.empty()) {
    Induction result;
    result.wrapper = std::make_shared<EmptyTableWrapper>();
    return result;
  }

  bool first = true;
  std::optional<int64_t> common_row;
  std::optional<int> common_col;
  for (const NodeRef& ref : labels) {
    auto cell = CellOf(pages, ref);
    // Labels outside any table have no features; they force the empty
    // intersection (whole-table generalization).
    if (!cell.has_value()) {
      common_row.reset();
      common_col.reset();
      first = false;
      continue;
    }
    if (first) {
      common_row = cell->row;
      common_col = cell->col;
      first = false;
    } else {
      if (common_row.has_value() && *common_row != cell->row) {
        common_row.reset();
      }
      if (common_col.has_value() && *common_col != cell->col) {
        common_col.reset();
      }
    }
  }

  Induction result;
  result.wrapper = std::make_shared<TableWrapper>(common_row, common_col);
  result.extraction = result.wrapper->Extract(pages);
  // Labels outside tables are not re-extractable by the grid wrapper;
  // keep fidelity by unioning them in explicitly.
  result.extraction = result.extraction.Union(labels);
  return result;
}

std::vector<AttrHandle> TableInductor::Attributes(const PageSet&,
                                                  const NodeSet& labels) const {
  if (labels.empty()) return {};
  return {kAttrRow, kAttrCol};
}

std::vector<NodeSet> TableInductor::Subdivide(const PageSet& pages,
                                              const NodeSet& s,
                                              AttrHandle attr) const {
  std::map<int64_t, std::vector<NodeRef>> groups;
  for (const NodeRef& ref : s) {
    auto cell = CellOf(pages, ref);
    if (!cell.has_value()) continue;  // Lacks the attribute entirely.
    int64_t key = attr == kAttrRow ? cell->row : cell->col;
    groups[key].push_back(ref);
  }
  std::vector<NodeSet> out;
  out.reserve(groups.size());
  for (auto& [key, refs] : groups) {
    out.push_back(NodeSet(std::move(refs)));
  }
  return out;
}

}  // namespace ntw::core
