#ifndef NTW_CORE_RANKER_H_
#define NTW_CORE_RANKER_H_

#include <string>
#include <vector>

#include "core/annotation_model.h"
#include "core/enumerate.h"
#include "core/publication_model.h"

namespace ntw::core {

/// Which components of the score participate in ranking (the ablation of
/// Sec. 7.3).
enum class RankerVariant {
  kFull,            // NTW:   P(L|X) · P(X)
  kAnnotationOnly,  // NTW-L: P(L|X) only
  kListOnly,        // NTW-X: P(X) only
};

const char* RankerVariantName(RankerVariant variant);

/// A candidate with its score decomposition.
struct ScoredCandidate {
  size_t candidate_index = 0;
  double log_annotation = 0.0;  // log P(L|X) (up to a constant).
  double log_list = 0.0;        // log P(X).
  double total = 0.0;           // Per the variant.
};

/// Ranks an enumerated wrapper space by Equation (1).
class Ranker {
 public:
  Ranker(AnnotationModel annotation, PublicationModel publication,
         RankerVariant variant = RankerVariant::kFull)
      : annotation_(std::move(annotation)),
        publication_(std::move(publication)),
        variant_(variant) {}

  /// Scores every candidate, returned best-first. Ties break toward the
  /// larger extraction (the more general wrapper), then lower index, so
  /// ranking is deterministic.
  std::vector<ScoredCandidate> Rank(const WrapperSpace& space,
                                    const PageSet& pages,
                                    const NodeSet& labels) const;

  /// Index of the best candidate; fails on an empty space.
  Result<size_t> Best(const WrapperSpace& space, const PageSet& pages,
                      const NodeSet& labels) const;

  const AnnotationModel& annotation_model() const { return annotation_; }
  const PublicationModel& publication_model() const { return publication_; }
  RankerVariant variant() const { return variant_; }

 private:
  AnnotationModel annotation_;
  PublicationModel publication_;
  RankerVariant variant_;
};

}  // namespace ntw::core

#endif  // NTW_CORE_RANKER_H_
