#ifndef NTW_CORE_XPATH_INDUCTOR_H_
#define NTW_CORE_XPATH_INDUCTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/wrapper.h"
#include "xpath/ast.h"
#include "xpath/evaluator.h"

namespace ntw::core {

/// The XPATH wrapper inductor (Dalvi et al. [6], as summarised in Sec. 5):
/// learns a rule in the fragment {child edges, descendant edges, attribute
/// filters, child-number filters} by intersecting the root-path features of
/// the labeled text nodes.
///
/// Features of a text node n (Sec. 5's representation): at position 0 the
/// node's own child number; at position i >= 1 the ancestor at distance i
/// contributes (i:tagname, t), (i:tagchildnumber, t#k) — the child-number
/// feature is tag-qualified so that `t[k]` steps have consistent
/// semantics — and (i:attr:a, v) for each attribute a="v".
///
/// φ(L) takes the intersection of the labels' features and emits the xpath
///   //step_m/.../step_1/text()[c?]
/// where m is the minimum label depth and step_i realises the common
/// position-i features (`*` when none). Extraction is evaluation of that
/// xpath over the pages, which coincides with the feature-based semantics
/// {n | F(n) ⊇ ∩ F(ℓ)}.
class XPathInductor : public FeatureBasedInductor {
 public:
  Induction Induce(const PageSet& pages, const NodeSet& labels) const override;
  std::string Name() const override { return "XPATH"; }

  std::vector<AttrHandle> Attributes(const PageSet& pages,
                                     const NodeSet& labels) const override;
  std::vector<NodeSet> Subdivide(const PageSet& pages, const NodeSet& s,
                                 AttrHandle attr) const override;

  /// Learns just the xpath expression (no extraction); exposed for
  /// examples and tests. Requires non-empty labels resolving to text nodes.
  xpath::Expr LearnExpr(const PageSet& pages, const NodeSet& labels) const;
};

/// A learned xpath rule.
class XPathWrapper : public Wrapper {
 public:
  explicit XPathWrapper(xpath::Expr expr) : expr_(std::move(expr)) {}

  NodeSet Extract(const PageSet& pages) const override;
  std::string ToString() const override { return expr_.ToString(); }

  const xpath::Expr& expr() const { return expr_; }

 private:
  xpath::Expr expr_;
};

}  // namespace ntw::core

#endif  // NTW_CORE_XPATH_INDUCTOR_H_
