#ifndef NTW_CORE_WRAPPER_PACK_H_
#define NTW_CORE_WRAPPER_PACK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/compiled_wrapper.h"

namespace ntw::core {

/// The wrapper pack (DESIGN.md §15): a single file holding an entire
/// wrapper repository — interned string table, fixed-layout compiled
/// plans (offset-based, no pointers), a sorted per-site directory, and
/// one fused Aho–Corasick delimiter automaton per site — laid out so the
/// serving daemon opens it with one mmap and pages cold sites in on
/// demand. Produced by `ntw_pack build` from a `<site>/<attr>.wrapper`
/// directory; consumed by WrapperRepository's pack backend.
///
/// File layout (little/native-endian, guarded by an endian stamp):
///
///   PackHeader                      (checksummed; validated at Open)
///   site directory  [site_count]    sorted by name
///   entry directory [entry_count]   sorted by (site, attribute)
///   plans section                   fixed-layout plan blobs
///   automata section                per-site fused-automaton blobs
///   string table                    deduplicated bytes
///
/// Open() validates only the header (magic, version, endian, size,
/// header checksum) — O(mmap), no body pages touched, which is what
/// makes cold RSS sublinear in site count. Every accessor bounds-checks
/// the refs it follows, so a pack whose body is corrupt can return wrong
/// or missing entries but can never read outside the mapping. `ntw_pack
/// verify` (Verify()) does the full job: body checksum + structural walk
/// + plan/automaton cross-checks.

/// Offset+length into the pack's string table.
struct PackStrRef {
  uint32_t off = 0;
  uint32_t len = 0;
};

/// Plan kinds stored in entry records.
enum PackPlanKind : uint32_t {
  kPackPlanXPath = 0,
  kPackPlanLr = 1,
  kPackPlanHlrt = 2,
  kPackPlanNone = 3,  // Record present, no compiled form (interpreter only).
};

struct PackHeader {
  char magic[8];            // "NTWPACK1"
  uint32_t version;         // kPackVersion
  uint32_t endian;          // kPackEndian as written by the producer
  uint64_t file_size;       // Total bytes; must equal the mapped size.
  uint64_t header_checksum; // FNV-1a over the header with this field = 0.
  uint64_t body_checksum;   // FNV-1a over every byte after the header.
  uint64_t site_count;
  uint64_t entry_count;
  uint64_t sites_off;
  uint64_t entries_off;
  uint64_t plans_off;
  uint64_t plans_len;
  uint64_t automata_off;
  uint64_t automata_len;
  uint64_t strtab_off;
  uint64_t strtab_len;
};
static_assert(sizeof(PackHeader) == 120, "fixed on-disk layout");

struct PackSiteRec {
  PackStrRef name;
  uint32_t entry_begin;    // Index into the entry directory.
  uint32_t entry_count;
  uint64_t automaton_off;  // Absolute file offset; 0/0 = no automaton.
  uint64_t automaton_len;
};
static_assert(sizeof(PackSiteRec) == 32, "fixed on-disk layout");

struct PackEntryRec {
  PackStrRef attribute;
  PackStrRef record;       // Serialized wrapper (wrapper_store format).
  uint32_t plan_kind;      // PackPlanKind
  uint32_t left_pattern;   // Pattern ids into the site's automaton,
  uint32_t head_pattern;   // kNoPattern (0xFFFFFFFF) when unbound.
  uint32_t tail_pattern;
  uint64_t plan_off;       // Absolute file offset of the plan blob.
  uint64_t plan_len;
};
static_assert(sizeof(PackEntryRec) == 48, "fixed on-disk layout");

inline constexpr char kPackMagic[8] = {'N', 'T', 'W', 'P', 'A', 'C', 'K', '1'};
inline constexpr uint32_t kPackVersion = 1;
inline constexpr uint32_t kPackEndian = 0x01020304;

/// Accumulates (site, attribute, record) triples and serializes the pack.
/// Records are validated (deserialized + plan-compiled) at Add time.
class WrapperPackBuilder {
 public:
  Status Add(const std::string& site, const std::string& attribute,
             const std::string& record);

  /// Serializes everything added so far. Deterministic for a given input
  /// set (iteration order does not matter; directories are sorted).
  std::string Build() const;

  /// Build() + atomic write (temp file + rename).
  Status WriteFile(const std::string& path) const;

  size_t site_count() const { return sites_.size(); }
  size_t entry_count() const { return entry_count_; }

 private:
  // site → attribute → serialized record.
  std::map<std::string, std::map<std::string, std::string>> sites_;
  size_t entry_count_ = 0;
};

/// A read-only mapped pack. Thread-safe: all state is immutable after
/// Open. Keep the shared_ptr alive for as long as any view, record
/// string_view, or plan built from it is in use (plans copy their
/// delimiters, but record/attribute/automaton views alias the mapping).
class WrapperPack {
 public:
  /// mmaps `path` and validates the header. Fails (never crashes) on
  /// short files, bad magic/version/endian, size mismatch, or header
  /// checksum mismatch.
  static Result<std::shared_ptr<const WrapperPack>> Open(
      const std::string& path);

  ~WrapperPack();
  WrapperPack(const WrapperPack&) = delete;
  WrapperPack& operator=(const WrapperPack&) = delete;

  class SiteView;

  /// One (site, attribute) entry. Accessors return empty views / nullptr
  /// when the underlying refs are out of bounds (corrupt body).
  class EntryView {
   public:
    std::string_view attribute() const;
    std::string_view record() const;
    uint32_t plan_kind() const { return rec_.plan_kind; }
    uint32_t left_pattern() const { return rec_.left_pattern; }
    uint32_t head_pattern() const { return rec_.head_pattern; }
    uint32_t tail_pattern() const { return rec_.tail_pattern; }

    /// Reconstructs the compiled plan from the fixed-layout blob —
    /// bitwise the plan CompiledWrapper::Compile builds from the same
    /// record. nullptr for kPackPlanNone or a malformed blob.
    std::shared_ptr<const CompiledWrapper> CompilePlan() const;

   private:
    friend class WrapperPack;
    EntryView(const WrapperPack* pack, PackEntryRec rec)
        : pack_(pack), rec_(rec) {}
    const WrapperPack* pack_;
    PackEntryRec rec_;
  };

  class SiteView {
   public:
    std::string_view name() const;
    size_t entry_count() const { return rec_.entry_count; }
    std::optional<EntryView> entry(size_t i) const;
    /// The site's fused-automaton blob (empty when none was stored).
    std::string_view automaton() const;

   private:
    friend class WrapperPack;
    SiteView(const WrapperPack* pack, PackSiteRec rec)
        : pack_(pack), rec_(rec) {}
    const WrapperPack* pack_;
    PackSiteRec rec_;
  };

  size_t site_count() const { return static_cast<size_t>(header_.site_count); }
  std::optional<SiteView> site(size_t index) const;
  /// Binary search over the sorted site directory.
  std::optional<SiteView> FindSite(std::string_view name) const;
  std::optional<EntryView> FindEntry(std::string_view site,
                                     std::string_view attribute) const;

  /// Full validation: body checksum, directory sortedness and bounds,
  /// every record deserializable, every plan blob decodable and
  /// consistent with its record, every automaton valid with pattern
  /// bindings matching the plans. Touches every page (ntw_pack verify —
  /// never on the serving open path).
  Status Verify() const;

  const std::string& path() const { return path_; }
  uint64_t file_size() const { return header_.file_size; }
  const PackHeader& header() const { return header_; }

 private:
  WrapperPack() = default;

  std::string_view Str(PackStrRef ref) const;
  std::string_view Bytes(uint64_t off, uint64_t len) const;
  bool ReadSite(uint64_t index, PackSiteRec* rec) const;
  bool ReadEntry(uint64_t index, PackEntryRec* rec) const;

  std::string path_;
  const char* map_ = nullptr;  // mmap base (read-only).
  size_t map_size_ = 0;
  PackHeader header_{};
};

}  // namespace ntw::core

#endif  // NTW_CORE_WRAPPER_PACK_H_
