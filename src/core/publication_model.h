#ifndef NTW_CORE_PUBLICATION_MODEL_H_
#define NTW_CORE_PUBLICATION_MODEL_H_

#include <vector>

#include "common/result.h"
#include "core/label.h"
#include "stats/kde.h"

namespace ntw::core {

/// Record segmentation and list features of the web publication model
/// (Sec. 6). Pages are viewed as pre-order token sequences with every text
/// node replaced by <#text>; the nodes of X act as record boundaries; the
/// segments between consecutive boundaries are the records.

/// One record segment: interned structural tokens (tag names and #text).
using Segment = std::vector<int>;

/// Extracts record segments for X over the pages. Token ids: 0 is #text;
/// tags are interned per call; text nodes belonging to `typed_sets[t]` get
/// the distinct token -(t+1) so multi-type alignment (Appendix A) can
/// require type positions to match. Segmentation boundaries come from
/// typed_sets[0]. Pages with fewer than two boundary nodes contribute no
/// segments.
std::vector<Segment> SegmentRecords(const PageSet& pages,
                                    const std::vector<const NodeSet*>& typed_sets);

/// Convenience overload for single-type extraction.
std::vector<Segment> SegmentRecords(const PageSet& pages, const NodeSet& x);

/// The two list features of Sec. 6.1.
struct ListFeatures {
  /// Median over segment pairs of the number of #text tokens in the
  /// longest common substring — approximates the per-record schema size.
  double schema_size = 0.0;
  /// Maximum pairwise edit distance between segments (capped).
  double alignment = 0.0;
  int segment_count = 0;
};

/// Computes both features from the segments. Pair sampling is
/// deterministic: all pairs for small lists, a fixed adjacent+strided
/// sample for large ones. Distances are capped at `alignment_cap`.
ListFeatures ComputeListFeatures(const std::vector<Segment>& segments,
                                 int alignment_cap = 128);

/// P(X): the product of per-feature densities learned from sample
/// websites' ground-truth lists via kernel density estimation (Sec. 6.1).
class PublicationModel {
 public:
  /// Fits the feature distributions from training feature vectors.
  static Result<PublicationModel> Fit(const std::vector<ListFeatures>& sample);

  /// Fit with explicit KDE options (bandwidth ablations).
  static Result<PublicationModel> Fit(
      const std::vector<ListFeatures>& sample,
      const stats::KernelDensity::Options& kde_options);

  /// log P(X) for an extraction's features.
  double LogProb(const ListFeatures& features) const;

  /// Convenience: segment + featurize + score in one call (single type).
  double LogProb(const PageSet& pages, const NodeSet& x) const;

  const stats::KernelDensity& schema_kde() const { return schema_kde_; }
  const stats::KernelDensity& alignment_kde() const { return alignment_kde_; }

 private:
  PublicationModel(stats::KernelDensity schema_kde,
                   stats::KernelDensity alignment_kde)
      : schema_kde_(std::move(schema_kde)),
        alignment_kde_(std::move(alignment_kde)) {}

  stats::KernelDensity schema_kde_;
  stats::KernelDensity alignment_kde_;
};

}  // namespace ntw::core

#endif  // NTW_CORE_PUBLICATION_MODEL_H_
