#include "core/ranker.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ntw::core {

const char* RankerVariantName(RankerVariant variant) {
  switch (variant) {
    case RankerVariant::kFull:
      return "NTW";
    case RankerVariant::kAnnotationOnly:
      return "NTW-L";
    case RankerVariant::kListOnly:
      return "NTW-X";
  }
  return "Unknown";
}

std::vector<ScoredCandidate> Ranker::Rank(const WrapperSpace& space,
                                          const PageSet& pages,
                                          const NodeSet& labels) const {
  obs::Span span("rank");
  static obs::Counter* const runs =
      obs::Registry::Global().GetCounter("ntw.rank.runs");
  static obs::Counter* const candidates =
      obs::Registry::Global().GetCounter("ntw.rank.candidates");
  runs->Add(1);
  candidates->Add(static_cast<int64_t>(space.candidates.size()));
  // Candidate scores are independent; compute them in parallel into
  // per-index slots (deterministic: identical doubles at any thread
  // count), then sort serially.
  std::vector<ScoredCandidate> scored(space.candidates.size());
  ThreadPool::Global().ParallelFor(space.candidates.size(), [&](size_t i) {
    const Candidate& candidate = space.candidates[i];
    ScoredCandidate& sc = scored[i];
    sc.candidate_index = i;
    sc.log_annotation = annotation_.LogProb(labels, candidate.extraction);
    sc.log_list = publication_.LogProb(pages, candidate.extraction);
    switch (variant_) {
      case RankerVariant::kFull:
        sc.total = sc.log_annotation + sc.log_list;
        break;
      case RankerVariant::kAnnotationOnly:
        sc.total = sc.log_annotation;
        break;
      case RankerVariant::kListOnly:
        sc.total = sc.log_list;
        break;
    }
  });
  std::stable_sort(
      scored.begin(), scored.end(),
      [&space](const ScoredCandidate& a, const ScoredCandidate& b) {
        if (a.total != b.total) return a.total > b.total;
        size_t size_a = space.candidates[a.candidate_index].extraction.size();
        size_t size_b = space.candidates[b.candidate_index].extraction.size();
        if (size_a != size_b) return size_a > size_b;
        // Exact score ties between equal-sized lists (e.g. cyclically
        // shifted columns under NTW-X) carry no information; break them
        // by content fingerprint — deterministic but neutral, so a
        // variant cannot systematically luck into the right column via
        // enumeration order.
        uint64_t fp_a = space.candidates[a.candidate_index].extraction
                            .Fingerprint();
        uint64_t fp_b = space.candidates[b.candidate_index].extraction
                            .Fingerprint();
        if (fp_a != fp_b) return fp_a < fp_b;
        return a.candidate_index < b.candidate_index;
      });
  return scored;
}

Result<size_t> Ranker::Best(const WrapperSpace& space, const PageSet& pages,
                            const NodeSet& labels) const {
  if (space.candidates.empty()) {
    return Status::FailedPrecondition("empty wrapper space");
  }
  return Rank(space, pages, labels).front().candidate_index;
}

}  // namespace ntw::core
