#include "core/fused_matcher.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>

namespace ntw::core {

namespace {

// Serialized automaton layout (all fields u32, byte order as written by
// the producing machine — the pack header's endian stamp guards cross-
// endian reads; in-memory blobs never cross machines):
//
//   header     6 * u32   magic, pattern_count P, node_count N,
//                        edge_count E, output_count O, strtab_len S
//   root_table 256 * u32 goto target for each byte at the root (0 = none;
//                        the root is never a goto target, so 0 is free)
//   patterns   P * 2*u32 {off, len} into strtab
//   nodes      N * 5*u32 {fail, edge_begin, edge_count, out_begin,
//                        out_count}
//   edges      E * u32   byte << 24 | target  (sorted by byte per node)
//   outputs    O * u32   pattern id (fail-chain outputs flattened in at
//                        build time, so the scan never walks fail links
//                        just to report)
//   strtab     S bytes
//
// Everything is offset-based — the same bytes work as a std::string or
// mapped read-only out of a wrapper pack.

constexpr uint32_t kAcMagic = 0x31434146u;  // "FAC1"
constexpr size_t kHeaderWords = 6;
constexpr size_t kRootWords = 256;
constexpr size_t kPatternWords = 2;
constexpr size_t kNodeWords = 5;
// Edge words pack the target into 24 bits.
constexpr uint32_t kMaxNodes = 1u << 24;

inline uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

struct AcView {
  const char* base = nullptr;
  uint32_t pattern_count = 0;
  uint32_t node_count = 0;
  uint32_t edge_count = 0;
  uint32_t output_count = 0;
  uint32_t strtab_len = 0;
  const char* root_table = nullptr;
  const char* patterns = nullptr;
  const char* nodes = nullptr;
  const char* edges = nullptr;
  const char* outputs = nullptr;
  const char* strtab = nullptr;

  // Lays the sections out over `blob`; false if the sizes don't add up.
  bool Bind(std::string_view blob) {
    if (blob.size() < kHeaderWords * 4) return false;
    base = blob.data();
    if (LoadU32(base) != kAcMagic) return false;
    pattern_count = LoadU32(base + 4);
    node_count = LoadU32(base + 8);
    edge_count = LoadU32(base + 12);
    output_count = LoadU32(base + 16);
    strtab_len = LoadU32(base + 20);
    if (node_count == 0 || node_count > kMaxNodes) return false;
    // Overflow-safe total size check: each count is < 2^32 and each
    // multiplier <= 20, so accumulate in 64 bits.
    uint64_t need = kHeaderWords * 4ull;
    need += kRootWords * 4ull;
    need += static_cast<uint64_t>(pattern_count) * kPatternWords * 4;
    need += static_cast<uint64_t>(node_count) * kNodeWords * 4;
    need += static_cast<uint64_t>(edge_count) * 4;
    need += static_cast<uint64_t>(output_count) * 4;
    need += strtab_len;
    if (need != blob.size()) return false;
    root_table = base + kHeaderWords * 4;
    patterns = root_table + kRootWords * 4;
    nodes = patterns + static_cast<size_t>(pattern_count) * kPatternWords * 4;
    edges = nodes + static_cast<size_t>(node_count) * kNodeWords * 4;
    outputs = edges + static_cast<size_t>(edge_count) * 4;
    strtab = outputs + static_cast<size_t>(output_count) * 4;
    return true;
  }

  uint32_t node_field(uint32_t node, size_t field) const {
    return LoadU32(nodes + (static_cast<size_t>(node) * kNodeWords + field) * 4);
  }
  uint32_t edge(size_t index) const { return LoadU32(edges + index * 4); }
  uint32_t output(size_t index) const { return LoadU32(outputs + index * 4); }
  uint32_t root_goto(unsigned char byte) const {
    return LoadU32(root_table + static_cast<size_t>(byte) * 4);
  }
  std::string_view pattern(uint32_t id) const {
    uint32_t off = LoadU32(patterns + static_cast<size_t>(id) * 8);
    uint32_t len = LoadU32(patterns + static_cast<size_t>(id) * 8 + 4);
    return std::string_view(strtab + off, len);
  }

  // Goto transition for a non-root state: binary search the node's
  // byte-sorted edge list. Returns 0 when absent (0 is never a target).
  uint32_t Goto(uint32_t state, unsigned char byte) const {
    uint32_t lo = node_field(state, 1);
    uint32_t hi = lo + node_field(state, 2);
    uint32_t key = static_cast<uint32_t>(byte) << 24;
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      uint32_t e = edge(mid);
      if ((e & 0xFF000000u) < key) {
        lo = mid + 1;
      } else if ((e & 0xFF000000u) > key) {
        hi = mid;
      } else {
        return e & 0x00FFFFFFu;
      }
    }
    return 0;
  }
};

}  // namespace

uint32_t AcBuilder::AddPattern(std::string_view pattern) {
  if (pattern.empty()) return kNoPattern;
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (patterns_[i] == pattern) return static_cast<uint32_t>(i);
  }
  patterns_.emplace_back(pattern);
  return static_cast<uint32_t>(patterns_.size() - 1);
}

std::string AcBuilder::Build() const {
  if (patterns_.empty()) return std::string();

  // Goto trie. std::map children keep edges byte-sorted and the BFS
  // deterministic.
  struct TrieNode {
    std::map<unsigned char, uint32_t> children;
    uint32_t fail = 0;
    std::vector<uint32_t> outputs;  // Own matches + fail-chain matches.
  };
  std::vector<TrieNode> trie(1);
  for (size_t p = 0; p < patterns_.size(); ++p) {
    uint32_t state = 0;
    for (char ch : patterns_[p]) {
      auto byte = static_cast<unsigned char>(ch);
      auto it = trie[state].children.find(byte);
      if (it == trie[state].children.end()) {
        uint32_t next = static_cast<uint32_t>(trie.size());
        trie.emplace_back();
        trie[state].children.emplace(byte, next);
        state = next;
      } else {
        state = it->second;
      }
    }
    trie[state].outputs.push_back(static_cast<uint32_t>(p));
  }

  // Fail links by BFS; outputs flattened along the (already finalized)
  // fail chain so the scan loop reports without walking fail links.
  std::deque<uint32_t> queue;
  for (const auto& [byte, child] : trie[0].children) {
    (void)byte;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    uint32_t u = queue.front();
    queue.pop_front();
    for (const auto& [byte, child] : trie[u].children) {
      uint32_t f = trie[u].fail;
      while (f != 0) {
        auto it = trie[f].children.find(byte);
        if (it != trie[f].children.end()) {
          f = it->second;
          break;
        }
        f = trie[f].fail;
      }
      if (f == 0) {
        auto it = trie[0].children.find(byte);
        f = (it != trie[0].children.end() && it->second != child) ? it->second
                                                                  : 0;
      }
      trie[child].fail = f;
      const auto& inherited = trie[f].outputs;
      trie[child].outputs.insert(trie[child].outputs.end(), inherited.begin(),
                                 inherited.end());
      queue.push_back(child);
    }
  }

  // Serialize.
  uint32_t edge_total = 0;
  uint32_t output_total = 0;
  for (const TrieNode& node : trie) {
    edge_total += static_cast<uint32_t>(node.children.size());
    output_total += static_cast<uint32_t>(node.outputs.size());
  }
  uint32_t strtab_len = 0;
  for (const std::string& p : patterns_) {
    strtab_len += static_cast<uint32_t>(p.size());
  }

  std::string out;
  AppendU32(&out, kAcMagic);
  AppendU32(&out, static_cast<uint32_t>(patterns_.size()));
  AppendU32(&out, static_cast<uint32_t>(trie.size()));
  AppendU32(&out, edge_total);
  AppendU32(&out, output_total);
  AppendU32(&out, strtab_len);
  for (size_t byte = 0; byte < kRootWords; ++byte) {
    auto it = trie[0].children.find(static_cast<unsigned char>(byte));
    AppendU32(&out, it == trie[0].children.end() ? 0u : it->second);
  }
  uint32_t str_off = 0;
  for (const std::string& p : patterns_) {
    AppendU32(&out, str_off);
    AppendU32(&out, static_cast<uint32_t>(p.size()));
    str_off += static_cast<uint32_t>(p.size());
  }
  uint32_t edge_off = 0;
  uint32_t out_off = 0;
  for (const TrieNode& node : trie) {
    AppendU32(&out, node.fail);
    AppendU32(&out, edge_off);
    AppendU32(&out, static_cast<uint32_t>(node.children.size()));
    AppendU32(&out, out_off);
    AppendU32(&out, static_cast<uint32_t>(node.outputs.size()));
    edge_off += static_cast<uint32_t>(node.children.size());
    out_off += static_cast<uint32_t>(node.outputs.size());
  }
  for (const TrieNode& node : trie) {
    for (const auto& [byte, child] : node.children) {
      AppendU32(&out, (static_cast<uint32_t>(byte) << 24) | child);
    }
  }
  for (const TrieNode& node : trie) {
    for (uint32_t p : node.outputs) AppendU32(&out, p);
  }
  for (const std::string& p : patterns_) out.append(p);
  return out;
}

bool FusedAutomaton::Validate(std::string_view blob) {
  if (blob.empty()) return true;  // Zero patterns: a valid no-op automaton.
  AcView view;
  if (!view.Bind(blob)) return false;
  for (uint32_t id = 0; id < view.pattern_count; ++id) {
    uint64_t off = LoadU32(view.patterns + static_cast<size_t>(id) * 8);
    uint64_t len = LoadU32(view.patterns + static_cast<size_t>(id) * 8 + 4);
    if (len == 0 || off + len > view.strtab_len) return false;
  }
  for (size_t byte = 0; byte < kRootWords; ++byte) {
    if (view.root_goto(static_cast<unsigned char>(byte)) >= view.node_count) {
      return false;
    }
  }
  for (uint32_t n = 0; n < view.node_count; ++n) {
    if (view.node_field(n, 0) >= view.node_count) return false;  // fail
    uint64_t edge_begin = view.node_field(n, 1);
    uint64_t edge_num = view.node_field(n, 2);
    if (edge_begin + edge_num > view.edge_count) return false;
    uint64_t out_begin = view.node_field(n, 3);
    uint64_t out_num = view.node_field(n, 4);
    if (out_begin + out_num > view.output_count) return false;
  }
  for (uint32_t e = 0; e < view.edge_count; ++e) {
    if ((view.edge(e) & 0x00FFFFFFu) >= view.node_count) return false;
  }
  for (uint32_t o = 0; o < view.output_count; ++o) {
    if (view.output(o) >= view.pattern_count) return false;
  }
  return true;
}

uint32_t FusedAutomaton::pattern_count() const {
  if (blob_.empty()) return 0;
  return LoadU32(blob_.data() + 4);
}

std::string_view FusedAutomaton::pattern(uint32_t id) const {
  AcView view;
  if (!view.Bind(blob_) || id >= view.pattern_count) return {};
  return view.pattern(id);
}

void FusedAutomaton::Scan(std::string_view stream,
                          std::vector<std::vector<size_t>>* occurrences) const {
  occurrences->resize(pattern_count());
  for (auto& list : *occurrences) list.clear();
  if (blob_.empty()) return;
  AcView view;
  if (!view.Bind(blob_)) return;

  // Pattern lengths hoisted out of the report path.
  // (Occurrence *begin* = end-position + 1 - len, matching BMH reports.)
  uint32_t state = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    auto byte = static_cast<unsigned char>(stream[i]);
    for (;;) {
      if (state == 0) {
        state = view.root_goto(byte);  // 0 on miss: stay at root.
        break;
      }
      uint32_t next = view.Goto(state, byte);
      if (next != 0) {
        state = next;
        break;
      }
      state = view.node_field(state, 0);  // fail
    }
    uint32_t out_num = view.node_field(state, 4);
    if (out_num == 0) continue;
    uint32_t out_begin = view.node_field(state, 3);
    for (uint32_t k = 0; k < out_num; ++k) {
      uint32_t p = view.output(out_begin + k);
      size_t len = view.pattern(p).size();
      if (len > i + 1) continue;  // Corrupt blob guard; impossible if sound.
      (*occurrences)[p].push_back(i + 1 - len);
    }
  }
}

std::shared_ptr<const FusedSiteExtractor> FusedSiteExtractor::Build(
    std::vector<std::pair<std::string, std::shared_ptr<const CompiledWrapper>>>
        plans) {
  AcBuilder builder;
  std::vector<Attribute> attributes;
  std::sort(plans.begin(), plans.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [name, plan] : plans) {
    if (plan == nullptr || !plan->dom_free()) continue;
    Attribute attr;
    attr.name = std::move(name);
    attr.plan = plan;
    if (plan->is_lr()) {
      attr.left_pattern = builder.AddPattern(plan->left());
    } else if (plan->is_hlrt()) {
      // MatchHlrt never scans for the left delimiter (the in-region span
      // loop memcmps it directly), so only head/tail join the automaton.
      attr.head_pattern = builder.AddPattern(plan->head());
      attr.tail_pattern = builder.AddPattern(plan->tail());
    }
    attributes.push_back(std::move(attr));
  }
  if (attributes.empty()) return nullptr;
  return std::shared_ptr<const FusedSiteExtractor>(
      new FusedSiteExtractor(builder.Build(), std::move(attributes)));
}

std::shared_ptr<const FusedSiteExtractor> FusedSiteExtractor::FromBlob(
    std::string_view blob, std::vector<Attribute> attributes) {
  if (!FusedAutomaton::Validate(blob)) return nullptr;
  if (attributes.empty()) return nullptr;
  FusedAutomaton automaton(blob);
  uint32_t count = automaton.pattern_count();
  for (size_t i = 0; i < attributes.size(); ++i) {
    const Attribute& attr = attributes[i];
    if (attr.plan == nullptr || !attr.plan->dom_free()) return nullptr;
    if (i > 0 && !(attributes[i - 1].name < attr.name)) return nullptr;
    // Each binding must be in range AND name the exact delimiter bytes
    // the plan matches on — a cheap cross-check that catches packs whose
    // automaton and plan sections disagree (corruption, stale rebuild).
    auto check = [&](uint32_t id, const std::string& delim) {
      if (id == kNoPattern) return delim.empty();
      return id < count && automaton.pattern(id) == delim;
    };
    if (attr.plan->is_lr()) {
      if (!check(attr.left_pattern, attr.plan->left())) return nullptr;
    } else {
      if (!check(attr.head_pattern, attr.plan->head())) return nullptr;
      if (!check(attr.tail_pattern, attr.plan->tail())) return nullptr;
    }
  }
  return std::shared_ptr<const FusedSiteExtractor>(new FusedSiteExtractor(
      std::string(blob), std::move(attributes)));
}

FusedSiteExtractor::FusedSiteExtractor(std::string blob,
                                       std::vector<Attribute> attributes)
    : blob_(std::move(blob)),
      automaton_(blob_),
      attributes_(std::move(attributes)) {}

size_t FusedSiteExtractor::FindAttribute(std::string_view name) const {
  auto it = std::lower_bound(
      attributes_.begin(), attributes_.end(), name,
      [](const Attribute& a, std::string_view n) { return a.name < n; });
  if (it == attributes_.end() || it->name != name) {
    return std::string_view::npos;
  }
  return static_cast<size_t>(it - attributes_.begin());
}

void FusedSiteExtractor::ExtractAllStreaming(std::string_view raw_page,
                                             StreamPageBuffer& buffer,
                                             FusedScratch& scratch) const {
  buffer.page.Build(raw_page);
  std::string_view stream = buffer.page.stream();
  automaton_.Scan(stream, &scratch.occurrences);
  scratch.values.resize(attributes_.size());
  auto occ = [&](uint32_t id) -> const std::vector<size_t>* {
    return id == kNoPattern ? nullptr : &scratch.occurrences[id];
  };
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const Attribute& attr = attributes_[i];
    attr.plan->ExtractWithOccurrences(
        stream, buffer.page.spans(), occ(attr.left_pattern),
        occ(attr.head_pattern), occ(attr.tail_pattern), &scratch.values[i]);
  }
}

}  // namespace ntw::core
