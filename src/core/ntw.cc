#include "core/ntw.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ntw::core {

Result<NtwOutcome> LearnNoiseTolerant(const WrapperInductor& inductor,
                                      const PageSet& pages,
                                      const NodeSet& labels,
                                      const Ranker& ranker,
                                      const NtwOptions& options) {
  obs::Span span("ntw.learn");
  static obs::Counter* const runs =
      obs::Registry::Global().GetCounter("ntw.learn.runs");
  runs->Add(1);
  if (labels.empty()) {
    return Status::InvalidArgument("no labels to learn from");
  }
  NTW_ASSIGN_OR_RETURN(
      WrapperSpace space,
      Enumerate(options.algorithm, inductor, pages, labels));
  if (space.candidates.empty()) {
    return Status::FailedPrecondition("enumeration produced no wrappers");
  }
  std::vector<ScoredCandidate> ranking = ranker.Rank(space, pages, labels);

  NtwOutcome outcome;
  outcome.best_score = ranking.front();
  outcome.best = space.candidates[outcome.best_score.candidate_index];
  outcome.space_size = space.size();
  outcome.inductor_calls = space.inductor_calls;
  outcome.cache_hits = space.cache_hits;
  outcome.cache_misses = space.cache_misses;
  return outcome;
}

Induction LearnNaive(const WrapperInductor& inductor, const PageSet& pages,
                     const NodeSet& labels) {
  return inductor.Induce(pages, labels);
}

}  // namespace ntw::core
