#include "core/compiled_wrapper.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "common/strings.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/xpath_inductor.h"
#include "html/dom.h"
#include "html/parse_rules.h"
#include "xpath/ast.h"

namespace ntw::core {

StringSearcher::StringSearcher(std::string needle)
    : needle_(std::move(needle)) {
  size_t n = needle_.size();
  for (size_t i = 0; i < 256; ++i) skip_[i] = n;
  for (size_t i = 0; i + 1 < n; ++i) {
    skip_[static_cast<unsigned char>(needle_[i])] = n - 1 - i;
  }
}

size_t StringSearcher::Find(std::string_view haystack, size_t from) const {
  size_t n = needle_.size();
  if (n == 0) return from <= haystack.size() ? from : std::string_view::npos;
  if (from > haystack.size() || n > haystack.size() - from) {
    return std::string_view::npos;
  }
  size_t pos = from;
  size_t last = haystack.size() - n;
  while (pos <= last) {
    unsigned char tail = static_cast<unsigned char>(haystack[pos + n - 1]);
    if (tail == static_cast<unsigned char>(needle_[n - 1]) &&
        std::memcmp(haystack.data() + pos, needle_.data(), n - 1) == 0) {
      return pos;
    }
    pos += skip_[tail];
  }
  return std::string_view::npos;
}

void FastPageBuffer::Clear() {
  doc.Clear();
  values.clear();
  current_.clear();
  next_.clear();
  // marks_/epoch_ stay: stale marks always hold an epoch older than any
  // future one, so they can never alias a live mark.
}

std::shared_ptr<const CompiledWrapper> CompiledWrapper::Compile(
    const Wrapper& wrapper) {
  auto plan = std::make_shared<CompiledWrapper>();
  if (const auto* x = dynamic_cast<const XPathWrapper*>(&wrapper)) {
    plan->kind_ = Kind::kXPath;
    for (const xpath::Step& step : x->expr().steps) {
      StepOp op;
      op.descendant = step.axis == xpath::Axis::kDescendant;
      switch (step.test) {
        case xpath::NodeTest::kText:
          op.is_text = true;
          break;
        case xpath::NodeTest::kAnyElement:
          op.any_element = true;
          break;
        case xpath::NodeTest::kTag:
          op.tag_id = html::NameTable::Global().Intern(step.tag).id;
          break;
      }
      op.child_number = step.child_number.value_or(-1);
      for (const auto& [name, value] : step.attr_filters) {
        op.attr_filters.push_back(
            {html::NameTable::Global().Intern(name).id, name, value});
      }
      plan->steps_.push_back(std::move(op));
    }
    plan->FinalizeXPath();
    return plan;
  }
  if (const auto* lr = dynamic_cast<const LrWrapper*>(&wrapper)) {
    plan->kind_ = Kind::kLr;
    plan->left_ = lr->left();
    plan->right_ = lr->right();
    plan->left_searcher_ = StringSearcher(plan->left_);
    return plan;
  }
  if (const auto* hlrt = dynamic_cast<const HlrtWrapper*>(&wrapper)) {
    plan->kind_ = Kind::kHlrt;
    plan->head_ = hlrt->head();
    plan->tail_ = hlrt->tail();
    plan->left_ = hlrt->left();
    plan->right_ = hlrt->right();
    plan->head_searcher_ = StringSearcher(plan->head_);
    plan->tail_searcher_ = StringSearcher(plan->tail_);
    plan->left_searcher_ = StringSearcher(plan->left_);
    return plan;
  }
  return nullptr;  // Unknown kind: caller falls back to the interpreter.
}

std::shared_ptr<const CompiledWrapper> CompiledWrapper::MakeLr(
    std::string left, std::string right) {
  auto plan = std::make_shared<CompiledWrapper>();
  plan->kind_ = Kind::kLr;
  plan->left_ = std::move(left);
  plan->right_ = std::move(right);
  plan->left_searcher_ = StringSearcher(plan->left_);
  return plan;
}

std::shared_ptr<const CompiledWrapper> CompiledWrapper::MakeHlrt(
    std::string head, std::string tail, std::string left, std::string right) {
  auto plan = std::make_shared<CompiledWrapper>();
  plan->kind_ = Kind::kHlrt;
  plan->head_ = std::move(head);
  plan->tail_ = std::move(tail);
  plan->left_ = std::move(left);
  plan->right_ = std::move(right);
  plan->head_searcher_ = StringSearcher(plan->head_);
  plan->tail_searcher_ = StringSearcher(plan->tail_);
  plan->left_searcher_ = StringSearcher(plan->left_);
  return plan;
}

std::shared_ptr<const CompiledWrapper> CompiledWrapper::MakeXPath(
    const std::vector<XPathStepSpec>& steps) {
  auto plan = std::make_shared<CompiledWrapper>();
  plan->kind_ = Kind::kXPath;
  for (const XPathStepSpec& spec : steps) {
    StepOp op;
    op.descendant = spec.descendant;
    switch (spec.test) {
      case XPathStepSpec::Test::kText:
        op.is_text = true;
        break;
      case XPathStepSpec::Test::kAnyElement:
        op.any_element = true;
        break;
      case XPathStepSpec::Test::kTag:
        op.tag_id = html::NameTable::Global().Intern(spec.tag).id;
        break;
    }
    op.child_number = spec.child_number;
    for (const auto& [name, value] : spec.attr_filters) {
      op.attr_filters.push_back(
          {html::NameTable::Global().Intern(name).id, name, value});
    }
    plan->steps_.push_back(std::move(op));
  }
  plan->FinalizeXPath();
  return plan;
}

void CompiledWrapper::FinalizeXPath() {
  // Bitset budget: bit j means "matched the first j steps" (bit 0 is the
  // document root's free match), so a program needs steps_.size() + 1
  // bits out of the 64 available. An empty program selects the document
  // root itself — a node the event machine never materializes — so it
  // stays on the DOM path.
  streamable_ = !steps_.empty() && steps_.size() < 64;
  if (!streamable_) return;
  for (size_t j = 0; j < steps_.size(); ++j) {
    const StepOp& step = steps_[j];
    (step.descendant ? desc_steps_ : child_steps_) |= uint64_t{1} << j;
    if (!step.is_text && !step.any_element && step.child_number >= 0 &&
        std::find(positional_tag_ids_.begin(), positional_tag_ids_.end(),
                  step.tag_id) == positional_tag_ids_.end()) {
      positional_tag_ids_.push_back(step.tag_id);
    }
  }
}

const char* CompiledWrapper::plan_kind() const {
  switch (kind_) {
    case Kind::kXPath:
      return "xpath";
    case Kind::kLr:
      return "lr";
    case Kind::kHlrt:
      return "hlrt";
  }
  return "unknown";
}

void CompiledWrapper::Extract(FastPageBuffer& buffer,
                              std::vector<std::string_view>* values) const {
  values->clear();
  switch (kind_) {
    case Kind::kXPath:
      ExtractXPath(buffer, values);
      return;
    case Kind::kLr:
      MatchLr(buffer.doc.stream(), buffer.doc.spans(), values);
      return;
    case Kind::kHlrt:
      MatchHlrt(buffer.doc.stream(), buffer.doc.spans(), values);
      return;
  }
}

void CompiledWrapper::ExtractStreaming(
    std::string_view raw_page, StreamPageBuffer& buffer,
    std::vector<std::string_view>* values) const {
  values->clear();
  if (kind_ == Kind::kXPath) {
    // Fused tokenize→plan-execute; an unstreamable plan (>63 steps or
    // empty) needs the DOM — callers route there.
    if (streamable_) ExtractXPathStreaming(raw_page, buffer, values);
    return;
  }
  buffer.page.Build(raw_page);
  if (kind_ == Kind::kLr) {
    MatchLr(buffer.page.stream(), buffer.page.spans(), values);
  } else {
    MatchHlrt(buffer.page.stream(), buffer.page.spans(), values);
  }
}

void CompiledWrapper::ExtractWithOccurrences(
    std::string_view stream, const std::vector<html::StreamSpan>& spans,
    const std::vector<size_t>* left_occ, const std::vector<size_t>* head_occ,
    const std::vector<size_t>* tail_occ,
    std::vector<std::string_view>* values) const {
  values->clear();
  if (kind_ == Kind::kLr) {
    if (left_.empty()) {
      for (const auto& span : spans) {
        if (SpanMatchesLr(stream, span.begin, span.end)) {
          values->push_back(stream.substr(span.begin, span.end - span.begin));
        }
      }
      return;
    }
    // MatchLr's occurrence merge, with the per-plan BMH scan replaced by
    // the shared ascending occurrence list.
    size_t si = 0;
    if (left_occ == nullptr) return;
    for (size_t pos : *left_occ) {
      if (si >= spans.size()) break;
      size_t anchor = pos + left_.size();
      while (si < spans.size() && spans[si].begin < anchor) ++si;
      for (size_t j = si; j < spans.size() && spans[j].begin == anchor; ++j) {
        const auto& span = spans[j];
        if (right_.size() <= stream.size() - span.end &&
            std::memcmp(stream.data() + span.end, right_.data(),
                        right_.size()) == 0) {
          values->push_back(stream.substr(span.begin, span.end - span.begin));
        }
      }
    }
    return;
  }
  if (kind_ != Kind::kHlrt) return;  // XPath plans have no streaming form.
  // MatchHlrt's region narrowing: first head occurrence, first tail
  // occurrence at or after the region begin.
  size_t begin = 0;
  size_t end = stream.size();
  bool no_region = false;
  if (!head_.empty()) {
    if (head_occ == nullptr || head_occ->empty()) {
      begin = 0;
      end = 0;
      no_region = true;
    } else {
      begin = head_occ->front() + head_.size();
    }
  }
  if (!no_region && !tail_.empty() && tail_occ != nullptr) {
    auto it = std::lower_bound(tail_occ->begin(), tail_occ->end(), begin);
    if (it != tail_occ->end()) end = *it;
  }
  for (const auto& span : spans) {
    if (span.begin < begin || span.end > end) continue;
    if (SpanMatchesLr(stream, span.begin, span.end)) {
      values->push_back(stream.substr(span.begin, span.end - span.begin));
    }
  }
}

namespace {

// First pre-order index after the subtree rooted at `index` — because the
// builder appends nodes in document order, a subtree occupies the
// contiguous index range (index, SubtreeEnd(index)).
int32_t SubtreeEnd(const html::ArenaDocument& doc, int32_t index) {
  int32_t n = index;
  while (n >= 0) {
    int32_t sibling = doc.node(n).next_sibling;
    if (sibling >= 0) return sibling;
    n = doc.node(n).parent;
  }
  return static_cast<int32_t>(doc.node_count());
}

}  // namespace

void CompiledWrapper::ExtractXPath(
    FastPageBuffer& buffer, std::vector<std::string_view>* values) const {
  const html::ArenaDocument& doc = buffer.doc;
  std::vector<int32_t>& current = buffer.current_;
  std::vector<int32_t>& next = buffer.next_;
  std::vector<uint32_t>& marks = buffer.marks_;
  if (marks.size() < doc.node_count()) marks.resize(doc.node_count(), 0);

  current.clear();
  current.push_back(0);  // Document root.
  for (const StepOp& step : steps_) {
    next.clear();
    if (++buffer.epoch_ == 0) {  // Wraparound: wipe stale marks once.
      std::fill(marks.begin(), marks.end(), 0u);
      buffer.epoch_ = 1;
    }
    uint32_t epoch = buffer.epoch_;

    auto try_candidate = [&](int32_t idx) {
      const html::ArenaNode& n = doc.node(idx);
      if (step.is_text) {
        if (n.kind != html::NodeKind::kText) return;
      } else if (step.any_element) {
        if (n.kind != html::NodeKind::kElement) return;
      } else {
        if (n.kind != html::NodeKind::kElement || n.tag_id != step.tag_id) {
          return;
        }
      }
      if (step.child_number >= 0) {
        if (!step.is_text && !step.any_element) {
          if (n.same_tag_child_number != step.child_number) return;
        } else if (n.sibling_index + 1 != step.child_number) {
          return;
        }
      }
      for (const StepOp::AttrFilter& f : step.attr_filters) {
        const html::ArenaAttr* attr = doc.FindAttr(n, f.name_id);
        if (attr == nullptr || attr->value != f.value) return;
      }
      uint32_t& mark = marks[static_cast<size_t>(idx)];
      if (mark == epoch) return;  // Already collected for this step.
      mark = epoch;
      next.push_back(idx);
    };

    for (int32_t context : current) {
      if (step.descendant) {
        int32_t end = SubtreeEnd(doc, context);
        for (int32_t i = context + 1; i < end; ++i) try_candidate(i);
      } else {
        for (int32_t c = doc.node(context).first_child; c >= 0;
             c = doc.node(c).next_sibling) {
          try_candidate(c);
        }
      }
    }
    current.swap(next);
    if (current.empty()) break;
  }

  // Same final ordering as xpath::Evaluate: ascending pre-order.
  std::sort(current.begin(), current.end());
  for (int32_t idx : current) {
    const html::ArenaNode& n = doc.node(idx);
    values->push_back(n.kind == html::NodeKind::kText ? n.text
                                                      : std::string_view());
  }
}

// The fused streaming XPath executor: an NFA-style bitset machine run
// directly against the tokenizer event stream, mirroring ExtractXPath's
// step semantics and ArenaTreeBuilder's event handling (implied end tags,
// nearest-match closes with the table boundary, void/self-closing
// elements, whitespace-only text skipping) without materializing a node.
//
// Per open element, `match` bit j says "this node matches the first j
// steps" (bit 0 belongs to the document root alone) and `anc` is the
// union of every ancestor's match bits. A new node's candidate steps are
//   (parent.match & child_steps_) | ((parent.match|anc) & desc_steps_)
// — the child axis needs the parent itself to hold bit j, the descendant
// axis any ancestor. Passing step j's test sets bit j+1 on the node;
// reaching bit steps_.size() is an accept, recorded at the open event,
// which is exactly ascending pre-order — the DOM path's result order —
// and each node is tested once, so no dedup marks are needed.
//
// Accepted elements extract the empty string (as on the DOM path); an
// accepted text node is the only thing ever copied: its collapsed bytes
// go into the capture buffer via the same AppendCollapsedText the
// StreamPage tiers splice with. Values materialize after the scan so
// capture reallocation cannot dangle the views.
namespace {

/// Interned-id mirror of IsVoidElementTag and the CloseImpliedBy "open"
/// set: the fused executor classifies each tag once by id instead of
/// re-running the byte-comparison rule functions per event. Ids are
/// global-NameTable stable, so this is built once per process.
struct StreamTagIds {
  std::array<int32_t, 14> voids;
  std::array<int32_t, 11> may_imply;

  bool IsVoid(int32_t id) const {
    for (int32_t v : voids) {
      if (v == id) return true;
    }
    return false;
  }
  bool MayImplyClose(int32_t id) const {
    for (int32_t v : may_imply) {
      if (v == id) return true;
    }
    return false;
  }

  static const StreamTagIds& Get() {
    static const StreamTagIds ids = [] {
      html::NameTable& names = html::NameTable::Global();
      auto id = [&](std::string_view tag) { return names.Intern(tag).id; };
      StreamTagIds t;
      t.voids = {id("area"), id("base"), id("br"), id("col"), id("embed"),
                 id("hr"), id("img"), id("input"), id("link"), id("meta"),
                 id("param"), id("source"), id("track"), id("wbr")};
      t.may_imply = {id("li"), id("option"), id("p"), id("td"), id("th"),
                     id("tr"), id("thead"), id("tbody"), id("tfoot"),
                     id("dt"), id("dd")};
      return t;
    }();
    return ids;
  }
};

}  // namespace

void CompiledWrapper::ExtractXPathStreaming(
    std::string_view raw_page, StreamPageBuffer& buffer,
    std::vector<std::string_view>* values) const {
  std::vector<StreamXPathFrame>& frames = buffer.xframes_;
  std::string& capture = buffer.xcapture_;
  std::vector<std::pair<size_t, size_t>>& extents = buffer.xextents_;
  capture.clear();
  extents.clear();

  const StreamTagIds& tag_ids = StreamTagIds::Get();
  size_t depth = 0;
  auto push_frame = [&](std::string_view tag, int32_t tag_id, uint64_t match,
                        uint64_t anc, bool may_imply_close) {
    if (frames.size() <= depth) frames.emplace_back();
    StreamXPathFrame& f = frames[depth++];
    f.tag = tag;
    f.tag_id = tag_id;
    f.match = match;
    f.anc = anc;
    f.children = 0;
    f.may_imply_close = may_imply_close;
    f.tag_counts.clear();
  };
  push_frame(std::string_view(), -1, uint64_t{1}, 0, false);  // Doc root.

  const uint64_t accept = uint64_t{1} << steps_.size();
  const StepOp& last = steps_.back();
  const size_t last_bit = steps_.size() - 1;
  constexpr size_t kElement = std::string_view::npos;
  html::NameTable& names = html::NameTable::Global();
  html::Token& token = buffer.xtoken_;
  html::Tokenizer tokenizer(raw_page);

  while (tokenizer.Next(&token)) {
    switch (token.kind) {
      case html::TokenKind::kText: {
        // Whitespace-only text is skipped before any counter moves
        // (skip_whitespace_text), so test cheaply on the raw bytes.
        bool all_space = true;
        for (char c : token.data) {
          if (!IsAsciiSpace(c)) {
            all_space = false;
            break;
          }
        }
        if (all_space) break;
        StreamXPathFrame& parent = frames[depth - 1];
        int32_t sibling_index = parent.children++;
        // Text has no children, so a text node matching any step short
        // of the last is inert — only the final step can emit here.
        if (!last.is_text) break;
        uint64_t avail =
            last.descendant ? (parent.match | parent.anc) : parent.match;
        if (((avail >> last_bit) & 1) == 0) break;
        // FindAttr on a text node is null: any attr filter fails it; a
        // positional filter counts all siblings (sibling_index, 1-based).
        if (!last.attr_filters.empty()) break;
        if (last.child_number >= 0 && sibling_index + 1 != last.child_number) {
          break;
        }
        size_t begin = capture.size();
        html::AppendCollapsedText(token.data, &capture);
        extents.emplace_back(begin, capture.size());
        break;
      }
      case html::TokenKind::kStartTag: {
        // Implied end tags — the builder's loop, popping frames instead
        // of closing nodes. may_imply_close subsumes the IsScopeBoundary
        // break: boundary tags never imply-close.
        while (depth > 1 && frames[depth - 1].may_imply_close &&
               html::CloseImpliedBy(frames[depth - 1].tag, token.data)) {
          --depth;
        }
        html::NameTable::Interned tag = names.Intern(token.data);
        StreamXPathFrame& parent = frames[depth - 1];
        int32_t sibling_index = parent.children++;
        // Same-tag child number among element siblings (XPath tag[k]) —
        // maintained only for tags a tag[k] step names; nothing else
        // ever reads the count.
        int32_t same_tag = 0;
        for (int32_t tracked : positional_tag_ids_) {
          if (tracked != tag.id) continue;
          for (auto& [tid, c] : parent.tag_counts) {
            if (tid == tag.id) {
              same_tag = ++c;
              break;
            }
          }
          if (same_tag == 0) {
            parent.tag_counts.emplace_back(tag.id, 1);
            same_tag = 1;
          }
          break;
        }
        uint64_t match = 0;
        uint64_t cand = (parent.match & child_steps_) |
                        ((parent.match | parent.anc) & desc_steps_);
        while (cand != 0) {
          size_t j = static_cast<size_t>(std::countr_zero(cand));
          cand &= cand - 1;
          const StepOp& step = steps_[j];
          if (step.is_text) continue;
          if (!step.any_element && step.tag_id != tag.id) continue;
          if (step.child_number >= 0) {
            int32_t number =
                step.any_element ? sibling_index + 1 : same_tag;
            if (number != step.child_number) continue;
          }
          bool ok = true;
          for (const StepOp::AttrFilter& f : step.attr_filters) {
            // Duplicate attribute names keep the last value (SetAttr
            // overwrites in place), so the backward scan's first hit is
            // the effective one; the tokenizer already lowercased the
            // names, so this is a raw byte compare — no interning.
            const std::string* effective = nullptr;
            for (size_t a = token.attrs.size(); a > 0; --a) {
              if (token.attrs[a - 1].first == f.name) {
                effective = &token.attrs[a - 1].second;
                break;
              }
            }
            if (effective == nullptr || *effective != f.value) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          match |= uint64_t{1} << (j + 1);
        }
        if ((match & accept) != 0) extents.emplace_back(kElement, kElement);
        if (tag_ids.IsVoid(tag.id) || token.self_closing) break;
        // push_frame may grow `frames`, invalidating `parent` — read the
        // inherited bits out first.
        uint64_t parent_match = parent.match;
        uint64_t parent_anc = parent.anc;
        push_frame(tag.name, tag.id, match, parent_match | parent_anc,
                   tag_ids.MayImplyClose(tag.id));
        break;
      }
      case html::TokenKind::kEndTag: {
        // Nearest matching open element closes everything above it; a
        // stray end tag never crosses a table boundary (and an entirely
        // unmatched one is dropped).
        for (size_t i = depth; i > 1; --i) {
          if (frames[i - 1].tag == token.data) {
            depth = i - 1;
            break;
          }
          if (frames[i - 1].tag == "table" && token.data != "table") break;
        }
        break;
      }
      case html::TokenKind::kComment:
      case html::TokenKind::kDoctype:
        break;  // Dropped, as the tidy pipeline does.
    }
  }

  values->reserve(values->size() + extents.size());
  std::string_view cap(capture);
  for (const auto& [begin, end] : extents) {
    values->push_back(begin == kElement ? std::string_view()
                                        : cap.substr(begin, end - begin));
  }
}

bool CompiledWrapper::SpanMatchesLr(std::string_view stream, size_t begin,
                                    size_t end) const {
  if (begin < left_.size()) return false;
  if (std::memcmp(stream.data() + (begin - left_.size()), left_.data(),
                  left_.size()) != 0) {
    return false;
  }
  if (right_.size() > stream.size() - end) return false;
  return std::memcmp(stream.data() + end, right_.data(), right_.size()) == 0;
}

template <typename Span>
void CompiledWrapper::MatchLr(std::string_view stream,
                              const std::vector<Span>& spans,
                              std::vector<std::string_view>* values) const {
  if (left_.empty()) {
    for (const auto& span : spans) {
      if (SpanMatchesLr(stream, span.begin, span.end)) {
        values->push_back(stream.substr(span.begin, span.end - span.begin));
      }
    }
    return;
  }
  // Occurrence-driven: every matching span's begin coincides with the end of
  // a left-delimiter occurrence, so scan occurrences (BMH) and binary-merge
  // against the span list instead of memcmp-ing every span.
  size_t si = 0;
  size_t pos = 0;
  while (si < spans.size()) {
    pos = left_searcher_.Find(stream, pos);
    if (pos == std::string_view::npos) break;
    size_t anchor = pos + left_.size();
    while (si < spans.size() && spans[si].begin < anchor) ++si;
    for (size_t j = si; j < spans.size() && spans[j].begin == anchor; ++j) {
      const auto& span = spans[j];
      if (right_.size() <= stream.size() - span.end &&
          std::memcmp(stream.data() + span.end, right_.data(),
                      right_.size()) == 0) {
        values->push_back(stream.substr(span.begin, span.end - span.begin));
      }
    }
    ++pos;
  }
}

template <typename Span>
void CompiledWrapper::MatchHlrt(std::string_view stream,
                                const std::vector<Span>& spans,
                                std::vector<std::string_view>* values) const {
  // Region, exactly as hlrt_inductor.cc: after the first head occurrence,
  // before the first tail occurrence after that; no head occurrence → {0,0}.
  size_t begin = 0;
  size_t end = stream.size();
  bool no_region = false;
  if (!head_.empty()) {
    size_t pos = head_searcher_.Find(stream, 0);
    if (pos == std::string_view::npos) {
      begin = 0;
      end = 0;
      no_region = true;  // Head absent: Region() is {0,0}, tail not searched.
    } else {
      begin = pos + head_.size();
    }
  }
  if (!no_region && !tail_.empty()) {
    size_t pos = tail_searcher_.Find(stream, begin);
    if (pos != std::string_view::npos) end = pos;
  }
  for (const auto& span : spans) {
    if (span.begin < begin || span.end > end) continue;
    if (SpanMatchesLr(stream, span.begin, span.end)) {
      values->push_back(stream.substr(span.begin, span.end - span.begin));
    }
  }
}

}  // namespace ntw::core
