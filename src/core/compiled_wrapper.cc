#include "core/compiled_wrapper.h"

#include <algorithm>
#include <cstring>

#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/xpath_inductor.h"
#include "xpath/ast.h"

namespace ntw::core {

StringSearcher::StringSearcher(std::string needle)
    : needle_(std::move(needle)) {
  size_t n = needle_.size();
  for (size_t i = 0; i < 256; ++i) skip_[i] = n;
  for (size_t i = 0; i + 1 < n; ++i) {
    skip_[static_cast<unsigned char>(needle_[i])] = n - 1 - i;
  }
}

size_t StringSearcher::Find(std::string_view haystack, size_t from) const {
  size_t n = needle_.size();
  if (n == 0) return from <= haystack.size() ? from : std::string_view::npos;
  if (from > haystack.size() || n > haystack.size() - from) {
    return std::string_view::npos;
  }
  size_t pos = from;
  size_t last = haystack.size() - n;
  while (pos <= last) {
    unsigned char tail = static_cast<unsigned char>(haystack[pos + n - 1]);
    if (tail == static_cast<unsigned char>(needle_[n - 1]) &&
        std::memcmp(haystack.data() + pos, needle_.data(), n - 1) == 0) {
      return pos;
    }
    pos += skip_[tail];
  }
  return std::string_view::npos;
}

void FastPageBuffer::Clear() {
  doc.Clear();
  values.clear();
  current_.clear();
  next_.clear();
  // marks_/epoch_ stay: stale marks always hold an epoch older than any
  // future one, so they can never alias a live mark.
}

std::shared_ptr<const CompiledWrapper> CompiledWrapper::Compile(
    const Wrapper& wrapper) {
  auto plan = std::make_shared<CompiledWrapper>();
  if (const auto* x = dynamic_cast<const XPathWrapper*>(&wrapper)) {
    plan->kind_ = Kind::kXPath;
    for (const xpath::Step& step : x->expr().steps) {
      StepOp op;
      op.descendant = step.axis == xpath::Axis::kDescendant;
      switch (step.test) {
        case xpath::NodeTest::kText:
          op.is_text = true;
          break;
        case xpath::NodeTest::kAnyElement:
          op.any_element = true;
          break;
        case xpath::NodeTest::kTag:
          op.tag_id = html::NameTable::Global().Intern(step.tag).id;
          break;
      }
      op.child_number = step.child_number.value_or(-1);
      for (const auto& [name, value] : step.attr_filters) {
        op.attr_filters.emplace_back(html::NameTable::Global().Intern(name).id,
                                     value);
      }
      plan->steps_.push_back(std::move(op));
    }
    return plan;
  }
  if (const auto* lr = dynamic_cast<const LrWrapper*>(&wrapper)) {
    plan->kind_ = Kind::kLr;
    plan->left_ = lr->left();
    plan->right_ = lr->right();
    plan->left_searcher_ = StringSearcher(plan->left_);
    return plan;
  }
  if (const auto* hlrt = dynamic_cast<const HlrtWrapper*>(&wrapper)) {
    plan->kind_ = Kind::kHlrt;
    plan->head_ = hlrt->head();
    plan->tail_ = hlrt->tail();
    plan->left_ = hlrt->left();
    plan->right_ = hlrt->right();
    plan->head_searcher_ = StringSearcher(plan->head_);
    plan->tail_searcher_ = StringSearcher(plan->tail_);
    plan->left_searcher_ = StringSearcher(plan->left_);
    return plan;
  }
  return nullptr;  // Unknown kind: caller falls back to the interpreter.
}

std::shared_ptr<const CompiledWrapper> CompiledWrapper::MakeLr(
    std::string left, std::string right) {
  auto plan = std::make_shared<CompiledWrapper>();
  plan->kind_ = Kind::kLr;
  plan->left_ = std::move(left);
  plan->right_ = std::move(right);
  plan->left_searcher_ = StringSearcher(plan->left_);
  return plan;
}

std::shared_ptr<const CompiledWrapper> CompiledWrapper::MakeHlrt(
    std::string head, std::string tail, std::string left, std::string right) {
  auto plan = std::make_shared<CompiledWrapper>();
  plan->kind_ = Kind::kHlrt;
  plan->head_ = std::move(head);
  plan->tail_ = std::move(tail);
  plan->left_ = std::move(left);
  plan->right_ = std::move(right);
  plan->head_searcher_ = StringSearcher(plan->head_);
  plan->tail_searcher_ = StringSearcher(plan->tail_);
  plan->left_searcher_ = StringSearcher(plan->left_);
  return plan;
}

std::shared_ptr<const CompiledWrapper> CompiledWrapper::MakeXPath(
    const std::vector<XPathStepSpec>& steps) {
  auto plan = std::make_shared<CompiledWrapper>();
  plan->kind_ = Kind::kXPath;
  for (const XPathStepSpec& spec : steps) {
    StepOp op;
    op.descendant = spec.descendant;
    switch (spec.test) {
      case XPathStepSpec::Test::kText:
        op.is_text = true;
        break;
      case XPathStepSpec::Test::kAnyElement:
        op.any_element = true;
        break;
      case XPathStepSpec::Test::kTag:
        op.tag_id = html::NameTable::Global().Intern(spec.tag).id;
        break;
    }
    op.child_number = spec.child_number;
    for (const auto& [name, value] : spec.attr_filters) {
      op.attr_filters.emplace_back(html::NameTable::Global().Intern(name).id,
                                   value);
    }
    plan->steps_.push_back(std::move(op));
  }
  return plan;
}

const char* CompiledWrapper::plan_kind() const {
  switch (kind_) {
    case Kind::kXPath:
      return "xpath";
    case Kind::kLr:
      return "lr";
    case Kind::kHlrt:
      return "hlrt";
  }
  return "unknown";
}

void CompiledWrapper::Extract(FastPageBuffer& buffer,
                              std::vector<std::string_view>* values) const {
  values->clear();
  switch (kind_) {
    case Kind::kXPath:
      ExtractXPath(buffer, values);
      return;
    case Kind::kLr:
      MatchLr(buffer.doc.stream(), buffer.doc.spans(), values);
      return;
    case Kind::kHlrt:
      MatchHlrt(buffer.doc.stream(), buffer.doc.spans(), values);
      return;
  }
}

void CompiledWrapper::ExtractStreaming(
    std::string_view raw_page, StreamPageBuffer& buffer,
    std::vector<std::string_view>* values) const {
  values->clear();
  if (!dom_free()) return;  // XPath needs the DOM; callers route there.
  buffer.page.Build(raw_page);
  if (kind_ == Kind::kLr) {
    MatchLr(buffer.page.stream(), buffer.page.spans(), values);
  } else {
    MatchHlrt(buffer.page.stream(), buffer.page.spans(), values);
  }
}

void CompiledWrapper::ExtractWithOccurrences(
    std::string_view stream, const std::vector<html::StreamSpan>& spans,
    const std::vector<size_t>* left_occ, const std::vector<size_t>* head_occ,
    const std::vector<size_t>* tail_occ,
    std::vector<std::string_view>* values) const {
  values->clear();
  if (kind_ == Kind::kLr) {
    if (left_.empty()) {
      for (const auto& span : spans) {
        if (SpanMatchesLr(stream, span.begin, span.end)) {
          values->push_back(stream.substr(span.begin, span.end - span.begin));
        }
      }
      return;
    }
    // MatchLr's occurrence merge, with the per-plan BMH scan replaced by
    // the shared ascending occurrence list.
    size_t si = 0;
    if (left_occ == nullptr) return;
    for (size_t pos : *left_occ) {
      if (si >= spans.size()) break;
      size_t anchor = pos + left_.size();
      while (si < spans.size() && spans[si].begin < anchor) ++si;
      for (size_t j = si; j < spans.size() && spans[j].begin == anchor; ++j) {
        const auto& span = spans[j];
        if (right_.size() <= stream.size() - span.end &&
            std::memcmp(stream.data() + span.end, right_.data(),
                        right_.size()) == 0) {
          values->push_back(stream.substr(span.begin, span.end - span.begin));
        }
      }
    }
    return;
  }
  if (kind_ != Kind::kHlrt) return;  // XPath plans have no streaming form.
  // MatchHlrt's region narrowing: first head occurrence, first tail
  // occurrence at or after the region begin.
  size_t begin = 0;
  size_t end = stream.size();
  bool no_region = false;
  if (!head_.empty()) {
    if (head_occ == nullptr || head_occ->empty()) {
      begin = 0;
      end = 0;
      no_region = true;
    } else {
      begin = head_occ->front() + head_.size();
    }
  }
  if (!no_region && !tail_.empty() && tail_occ != nullptr) {
    auto it = std::lower_bound(tail_occ->begin(), tail_occ->end(), begin);
    if (it != tail_occ->end()) end = *it;
  }
  for (const auto& span : spans) {
    if (span.begin < begin || span.end > end) continue;
    if (SpanMatchesLr(stream, span.begin, span.end)) {
      values->push_back(stream.substr(span.begin, span.end - span.begin));
    }
  }
}

namespace {

// First pre-order index after the subtree rooted at `index` — because the
// builder appends nodes in document order, a subtree occupies the
// contiguous index range (index, SubtreeEnd(index)).
int32_t SubtreeEnd(const html::ArenaDocument& doc, int32_t index) {
  int32_t n = index;
  while (n >= 0) {
    int32_t sibling = doc.node(n).next_sibling;
    if (sibling >= 0) return sibling;
    n = doc.node(n).parent;
  }
  return static_cast<int32_t>(doc.node_count());
}

}  // namespace

void CompiledWrapper::ExtractXPath(
    FastPageBuffer& buffer, std::vector<std::string_view>* values) const {
  const html::ArenaDocument& doc = buffer.doc;
  std::vector<int32_t>& current = buffer.current_;
  std::vector<int32_t>& next = buffer.next_;
  std::vector<uint32_t>& marks = buffer.marks_;
  if (marks.size() < doc.node_count()) marks.resize(doc.node_count(), 0);

  current.clear();
  current.push_back(0);  // Document root.
  for (const StepOp& step : steps_) {
    next.clear();
    if (++buffer.epoch_ == 0) {  // Wraparound: wipe stale marks once.
      std::fill(marks.begin(), marks.end(), 0u);
      buffer.epoch_ = 1;
    }
    uint32_t epoch = buffer.epoch_;

    auto try_candidate = [&](int32_t idx) {
      const html::ArenaNode& n = doc.node(idx);
      if (step.is_text) {
        if (n.kind != html::NodeKind::kText) return;
      } else if (step.any_element) {
        if (n.kind != html::NodeKind::kElement) return;
      } else {
        if (n.kind != html::NodeKind::kElement || n.tag_id != step.tag_id) {
          return;
        }
      }
      if (step.child_number >= 0) {
        if (!step.is_text && !step.any_element) {
          if (n.same_tag_child_number != step.child_number) return;
        } else if (n.sibling_index + 1 != step.child_number) {
          return;
        }
      }
      for (const auto& [name_id, value] : step.attr_filters) {
        const html::ArenaAttr* attr = doc.FindAttr(n, name_id);
        if (attr == nullptr || attr->value != value) return;
      }
      uint32_t& mark = marks[static_cast<size_t>(idx)];
      if (mark == epoch) return;  // Already collected for this step.
      mark = epoch;
      next.push_back(idx);
    };

    for (int32_t context : current) {
      if (step.descendant) {
        int32_t end = SubtreeEnd(doc, context);
        for (int32_t i = context + 1; i < end; ++i) try_candidate(i);
      } else {
        for (int32_t c = doc.node(context).first_child; c >= 0;
             c = doc.node(c).next_sibling) {
          try_candidate(c);
        }
      }
    }
    current.swap(next);
    if (current.empty()) break;
  }

  // Same final ordering as xpath::Evaluate: ascending pre-order.
  std::sort(current.begin(), current.end());
  for (int32_t idx : current) {
    const html::ArenaNode& n = doc.node(idx);
    values->push_back(n.kind == html::NodeKind::kText ? n.text
                                                      : std::string_view());
  }
}

bool CompiledWrapper::SpanMatchesLr(std::string_view stream, size_t begin,
                                    size_t end) const {
  if (begin < left_.size()) return false;
  if (std::memcmp(stream.data() + (begin - left_.size()), left_.data(),
                  left_.size()) != 0) {
    return false;
  }
  if (right_.size() > stream.size() - end) return false;
  return std::memcmp(stream.data() + end, right_.data(), right_.size()) == 0;
}

template <typename Span>
void CompiledWrapper::MatchLr(std::string_view stream,
                              const std::vector<Span>& spans,
                              std::vector<std::string_view>* values) const {
  if (left_.empty()) {
    for (const auto& span : spans) {
      if (SpanMatchesLr(stream, span.begin, span.end)) {
        values->push_back(stream.substr(span.begin, span.end - span.begin));
      }
    }
    return;
  }
  // Occurrence-driven: every matching span's begin coincides with the end of
  // a left-delimiter occurrence, so scan occurrences (BMH) and binary-merge
  // against the span list instead of memcmp-ing every span.
  size_t si = 0;
  size_t pos = 0;
  while (si < spans.size()) {
    pos = left_searcher_.Find(stream, pos);
    if (pos == std::string_view::npos) break;
    size_t anchor = pos + left_.size();
    while (si < spans.size() && spans[si].begin < anchor) ++si;
    for (size_t j = si; j < spans.size() && spans[j].begin == anchor; ++j) {
      const auto& span = spans[j];
      if (right_.size() <= stream.size() - span.end &&
          std::memcmp(stream.data() + span.end, right_.data(),
                      right_.size()) == 0) {
        values->push_back(stream.substr(span.begin, span.end - span.begin));
      }
    }
    ++pos;
  }
}

template <typename Span>
void CompiledWrapper::MatchHlrt(std::string_view stream,
                                const std::vector<Span>& spans,
                                std::vector<std::string_view>* values) const {
  // Region, exactly as hlrt_inductor.cc: after the first head occurrence,
  // before the first tail occurrence after that; no head occurrence → {0,0}.
  size_t begin = 0;
  size_t end = stream.size();
  bool no_region = false;
  if (!head_.empty()) {
    size_t pos = head_searcher_.Find(stream, 0);
    if (pos == std::string_view::npos) {
      begin = 0;
      end = 0;
      no_region = true;  // Head absent: Region() is {0,0}, tail not searched.
    } else {
      begin = pos + head_.size();
    }
  }
  if (!no_region && !tail_.empty()) {
    size_t pos = tail_searcher_.Find(stream, begin);
    if (pos != std::string_view::npos) end = pos;
  }
  for (const auto& span : spans) {
    if (span.begin < begin || span.end > end) continue;
    if (SpanMatchesLr(stream, span.begin, span.end)) {
      values->push_back(stream.substr(span.begin, span.end - span.begin));
    }
  }
}

}  // namespace ntw::core
