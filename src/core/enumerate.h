#ifndef NTW_CORE_ENUMERATE_H_
#define NTW_CORE_ENUMERATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/wrapper.h"

namespace ntw::core {

/// One enumerated candidate: the wrapper, its extraction X on the training
/// pages, and the label subset that produced it (for diagnostics).
struct Candidate {
  WrapperPtr wrapper;
  NodeSet extraction;
  NodeSet trained_on;
};

/// The wrapper space W(L) = {φ(L') : ∅ ≠ L' ⊆ L}, deduplicated by
/// extraction output, plus instrumentation.
///
/// `inductor_calls` counts *logical* calls — the number the theorems bound
/// (k·|L| for BottomUp, 2^|L|−1 for Naive, k for TopDown) — and is
/// identical to what the pre-memoization serial engine reported.
/// `cache_misses` counts the inductor invocations that actually ran after
/// memoization (the distinct label subsets); `cache_hits` the replays.
/// Always: cache_hits + cache_misses == inductor_calls, and all three are
/// deterministic at every thread count.
struct WrapperSpace {
  std::vector<Candidate> candidates;
  int64_t inductor_calls = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  size_t size() const { return candidates.size(); }
};

/// Exhaustive baseline: calls φ on every non-empty subset of L (2^|L|−1
/// calls). `max_labels` guards against blow-up; enumeration fails with
/// InvalidArgument when |L| exceeds it. Subsets are induced in parallel
/// blocks on the global thread pool and merged in mask order, so the
/// result is byte-identical to a serial run.
Result<WrapperSpace> EnumerateNaive(const WrapperInductor& inductor,
                                    const PageSet& pages, const NodeSet& labels,
                                    size_t max_labels = 20);

/// Algorithm 1 (BottomUp): blackbox enumeration for well-behaved inductors.
/// Expands closed label subsets φ̆(s) = φ(s) ∩ L smallest-first; makes at
/// most k·|L| inductor calls where k = |W(L)| (Theorem 2). The engine
/// processes one frontier round at a time: every (s, label) expansion of
/// the round is probed concurrently through a memoizing InductionCache and
/// merged into the space in deterministic (set, label) index order. The
/// set of subsets ever expanded is the closure of ∅ under φ̆ and is
/// order-independent, so the enumerated space, the call accounting and the
/// cache totals are identical at every thread count.
WrapperSpace EnumerateBottomUp(const WrapperInductor& inductor,
                               const PageSet& pages, const NodeSet& labels);

/// Algorithm 2 (TopDown): enumeration for feature-based inductors via
/// repeated subdivision; makes exactly k inductor calls (Theorem 3).
WrapperSpace EnumerateTopDown(const FeatureBasedInductor& inductor,
                              const PageSet& pages, const NodeSet& labels);

/// Which enumeration algorithm an end-to-end run should use.
enum class EnumAlgorithm {
  kBottomUp,
  kTopDown,
  kNaive,
};

const char* EnumAlgorithmName(EnumAlgorithm algo);

/// Dispatches on `algo`. TopDown requires a FeatureBasedInductor and
/// reports FailedPrecondition otherwise.
Result<WrapperSpace> Enumerate(EnumAlgorithm algo,
                               const WrapperInductor& inductor,
                               const PageSet& pages, const NodeSet& labels);

}  // namespace ntw::core

#endif  // NTW_CORE_ENUMERATE_H_
