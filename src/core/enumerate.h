#ifndef NTW_CORE_ENUMERATE_H_
#define NTW_CORE_ENUMERATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/wrapper.h"

namespace ntw::core {

/// One enumerated candidate: the wrapper, its extraction X on the training
/// pages, and the label subset that produced it (for diagnostics).
struct Candidate {
  WrapperPtr wrapper;
  NodeSet extraction;
  NodeSet trained_on;
};

/// The wrapper space W(L) = {φ(L') : ∅ ≠ L' ⊆ L}, deduplicated by
/// extraction output, plus instrumentation.
struct WrapperSpace {
  std::vector<Candidate> candidates;
  int64_t inductor_calls = 0;

  size_t size() const { return candidates.size(); }
};

/// Exhaustive baseline: calls φ on every non-empty subset of L (2^|L|−1
/// calls). `max_labels` guards against blow-up; enumeration fails with
/// InvalidArgument when |L| exceeds it.
Result<WrapperSpace> EnumerateNaive(const WrapperInductor& inductor,
                                    const PageSet& pages, const NodeSet& labels,
                                    size_t max_labels = 20);

/// Algorithm 1 (BottomUp): blackbox enumeration for well-behaved inductors.
/// Expands closed label subsets φ̆(s) = φ(s) ∩ L smallest-first; makes at
/// most k·|L| inductor calls where k = |W(L)| (Theorem 2).
WrapperSpace EnumerateBottomUp(const WrapperInductor& inductor,
                               const PageSet& pages, const NodeSet& labels);

/// Algorithm 2 (TopDown): enumeration for feature-based inductors via
/// repeated subdivision; makes exactly k inductor calls (Theorem 3).
WrapperSpace EnumerateTopDown(const FeatureBasedInductor& inductor,
                              const PageSet& pages, const NodeSet& labels);

/// Which enumeration algorithm an end-to-end run should use.
enum class EnumAlgorithm {
  kBottomUp,
  kTopDown,
  kNaive,
};

const char* EnumAlgorithmName(EnumAlgorithm algo);

/// Dispatches on `algo`. TopDown requires a FeatureBasedInductor and
/// reports FailedPrecondition otherwise.
Result<WrapperSpace> Enumerate(EnumAlgorithm algo,
                               const WrapperInductor& inductor,
                               const PageSet& pages, const NodeSet& labels);

}  // namespace ntw::core

#endif  // NTW_CORE_ENUMERATE_H_
