#include "core/xpath_inductor.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace ntw::core {
namespace {

/// φ(∅): extracts nothing.
class EmptyXPathWrapper : public Wrapper {
 public:
  NodeSet Extract(const PageSet&) const override { return NodeSet(); }
  std::string ToString() const override { return "XPATH(empty)"; }
};

/// Ancestors of a node from distance 1 upward, excluding the synthetic
/// document root.
std::vector<const html::Node*> AncestorChain(const html::Node* node) {
  std::vector<const html::Node*> chain;
  for (const html::Node* cur = node->parent();
       cur != nullptr && cur->is_element(); cur = cur->parent()) {
    chain.push_back(cur);
  }
  return chain;
}

// Attribute-handle layout: pos (12 bits) | kind (2 bits) | name id (18
// bits). Attribute names are interned in a process-wide append-only table
// so handles stay decodable across calls.
constexpr int kKindTag = 0;
constexpr int kKindTagChildNumber = 1;
constexpr int kKindAttr = 2;

AttrHandle MakeHandle(int pos, int kind, int name_id) {
  return (pos << 20) | (kind << 18) | name_id;
}
int HandlePos(AttrHandle h) { return h >> 20; }
int HandleKind(AttrHandle h) { return (h >> 18) & 0x3; }
int HandleNameId(AttrHandle h) { return h & 0x3ffff; }

class AttrNameTable {
 public:
  int Intern(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = ids_.emplace(name, static_cast<int>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }
  std::string Lookup(int id) {
    std::lock_guard<std::mutex> lock(mu_);
    return names_[static_cast<size_t>(id)];
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> names_;
};

AttrNameTable& NameTable() {
  static AttrNameTable* table = new AttrNameTable();
  return *table;
}

}  // namespace

NodeSet XPathWrapper::Extract(const PageSet& pages) const {
  std::vector<NodeRef> out;
  for (size_t p = 0; p < pages.size(); ++p) {
    for (const html::Node* node : xpath::Evaluate(expr_, pages.page(p))) {
      out.push_back(NodeRef{static_cast<int>(p), node->preorder_index()});
    }
  }
  return NodeSet(std::move(out));
}

xpath::Expr XPathInductor::LearnExpr(const PageSet& pages,
                                     const NodeSet& labels) const {
  assert(!labels.empty());

  // Resolve labels to text nodes and their ancestor chains.
  std::vector<const html::Node*> nodes;
  std::vector<std::vector<const html::Node*>> chains;
  for (const NodeRef& ref : labels) {
    const html::Node* node = pages.Resolve(ref);
    if (node == nullptr || !node->is_text()) continue;
    nodes.push_back(node);
    chains.push_back(AncestorChain(node));
  }
  assert(!nodes.empty());

  size_t min_depth = chains[0].size();
  for (const auto& chain : chains) min_depth = std::min(min_depth, chain.size());

  // Position-0 child number of the text node itself.
  std::optional<int> text_child_number = nodes[0]->sibling_index() + 1;
  for (const html::Node* node : nodes) {
    if (node->sibling_index() + 1 != *text_child_number) {
      text_child_number.reset();
      break;
    }
  }

  xpath::Expr expr;
  // Steps from the highest shared position down to position 1.
  for (size_t pos = min_depth; pos >= 1; --pos) {
    xpath::Step step;
    step.axis = (pos == min_depth) ? xpath::Axis::kDescendant
                                   : xpath::Axis::kChild;

    const html::Node* first = chains[0][pos - 1];
    bool tag_common = true;
    bool child_number_common = true;
    for (const auto& chain : chains) {
      const html::Node* anc = chain[pos - 1];
      if (anc->tag() != first->tag()) tag_common = false;
      if (anc->same_tag_child_number() != first->same_tag_child_number()) {
        child_number_common = false;
      }
    }
    if (tag_common) {
      step.test = xpath::NodeTest::kTag;
      step.tag = first->tag();
      if (child_number_common) {
        step.child_number = first->same_tag_child_number();
      }
    } else {
      step.test = xpath::NodeTest::kAnyElement;
    }

    // Attribute filters: attributes present with identical values on the
    // position-pos ancestor of every label.
    for (const auto& [name, value] : first->attrs()) {
      bool common = true;
      for (const auto& chain : chains) {
        const std::string* other = chain[pos - 1]->GetAttr(name);
        if (other == nullptr || *other != value) {
          common = false;
          break;
        }
      }
      if (common) step.attr_filters.emplace_back(name, value);
    }
    std::sort(step.attr_filters.begin(), step.attr_filters.end());
    expr.steps.push_back(std::move(step));
  }

  // Strip the maximal prefix of unconstrained `*` steps: a bare `*` at
  // the top encodes only "some ancestor exists at that distance", which is
  // not a feature of the representation — keeping it would make φ deviate
  // from the feature-based semantics {n | F(n) ⊇ ∩F(ℓ)} and break the
  // TopDown/BottomUp equivalence (Theorems 1-3). Interior `*` steps stay:
  // they pin the exact distance between constrained positions, which the
  // position-indexed features do express.
  auto is_unconstrained = [](const xpath::Step& step) {
    return step.test == xpath::NodeTest::kAnyElement &&
           !step.child_number.has_value() && step.attr_filters.empty();
  };
  size_t first_constrained = 0;
  while (first_constrained < expr.steps.size() &&
         is_unconstrained(expr.steps[first_constrained])) {
    ++first_constrained;
  }
  expr.steps.erase(expr.steps.begin(),
                   expr.steps.begin() +
                       static_cast<long>(first_constrained));
  if (!expr.steps.empty()) {
    expr.steps.front().axis = xpath::Axis::kDescendant;
  }

  xpath::Step text_step;
  text_step.axis = expr.steps.empty() ? xpath::Axis::kDescendant
                                      : xpath::Axis::kChild;
  text_step.test = xpath::NodeTest::kText;
  text_step.child_number = text_child_number;
  expr.steps.push_back(std::move(text_step));
  return expr;
}

Induction XPathInductor::Induce(const PageSet& pages,
                                const NodeSet& labels) const {
  Induction result;
  if (labels.empty()) {
    result.wrapper = std::make_shared<EmptyXPathWrapper>();
    return result;
  }
  auto wrapper = std::make_shared<XPathWrapper>(LearnExpr(pages, labels));
  result.extraction = wrapper->Extract(pages).Union(labels);
  result.wrapper = std::move(wrapper);
  return result;
}

std::vector<AttrHandle> XPathInductor::Attributes(
    const PageSet& pages, const NodeSet& labels) const {
  std::vector<AttrHandle> attrs;
  if (labels.empty()) return attrs;

  std::map<AttrHandle, bool> seen;
  seen[MakeHandle(0, kKindTagChildNumber, 0)] = true;

  for (const NodeRef& ref : labels) {
    const html::Node* node = pages.Resolve(ref);
    if (node == nullptr || !node->is_text()) continue;
    auto chain = AncestorChain(node);
    for (size_t pos = 1; pos <= chain.size(); ++pos) {
      const html::Node* anc = chain[pos - 1];
      seen[MakeHandle(static_cast<int>(pos), kKindTag, 0)] = true;
      seen[MakeHandle(static_cast<int>(pos), kKindTagChildNumber, 0)] = true;
      for (const auto& [name, value] : anc->attrs()) {
        int name_id = NameTable().Intern(name);
        seen[MakeHandle(static_cast<int>(pos), kKindAttr, name_id)] = true;
      }
    }
  }
  attrs.reserve(seen.size());
  for (const auto& [handle, _] : seen) attrs.push_back(handle);
  return attrs;
}

std::vector<NodeSet> XPathInductor::Subdivide(const PageSet& pages,
                                              const NodeSet& s,
                                              AttrHandle attr) const {
  int pos = HandlePos(attr);
  int kind = HandleKind(attr);
  std::string attr_name =
      kind == kKindAttr ? NameTable().Lookup(HandleNameId(attr)) : "";

  std::map<std::string, std::vector<NodeRef>> groups;
  for (const NodeRef& ref : s) {
    const html::Node* node = pages.Resolve(ref);
    if (node == nullptr || !node->is_text()) continue;

    std::string value;
    if (pos == 0) {
      value = std::to_string(node->sibling_index() + 1);
    } else {
      auto chain = AncestorChain(node);
      if (static_cast<size_t>(pos) > chain.size()) continue;  // No attribute.
      const html::Node* anc = chain[static_cast<size_t>(pos) - 1];
      switch (kind) {
        case kKindTag:
          value = anc->tag();
          break;
        case kKindTagChildNumber:
          value = anc->tag() + "#" +
                  std::to_string(anc->same_tag_child_number());
          break;
        case kKindAttr: {
          const std::string* attr_value = anc->GetAttr(attr_name);
          if (attr_value == nullptr) continue;  // Lacks the attribute.
          value = *attr_value;
          break;
        }
        default:
          continue;
      }
    }
    groups[value].push_back(ref);
  }
  std::vector<NodeSet> out;
  out.reserve(groups.size());
  for (auto& [value, refs] : groups) {
    out.push_back(NodeSet(std::move(refs)));
  }
  return out;
}

}  // namespace ntw::core
