#include "core/lr_inductor.h"

#include <map>

#include "common/strings.h"

namespace ntw::core {
namespace {

/// φ(∅): extracts nothing.
class EmptyLrWrapper : public Wrapper {
 public:
  NodeSet Extract(const PageSet&) const override { return NodeSet(); }
  std::string ToString() const override { return "LR(empty)"; }
};

std::string Abbrev(const std::string& s) {
  constexpr size_t kMax = 40;
  if (s.size() <= kMax) return s;
  return s.substr(0, kMax / 2) + "..." + s.substr(s.size() - kMax / 2);
}

}  // namespace

NodeSet LrWrapper::Extract(const PageSet& pages) const {
  std::vector<NodeRef> out;
  for (size_t p = 0; p < pages.size(); ++p) {
    text::CharView view(pages.page(p));
    for (const text::TextSpan& span : view.spans()) {
      std::string_view before = view.Before(span, left_.size());
      std::string_view after = view.After(span, right_.size());
      if (before.size() == left_.size() && before == left_ &&
          after.size() == right_.size() && after == right_) {
        out.push_back(NodeRef{static_cast<int>(p),
                              span.node->preorder_index()});
      }
    }
  }
  return NodeSet(std::move(out));
}

std::string LrWrapper::ToString() const {
  return "LR(l='" + Abbrev(left_) + "', r='" + Abbrev(right_) + "')";
}

const std::vector<text::CharView>& LrInductor::Views(const PageSet& pages) {
  struct ViewCache {
    uint64_t id = 0;  // PageSet ids start at 1, so 0 never matches.
    std::vector<text::CharView> views;
  };
  thread_local ViewCache cache;
  if (cache.id != pages.id()) {
    cache.views.clear();
    cache.views.reserve(pages.size());
    for (size_t p = 0; p < pages.size(); ++p) {
      cache.views.emplace_back(pages.page(p));
    }
    cache.id = pages.id();
  }
  return cache.views;
}

Induction LrInductor::Induce(const PageSet& pages,
                             const NodeSet& labels) const {
  if (labels.empty()) {
    Induction result;
    result.wrapper = std::make_shared<EmptyLrWrapper>();
    return result;
  }
  const auto& views = Views(pages);

  std::vector<std::string_view> befores;
  std::vector<std::string_view> afters;
  befores.reserve(labels.size());
  afters.reserve(labels.size());
  for (const NodeRef& ref : labels) {
    const text::CharView& view = views[static_cast<size_t>(ref.page)];
    const text::TextSpan* span = view.SpanForNode(ref.node);
    if (span == nullptr) continue;  // Non-text label: contributes nothing.
    befores.push_back(view.Before(*span, max_context_));
    afters.push_back(view.After(*span, max_context_));
  }

  Induction result;
  if (befores.empty()) {
    result.wrapper = std::make_shared<EmptyLrWrapper>();
    result.extraction = labels;
    return result;
  }
  auto wrapper = std::make_shared<LrWrapper>(
      text::LongestCommonSuffix(befores), text::LongestCommonPrefix(afters));
  // Extraction over the cached views (avoids re-flattening every page).
  std::vector<NodeRef> out;
  for (size_t p = 0; p < pages.size(); ++p) {
    const text::CharView& view = views[p];
    const std::string& l = wrapper->left();
    const std::string& r = wrapper->right();
    for (const text::TextSpan& span : view.spans()) {
      std::string_view before = view.Before(span, l.size());
      std::string_view after = view.After(span, r.size());
      if (before.size() == l.size() && before == l &&
          after.size() == r.size() && after == r) {
        out.push_back(NodeRef{static_cast<int>(p),
                              span.node->preorder_index()});
      }
    }
  }
  result.wrapper = std::move(wrapper);
  result.extraction = NodeSet(std::move(out)).Union(labels);
  return result;
}

std::vector<AttrHandle> LrInductor::Attributes(const PageSet& pages,
                                               const NodeSet& labels) const {
  if (labels.empty()) return {};
  const auto& views = Views(pages);

  // Attributes are L1..Lk* / R1..Rk*, encoded as (k << 1) | side. k* is
  // the first length at which the label partition by k-character context
  // is all singletons: beyond it every further partition is a refinement
  // of singletons (possibly with boundary drop-outs), so no new subsets
  // can appear. Attributes whose partition (including the drop-out set)
  // is identical to the previous k's are skipped — they subdivide every
  // subset of the labels identically.
  auto partition_key = [&](bool left, size_t k, bool* all_singleton) {
    std::map<std::string, std::vector<NodeRef>> groups;
    std::string key;
    for (const NodeRef& ref : labels) {
      const text::CharView& view = views[static_cast<size_t>(ref.page)];
      const text::TextSpan* span = view.SpanForNode(ref.node);
      if (span == nullptr) continue;
      std::string_view ctx =
          left ? view.Before(*span, k) : view.After(*span, k);
      if (ctx.size() == k) {
        groups[std::string(ctx)].push_back(ref);
      } else {
        key += "!" + std::to_string(ref.page) + ":" + std::to_string(ref.node);
      }
    }
    *all_singleton = true;
    for (const auto& [ctx, refs] : groups) {
      key += "|";
      for (const NodeRef& ref : refs) {
        key += std::to_string(ref.page) + ":" + std::to_string(ref.node) + ",";
      }
      if (refs.size() > 1) *all_singleton = false;
    }
    return key;
  };

  std::vector<AttrHandle> attrs;
  for (int side = 0; side < 2; ++side) {
    bool left = side == 0;
    std::string prev_key;
    for (size_t k = 1; k <= max_context_; ++k) {
      bool all_singleton = false;
      std::string key = partition_key(left, k, &all_singleton);
      if (key != prev_key) {
        attrs.push_back(static_cast<AttrHandle>((k << 1) | (left ? 0 : 1)));
        prev_key = std::move(key);
      }
      if (all_singleton) break;
    }
  }
  return attrs;
}

std::vector<NodeSet> LrInductor::Subdivide(const PageSet& pages,
                                           const NodeSet& s,
                                           AttrHandle attr) const {
  const auto& views = Views(pages);
  size_t k = static_cast<size_t>(attr) >> 1;
  bool left = (attr & 1) == 0;

  std::map<std::string, std::vector<NodeRef>> groups;
  for (const NodeRef& ref : s) {
    const text::CharView& view = views[static_cast<size_t>(ref.page)];
    const text::TextSpan* span = view.SpanForNode(ref.node);
    if (span == nullptr) continue;
    std::string_view ctx = left ? view.Before(*span, k) : view.After(*span, k);
    // A node closer than k characters to the page boundary lacks the
    // attribute Lk/Rk.
    if (ctx.size() != k) continue;
    groups[std::string(ctx)].push_back(ref);
  }
  std::vector<NodeSet> out;
  out.reserve(groups.size());
  for (auto& [ctx, refs] : groups) {
    out.push_back(NodeSet(std::move(refs)));
  }
  return out;
}

}  // namespace ntw::core
