#include "core/wrapper.h"

#include <cassert>

namespace ntw::core {

std::vector<AttrHandle> CountingInductor::Attributes(
    const PageSet& pages, const NodeSet& labels) const {
  auto* feature_based = dynamic_cast<const FeatureBasedInductor*>(base_);
  assert(feature_based != nullptr &&
         "underlying inductor is not feature-based");
  return feature_based->Attributes(pages, labels);
}

std::vector<NodeSet> CountingInductor::Subdivide(const PageSet& pages,
                                                 const NodeSet& s,
                                                 AttrHandle attr) const {
  auto* feature_based = dynamic_cast<const FeatureBasedInductor*>(base_);
  assert(feature_based != nullptr &&
         "underlying inductor is not feature-based");
  return feature_based->Subdivide(pages, s, attr);
}

}  // namespace ntw::core
