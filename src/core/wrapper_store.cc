#include "core/wrapper_store.h"

#include "common/file_util.h"
#include "common/strings.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/xpath_inductor.h"
#include "xpath/parser.h"

namespace ntw::core {

Result<std::string> SerializeWrapper(const Wrapper& wrapper) {
  if (const auto* xp = dynamic_cast<const XPathWrapper*>(&wrapper)) {
    return "XPATH\t" + xp->expr().ToString();
  }
  if (const auto* lr = dynamic_cast<const LrWrapper*>(&wrapper)) {
    return "LR\t" + CEscape(lr->left()) + "\t" + CEscape(lr->right());
  }
  if (const auto* hlrt = dynamic_cast<const HlrtWrapper*>(&wrapper)) {
    return "HLRT\t" + CEscape(hlrt->head()) + "\t" + CEscape(hlrt->tail()) +
           "\t" + CEscape(hlrt->left()) + "\t" + CEscape(hlrt->right());
  }
  return Status::InvalidArgument("wrapper kind is not serializable: " +
                                 wrapper.ToString());
}

Result<WrapperPtr> DeserializeWrapper(const std::string& record) {
  // Trim only the trailing newline: empty delimiter fields (legal for LR)
  // must survive, so a whitespace strip would corrupt the record.
  std::string_view line = record;
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  std::vector<std::string> fields = Split(line, '\t');
  if (fields.empty() || fields[0].empty()) {
    return Status::ParseError("empty wrapper record");
  }
  const std::string& kind = fields[0];
  if (kind == "XPATH") {
    if (fields.size() != 2) {
      return Status::ParseError("XPATH record needs 1 field");
    }
    NTW_ASSIGN_OR_RETURN(xpath::Expr expr, xpath::ParseXPath(fields[1]));
    return WrapperPtr(std::make_shared<XPathWrapper>(std::move(expr)));
  }
  if (kind == "LR") {
    if (fields.size() != 3) {
      return Status::ParseError("LR record needs 2 fields");
    }
    NTW_ASSIGN_OR_RETURN(std::string left, CUnescape(fields[1]));
    NTW_ASSIGN_OR_RETURN(std::string right, CUnescape(fields[2]));
    return WrapperPtr(
        std::make_shared<LrWrapper>(std::move(left), std::move(right)));
  }
  if (kind == "HLRT") {
    if (fields.size() != 5) {
      return Status::ParseError("HLRT record needs 4 fields");
    }
    NTW_ASSIGN_OR_RETURN(std::string head, CUnescape(fields[1]));
    NTW_ASSIGN_OR_RETURN(std::string tail, CUnescape(fields[2]));
    NTW_ASSIGN_OR_RETURN(std::string left, CUnescape(fields[3]));
    NTW_ASSIGN_OR_RETURN(std::string right, CUnescape(fields[4]));
    return WrapperPtr(std::make_shared<HlrtWrapper>(
        std::move(head), std::move(tail), std::move(left),
        std::move(right)));
  }
  return Status::InvalidArgument("unknown wrapper kind '" + kind + "'");
}

Status SaveWrapper(const Wrapper& wrapper, const std::string& path) {
  NTW_ASSIGN_OR_RETURN(std::string record, SerializeWrapper(wrapper));
  return WriteFile(path, record + "\n");
}

Result<WrapperPtr> LoadWrapper(const std::string& path) {
  NTW_ASSIGN_OR_RETURN(std::string contents, ReadFile(path));
  return DeserializeWrapper(contents);
}

}  // namespace ntw::core
