#ifndef NTW_CORE_METRICS_H_
#define NTW_CORE_METRICS_H_

#include <string>
#include <vector>

#include "core/label.h"

namespace ntw::core {

/// Precision / recall / F1 of an extraction against ground truth.
struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t true_positives = 0;
  size_t extracted = 0;
  size_t expected = 0;
};

/// Computes node-level P/R/F1. Conventions: precision of an empty
/// extraction is 1 when the truth is also empty, else 0 is avoided by
/// defining precision = 1 for empty extraction (nothing wrongly
/// extracted) and recall = 0; F1 follows from the pair.
Prf Evaluate(const NodeSet& extraction, const NodeSet& truth);

/// Macro-average over per-site results (the paper reports averages over
/// websites).
Prf MacroAverage(const std::vector<Prf>& results);

/// "precision=0.97 recall=0.99 f1=0.98"
std::string ToString(const Prf& prf);

}  // namespace ntw::core

#endif  // NTW_CORE_METRICS_H_
