#include "core/enumerate.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace ntw::core {
namespace {

/// Deduplicates candidates by extraction output. Two wrappers are the same
/// element of W(L) iff they extract the same node set (Sec. 6: a wrapper's
/// identity is its output).
class CandidateCollector {
 public:
  void Add(Induction induction, const NodeSet& trained_on) {
    if (induction.extraction.empty()) return;  // φ(∅)-like results.
    uint64_t fp = induction.extraction.Fingerprint();
    auto [it, inserted] = by_fingerprint_.emplace(fp, candidates_.size());
    if (!inserted) {
      // Fingerprint collision check: compare actual sets.
      if (candidates_[it->second].extraction == induction.extraction) return;
      // Genuine collision (vanishingly rare): fall through and keep both.
    }
    Candidate c;
    c.wrapper = std::move(induction.wrapper);
    c.extraction = std::move(induction.extraction);
    c.trained_on = trained_on;
    candidates_.push_back(std::move(c));
  }

  std::vector<Candidate> Take() { return std::move(candidates_); }

 private:
  std::unordered_map<uint64_t, size_t> by_fingerprint_;
  std::vector<Candidate> candidates_;
};

}  // namespace

Result<WrapperSpace> EnumerateNaive(const WrapperInductor& inductor,
                                    const PageSet& pages,
                                    const NodeSet& labels, size_t max_labels) {
  if (labels.size() > max_labels) {
    return Status::InvalidArgument(
        "naive enumeration over " + std::to_string(labels.size()) +
        " labels would need 2^" + std::to_string(labels.size()) + " calls");
  }
  WrapperSpace space;
  CandidateCollector collector;
  const auto& refs = labels.refs();
  uint64_t subset_count = 1ULL << labels.size();
  for (uint64_t mask = 1; mask < subset_count; ++mask) {
    std::vector<NodeRef> subset;
    for (size_t i = 0; i < refs.size(); ++i) {
      if (mask & (1ULL << i)) subset.push_back(refs[i]);
    }
    NodeSet subset_set(std::move(subset));
    collector.Add(inductor.Induce(pages, subset_set), subset_set);
    ++space.inductor_calls;
  }
  space.candidates = collector.Take();
  return space;
}

WrapperSpace EnumerateBottomUp(const WrapperInductor& inductor,
                               const PageSet& pages, const NodeSet& labels) {
  WrapperSpace space;
  CandidateCollector collector;

  // Z holds closed subsets of L pending expansion, smallest first
  // (Algorithm 1 step 4). Sets are identified by their sorted ref vector.
  struct SizeOrder {
    bool operator()(const NodeSet& a, const NodeSet& b) const {
      if (a.size() != b.size()) return a.size() < b.size();
      return std::lexicographical_compare(
          a.refs().begin(), a.refs().end(), b.refs().begin(), b.refs().end(),
          [](const NodeRef& x, const NodeRef& y) { return x < y; });
    }
  };
  std::set<NodeSet, SizeOrder> z;
  std::set<NodeSet, SizeOrder> ever_queued;  // Never expand a set twice.

  z.insert(NodeSet());
  ever_queued.insert(NodeSet());

  while (!z.empty()) {
    NodeSet s = *z.begin();  // Smallest set (step 4).
    z.erase(z.begin());

    for (const NodeRef& label : labels) {
      if (s.Contains(label)) continue;
      NodeSet expanded = s;
      expanded.Insert(label);

      Induction induction = inductor.Induce(pages, expanded);  // Step 7.
      ++space.inductor_calls;
      NodeSet closure = induction.extraction.Intersect(labels);  // Step 8.
      collector.Add(std::move(induction), expanded);             // Step 9.

      if (!(closure == labels) && !ever_queued.count(closure)) {  // Step 10.
        z.insert(closure);
        ever_queued.insert(closure);
      }
    }
  }

  space.candidates = collector.Take();
  return space;
}

WrapperSpace EnumerateTopDown(const FeatureBasedInductor& inductor,
                              const PageSet& pages, const NodeSet& labels) {
  WrapperSpace space;
  if (labels.empty()) return space;

  // Z starts as {L}; each attribute subdivides every set currently in Z
  // (Algorithm 2). Sets created while processing attribute a are constant
  // on a, so the per-attribute snapshot loop is sufficient.
  std::vector<NodeSet> z = {labels};
  std::unordered_set<uint64_t> seen = {labels.Fingerprint()};

  std::vector<AttrHandle> attrs = inductor.Attributes(pages, labels);
  for (AttrHandle attr : attrs) {
    size_t snapshot_size = z.size();
    for (size_t i = 0; i < snapshot_size; ++i) {
      // Note: Subdivide may not be called on z[i] by reference while z
      // grows; copy the set first.
      NodeSet s = z[i];
      for (NodeSet& group : inductor.Subdivide(pages, s, attr)) {
        if (group.empty()) continue;
        uint64_t fp = group.Fingerprint();
        if (seen.insert(fp).second) {
          z.push_back(std::move(group));
        }
      }
    }
  }

  CandidateCollector collector;
  for (const NodeSet& s : z) {
    collector.Add(inductor.Induce(pages, s), s);
    ++space.inductor_calls;
  }
  space.candidates = collector.Take();
  return space;
}

const char* EnumAlgorithmName(EnumAlgorithm algo) {
  switch (algo) {
    case EnumAlgorithm::kBottomUp:
      return "BottomUp";
    case EnumAlgorithm::kTopDown:
      return "TopDown";
    case EnumAlgorithm::kNaive:
      return "Naive";
  }
  return "Unknown";
}

Result<WrapperSpace> Enumerate(EnumAlgorithm algo,
                               const WrapperInductor& inductor,
                               const PageSet& pages, const NodeSet& labels) {
  switch (algo) {
    case EnumAlgorithm::kBottomUp:
      return EnumerateBottomUp(inductor, pages, labels);
    case EnumAlgorithm::kTopDown: {
      const auto* feature_based =
          dynamic_cast<const FeatureBasedInductor*>(&inductor);
      if (feature_based == nullptr) {
        return Status::FailedPrecondition(
            "TopDown requires a feature-based inductor; " + inductor.Name() +
            " is not one");
      }
      return EnumerateTopDown(*feature_based, pages, labels);
    }
    case EnumAlgorithm::kNaive:
      return EnumerateNaive(inductor, pages, labels);
  }
  return Status::Internal("unknown enumeration algorithm");
}

}  // namespace ntw::core
