#include "core/enumerate.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "core/induction_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ntw::core {
namespace {

/// Enumeration instruments. Updated during the serial merge phases only,
/// so they add nothing to the parallel induction hot path.
struct EnumMetrics {
  obs::Counter* runs;
  obs::Counter* inductor_calls;  // Logical calls (the theorems' count).
  obs::Histogram* labels;        // |L| per enumeration.
  obs::Histogram* space_size;    // |W(L)| per enumeration.
  obs::Histogram* rounds;        // BottomUp frontier rounds.

  static EnumMetrics& Get() {
    static EnumMetrics m{
        obs::Registry::Global().GetCounter("ntw.enumerate.runs"),
        obs::Registry::Global().GetCounter("ntw.enumerate.inductor_calls"),
        obs::Registry::Global().GetHistogram("ntw.enumerate.labels"),
        obs::Registry::Global().GetHistogram("ntw.enumerate.space_size"),
        obs::Registry::Global().GetHistogram("ntw.enumerate.rounds"),
    };
    return m;
  }

  void Finish(const WrapperSpace& space, const NodeSet& label_set) {
    runs->Add(1);
    inductor_calls->Add(space.inductor_calls);
    labels->Record(static_cast<int64_t>(label_set.size()));
    space_size->Record(static_cast<int64_t>(space.size()));
  }
};

/// Deduplicates candidates by extraction output. Two wrappers are the same
/// element of W(L) iff they extract the same node set (Sec. 6: a wrapper's
/// identity is its output).
class CandidateCollector {
 public:
  void Add(Induction induction, const NodeSet& trained_on) {
    if (induction.extraction.empty()) return;  // φ(∅)-like results.
    uint64_t fp = induction.extraction.Fingerprint();
    auto [it, inserted] = by_fingerprint_.emplace(fp, candidates_.size());
    if (!inserted) {
      // Fingerprint collision check: compare actual sets.
      if (candidates_[it->second].extraction == induction.extraction) return;
      // Genuine collision (vanishingly rare): fall through and keep both.
    }
    Candidate c;
    c.wrapper = std::move(induction.wrapper);
    c.extraction = std::move(induction.extraction);
    c.trained_on = trained_on;
    candidates_.push_back(std::move(c));
  }

  std::vector<Candidate> Take() { return std::move(candidates_); }

 private:
  std::unordered_map<uint64_t, size_t> by_fingerprint_;
  std::vector<Candidate> candidates_;
};

}  // namespace

Result<WrapperSpace> EnumerateNaive(const WrapperInductor& inductor,
                                    const PageSet& pages,
                                    const NodeSet& labels, size_t max_labels) {
  if (labels.size() > max_labels) {
    return Status::InvalidArgument(
        "naive enumeration over " + std::to_string(labels.size()) +
        " labels would need 2^" + std::to_string(labels.size()) + " calls");
  }
  obs::Span span("enumerate.naive");
  WrapperSpace space;
  CandidateCollector collector;
  const auto& refs = labels.refs();
  uint64_t last_mask = (1ULL << labels.size()) - 1;
  ThreadPool& pool = ThreadPool::Global();

  // Every mask is a distinct subset, so memoization cannot hit; induce in
  // parallel blocks and merge in mask order (byte-identical to serial).
  // Blocks bound the in-flight Induction memory to O(block) instead of
  // O(2^|L|).
  uint64_t block = static_cast<uint64_t>(pool.threads()) * 64;
  if (block < 256) block = 256;
  std::vector<NodeSet> subset_slots(block);
  std::vector<Induction> result_slots(block);
  for (uint64_t base = 1; base <= last_mask; base += block) {
    uint64_t count = std::min<uint64_t>(block, last_mask - base + 1);
    pool.ParallelFor(static_cast<size_t>(count), [&](size_t j) {
      uint64_t mask = base + j;
      std::vector<NodeRef> subset;
      for (size_t i = 0; i < refs.size(); ++i) {
        if (mask & (1ULL << i)) subset.push_back(refs[i]);
      }
      subset_slots[j] = NodeSet(std::move(subset));
      result_slots[j] = InstrumentedInduce(inductor, pages, subset_slots[j]);
    });
    for (uint64_t j = 0; j < count; ++j) {
      collector.Add(std::move(result_slots[j]), subset_slots[j]);
      ++space.inductor_calls;
    }
  }
  space.cache_misses = space.inductor_calls;
  space.candidates = collector.Take();
  EnumMetrics::Get().Finish(space, labels);
  return space;
}

namespace {

/// Size-then-lexicographic order over label subsets — the smallest-first
/// expansion order of Algorithm 1 step 4, also used to keep each round's
/// frontier deterministic.
struct SizeOrder {
  bool operator()(const NodeSet& a, const NodeSet& b) const {
    if (a.size() != b.size()) return a.size() < b.size();
    return std::lexicographical_compare(
        a.refs().begin(), a.refs().end(), b.refs().begin(), b.refs().end(),
        [](const NodeRef& x, const NodeRef& y) { return x < y; });
  }
};

}  // namespace

WrapperSpace EnumerateBottomUp(const WrapperInductor& inductor,
                               const PageSet& pages, const NodeSet& labels) {
  obs::Span span("enumerate.bottomup");
  WrapperSpace space;
  CandidateCollector collector;
  InductionCache cache;
  ThreadPool& pool = ThreadPool::Global();
  int64_t rounds = 0;

  // The set of closed subsets ever expanded is the closure of {∅} under
  // s ↦ φ̆(s ∪ {ℓ}) and does not depend on expansion order, so instead of
  // popping one smallest set at a time (Algorithm 1 step 4) the engine
  // expands the whole frontier of a round concurrently. Z_round holds the
  // sets discovered in the previous round, smallest-first.
  std::set<NodeSet, SizeOrder> ever_queued;  // Never expand a set twice.
  std::vector<NodeSet> frontier;
  frontier.push_back(NodeSet());
  ever_queued.insert(NodeSet());

  struct Expansion {
    NodeSet expanded;  // s ∪ {ℓ}.
    Induction induction;
    NodeSet closure;  // φ̆(s ∪ {ℓ}) = φ(s ∪ {ℓ}) ∩ L.
  };

  while (!frontier.empty()) {
    ++rounds;
    // All (s, label) expansion tasks of this round, in (set, label) order.
    std::vector<std::pair<const NodeSet*, const NodeRef*>> tasks;
    for (const NodeSet& s : frontier) {
      for (const NodeRef& label : labels) {
        if (!s.Contains(label)) tasks.emplace_back(&s, &label);
      }
    }

    std::vector<Expansion> results(tasks.size());
    pool.ParallelFor(tasks.size(), [&](size_t i) {
      Expansion& out = results[i];
      out.expanded = *tasks[i].first;
      out.expanded.Insert(*tasks[i].second);
      out.induction = cache.GetOrInduce(inductor, pages, out.expanded);
      out.closure = out.induction.extraction.Intersect(labels);  // Step 8.
    });

    // Deterministic merge: collect candidates and discover the next
    // frontier in task index order, exactly as a serial pass would.
    std::set<NodeSet, SizeOrder> next;
    for (Expansion& r : results) {
      ++space.inductor_calls;                         // Step 7 (logical).
      collector.Add(std::move(r.induction), r.expanded);  // Step 9.
      if (!(r.closure == labels) && !ever_queued.count(r.closure)) {
        ever_queued.insert(r.closure);  // Step 10.
        next.insert(std::move(r.closure));
      }
    }
    frontier.assign(next.begin(), next.end());
  }

  space.cache_hits = cache.hits();
  space.cache_misses = cache.misses();
  space.candidates = collector.Take();
  EnumMetrics::Get().Finish(space, labels);
  EnumMetrics::Get().rounds->Record(rounds);
  return space;
}

WrapperSpace EnumerateTopDown(const FeatureBasedInductor& inductor,
                              const PageSet& pages, const NodeSet& labels) {
  obs::Span span("enumerate.topdown");
  WrapperSpace space;
  if (labels.empty()) return space;

  // Z starts as {L}; each attribute subdivides every set currently in Z
  // (Algorithm 2). Sets created while processing attribute a are constant
  // on a, so the per-attribute snapshot loop is sufficient.
  std::vector<NodeSet> z = {labels};
  std::unordered_set<uint64_t> seen = {labels.Fingerprint()};

  std::vector<AttrHandle> attrs = inductor.Attributes(pages, labels);
  for (AttrHandle attr : attrs) {
    size_t snapshot_size = z.size();
    for (size_t i = 0; i < snapshot_size; ++i) {
      // Note: Subdivide may not be called on z[i] by reference while z
      // grows; copy the set first.
      NodeSet s = z[i];
      for (NodeSet& group : inductor.Subdivide(pages, s, attr)) {
        if (group.empty()) continue;
        uint64_t fp = group.Fingerprint();
        if (seen.insert(fp).second) {
          z.push_back(std::move(group));
        }
      }
    }
  }

  // Final induction pass: every set in Z is fingerprint-distinct, so the
  // calls are independent — induce them in parallel and merge in Z order
  // (byte-identical to the serial loop).
  CandidateCollector collector;
  std::vector<Induction> inductions(z.size());
  ThreadPool::Global().ParallelFor(z.size(), [&](size_t i) {
    inductions[i] = InstrumentedInduce(inductor, pages, z[i]);
  });
  for (size_t i = 0; i < z.size(); ++i) {
    collector.Add(std::move(inductions[i]), z[i]);
    ++space.inductor_calls;
  }
  space.cache_misses = space.inductor_calls;
  space.candidates = collector.Take();
  EnumMetrics::Get().Finish(space, labels);
  return space;
}

const char* EnumAlgorithmName(EnumAlgorithm algo) {
  switch (algo) {
    case EnumAlgorithm::kBottomUp:
      return "BottomUp";
    case EnumAlgorithm::kTopDown:
      return "TopDown";
    case EnumAlgorithm::kNaive:
      return "Naive";
  }
  return "Unknown";
}

Result<WrapperSpace> Enumerate(EnumAlgorithm algo,
                               const WrapperInductor& inductor,
                               const PageSet& pages, const NodeSet& labels) {
  switch (algo) {
    case EnumAlgorithm::kBottomUp:
      return EnumerateBottomUp(inductor, pages, labels);
    case EnumAlgorithm::kTopDown: {
      const auto* feature_based =
          dynamic_cast<const FeatureBasedInductor*>(&inductor);
      if (feature_based == nullptr) {
        return Status::FailedPrecondition(
            "TopDown requires a feature-based inductor; " + inductor.Name() +
            " is not one");
      }
      return EnumerateTopDown(*feature_based, pages, labels);
    }
    case EnumAlgorithm::kNaive:
      return EnumerateNaive(inductor, pages, labels);
  }
  return Status::Internal("unknown enumeration algorithm");
}

}  // namespace ntw::core
