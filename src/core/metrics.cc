#include "core/metrics.h"

#include "common/strings.h"

namespace ntw::core {

Prf Evaluate(const NodeSet& extraction, const NodeSet& truth) {
  Prf prf;
  prf.true_positives = extraction.IntersectSize(truth);
  prf.extracted = extraction.size();
  prf.expected = truth.size();
  prf.precision = extraction.empty()
                      ? 1.0
                      : static_cast<double>(prf.true_positives) /
                            static_cast<double>(extraction.size());
  prf.recall = truth.empty() ? 1.0
                             : static_cast<double>(prf.true_positives) /
                                   static_cast<double>(truth.size());
  prf.f1 = (prf.precision + prf.recall) > 0.0
               ? 2.0 * prf.precision * prf.recall /
                     (prf.precision + prf.recall)
               : 0.0;
  return prf;
}

Prf MacroAverage(const std::vector<Prf>& results) {
  Prf avg;
  if (results.empty()) return avg;
  for (const Prf& prf : results) {
    avg.precision += prf.precision;
    avg.recall += prf.recall;
    avg.f1 += prf.f1;
    avg.true_positives += prf.true_positives;
    avg.extracted += prf.extracted;
    avg.expected += prf.expected;
  }
  double n = static_cast<double>(results.size());
  avg.precision /= n;
  avg.recall /= n;
  avg.f1 /= n;
  return avg;
}

std::string ToString(const Prf& prf) {
  return StrFormat("precision=%.3f recall=%.3f f1=%.3f", prf.precision,
                   prf.recall, prf.f1);
}

}  // namespace ntw::core
