#include "core/induction_cache.h"

namespace ntw::core {

Induction InductionCache::GetOrInduce(const WrapperInductor& inductor,
                                      const PageSet& pages,
                                      const NodeSet& labels) {
  uint64_t fp = labels.Fingerprint();
  std::promise<Induction> promise;
  std::shared_future<Induction> result;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Entry>& bucket = entries_[fp];
    for (const Entry& entry : bucket) {
      if (entry.labels == labels) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        result = entry.result;
        break;
      }
    }
    if (!result.valid()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      result = promise.get_future().share();
      bucket.push_back(Entry{labels, result});
      owner = true;
    }
  }
  if (owner) {
    // Single flight: this thread won the insert race and owns the call.
    try {
      promise.set_value(inductor.Induce(pages, labels));
    } catch (...) {
      promise.set_exception(std::current_exception());
      throw;
    }
  }
  return result.get();  // Copies out of the cache (waits if in flight).
}

size_t InductionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [fp, bucket] : entries_) total += bucket.size();
  return total;
}

}  // namespace ntw::core
