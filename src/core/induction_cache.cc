#include "core/induction_cache.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ntw::core {
namespace {

struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;

  static CacheMetrics& Get() {
    static CacheMetrics m{
        obs::Registry::Global().GetCounter("ntw.cache.hits"),
        obs::Registry::Global().GetCounter("ntw.cache.misses"),
    };
    return m;
  }
};

}  // namespace

Induction InstrumentedInduce(const WrapperInductor& inductor,
                             const PageSet& pages, const NodeSet& labels) {
  static obs::Counter* const calls =
      obs::Registry::Global().GetCounter("ntw.induce.calls");
  static obs::Histogram* const latency =
      obs::Registry::Global().GetHistogram("ntw.induce.ns");
  obs::Span span("induce");
  calls->Add(1);
  auto start = std::chrono::steady_clock::now();
  Induction induction = inductor.Induce(pages, labels);
  latency->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count());
  return induction;
}

Induction InductionCache::GetOrInduce(const WrapperInductor& inductor,
                                      const PageSet& pages,
                                      const NodeSet& labels) {
  uint64_t fp = labels.Fingerprint();
  std::promise<Induction> promise;
  std::shared_future<Induction> result;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Entry>& bucket = entries_[fp];
    for (const Entry& entry : bucket) {
      if (entry.labels == labels) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        CacheMetrics::Get().hits->Add(1);
        result = entry.result;
        break;
      }
    }
    if (!result.valid()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::Get().misses->Add(1);
      result = promise.get_future().share();
      bucket.push_back(Entry{labels, result});
      owner = true;
    }
  }
  if (owner) {
    // Single flight: this thread won the insert race and owns the call.
    try {
      promise.set_value(InstrumentedInduce(inductor, pages, labels));
    } catch (...) {
      promise.set_exception(std::current_exception());
      throw;
    }
  }
  return result.get();  // Copies out of the cache (waits if in flight).
}

size_t InductionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [fp, bucket] : entries_) total += bucket.size();
  return total;
}

}  // namespace ntw::core
