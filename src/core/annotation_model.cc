#include "core/annotation_model.h"

#include <algorithm>
#include <cmath>

namespace ntw::core {
namespace {

constexpr double kEps = 1e-4;

}  // namespace

AnnotationModel::AnnotationModel(double p, double r)
    : p_(std::clamp(p, kEps, 1.0 - kEps)),
      r_(std::clamp(r, kEps, 1.0 - kEps)) {}

double AnnotationModel::LogProb(const NodeSet& labels,
                                const NodeSet& extraction) const {
  double hit_weight = std::log(r_ / (1.0 - p_));
  double miss_weight = std::log((1.0 - r_) / p_);
  size_t hits = labels.IntersectSize(extraction);
  size_t misses = extraction.size() - hits;  // |X \ L|.
  return static_cast<double>(hits) * hit_weight +
         static_cast<double>(misses) * miss_weight;
}

void AnnotationModel::Accumulator::Observe(const NodeSet& labels,
                                           const NodeSet& truth,
                                           size_t universe_size) {
  size_t hits = labels.IntersectSize(truth);
  label_hits += hits;
  truth_total += truth.size();
  label_misses += labels.size() - hits;
  non_truth_total += universe_size - truth.size();
}

Result<AnnotationModel> AnnotationModel::Accumulator::Finish() const {
  if (truth_total == 0 || non_truth_total == 0) {
    return Status::FailedPrecondition(
        "annotation model estimation needs non-degenerate ground truth");
  }
  double r = static_cast<double>(label_hits) /
             static_cast<double>(truth_total);
  double p = 1.0 - static_cast<double>(label_misses) /
                       static_cast<double>(non_truth_total);
  return AnnotationModel(p, r);
}

Result<AnnotationModel> AnnotationModel::Estimate(const NodeSet& labels,
                                                  const NodeSet& truth,
                                                  size_t universe_size) {
  Accumulator acc;
  acc.Observe(labels, truth, universe_size);
  return acc.Finish();
}

}  // namespace ntw::core
