#include "core/hlrt_inductor.h"

#include <algorithm>

#include "text/char_view.h"

namespace ntw::core {
namespace {

/// φ(∅): extracts nothing.
class EmptyHlrtWrapper : public Wrapper {
 public:
  NodeSet Extract(const PageSet&) const override { return NodeSet(); }
  std::string ToString() const override { return "HLRT(empty)"; }
};

std::string Abbrev(const std::string& s) {
  constexpr size_t kMax = 28;
  if (s.size() <= kMax) return s;
  return s.substr(0, kMax / 2) + "..." + s.substr(s.size() - kMax / 2);
}

/// The extraction region [begin, end) of a page: after the first
/// occurrence of head, before the first occurrence of tail after that.
std::pair<size_t, size_t> Region(const std::string& stream,
                                 const std::string& head,
                                 const std::string& tail) {
  size_t begin = 0;
  if (!head.empty()) {
    size_t pos = stream.find(head);
    if (pos == std::string::npos) return {0, 0};  // No region at all.
    begin = pos + head.size();
  }
  size_t end = stream.size();
  if (!tail.empty()) {
    size_t pos = stream.find(tail, begin);
    if (pos != std::string::npos) end = pos;
  }
  return {begin, end};
}

NodeSet ExtractHlrt(const PageSet& pages, const std::string& head,
                    const std::string& tail, const std::string& left,
                    const std::string& right) {
  std::vector<NodeRef> out;
  for (size_t p = 0; p < pages.size(); ++p) {
    text::CharView view(pages.page(p));
    auto [begin, end] = Region(view.stream(), head, tail);
    for (const text::TextSpan& span : view.spans()) {
      if (span.begin < begin || span.end > end) continue;
      std::string_view before = view.Before(span, left.size());
      std::string_view after = view.After(span, right.size());
      if (before.size() == left.size() && before == left &&
          after.size() == right.size() && after == right) {
        out.push_back(
            NodeRef{static_cast<int>(p), span.node->preorder_index()});
      }
    }
  }
  return NodeSet(std::move(out));
}

}  // namespace

NodeSet HlrtWrapper::Extract(const PageSet& pages) const {
  return ExtractHlrt(pages, head_, tail_, left_, right_);
}

std::string HlrtWrapper::ToString() const {
  return "HLRT(h='" + Abbrev(head_) + "', t='" + Abbrev(tail_) + "', l='" +
         Abbrev(left_) + "', r='" + Abbrev(right_) + "')";
}

Induction HlrtInductor::Induce(const PageSet& pages,
                               const NodeSet& labels) const {
  Induction result;
  if (labels.empty()) {
    result.wrapper = std::make_shared<EmptyHlrtWrapper>();
    return result;
  }

  // Per-page views and label spans.
  std::vector<text::CharView> views;
  views.reserve(pages.size());
  for (size_t p = 0; p < pages.size(); ++p) {
    views.emplace_back(pages.page(p));
  }

  std::vector<std::string_view> befores, afters;
  // First/last label span per labeled page.
  std::vector<std::pair<size_t, size_t>> page_extent(
      pages.size(), {std::string::npos, 0});
  for (const NodeRef& ref : labels) {
    const text::CharView& view = views[static_cast<size_t>(ref.page)];
    const text::TextSpan* span = view.SpanForNode(ref.node);
    if (span == nullptr) continue;
    befores.push_back(view.Before(*span, max_context_));
    afters.push_back(view.After(*span, max_context_));
    auto& extent = page_extent[static_cast<size_t>(ref.page)];
    extent.first = std::min(extent.first, span->begin);
    extent.second = std::max(extent.second, span->end);
  }
  if (befores.empty()) {
    result.wrapper = std::make_shared<EmptyHlrtWrapper>();
    result.extraction = labels;
    return result;
  }

  std::string left = text::LongestCommonSuffix(befores);
  std::string right = text::LongestCommonPrefix(afters);

  // Head: common suffix of the page prefixes ending just before the first
  // label's l-context; tail: common prefix of the suffixes after the last
  // label's r-context.
  std::vector<std::string_view> heads, tails;
  for (size_t p = 0; p < pages.size(); ++p) {
    const auto& extent = page_extent[p];
    if (extent.first == std::string::npos) continue;  // Unlabeled page.
    const std::string& stream = views[p].stream();
    size_t head_end =
        extent.first >= left.size() ? extent.first - left.size() : 0;
    size_t head_begin =
        head_end >= max_head_tail_ ? head_end - max_head_tail_ : 0;
    heads.push_back(std::string_view(stream).substr(head_begin,
                                                    head_end - head_begin));
    size_t tail_begin = std::min(extent.second + right.size(), stream.size());
    tails.push_back(std::string_view(stream).substr(
        tail_begin, std::min(max_head_tail_, stream.size() - tail_begin)));
  }
  std::string head = text::LongestCommonSuffix(heads);
  std::string tail = text::LongestCommonPrefix(tails);

  // Fidelity guard: the delimiters are only valid when the region they
  // induce still covers every training label (the tail string can recur
  // between records when no label marks the true end of the list, and the
  // head's first occurrence can postdate an early label). Drop the tail,
  // then the head, if they would exclude a label.
  auto covers_labels = [&]() {
    for (size_t p = 0; p < pages.size(); ++p) {
      const auto& extent = page_extent[p];
      if (extent.first == std::string::npos) continue;
      auto [begin, end] = Region(views[p].stream(), head, tail);
      if (extent.first < begin || extent.second > end) return false;
    }
    return true;
  };
  if (!covers_labels()) tail.clear();
  if (!covers_labels()) head.clear();

  auto wrapper =
      std::make_shared<HlrtWrapper>(head, tail, std::move(left),
                                    std::move(right));
  result.extraction = wrapper->Extract(pages).Union(labels);
  result.wrapper = std::move(wrapper);
  return result;
}

}  // namespace ntw::core
