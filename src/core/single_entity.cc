#include "core/single_entity.h"

#include <unordered_map>

namespace ntw::core {
namespace {

/// True when the extraction has at most one node on every page.
bool AtMostOnePerPage(const NodeSet& extraction) {
  int last_page = -1;
  for (const NodeRef& ref : extraction) {
    if (ref.page == last_page) return false;
    last_page = ref.page;
  }
  return true;
}

}  // namespace

Result<SingleEntityOutcome> LearnSingleEntity(const WrapperInductor& inductor,
                                              const PageSet& pages,
                                              const NodeSet& labels,
                                              EnumAlgorithm algorithm) {
  if (labels.empty()) {
    return Status::InvalidArgument("no labels to learn from");
  }
  NTW_ASSIGN_OR_RETURN(WrapperSpace space,
                       Enumerate(algorithm, inductor, pages, labels));

  SingleEntityOutcome outcome;
  outcome.space_size = space.size();
  outcome.inductor_calls = space.inductor_calls;

  size_t best_coverage = 0;
  for (Candidate& candidate : space.candidates) {
    if (!AtMostOnePerPage(candidate.extraction)) continue;
    size_t coverage = candidate.extraction.IntersectSize(labels);
    if (coverage > best_coverage) {
      best_coverage = coverage;
      outcome.tied.clear();
      outcome.tied.push_back(candidate);
    } else if (coverage == best_coverage && best_coverage > 0) {
      outcome.tied.push_back(candidate);
    }
  }
  if (outcome.tied.empty()) {
    return Status::NotFound(
        "no wrapper extracts at most one item per page and covers a label");
  }
  // Deterministic winner among ties: the one extracting from the most
  // pages, then the first enumerated.
  size_t best_index = 0;
  for (size_t i = 1; i < outcome.tied.size(); ++i) {
    if (outcome.tied[i].extraction.size() >
        outcome.tied[best_index].extraction.size()) {
      best_index = i;
    }
  }
  outcome.best = outcome.tied[best_index];
  outcome.covered_labels = best_coverage;
  return outcome;
}

}  // namespace ntw::core
