#ifndef NTW_CORE_FUSED_MATCHER_H_
#define NTW_CORE_FUSED_MATCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/compiled_wrapper.h"

namespace ntw::core {

/// The fused multi-attribute delimiter machinery (DESIGN.md §15): all of a
/// site's LR/HLRT delimiter strings (lefts, heads, tails) are folded into
/// one Aho–Corasick automaton, so one pass over the flattened page stream
/// yields the occurrence lists every attribute's matcher needs — instead
/// of one BMH scan of the page per attribute. The automaton is stored in
/// a fixed-layout, offset-based byte blob so the exact same bytes work
/// both built in memory (directory backend, hot publishes) and mapped
/// straight out of a wrapper pack.
///
/// Byte-identity contract: for every bound attribute, the fused extraction
/// returns exactly the bytes CompiledWrapper::ExtractStreaming returns for
/// the same input — AC enumerates the same occurrence set, in the same
/// ascending order, as the per-attribute BMH scans (tests/fused_extract_
/// test.cc pins it, as do the loadgen gate and crawl byte-identity).

/// Sentinel pattern id for "this plan has no such delimiter" (e.g. an LR
/// wrapper with an empty left, or an HLRT with no tail).
inline constexpr uint32_t kNoPattern = 0xFFFFFFFFu;

/// Builds the serialized automaton blob. Patterns are deduplicated; empty
/// patterns are rejected (delimiter-free matching needs no occurrences —
/// callers simply bind kNoPattern).
class AcBuilder {
 public:
  /// Registers a pattern and returns its id (stable across duplicates).
  /// Returns kNoPattern for an empty pattern.
  uint32_t AddPattern(std::string_view pattern);

  size_t pattern_count() const { return patterns_.size(); }

  /// Serializes the automaton (goto trie, fail links, flattened output
  /// sets, 256-way root dispatch table) into the offset-based layout
  /// FusedAutomaton reads. Empty string when there are no patterns.
  std::string Build() const;

 private:
  std::vector<std::string> patterns_;
};

/// Read-only view over a serialized automaton blob. Validate() must
/// accept the bytes before construction when they come from an untrusted
/// source (a mapped pack); blobs from AcBuilder::Build are valid by
/// construction. The view does not own the blob.
class FusedAutomaton {
 public:
  FusedAutomaton() = default;
  explicit FusedAutomaton(std::string_view blob) : blob_(blob) {}

  /// Full structural check: header sizes, every offset/index in bounds.
  /// A blob that passes cannot make Scan() touch memory outside it.
  static bool Validate(std::string_view blob);

  bool empty() const { return blob_.empty(); }
  uint32_t pattern_count() const;
  std::string_view pattern(uint32_t id) const;

  /// One pass over `stream`: appends the *begin* offset of every
  /// occurrence of pattern `p` to (*occurrences)[p], in ascending order —
  /// exactly the positions StringSearcher::Find would enumerate.
  /// `occurrences` is resized to pattern_count() and cleared per pattern.
  void Scan(std::string_view stream,
            std::vector<std::vector<size_t>>* occurrences) const;

 private:
  std::string_view blob_;
};

/// Reusable per-request scratch for fused extraction (occurrence lists
/// plus per-attribute value slots); pool it like the page buffers.
struct FusedScratch {
  std::vector<std::vector<size_t>> occurrences;
  std::vector<std::vector<std::string_view>> values;

  void Clear() {
    // Keep capacity: steady state re-scans into the same vectors.
    for (auto& list : occurrences) list.clear();
    for (auto& list : values) list.clear();
  }
};

using FusedScratchPool = BufferPool<FusedScratch>;

/// One site's fused extractor: the automaton blob plus, per attribute,
/// the dom_free compiled plan and its delimiter-pattern bindings.
/// Immutable and thread-safe after construction.
class FusedSiteExtractor {
 public:
  struct Attribute {
    std::string name;
    std::shared_ptr<const CompiledWrapper> plan;  // dom_free() only
    uint32_t left_pattern = kNoPattern;
    uint32_t head_pattern = kNoPattern;
    uint32_t tail_pattern = kNoPattern;
  };

  /// Builds automaton + bindings from a site's dom_free plans (directory
  /// backend and hot publishes). Attributes must be sorted by name.
  /// Returns nullptr when no plan is dom_free.
  static std::shared_ptr<const FusedSiteExtractor> Build(
      std::vector<std::pair<std::string,
                            std::shared_ptr<const CompiledWrapper>>> plans);

  /// Wraps a pre-serialized automaton (a pack's — the blob is copied so
  /// the extractor never outlives its mapping) with externally supplied
  /// bindings. Returns nullptr if the blob fails validation or a binding
  /// is out of range.
  static std::shared_ptr<const FusedSiteExtractor> FromBlob(
      std::string_view blob, std::vector<Attribute> attributes);

  /// Scans the page once and extracts every attribute:
  /// scratch.values[i] receives attributes()[i]'s values, byte-identical
  /// to plan->ExtractStreaming on the same input. Views point into
  /// `buffer` (or the raw input on the zero-copy tier).
  void ExtractAllStreaming(std::string_view raw_page,
                           StreamPageBuffer& buffer,
                           FusedScratch& scratch) const;

  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of `name` in attributes(), or npos.
  size_t FindAttribute(std::string_view name) const;

  const std::string& blob() const { return blob_; }

 private:
  FusedSiteExtractor(std::string blob, std::vector<Attribute> attributes);

  std::string blob_;  // Owned serialized automaton.
  FusedAutomaton automaton_;
  std::vector<Attribute> attributes_;  // Sorted by name.
};

}  // namespace ntw::core

#endif  // NTW_CORE_FUSED_MATCHER_H_
