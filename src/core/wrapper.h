#ifndef NTW_CORE_WRAPPER_H_
#define NTW_CORE_WRAPPER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/label.h"

namespace ntw::core {

/// A learned extraction rule. A wrapper is identified by its *output* on
/// the page set it was learned for (Sec. 6: "the actual language used to
/// express w does not matter, as the score of a wrapper only depends on
/// its output"), so Extract() is the semantic identity and ToString() is
/// the rule in its native language (an xpath, an (l,r) pair, ...).
class Wrapper {
 public:
  virtual ~Wrapper() = default;

  /// Applies the rule to a page set, returning the extracted text nodes.
  virtual NodeSet Extract(const PageSet& pages) const = 0;

  /// Human-readable rendering of the rule in its wrapper language.
  virtual std::string ToString() const = 0;
};

using WrapperPtr = std::shared_ptr<const Wrapper>;

/// Result of one inductor invocation: the rule plus its extraction on the
/// training page set (φ(L) denotes both, Sec. 4).
struct Induction {
  WrapperPtr wrapper;
  NodeSet extraction;
};

/// A supervised wrapper induction algorithm φ, used as a black box by the
/// noise-tolerant framework. Implementations are expected (and tested) to
/// be *well-behaved* (Definition 1):
///   fidelity      L ⊆ φ(L);
///   closure       ℓ ∈ φ(L) ⇒ φ(L) = φ(L ∪ {ℓ});
///   monotonicity  L1 ⊆ L2 ⇒ φ(L1) ⊆ φ(L2).
/// φ(∅) must return an empty extraction.
class WrapperInductor {
 public:
  virtual ~WrapperInductor() = default;

  /// Learns a rule from (assumed-correct) labels over `pages`.
  virtual Induction Induce(const PageSet& pages,
                           const NodeSet& labels) const = 0;

  /// Name for logs/reports, e.g. "XPATH" or "LR".
  virtual std::string Name() const = 0;
};

/// Opaque handle for an attribute of a feature-based inductor (Sec. 4.2).
/// Meaning is inductor-specific (e.g. "ancestor distance 2, tag name" for
/// XPATH; "left context of length 7" for LR).
using AttrHandle = int;

/// A feature-based inductor (Sec. 4.2): φ(L) = {n | F(n) ⊇ ∩_{ℓ∈L} F(ℓ)}.
/// TopDown enumeration only needs the two extra hooks below; the feature
/// space itself is never materialized ("the charm of the algorithm",
/// Sec. 5).
class FeatureBasedInductor : public WrapperInductor {
 public:
  /// Attributes attrs(L) that can subdivide the given label set. Handles
  /// are only meaningful for this (pages, labels) pair.
  virtual std::vector<AttrHandle> Attributes(const PageSet& pages,
                                             const NodeSet& labels) const = 0;

  /// subdivision(s, a): partitions `s` into groups of equal attribute
  /// value. Nodes lacking the attribute are omitted (the subdivision need
  /// not cover s). Groups of size |s| (no actual split) are still returned;
  /// the caller deduplicates.
  virtual std::vector<NodeSet> Subdivide(const PageSet& pages,
                                         const NodeSet& s,
                                         AttrHandle attr) const = 0;
};

/// Decorator counting Induce() calls — the measurement instrument for
/// Fig. 2(a,b). Also forwards the feature-based hooks when the underlying
/// inductor provides them. The counter is atomic because the enumeration
/// engine probes expansions from multiple pool workers; with memoization
/// (BottomUp) it observes the *actual* invocations, i.e. the enumeration's
/// cache_misses, not its logical inductor_calls.
class CountingInductor : public FeatureBasedInductor {
 public:
  explicit CountingInductor(const WrapperInductor* base) : base_(base) {}

  Induction Induce(const PageSet& pages, const NodeSet& labels) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return base_->Induce(pages, labels);
  }

  std::string Name() const override { return base_->Name(); }

  std::vector<AttrHandle> Attributes(const PageSet& pages,
                                     const NodeSet& labels) const override;
  std::vector<NodeSet> Subdivide(const PageSet& pages, const NodeSet& s,
                                 AttrHandle attr) const override;

  int64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  void ResetCalls() { calls_.store(0, std::memory_order_relaxed); }

 private:
  const WrapperInductor* base_;
  mutable std::atomic<int64_t> calls_{0};
};

}  // namespace ntw::core

#endif  // NTW_CORE_WRAPPER_H_
