#ifndef NTW_CORE_ANNOTATION_MODEL_H_
#define NTW_CORE_ANNOTATION_MODEL_H_

#include "common/result.h"
#include "core/label.h"

namespace ntw::core {

/// The annotation process model of Sec. 6: an annotator with parameters
/// (p, r) labels each node of the correct list X independently with
/// probability r, and each node outside X with probability 1 − p.
/// Up to wrapper-independent factors (Eq. 4):
///   P(L | X) ∝ (r/(1−p))^{|L∩X|} · ((1−r)/p)^{|X\L|}.
class AnnotationModel {
 public:
  /// Parameters are clamped to (ε, 1−ε) so log terms stay finite.
  AnnotationModel(double p, double r);

  double p() const { return p_; }
  double r() const { return r_; }

  /// log P(L | X) up to an additive constant independent of X.
  double LogProb(const NodeSet& labels, const NodeSet& extraction) const;

  /// Estimates (p, r) from annotations against ground truth over a sample
  /// of sites (Sec. 7: "the p and r of the annotators are learned from a
  /// sample of half the websites"):
  ///   r = |L ∩ X| / |X|          (hit rate on true nodes)
  ///   p = 1 − |L \ X| / |A|      (A = nodes outside X)
  /// `universe_size` is the total number of candidate nodes.
  static Result<AnnotationModel> Estimate(const NodeSet& labels,
                                          const NodeSet& truth,
                                          size_t universe_size);

  /// Pools estimates over several sites (sums the counts, then divides).
  struct Accumulator {
    size_t label_hits = 0;    // |L ∩ X| summed.
    size_t truth_total = 0;   // |X| summed.
    size_t label_misses = 0;  // |L \ X| summed.
    size_t non_truth_total = 0;  // |A| summed.

    void Observe(const NodeSet& labels, const NodeSet& truth,
                 size_t universe_size);
    Result<AnnotationModel> Finish() const;
  };

 private:
  double p_;
  double r_;
};

}  // namespace ntw::core

#endif  // NTW_CORE_ANNOTATION_MODEL_H_
