#ifndef NTW_CORE_LABEL_H_
#define NTW_CORE_LABEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "html/dom.h"

namespace ntw::core {

/// Reference to one node in a page set: (page index, pre-order index).
/// This is the vector-position representation Â = ⟨A1,…,An⟩ of Sec. 2.1,
/// concatenated across pages.
struct NodeRef {
  int page = 0;
  int node = 0;

  bool operator==(const NodeRef& other) const {
    return page == other.page && node == other.node;
  }
  bool operator<(const NodeRef& other) const {
    return page != other.page ? page < other.page : node < other.node;
  }
};

struct NodeRefHash {
  size_t operator()(const NodeRef& ref) const {
    return std::hash<int64_t>()(
        (static_cast<int64_t>(ref.page) << 32) ^
        static_cast<int64_t>(static_cast<uint32_t>(ref.node)));
  }
};

/// A sorted, duplicate-free set of node references. Both label sets L and
/// wrapper extractions X are NodeSets; the ranking model (Sec. 6) only ever
/// needs set intersections/differences over these.
class NodeSet {
 public:
  NodeSet() = default;
  explicit NodeSet(std::vector<NodeRef> refs) : refs_(std::move(refs)) {
    Normalize();
  }

  static NodeSet Of(std::initializer_list<NodeRef> refs) {
    return NodeSet(std::vector<NodeRef>(refs));
  }

  bool empty() const { return refs_.empty(); }
  size_t size() const { return refs_.size(); }
  const std::vector<NodeRef>& refs() const { return refs_; }
  const NodeRef& operator[](size_t i) const { return refs_[i]; }
  auto begin() const { return refs_.begin(); }
  auto end() const { return refs_.end(); }

  bool Contains(const NodeRef& ref) const {
    return std::binary_search(refs_.begin(), refs_.end(), ref);
  }

  /// Inserts a reference, keeping the set sorted and unique.
  void Insert(const NodeRef& ref);

  bool operator==(const NodeSet& other) const {
    return refs_ == other.refs_;
  }

  bool IsSubsetOf(const NodeSet& other) const;

  NodeSet Union(const NodeSet& other) const;
  NodeSet Intersect(const NodeSet& other) const;
  NodeSet Difference(const NodeSet& other) const;

  size_t IntersectSize(const NodeSet& other) const;

  /// Stable fingerprint used to deduplicate wrappers by their output.
  uint64_t Fingerprint() const;

  /// Debug rendering like "{(0,3),(0,9),(1,3)}".
  std::string ToString() const;

 private:
  void Normalize() {
    std::sort(refs_.begin(), refs_.end());
    refs_.erase(std::unique(refs_.begin(), refs_.end()), refs_.end());
  }

  std::vector<NodeRef> refs_;
};

/// An immutable collection of parsed pages from one website — the unit a
/// wrapper is learned for. Documents must be finalized.
///
/// Every PageSet instance carries a process-unique id() so caches keyed by
/// page set (e.g. LrInductor's flattened views) can detect that an address
/// now belongs to a different object — address + shape alone cannot, since
/// a recreated page set often has both in common with its predecessor.
class PageSet {
 public:
  PageSet() : id_(NextId()) {}
  explicit PageSet(std::vector<html::Document> pages)
      : id_(NextId()), pages_(std::move(pages)) {}

  PageSet(PageSet&& other) noexcept
      : id_(NextId()), pages_(std::move(other.pages_)) {}
  PageSet& operator=(PageSet&& other) noexcept {
    id_ = NextId();
    pages_ = std::move(other.pages_);
    return *this;
  }

  void AddPage(html::Document page) { pages_.push_back(std::move(page)); }

  /// Unique across all PageSet instances ever constructed (moves renew it).
  uint64_t id() const { return id_; }

  size_t size() const { return pages_.size(); }
  bool empty() const { return pages_.empty(); }
  const html::Document& page(size_t i) const { return pages_[i]; }

  /// Resolves a reference to its node; returns nullptr if out of range.
  const html::Node* Resolve(const NodeRef& ref) const;

  /// All text nodes across pages, in (page, pre-order) order — the
  /// candidate universe every wrapper extracts from.
  NodeSet AllTextNodes() const;

  /// Total number of text nodes across all pages.
  size_t TextNodeCount() const;

 private:
  static uint64_t NextId();

  uint64_t id_;
  std::vector<html::Document> pages_;
};

}  // namespace ntw::core

#endif  // NTW_CORE_LABEL_H_
