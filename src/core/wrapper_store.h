#ifndef NTW_CORE_WRAPPER_STORE_H_
#define NTW_CORE_WRAPPER_STORE_H_

#include <string>

#include "common/result.h"
#include "core/wrapper.h"

namespace ntw::core {

/// Serialization of learned wrappers so that a production pipeline can
/// learn once and re-apply wrappers to freshly crawled pages (the paper's
/// deployment mode: wrappers power live applications long after
/// induction). One single-line, tab-separated record per wrapper:
///
///   XPATH\t<xpath>
///   LR\t<l escaped>\t<r escaped>
///   HLRT\t<h>\t<t>\t<l>\t<r>      (all fields CEscape'd)
///
/// TABLE wrappers are intentionally not serializable (they are a
/// pedagogical device bound to one page set).
Result<std::string> SerializeWrapper(const Wrapper& wrapper);

/// Reconstructs a wrapper from a record; ParseError on malformed input
/// and InvalidArgument on unknown kinds.
Result<WrapperPtr> DeserializeWrapper(const std::string& record);

/// Convenience: serialize to / load from a file.
Status SaveWrapper(const Wrapper& wrapper, const std::string& path);
Result<WrapperPtr> LoadWrapper(const std::string& path);

}  // namespace ntw::core

#endif  // NTW_CORE_WRAPPER_STORE_H_
