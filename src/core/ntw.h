#ifndef NTW_CORE_NTW_H_
#define NTW_CORE_NTW_H_

#include <string>

#include "core/enumerate.h"
#include "core/ranker.h"

namespace ntw::core {

/// Options for one noise-tolerant learning run.
struct NtwOptions {
  EnumAlgorithm algorithm = EnumAlgorithm::kTopDown;
};

/// Outcome of noise-tolerant wrapper learning on one website.
struct NtwOutcome {
  /// The winning wrapper and its extraction on the training pages.
  Candidate best;
  /// Score decomposition of the winner.
  ScoredCandidate best_score;
  /// Instrumentation. `inductor_calls` is the logical count the theorems
  /// bound; `cache_hits`/`cache_misses` split it into memoized replays vs
  /// real inductor invocations (see WrapperSpace).
  size_t space_size = 0;
  int64_t inductor_calls = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

/// The end-to-end noise-tolerant wrapper framework (Sec. 3):
/// enumerate the wrapper space of the noisy labels, rank every candidate
/// by P(L|X)·P(X), return the argmax. Fails when the labels are empty or
/// enumeration yields no candidates.
Result<NtwOutcome> LearnNoiseTolerant(const WrapperInductor& inductor,
                                      const PageSet& pages,
                                      const NodeSet& labels,
                                      const Ranker& ranker,
                                      const NtwOptions& options = {});

/// The NAIVE baseline (Sec. 7.2): run the inductor directly on all noisy
/// labels, exactly as a classic supervised system would.
Induction LearnNaive(const WrapperInductor& inductor, const PageSet& pages,
                     const NodeSet& labels);

}  // namespace ntw::core

#endif  // NTW_CORE_NTW_H_
