#ifndef NTW_CORE_LR_INDUCTOR_H_
#define NTW_CORE_LR_INDUCTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/wrapper.h"
#include "text/char_view.h"

namespace ntw::core {

/// The WIEN LR wrapper inductor (Kushmerick et al., Sec. 5): the document
/// is a character sequence; the learned rule is a pair (l, r) where l is
/// the longest common string preceding every labeled item and r the
/// longest common string following it. A node is extracted when its left
/// context ends with l and its right context starts with r.
///
/// Feature-based form (Theorem 4 discussion): attributes L1..Lk / R1..Rk
/// where Lk's value is the k characters immediately preceding the node.
/// The feature space is never materialized; Subdivide() groups nodes by
/// their k-character context directly.
///
/// Contexts are capped at `max_context` characters. The cap only matters
/// for near-singleton label sets (where the true LR delimiter is the whole
/// page prefix); with ≥2 labels the common context is naturally short.
class LrInductor : public FeatureBasedInductor {
 public:
  explicit LrInductor(size_t max_context = 256)
      : max_context_(max_context) {}

  Induction Induce(const PageSet& pages, const NodeSet& labels) const override;
  std::string Name() const override { return "LR"; }

  std::vector<AttrHandle> Attributes(const PageSet& pages,
                                     const NodeSet& labels) const override;
  std::vector<NodeSet> Subdivide(const PageSet& pages, const NodeSet& s,
                                 AttrHandle attr) const override;

  size_t max_context() const { return max_context_; }

 private:
  /// Per-PageSet flattened views, built lazily and cached per *thread*
  /// (the enumeration engine calls Induce from pool workers; a
  /// thread-local cache needs no locking and each worker amortizes the
  /// flattening across its share of the subsets). The cache is validated
  /// by PageSet::id(), which is unique per instance lifetime, so a
  /// recreated page set reusing a freed address can never be served stale
  /// views. The returned reference is valid until the same thread calls
  /// Views() with a different PageSet.
  static const std::vector<text::CharView>& Views(const PageSet& pages);

  size_t max_context_;
};

/// The learned (l, r) rule. Exposed so examples/benches can inspect it.
class LrWrapper : public Wrapper {
 public:
  LrWrapper(std::string left, std::string right)
      : left_(std::move(left)), right_(std::move(right)) {}

  NodeSet Extract(const PageSet& pages) const override;
  std::string ToString() const override;

  const std::string& left() const { return left_; }
  const std::string& right() const { return right_; }

 private:
  std::string left_;
  std::string right_;
};

}  // namespace ntw::core

#endif  // NTW_CORE_LR_INDUCTOR_H_
