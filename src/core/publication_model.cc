#include "core/publication_model.h"

#include <algorithm>
#include <unordered_map>

#include "align/edit_distance.h"

namespace ntw::core {
namespace {

constexpr int kTextToken = 0;

/// Flattens one page to pre-order tokens, recording the token position of
/// every text node (by pre-order index).
void FlattenPage(const html::Document& doc,
                 std::unordered_map<std::string, int>* tag_ids,
                 std::vector<int>* tokens,
                 std::vector<std::pair<int, size_t>>* text_positions) {
  struct Frame {
    const html::Node* node;
  };
  std::vector<Frame> stack = {{doc.root()}};
  while (!stack.empty()) {
    const html::Node* node = stack.back().node;
    stack.pop_back();
    if (node->is_text()) {
      text_positions->emplace_back(node->preorder_index(), tokens->size());
      tokens->push_back(kTextToken);
    } else if (node->is_element()) {
      auto [it, inserted] =
          tag_ids->emplace(node->tag(),
                           static_cast<int>(tag_ids->size()) + 1);
      tokens->push_back(it->second);
    }
    for (size_t i = node->children().size(); i > 0; --i) {
      stack.push_back({node->children()[i - 1].get()});
    }
  }
}

/// Deterministic pair sample over `n` segments: everything for small n,
/// adjacent + strided pairs for large n, capped.
std::vector<std::pair<size_t, size_t>> SamplePairs(size_t n) {
  std::vector<std::pair<size_t, size_t>> pairs;
  if (n < 2) return pairs;
  if (n <= 12) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
    }
    return pairs;
  }
  constexpr size_t kMaxPairs = 64;
  // Adjacent pairs spread across the list.
  size_t adjacent = kMaxPairs / 2;
  for (size_t k = 0; k < adjacent; ++k) {
    size_t i = k * (n - 1) / adjacent;
    pairs.emplace_back(i, i + 1);
  }
  // Long-range pairs (first half vs second half).
  size_t far = kMaxPairs - pairs.size();
  for (size_t k = 0; k < far; ++k) {
    size_t i = k * (n / 2) / far;
    size_t j = i + n / 2;
    if (j < n && i != j) pairs.emplace_back(i, j);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace

std::vector<Segment> SegmentRecords(
    const PageSet& pages, const std::vector<const NodeSet*>& typed_sets) {
  std::vector<Segment> segments;
  if (typed_sets.empty() || typed_sets[0] == nullptr) return segments;
  const NodeSet& boundary = *typed_sets[0];

  std::unordered_map<std::string, int> tag_ids;
  for (size_t p = 0; p < pages.size(); ++p) {
    std::vector<int> tokens;
    std::vector<std::pair<int, size_t>> text_positions;
    FlattenPage(pages.page(p), &tag_ids, &tokens, &text_positions);

    // Re-token text nodes that belong to a typed set (type t gets −(t+1)),
    // so records must align their typed items (Appendix A ranking).
    std::vector<size_t> boundary_positions;
    for (const auto& [preorder, pos] : text_positions) {
      NodeRef ref{static_cast<int>(p), preorder};
      for (size_t t = 0; t < typed_sets.size(); ++t) {
        if (typed_sets[t] != nullptr && typed_sets[t]->Contains(ref)) {
          tokens[pos] = -static_cast<int>(t) - 1;
          break;
        }
      }
      if (boundary.Contains(ref)) boundary_positions.push_back(pos);
    }

    // Segments between consecutive boundary nodes (pre-order traversal
    // from one element of X to the next, Sec. 6 / Fig. 7).
    for (size_t b = 0; b + 1 < boundary_positions.size(); ++b) {
      segments.emplace_back(
          tokens.begin() + static_cast<long>(boundary_positions[b]),
          tokens.begin() + static_cast<long>(boundary_positions[b + 1]));
    }
  }
  return segments;
}

std::vector<Segment> SegmentRecords(const PageSet& pages, const NodeSet& x) {
  return SegmentRecords(pages, {&x});
}

ListFeatures ComputeListFeatures(const std::vector<Segment>& segments,
                                 int alignment_cap) {
  ListFeatures features;
  features.segment_count = static_cast<int>(segments.size());
  if (segments.empty()) {
    // No list structure at all (e.g. <2 extracted nodes per page):
    // schema 0 / alignment 0; the learned schema distribution penalizes
    // this naturally.
    return features;
  }
  if (segments.size() == 1) {
    int text_count = 0;
    for (int token : segments[0]) {
      if (token <= kTextToken) ++text_count;
    }
    features.schema_size = text_count;
    return features;
  }

  std::vector<double> schema_samples;
  int max_distance = 0;
  for (const auto& [i, j] : SamplePairs(segments.size())) {
    align::CommonSubstring common =
        align::LongestCommonSubstring(segments[i], segments[j]);
    int text_count = 0;
    for (int token : common.tokens) {
      if (token <= kTextToken) ++text_count;
    }
    schema_samples.push_back(text_count);
    int distance = align::EditDistanceBounded(segments[i], segments[j],
                                              alignment_cap);
    max_distance = std::max(max_distance, distance);
  }
  features.schema_size = stats::Median(schema_samples);
  features.alignment = max_distance;
  return features;
}

Result<PublicationModel> PublicationModel::Fit(
    const std::vector<ListFeatures>& sample) {
  return Fit(sample, stats::KernelDensity::Options());
}

Result<PublicationModel> PublicationModel::Fit(
    const std::vector<ListFeatures>& sample,
    const stats::KernelDensity::Options& kde_options) {
  if (sample.empty()) {
    return Status::InvalidArgument("PublicationModel: empty sample");
  }
  std::vector<double> schema_values;
  std::vector<double> alignment_values;
  schema_values.reserve(sample.size());
  alignment_values.reserve(sample.size());
  for (const ListFeatures& f : sample) {
    schema_values.push_back(f.schema_size);
    alignment_values.push_back(f.alignment);
  }
  NTW_ASSIGN_OR_RETURN(stats::KernelDensity schema_kde,
                       stats::KernelDensity::Fit(schema_values, kde_options));
  NTW_ASSIGN_OR_RETURN(
      stats::KernelDensity alignment_kde,
      stats::KernelDensity::Fit(alignment_values, kde_options));
  return PublicationModel(std::move(schema_kde), std::move(alignment_kde));
}

double PublicationModel::LogProb(const ListFeatures& features) const {
  return schema_kde_.LogDensity(features.schema_size) +
         alignment_kde_.LogDensity(features.alignment);
}

double PublicationModel::LogProb(const PageSet& pages,
                                 const NodeSet& x) const {
  return LogProb(ComputeListFeatures(SegmentRecords(pages, x)));
}

}  // namespace ntw::core
