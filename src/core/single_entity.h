#ifndef NTW_CORE_SINGLE_ENTITY_H_
#define NTW_CORE_SINGLE_ENTITY_H_

#include <vector>

#include "core/enumerate.h"

namespace ntw::core {

/// Outcome of single-entity learning (Appendix B.2).
struct SingleEntityOutcome {
  /// The winning wrapper (extracts at most one node per page).
  Candidate best;
  /// Labels covered by the winner.
  size_t covered_labels = 0;
  /// All candidates tied at the winning coverage — the paper observed
  /// several sites with multiple equally-correct wrappers (title in
  /// <head>, in <meta>, in the details tab ...).
  std::vector<Candidate> tied;
  size_t space_size = 0;
  int64_t inductor_calls = 0;
};

/// Single-entity extraction with noisy labels (Appendix B.2): enumerate
/// the wrapper space, discard every wrapper extracting more than one item
/// from any single page, then pick the wrapper covering the most labels
/// (equivalently maximizing P(L|X) under the constraint). A wrapper
/// trained on noisy labels over-generalizes, matches several nodes per
/// page, and is discarded — noise tolerance for free.
Result<SingleEntityOutcome> LearnSingleEntity(
    const WrapperInductor& inductor, const PageSet& pages,
    const NodeSet& labels, EnumAlgorithm algorithm = EnumAlgorithm::kTopDown);

}  // namespace ntw::core

#endif  // NTW_CORE_SINGLE_ENTITY_H_
