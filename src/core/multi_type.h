#ifndef NTW_CORE_MULTI_TYPE_H_
#define NTW_CORE_MULTI_TYPE_H_

#include <string>
#include <vector>

#include "core/annotation_model.h"
#include "core/metrics.h"
#include "core/enumerate.h"
#include "core/publication_model.h"

namespace ntw::core {

/// Labels for the multi-type extraction problem (Appendix A): one label
/// set per type (e.g. name and zipcode), each produced by its own
/// annotator.
struct MultiTypeLabels {
  std::vector<std::string> type_names;
  std::vector<NodeSet> labels;
};

/// Assembled records: one extracted node per type per record, in document
/// order. A page where the typed extractions cannot be interleaved into
/// records contributes no records ("the wrapper produces empty results on
/// a page if it cannot assemble records successfully").
struct RecordSet {
  /// records[i][t] is the node of type t in record i.
  std::vector<std::vector<NodeRef>> records;
  /// Pages whose extractions failed to assemble.
  std::vector<int> failed_pages;

  /// All nodes of one type across records.
  NodeSet TypeNodes(size_t type_index) const;
};

/// Assembles records from per-type extractions: on each page the typed
/// nodes, read in document order, must form k repetitions of one fixed
/// type permutation (name, zip, name, zip, ...). Pages violating the
/// pattern are recorded in failed_pages and yield nothing.
RecordSet AssembleRecords(const PageSet& pages,
                          const std::vector<NodeSet>& typed_extractions);

/// Record-level precision/recall/F1: a record counts as correct only when
/// *every* typed node matches the aligned ground truth tuple (the
/// strictest reading of Fig. 3(a)). Ground truth records are assembled
/// from the per-type truth sets.
Prf EvaluateRecords(const PageSet& pages, const RecordSet& extracted,
                    const std::vector<NodeSet>& typed_truth);

/// Outcome of multi-type learning.
struct MultiTypeOutcome {
  /// Winning wrapper per type, aligned with MultiTypeLabels::type_names.
  std::vector<Candidate> per_type;
  RecordSet records;
  double score = 0.0;
  int64_t inductor_calls = 0;
};

/// Options for multi-type learning.
struct MultiTypeOptions {
  EnumAlgorithm algorithm = EnumAlgorithm::kTopDown;
  /// Per-type candidate shortlist size before the joint ranking; bounds
  /// the cross-product at shortlist^types combinations.
  size_t shortlist = 24;
};

/// Noise-tolerant multi-type learning (Appendix A): enumerate each type's
/// wrapper space, shortlist per type by annotation likelihood, then rank
/// the joint combinations by Π_τ P(L_τ|X_τ) · P(X) where P(X) segments by
/// the first type and requires typed nodes to align across records.
/// Combinations that fail to assemble on every page are discarded.
Result<MultiTypeOutcome> LearnMultiTypeNtw(
    const WrapperInductor& inductor, const PageSet& pages,
    const MultiTypeLabels& labels,
    const std::vector<AnnotationModel>& annotation_models,
    const PublicationModel& publication_model,
    const MultiTypeOptions& options = {});

/// The NAIVE multi-type baseline: per-type supervised induction on all
/// noisy labels, then record assembly.
Result<MultiTypeOutcome> LearnMultiTypeNaive(const WrapperInductor& inductor,
                                             const PageSet& pages,
                                             const MultiTypeLabels& labels);

}  // namespace ntw::core

#endif  // NTW_CORE_MULTI_TYPE_H_
