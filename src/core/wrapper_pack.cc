#include "core/wrapper_pack.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/strings.h"
#include "core/fused_matcher.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/wrapper_store.h"
#include "core/xpath_inductor.h"
#include "xpath/ast.h"

namespace ntw::core {

namespace {

uint64_t Fnv1a(const void* data, size_t size, uint64_t seed = 0xcbf29ce484222325ull) {
  uint64_t hash = seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

void AppendU32(std::string* out, uint32_t v) { AppendRaw(out, &v, sizeof(v)); }

void AppendRef(std::string* out, PackStrRef ref) {
  AppendRaw(out, &ref, sizeof(ref));
}

void PadTo8(std::string* out) {
  while (out->size() % 8 != 0) out->push_back('\0');
}

// XPath step flags in the plan blob.
constexpr uint32_t kStepDescendant = 1u << 0;
constexpr uint32_t kStepTestShift = 8;  // bits 8..9: 0 tag, 1 any, 2 text
constexpr uint32_t kStepTestMask = 3u << kStepTestShift;

// Bounded little cursor for decoding plan blobs.
struct Cursor {
  const char* p;
  const char* end;
  bool ok = true;

  uint32_t U32() {
    if (!ok || end - p < 4) {
      ok = false;
      return 0;
    }
    uint32_t v;
    std::memcpy(&v, p, 4);
    p += 4;
    return v;
  }
  PackStrRef Ref() {
    PackStrRef ref;
    ref.off = U32();
    ref.len = U32();
    return ref;
  }
};

}  // namespace

Status WrapperPackBuilder::Add(const std::string& site,
                               const std::string& attribute,
                               const std::string& record) {
  if (site.empty() || attribute.empty()) {
    return Status::InvalidArgument("pack: empty site or attribute name");
  }
  // Normalize: wrapper files end in a newline the record proper does not
  // include — stored records are the exact bytes a repository Entry holds.
  std::string trimmed = record;
  while (!trimmed.empty() &&
         (trimmed.back() == '\n' || trimmed.back() == '\r')) {
    trimmed.pop_back();
  }
  auto parsed = DeserializeWrapper(trimmed);
  if (!parsed.ok()) {
    return Status::ParseError(StrFormat("pack: bad record for %s/%s: %s",
                                        site.c_str(), attribute.c_str(),
                                        parsed.status().message().c_str()));
  }
  auto [it, inserted] = sites_[site].emplace(attribute, std::move(trimmed));
  if (!inserted) {
    return Status::InvalidArgument(StrFormat("pack: duplicate entry %s/%s",
                                             site.c_str(), attribute.c_str()));
  }
  ++entry_count_;
  return Status::OK();
}

std::string WrapperPackBuilder::Build() const {
  std::string strtab;
  std::map<std::string, PackStrRef, std::less<>> interned;
  auto intern = [&](std::string_view s) {
    auto it = interned.find(s);
    if (it != interned.end()) return it->second;
    PackStrRef ref{static_cast<uint32_t>(strtab.size()),
                   static_cast<uint32_t>(s.size())};
    strtab.append(s);
    return interned.emplace(std::string(s), ref).first->second;
  };

  std::string plans;
  std::string automata;
  std::vector<PackSiteRec> site_recs;
  std::vector<PackEntryRec> entry_recs;

  for (const auto& [site, attrs] : sites_) {
    PackSiteRec srec{};
    srec.name = intern(site);
    srec.entry_begin = static_cast<uint32_t>(entry_recs.size());
    srec.entry_count = static_cast<uint32_t>(attrs.size());

    // The per-site fused automaton: pattern ids are assigned in entry
    // (attribute) order, LR lefts then HLRT heads/tails per plan —
    // exactly the order FusedSiteExtractor::Build uses, so directory-
    // and pack-backend automata are bitwise identical for the same site.
    AcBuilder ac;

    for (const auto& [attribute, record] : attrs) {
      PackEntryRec erec{};
      erec.attribute = intern(attribute);
      erec.record = intern(record);
      erec.left_pattern = kNoPattern;
      erec.head_pattern = kNoPattern;
      erec.tail_pattern = kNoPattern;

      auto parsed = DeserializeWrapper(record);
      // Add() already validated; a failure here means the caller mutated
      // state between Add and Build — encode as plan-less.
      const Wrapper* w = parsed.ok() ? parsed.value().get() : nullptr;
      erec.plan_off = plans.size();  // Relative; rebased below.
      if (const auto* lr = dynamic_cast<const LrWrapper*>(w)) {
        erec.plan_kind = kPackPlanLr;
        AppendRef(&plans, intern(lr->left()));
        AppendRef(&plans, intern(lr->right()));
        erec.left_pattern = ac.AddPattern(lr->left());
      } else if (const auto* h = dynamic_cast<const HlrtWrapper*>(w)) {
        erec.plan_kind = kPackPlanHlrt;
        AppendRef(&plans, intern(h->head()));
        AppendRef(&plans, intern(h->tail()));
        AppendRef(&plans, intern(h->left()));
        AppendRef(&plans, intern(h->right()));
        erec.head_pattern = ac.AddPattern(h->head());
        erec.tail_pattern = ac.AddPattern(h->tail());
      } else if (const auto* x = dynamic_cast<const XPathWrapper*>(w)) {
        erec.plan_kind = kPackPlanXPath;
        const auto& steps = x->expr().steps;
        AppendU32(&plans, static_cast<uint32_t>(steps.size()));
        for (const xpath::Step& step : steps) {
          uint32_t flags = 0;
          if (step.axis == xpath::Axis::kDescendant) flags |= kStepDescendant;
          uint32_t test = 0;
          if (step.test == xpath::NodeTest::kAnyElement) test = 1;
          if (step.test == xpath::NodeTest::kText) test = 2;
          flags |= test << kStepTestShift;
          AppendU32(&plans, flags);
          AppendU32(&plans,
                    static_cast<uint32_t>(step.child_number.value_or(-1)));
          AppendRef(&plans, step.test == xpath::NodeTest::kTag
                                ? intern(step.tag)
                                : PackStrRef{});
          AppendU32(&plans, static_cast<uint32_t>(step.attr_filters.size()));
          for (const auto& [name, value] : step.attr_filters) {
            AppendRef(&plans, intern(name));
            AppendRef(&plans, intern(value));
          }
        }
      } else {
        erec.plan_kind = kPackPlanNone;
      }
      erec.plan_len = plans.size() - erec.plan_off;
      entry_recs.push_back(erec);
    }

    std::string blob = ac.Build();
    PadTo8(&automata);
    srec.automaton_off = automata.size();  // Relative; rebased below.
    srec.automaton_len = blob.size();
    automata.append(blob);
    site_recs.push_back(srec);
  }
  PadTo8(&plans);
  PadTo8(&automata);

  PackHeader header{};
  std::memcpy(header.magic, kPackMagic, sizeof(header.magic));
  header.version = kPackVersion;
  header.endian = kPackEndian;
  header.site_count = site_recs.size();
  header.entry_count = entry_recs.size();
  header.sites_off = sizeof(PackHeader);
  header.entries_off = header.sites_off + site_recs.size() * sizeof(PackSiteRec);
  header.plans_off = header.entries_off + entry_recs.size() * sizeof(PackEntryRec);
  header.plans_len = plans.size();
  header.automata_off = header.plans_off + plans.size();
  header.automata_len = automata.size();
  header.strtab_off = header.automata_off + automata.size();
  header.strtab_len = strtab.size();
  header.file_size = header.strtab_off + strtab.size();

  for (PackEntryRec& erec : entry_recs) erec.plan_off += header.plans_off;
  for (PackSiteRec& srec : site_recs) {
    if (srec.automaton_len > 0) {
      srec.automaton_off += header.automata_off;
    } else {
      srec.automaton_off = 0;
    }
  }

  std::string body;
  body.reserve(static_cast<size_t>(header.file_size) - sizeof(PackHeader));
  for (const PackSiteRec& srec : site_recs) {
    AppendRaw(&body, &srec, sizeof(srec));
  }
  for (const PackEntryRec& erec : entry_recs) {
    AppendRaw(&body, &erec, sizeof(erec));
  }
  body.append(plans);
  body.append(automata);
  body.append(strtab);

  header.body_checksum = Fnv1a(body.data(), body.size());
  header.header_checksum = 0;
  header.header_checksum = Fnv1a(&header, sizeof(header));

  std::string out;
  out.reserve(sizeof(header) + body.size());
  AppendRaw(&out, &header, sizeof(header));
  out.append(body);
  return out;
}

Status WrapperPackBuilder::WriteFile(const std::string& path) const {
  std::string bytes = Build();
  std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(StrFormat("pack: cannot write %s", tmp.c_str()));
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  int close_err = std::fclose(f);
  if (written != bytes.size() || close_err != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(StrFormat("pack: short write to %s", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(StrFormat("pack: rename to %s failed",
                                      path.c_str()));
  }
  return Status::OK();
}

Result<std::shared_ptr<const WrapperPack>> WrapperPack::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound(StrFormat("pack: cannot open %s", path.c_str()));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal(StrFormat("pack: cannot stat %s", path.c_str()));
  }
  auto size = static_cast<size_t>(st.st_size);
  if (size < sizeof(PackHeader)) {
    ::close(fd);
    return Status::ParseError(
        StrFormat("pack: %s is truncated (%zu bytes, header needs %zu)",
                  path.c_str(), size, sizeof(PackHeader)));
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps its own reference.
  if (map == MAP_FAILED) {
    return Status::Internal(StrFormat("pack: mmap of %s failed",
                                      path.c_str()));
  }

  auto pack = std::shared_ptr<WrapperPack>(new WrapperPack());
  pack->path_ = path;
  pack->map_ = static_cast<const char*>(map);
  pack->map_size_ = size;
  std::memcpy(&pack->header_, map, sizeof(PackHeader));
  const PackHeader& h = pack->header_;

  if (std::memcmp(h.magic, kPackMagic, sizeof(kPackMagic)) != 0) {
    return Status::ParseError(StrFormat("pack: %s: bad magic", path.c_str()));
  }
  if (h.version != kPackVersion) {
    return Status::ParseError(
        StrFormat("pack: %s: version %u, expected %u", path.c_str(),
                  h.version, kPackVersion));
  }
  if (h.endian != kPackEndian) {
    return Status::ParseError(
        StrFormat("pack: %s: endian mismatch (built on a foreign machine)",
                  path.c_str()));
  }
  if (h.file_size != size) {
    return Status::ParseError(
        StrFormat("pack: %s: header claims %llu bytes, file has %zu",
                  path.c_str(),
                  static_cast<unsigned long long>(h.file_size), size));
  }
  PackHeader check = h;
  check.header_checksum = 0;
  if (Fnv1a(&check, sizeof(check)) != h.header_checksum) {
    return Status::ParseError(
        StrFormat("pack: %s: header checksum mismatch", path.c_str()));
  }
  // Deliberately no body walk here: Open stays O(mmap) so a million-site
  // pack opens without touching its directory pages. Accessors bounds-
  // check everything they read; Verify() does the full-file job.
  return std::shared_ptr<const WrapperPack>(std::move(pack));
}

WrapperPack::~WrapperPack() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_size_);
  }
}

std::string_view WrapperPack::Bytes(uint64_t off, uint64_t len) const {
  if (off > map_size_ || len > map_size_ - off) return {};
  return std::string_view(map_ + off, static_cast<size_t>(len));
}

std::string_view WrapperPack::Str(PackStrRef ref) const {
  if (ref.off > header_.strtab_len ||
      ref.len > header_.strtab_len - ref.off) {
    return {};
  }
  return Bytes(header_.strtab_off + ref.off, ref.len);
}

bool WrapperPack::ReadSite(uint64_t index, PackSiteRec* rec) const {
  if (index >= header_.site_count) return false;
  uint64_t off = header_.sites_off + index * sizeof(PackSiteRec);
  std::string_view bytes = Bytes(off, sizeof(PackSiteRec));
  if (bytes.size() != sizeof(PackSiteRec)) return false;
  std::memcpy(rec, bytes.data(), sizeof(PackSiteRec));
  return true;
}

bool WrapperPack::ReadEntry(uint64_t index, PackEntryRec* rec) const {
  if (index >= header_.entry_count) return false;
  uint64_t off = header_.entries_off + index * sizeof(PackEntryRec);
  std::string_view bytes = Bytes(off, sizeof(PackEntryRec));
  if (bytes.size() != sizeof(PackEntryRec)) return false;
  std::memcpy(rec, bytes.data(), sizeof(PackEntryRec));
  return true;
}

std::string_view WrapperPack::EntryView::attribute() const {
  return pack_->Str(rec_.attribute);
}

std::string_view WrapperPack::EntryView::record() const {
  return pack_->Str(rec_.record);
}

std::shared_ptr<const CompiledWrapper> WrapperPack::EntryView::CompilePlan()
    const {
  std::string_view blob = pack_->Bytes(rec_.plan_off, rec_.plan_len);
  if (blob.size() != rec_.plan_len) return nullptr;
  Cursor cur{blob.data(), blob.data() + blob.size()};
  auto str = [&](PackStrRef ref, std::string* out) {
    std::string_view s = pack_->Str(ref);
    if (s.size() != ref.len) {
      cur.ok = false;
      return;
    }
    out->assign(s);
  };
  switch (rec_.plan_kind) {
    case kPackPlanLr: {
      std::string left, right;
      str(cur.Ref(), &left);
      str(cur.Ref(), &right);
      if (!cur.ok || cur.p != cur.end) return nullptr;
      return CompiledWrapper::MakeLr(std::move(left), std::move(right));
    }
    case kPackPlanHlrt: {
      std::string head, tail, left, right;
      str(cur.Ref(), &head);
      str(cur.Ref(), &tail);
      str(cur.Ref(), &left);
      str(cur.Ref(), &right);
      if (!cur.ok || cur.p != cur.end) return nullptr;
      return CompiledWrapper::MakeHlrt(std::move(head), std::move(tail),
                                       std::move(left), std::move(right));
    }
    case kPackPlanXPath: {
      uint32_t count = cur.U32();
      if (count > (1u << 20)) return nullptr;  // Corruption guard.
      std::vector<CompiledWrapper::XPathStepSpec> specs;
      specs.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        CompiledWrapper::XPathStepSpec spec;
        uint32_t flags = cur.U32();
        spec.descendant = (flags & kStepDescendant) != 0;
        uint32_t test = (flags & kStepTestMask) >> kStepTestShift;
        spec.test = test == 1   ? CompiledWrapper::XPathStepSpec::Test::kAnyElement
                    : test == 2 ? CompiledWrapper::XPathStepSpec::Test::kText
                                : CompiledWrapper::XPathStepSpec::Test::kTag;
        spec.child_number = static_cast<int32_t>(cur.U32());
        PackStrRef tag = cur.Ref();
        if (spec.test == CompiledWrapper::XPathStepSpec::Test::kTag) {
          str(tag, &spec.tag);
        }
        uint32_t attr_count = cur.U32();
        if (attr_count > (1u << 20)) return nullptr;
        for (uint32_t a = 0; cur.ok && a < attr_count; ++a) {
          std::string name, value;
          str(cur.Ref(), &name);
          str(cur.Ref(), &value);
          spec.attr_filters.emplace_back(std::move(name), std::move(value));
        }
        if (!cur.ok) return nullptr;
        specs.push_back(std::move(spec));
      }
      if (!cur.ok || cur.p != cur.end) return nullptr;
      return CompiledWrapper::MakeXPath(specs);
    }
    default:
      return nullptr;
  }
}

std::string_view WrapperPack::SiteView::name() const {
  return pack_->Str(rec_.name);
}

std::optional<WrapperPack::EntryView> WrapperPack::SiteView::entry(
    size_t i) const {
  if (i >= rec_.entry_count) return std::nullopt;
  PackEntryRec erec;
  if (!pack_->ReadEntry(static_cast<uint64_t>(rec_.entry_begin) + i, &erec)) {
    return std::nullopt;
  }
  return EntryView(pack_, erec);
}

std::string_view WrapperPack::SiteView::automaton() const {
  if (rec_.automaton_len == 0) return {};
  return pack_->Bytes(rec_.automaton_off, rec_.automaton_len);
}

std::optional<WrapperPack::SiteView> WrapperPack::site(size_t index) const {
  PackSiteRec rec;
  if (!ReadSite(index, &rec)) return std::nullopt;
  return SiteView(this, rec);
}

std::optional<WrapperPack::SiteView> WrapperPack::FindSite(
    std::string_view name) const {
  uint64_t lo = 0;
  uint64_t hi = header_.site_count;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    PackSiteRec rec;
    if (!ReadSite(mid, &rec)) return std::nullopt;
    std::string_view mid_name = Str(rec.name);
    if (mid_name < name) {
      lo = mid + 1;
    } else if (name < mid_name) {
      hi = mid;
    } else {
      return SiteView(this, rec);
    }
  }
  return std::nullopt;
}

std::optional<WrapperPack::EntryView> WrapperPack::FindEntry(
    std::string_view site, std::string_view attribute) const {
  auto sv = FindSite(site);
  if (!sv.has_value()) return std::nullopt;
  uint64_t lo = sv->rec_.entry_begin;
  uint64_t hi = lo + sv->rec_.entry_count;
  if (hi < lo) return std::nullopt;  // Overflowed count: corrupt.
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    PackEntryRec rec;
    if (!ReadEntry(mid, &rec)) return std::nullopt;
    std::string_view mid_attr = Str(rec.attribute);
    if (mid_attr < attribute) {
      lo = mid + 1;
    } else if (attribute < mid_attr) {
      hi = mid;
    } else {
      return EntryView(this, rec);
    }
  }
  return std::nullopt;
}

Status WrapperPack::Verify() const {
  const PackHeader& h = header_;
  std::string_view body = Bytes(sizeof(PackHeader),
                                map_size_ - sizeof(PackHeader));
  if (Fnv1a(body.data(), body.size()) != h.body_checksum) {
    return Status::ParseError(
        StrFormat("pack: %s: body checksum mismatch", path_.c_str()));
  }
  // Strongest structural check available: rebuild the pack from its own
  // records and require bitwise identity — Build() is deterministic, so
  // any divergence in directories, plan blobs, automata, interning, or
  // padding shows up as a mismatch.
  WrapperPackBuilder builder;
  for (uint64_t s = 0; s < h.site_count; ++s) {
    PackSiteRec srec;
    if (!ReadSite(s, &srec)) {
      return Status::ParseError(
          StrFormat("pack: %s: site %llu unreadable", path_.c_str(),
                    static_cast<unsigned long long>(s)));
    }
    SiteView view(this, srec);
    std::string site_name(view.name());
    for (size_t e = 0; e < view.entry_count(); ++e) {
      auto entry = view.entry(e);
      if (!entry.has_value()) {
        return Status::ParseError(
            StrFormat("pack: %s: entry %zu of site %s unreadable",
                      path_.c_str(), e, site_name.c_str()));
      }
      Status added = builder.Add(site_name, std::string(entry->attribute()),
                                 std::string(entry->record()));
      if (!added.ok()) return added;
      if (entry->plan_kind() != kPackPlanNone &&
          entry->CompilePlan() == nullptr) {
        return Status::ParseError(StrFormat(
            "pack: %s: undecodable plan for %s/%.*s", path_.c_str(),
            site_name.c_str(), static_cast<int>(entry->attribute().size()),
            entry->attribute().data()));
      }
    }
    std::string_view automaton = view.automaton();
    if (srec.automaton_len > 0 && automaton.size() != srec.automaton_len) {
      return Status::ParseError(StrFormat("pack: %s: automaton of %s out of bounds",
                                          path_.c_str(), site_name.c_str()));
    }
    if (!FusedAutomaton::Validate(automaton)) {
      return Status::ParseError(StrFormat("pack: %s: invalid automaton for %s",
                                          path_.c_str(), site_name.c_str()));
    }
  }
  std::string rebuilt = builder.Build();
  if (rebuilt.size() != map_size_ ||
      std::memcmp(rebuilt.data(), map_, map_size_) != 0) {
    return Status::ParseError(StrFormat(
        "pack: %s: contents diverge from a canonical rebuild", path_.c_str()));
  }
  return Status::OK();
}

}  // namespace ntw::core
