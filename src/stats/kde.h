#ifndef NTW_STATS_KDE_H_
#define NTW_STATS_KDE_H_

#include <vector>

#include "common/result.h"

namespace ntw::stats {

/// Discrete kernel density estimator over non-negative real feature values
/// (the paper's schema-size and alignment features are discrete-valued;
/// Sec. 6.1 learns a "smooth distribution from finite data samples" with
/// kernel density methods).
///
/// Density: f(x) = (1/n·h) Σ_i K((x - x_i)/h) with a Gaussian kernel.
/// The bandwidth defaults to Silverman's rule-of-thumb
///   h = 0.9 · min(σ, IQR/1.34) · n^(-1/5)
/// floored at `min_bandwidth` so degenerate samples (all-equal values)
/// still yield a proper, smooth density.
class KernelDensity {
 public:
  struct Options {
    double min_bandwidth = 0.75;
    /// Overrides Silverman's rule when > 0.
    double fixed_bandwidth = 0.0;
  };

  /// Fits the estimator; fails on an empty sample.
  static Result<KernelDensity> Fit(const std::vector<double>& sample,
                                   const Options& options);
  static Result<KernelDensity> Fit(const std::vector<double>& sample) {
    return Fit(sample, Options{});
  }

  /// Density at x (always > 0 thanks to Gaussian tails).
  double Density(double x) const;

  /// Natural log of Density(x); never -inf but may be very negative.
  double LogDensity(double x) const;

  double bandwidth() const { return bandwidth_; }
  size_t sample_size() const { return sample_.size(); }

 private:
  KernelDensity(std::vector<double> sample, double bandwidth)
      : sample_(std::move(sample)), bandwidth_(bandwidth) {}

  std::vector<double> sample_;
  double bandwidth_;
};

/// Descriptive statistics used for bandwidth selection and reporting.
double Mean(const std::vector<double>& v);
double StdDev(const std::vector<double>& v);
/// q in [0,1]; linear interpolation between order statistics.
double Quantile(std::vector<double> v, double q);
double Median(const std::vector<double>& v);

}  // namespace ntw::stats

#endif  // NTW_STATS_KDE_H_
