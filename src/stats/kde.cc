#include "stats/kde.h"

#include <algorithm>
#include <cmath>

namespace ntw::stats {
namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;

}  // namespace

Result<KernelDensity> KernelDensity::Fit(const std::vector<double>& sample,
                                         const Options& options) {
  if (sample.empty()) {
    return Status::InvalidArgument("KernelDensity: empty sample");
  }
  double bandwidth;
  if (options.fixed_bandwidth > 0.0) {
    bandwidth = options.fixed_bandwidth;
  } else {
    double sigma = StdDev(sample);
    double iqr = Quantile(sample, 0.75) - Quantile(sample, 0.25);
    double spread = sigma;
    if (iqr > 0.0) spread = std::min(sigma, iqr / 1.34);
    double n = static_cast<double>(sample.size());
    bandwidth = 0.9 * spread * std::pow(n, -0.2);
    bandwidth = std::max(bandwidth, options.min_bandwidth);
  }
  return KernelDensity(sample, bandwidth);
}

double KernelDensity::Density(double x) const {
  double sum = 0.0;
  for (double xi : sample_) {
    double z = (x - xi) / bandwidth_;
    sum += std::exp(-0.5 * z * z);
  }
  double density = sum * kInvSqrt2Pi /
                   (bandwidth_ * static_cast<double>(sample_.size()));
  // Gaussian tails underflow to 0 for |z| ≳ 39; floor so LogDensity stays
  // finite and ranking remains a total order.
  return std::max(density, 1e-300);
}

double KernelDensity::LogDensity(double x) const {
  return std::log(Density(x));
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double mu = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Median(const std::vector<double>& v) {
  return Quantile(v, 0.5);
}

}  // namespace ntw::stats
