#include "html/dom.h"

#include <unordered_map>

namespace ntw::html {

bool IsVoidElementTag(std::string_view tag) {
  return tag == "area" || tag == "base" || tag == "br" || tag == "col" ||
         tag == "embed" || tag == "hr" || tag == "img" || tag == "input" ||
         tag == "link" || tag == "meta" || tag == "param" ||
         tag == "source" || tag == "track" || tag == "wbr";
}

std::unique_ptr<Node> Node::MakeText(std::string text) {
  auto node = std::make_unique<Node>();
  node->kind_ = NodeKind::kText;
  node->text_ = std::move(text);
  return node;
}

const std::string* Node::GetAttr(std::string_view name) const {
  for (const auto& [key, value] : attrs_) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string Node::TextContent() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& child : children_) {
    out += child->TextContent();
  }
  return out;
}

Node* Node::AppendChild(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

void Node::SetAttr(std::string name, std::string value) {
  for (auto& [key, existing] : attrs_) {
    if (key == name) {
      existing = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::move(name), std::move(value));
}

void Document::Finalize() {
  by_index_.clear();
  text_nodes_.clear();
  element_nodes_.clear();

  // Iterative pre-order traversal assigning indices, sibling indices and
  // same-tag child numbers.
  struct Frame {
    Node* node;
  };
  std::vector<Frame> stack;
  stack.push_back({root_.get()});
  while (!stack.empty()) {
    Node* node = stack.back().node;
    stack.pop_back();
    node->preorder_index_ = static_cast<int>(by_index_.size());
    by_index_.push_back(node);
    if (node->is_text()) text_nodes_.push_back(node);
    if (node->is_element()) element_nodes_.push_back(node);

    std::unordered_map<std::string, int> tag_counts;
    for (size_t i = 0; i < node->children_.size(); ++i) {
      Node* child = node->children_[i].get();
      child->sibling_index_ = static_cast<int>(i);
      if (child->is_element()) {
        child->same_tag_child_number_ = ++tag_counts[child->tag_];
      }
    }
    // Push children in reverse so they pop in document order.
    for (size_t i = node->children_.size(); i > 0; --i) {
      stack.push_back({node->children_[i - 1].get()});
    }
  }
}

}  // namespace ntw::html
