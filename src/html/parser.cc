#include "html/parser.h"

#include <array>
#include <string>
#include <vector>

#include "common/strings.h"
#include "html/parse_rules.h"
#include "html/tokenizer.h"

namespace ntw::html {

// Tags whose open instance is implicitly closed when a sibling of the same
// group starts. Modeled on the HTML5 "implied end tags" rules restricted to
// what listing pages actually use. Shared with the arena builder via
// parse_rules.h so the two parse modes cannot drift.
bool CloseImpliedBy(std::string_view open, std::string_view incoming) {
  if (open == "li" && incoming == "li") return true;
  if (open == "option" && incoming == "option") return true;
  if (open == "p" &&
      (incoming == "p" || incoming == "div" || incoming == "table" ||
       incoming == "ul" || incoming == "ol" || incoming == "li" ||
       incoming == "h1" || incoming == "h2" || incoming == "h3" ||
       incoming == "h4" || incoming == "blockquote" || incoming == "pre")) {
    return true;
  }
  if ((open == "td" || open == "th") &&
      (incoming == "td" || incoming == "th" || incoming == "tr")) {
    return true;
  }
  if (open == "tr" && incoming == "tr") return true;
  if ((open == "thead" || open == "tbody" || open == "tfoot") &&
      (incoming == "thead" || incoming == "tbody" || incoming == "tfoot")) {
    return true;
  }
  if (open == "dt" && (incoming == "dt" || incoming == "dd")) return true;
  if (open == "dd" && (incoming == "dt" || incoming == "dd")) return true;
  return false;
}

// Elements that act as scope boundaries: an implied close never propagates
// past them.
bool IsScopeBoundary(std::string_view tag) {
  return tag == "table" || tag == "ul" || tag == "ol" || tag == "dl" ||
         tag == "div" || tag == "body" || tag == "html" || tag == "select";
}

namespace {

class TreeBuilder {
 public:
  TreeBuilder(const ParseOptions& options, Document* doc)
      : options_(options), doc_(doc) {
    open_.push_back(doc_->root());
  }

  void Feed(const Token& token) {
    switch (token.kind) {
      case TokenKind::kText:
        HandleText(token);
        break;
      case TokenKind::kStartTag:
        HandleStartTag(token);
        break;
      case TokenKind::kEndTag:
        HandleEndTag(token);
        break;
      case TokenKind::kComment:
      case TokenKind::kDoctype:
        break;  // Dropped, as the paper's tidy pipeline does.
    }
  }

 private:
  Node* top() { return open_.back(); }

  void HandleText(const Token& token) {
    std::string text = options_.collapse_whitespace
                           ? CollapseWhitespace(token.data)
                           : token.data;
    if (options_.skip_whitespace_text &&
        StripWhitespace(text).empty()) {
      return;
    }
    top()->AppendChild(Node::MakeText(std::move(text)));
  }

  void HandleStartTag(const Token& token) {
    // Apply implied end tags, bounded by scope boundaries.
    while (open_.size() > 1) {
      Node* current = top();
      if (!current->is_element()) break;
      if (IsScopeBoundary(current->tag())) break;
      if (!CloseImpliedBy(current->tag(), token.data)) break;
      open_.pop_back();
    }

    auto element = std::make_unique<Node>(token.data);
    for (const auto& [name, value] : token.attrs) {
      element->SetAttr(name, value);
    }
    Node* placed = top()->AppendChild(std::move(element));
    if (!IsVoidElementTag(token.data) && !token.self_closing) {
      open_.push_back(placed);
    }
  }

  void HandleEndTag(const Token& token) {
    // Find the nearest matching open element; if none, ignore the end tag.
    for (size_t i = open_.size(); i > 1; --i) {
      Node* candidate = open_[i - 1];
      if (candidate->is_element() && candidate->tag() == token.data) {
        open_.resize(i - 1);
        return;
      }
      // Do not let a stray end tag close past a table boundary.
      if (candidate->is_element() && candidate->tag() == "table" &&
          token.data != "table") {
        return;
      }
    }
  }

  const ParseOptions& options_;
  Document* doc_;
  std::vector<Node*> open_;
};

}  // namespace

Result<Document> Parse(std::string_view input, const ParseOptions& options) {
  Document doc;
  TreeBuilder builder(options, &doc);
  Tokenizer tokenizer(input);
  Token token;
  while (tokenizer.Next(&token)) {
    builder.Feed(token);
  }
  doc.Finalize();
  return doc;
}

Result<Document> Parse(std::string_view input) {
  return Parse(input, ParseOptions{});
}

}  // namespace ntw::html
