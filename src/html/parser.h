#ifndef NTW_HTML_PARSER_H_
#define NTW_HTML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "html/dom.h"

namespace ntw::html {

/// Parser configuration.
struct ParseOptions {
  /// Drop text nodes that are pure whitespace (the normal setting for the
  /// extraction pipeline; inter-tag indentation carries no data).
  bool skip_whitespace_text = true;
  /// Collapse internal whitespace runs in text nodes to single spaces.
  bool collapse_whitespace = true;
};

/// Parses tag-soup HTML into a finalized Document. This is the library's
/// stand-in for the paper's jtidy clean-up + DOM parse: it inserts implied
/// end tags (</li>, </tr>, </td>, </p>, </option>...), treats void elements
/// (<br>, <img>, ...) as childless, recovers from mis-nested or unmatched
/// end tags, and drops comments/doctypes. Never fails on any input; the
/// Result is for interface uniformity and only errors on pathological
/// internal states (currently none).
Result<Document> Parse(std::string_view input, const ParseOptions& options);

/// Parses with default options.
Result<Document> Parse(std::string_view input);

}  // namespace ntw::html

#endif  // NTW_HTML_PARSER_H_
