#include "html/tokenizer.h"

#include "common/strings.h"
#include "html/entities.h"
#include "html/scan.h"

namespace ntw::html {
namespace {

bool IsTagNameStart(char c) { return IsAsciiAlpha(c); }

bool IsTagNameChar(char c) {
  return IsAsciiAlnum(c) || c == '-' || c == '_' || c == ':';
}

}  // namespace

std::vector<Token> Tokenizer::TokenizeAll() {
  std::vector<Token> tokens;
  Token token;
  while (Next(&token)) {
    tokens.push_back(std::move(token));
  }
  return tokens;
}

bool Tokenizer::Next(Token* token) {
  if (!raw_text_tag_.empty()) {
    std::string closing = raw_text_tag_;
    raw_text_tag_.clear();
    if (ConsumeRawText(closing, token)) return true;
    // Fall through: raw element had no content before its end tag; keep
    // tokenizing normally (the end tag is handled below).
  }

  if (pos_ >= input_.size()) return false;

  if (input_[pos_] != '<') {
    size_t start = pos_;
    pos_ = input_.find('<', pos_);  // memchr under the hood.
    if (pos_ == std::string_view::npos) pos_ = input_.size();
    token->kind = TokenKind::kText;
    token->data.clear();
    AppendDecodedEntities(input_.substr(start, pos_ - start), &token->data);
    token->self_closing = false;
    return true;
  }

  // '<!' introduces a comment or a doctype; one byte test keeps both
  // probes off the ordinary-tag path.
  if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '!') {
    // Comment?
    if (input_.substr(pos_, 4) == "<!--") {
      size_t end = input_.find("-->", pos_ + 4);
      token->kind = TokenKind::kComment;
      token->self_closing = false;
      if (end == std::string_view::npos) {
        token->data.assign(input_.substr(pos_ + 4));
        pos_ = input_.size();
      } else {
        token->data.assign(input_.substr(pos_ + 4, end - pos_ - 4));
        pos_ = end + 3;
      }
      return true;
    }

    // Doctype or other <! ...> declaration.
    size_t end = input_.find('>', pos_);
    token->kind = TokenKind::kDoctype;
    token->self_closing = false;
    if (end == std::string_view::npos) {
      token->data.assign(input_.substr(pos_ + 2));
      pos_ = input_.size();
    } else {
      token->data.assign(input_.substr(pos_ + 2, end - pos_ - 2));
      pos_ = end + 1;
    }
    return true;
  }

  if (LexTag(token)) return true;

  // Stray '<': emit it as text together with the following run.
  size_t start = pos_;
  pos_ = input_.find('<', pos_ + 1);
  if (pos_ == std::string_view::npos) pos_ = input_.size();
  token->kind = TokenKind::kText;
  token->data.clear();
  AppendDecodedEntities(input_.substr(start, pos_ - start), &token->data);
  token->self_closing = false;
  return true;
}

bool Tokenizer::LexTag(Token* token) {
  size_t save = pos_;
  ++pos_;  // Consume '<'.
  bool closing = false;
  if (pos_ < input_.size() && input_[pos_] == '/') {
    closing = true;
    ++pos_;
  }
  if (pos_ >= input_.size() || !IsTagNameStart(input_[pos_])) {
    pos_ = save;
    return false;
  }
  size_t name_start = pos_;
  while (pos_ < input_.size() && IsTagNameChar(input_[pos_])) ++pos_;

  token->kind = closing ? TokenKind::kEndTag : TokenKind::kStartTag;
  token->data.assign(input_.substr(name_start, pos_ - name_start));
  for (char& c : token->data) c = AsciiToLower(c);
  token->self_closing = false;

  if (!closing) {
    LexAttributes(token);
  } else {
    // Skip anything up to '>' on an end tag (attributes there are invalid
    // but must not derail the tokenizer).
    while (pos_ < input_.size() && input_[pos_] != '>') ++pos_;
  }
  if (pos_ < input_.size() && input_[pos_] == '>') ++pos_;

  if (!closing && !token->self_closing &&
      (token->data == "script" || token->data == "style" ||
       token->data == "textarea")) {
    raw_text_tag_ = token->data;
  }
  return true;
}

void Tokenizer::LexAttributes(Token* token) {
  // Overwrite existing attr slots in place and trim at the end: the slot
  // strings keep their capacity from tag to tag, so steady-state attribute
  // lexing does not allocate.
  size_t count = 0;
  for (;;) {
    SkipWhitespace();
    if (pos_ >= input_.size()) break;
    char c = input_[pos_];
    if (c == '>') break;
    if (c == '/') {
      ++pos_;
      SkipWhitespace();
      if (pos_ < input_.size() && input_[pos_] == '>') {
        token->self_closing = true;
      }
      break;
    }
    // Attribute name: runs to '=', '>', '/' or whitespace (vectorized
    // byte-class scan).
    size_t name_start = pos_;
    pos_ = scan::FindAttrNameEnd(input_, pos_);
    if (pos_ == std::string_view::npos) pos_ = input_.size();
    if (pos_ == name_start) {
      ++pos_;  // Defensive: skip a malformed character.
      continue;
    }
    if (count == token->attrs.size()) token->attrs.emplace_back();
    auto& [name, value] = token->attrs[count++];
    name.assign(input_.substr(name_start, pos_ - name_start));
    for (char& ch : name) ch = AsciiToLower(ch);
    value.clear();
    SkipWhitespace();
    if (pos_ < input_.size() && input_[pos_] == '=') {
      ++pos_;
      SkipWhitespace();
      if (pos_ < input_.size() &&
          (input_[pos_] == '"' || input_[pos_] == '\'')) {
        char quote = input_[pos_++];
        size_t value_start = pos_;
        pos_ = scan::FindByte(input_, pos_, quote);
        if (pos_ == std::string_view::npos) pos_ = input_.size();
        AppendDecodedEntities(
            input_.substr(value_start, pos_ - value_start), &value);
        if (pos_ < input_.size()) ++pos_;  // Closing quote.
      } else {
        size_t value_start = pos_;
        pos_ = scan::FindWsOrGt(input_, pos_);
        if (pos_ == std::string_view::npos) pos_ = input_.size();
        AppendDecodedEntities(
            input_.substr(value_start, pos_ - value_start), &value);
      }
    }
  }
  token->attrs.resize(count);
}

void Tokenizer::SkipWhitespace() {
  while (pos_ < input_.size() && IsAsciiSpace(input_[pos_])) ++pos_;
}

bool Tokenizer::ConsumeRawText(const std::string& closing_tag, Token* token) {
  std::string needle = "</" + closing_tag;
  size_t end = pos_;
  for (;;) {
    end = input_.find(needle, end);
    if (end == std::string_view::npos) {
      end = input_.size();
      break;
    }
    size_t after = end + needle.size();
    if (after >= input_.size() || input_[after] == '>' ||
        IsAsciiSpace(input_[after])) {
      break;
    }
    ++end;  // "</scriptfoo" is not a real end tag; keep scanning.
  }
  if (end == pos_) return false;
  token->kind = TokenKind::kText;
  token->data.assign(input_.substr(pos_, end - pos_));
  token->self_closing = false;
  pos_ = end;
  return true;
}

}  // namespace ntw::html
