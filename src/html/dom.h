#ifndef NTW_HTML_DOM_H_
#define NTW_HTML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ntw::html {

/// True for HTML void elements (<br>, <img>, ...) which never have
/// children or end tags.
bool IsVoidElementTag(std::string_view tag);

/// Kind of a DOM node. The library models only what the paper's framework
/// needs: elements and text. Comments and doctypes are dropped at parse
/// time (as jtidy does for the paper's pipeline).
enum class NodeKind {
  kDocument,  // Synthetic root owning the top-level nodes.
  kElement,
  kText,
};

/// A node in the parsed HTML tree. Nodes are owned by their parent via
/// unique_ptr; the Document owns the root. Raw Node* handles returned by
/// queries remain valid for the lifetime of the Document and are never
/// invalidated (the tree is immutable after parsing).
class Node {
 public:
  /// Creates a document root.
  Node() : kind_(NodeKind::kDocument) {}
  /// Creates an element with the given (lowercased) tag name.
  explicit Node(std::string tag)
      : kind_(NodeKind::kElement), tag_(std::move(tag)) {}
  /// Creates a text node.
  static std::unique_ptr<Node> MakeText(std::string text);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  /// Lowercased tag name; empty for text/document nodes.
  const std::string& tag() const { return tag_; }
  /// Raw character data; empty for element/document nodes.
  const std::string& text() const { return text_; }

  Node* parent() const { return parent_; }
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  size_t child_count() const { return children_.size(); }
  Node* child(size_t i) const { return children_[i].get(); }

  /// Document-wide pre-order index; assigned by Document::Finalize().
  /// The document root has index 0.
  int preorder_index() const { return preorder_index_; }

  /// 1-based position among element siblings with the same tag name
  /// (the XPath `tag[k]` child-number of Sec. 5); 0 for non-elements.
  int same_tag_child_number() const { return same_tag_child_number_; }

  /// 0-based position within the parent's child list.
  int sibling_index() const { return sibling_index_; }

  /// Attribute access. Names are lowercased at parse time. Returns nullptr
  /// when absent. Attribute order is preserved for serialization.
  const std::string* GetAttr(std::string_view name) const;
  bool HasAttr(std::string_view name) const {
    return GetAttr(name) != nullptr;
  }
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  /// Concatenation of all descendant text, in document order.
  std::string TextContent() const;

  /// Mutators used by the parser / generators before Finalize().
  Node* AppendChild(std::unique_ptr<Node> child);
  void SetAttr(std::string name, std::string value);
  void SetText(std::string text) { text_ = std::move(text); }

 private:
  friend class Document;

  NodeKind kind_;
  std::string tag_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;
  int preorder_index_ = -1;
  int same_tag_child_number_ = 0;
  int sibling_index_ = 0;
};

/// An immutable parsed HTML page. Construction: build a tree under root(),
/// then call Finalize() exactly once; Finalize assigns pre-order indices and
/// child numbers and freezes the node table used for O(1) lookup by index.
class Document {
 public:
  Document() : root_(std::make_unique<Node>()) {}

  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  Node* root() { return root_.get(); }
  const Node* root() const { return root_.get(); }

  /// Assigns preorder indices / child numbers and builds the index table.
  void Finalize();
  bool finalized() const { return !by_index_.empty(); }

  /// Total node count (including the document root).
  size_t node_count() const { return by_index_.size(); }

  /// Node with the given pre-order index; requires Finalize() was called.
  const Node* node(int preorder_index) const {
    return by_index_[static_cast<size_t>(preorder_index)];
  }

  /// All text nodes in document order; requires Finalize().
  const std::vector<const Node*>& text_nodes() const { return text_nodes_; }

  /// All element nodes in document order; requires Finalize().
  const std::vector<const Node*>& element_nodes() const {
    return element_nodes_;
  }

 private:
  std::unique_ptr<Node> root_;
  std::vector<const Node*> by_index_;
  std::vector<const Node*> text_nodes_;
  std::vector<const Node*> element_nodes_;
};

}  // namespace ntw::html

#endif  // NTW_HTML_DOM_H_
