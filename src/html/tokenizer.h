#ifndef NTW_HTML_TOKENIZER_H_
#define NTW_HTML_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ntw::html {

/// Lexical token kinds emitted by the tokenizer.
enum class TokenKind {
  kStartTag,
  kEndTag,
  kText,
  kComment,
  kDoctype,
};

/// One lexical token. Tag names and attribute names are lowercased;
/// attribute values and text have character references decoded.
///
/// `attrs` is meaningful only for kStartTag. The streaming loop reuses the
/// caller's Token — its strings keep their capacity, so steady-state
/// tokenization allocates nothing — which means other token kinds may leave
/// stale attrs from an earlier tag in place rather than clearing them.
struct Token {
  TokenKind kind;
  std::string data;  // Tag name, text content, or comment body.
  std::vector<std::pair<std::string, std::string>> attrs;
  bool self_closing = false;
};

/// Streaming HTML tokenizer with tag-soup tolerance: stray '<' characters
/// that do not begin a tag are treated as text, unterminated tags are closed
/// at end of input, attribute values may be double-quoted, single-quoted or
/// bare, and <script>/<style> contents are consumed as raw text (RCDATA).
class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input) : input_(input) {}

  /// Tokenizes the whole input in one call.
  std::vector<Token> TokenizeAll();

  /// Produces the next token; returns false at end of input.
  bool Next(Token* token);

 private:
  bool LexTag(Token* token);
  void LexAttributes(Token* token);
  void SkipWhitespace();
  bool ConsumeRawText(const std::string& closing_tag, Token* token);

  std::string_view input_;
  size_t pos_ = 0;
  // When non-empty, the tokenizer is inside a raw-text element and the next
  // Next() call returns its contents.
  std::string raw_text_tag_;
};

}  // namespace ntw::html

#endif  // NTW_HTML_TOKENIZER_H_
