#ifndef NTW_HTML_PARSE_RULES_H_
#define NTW_HTML_PARSE_RULES_H_

#include <string_view>

namespace ntw::html {

/// Tag-soup recovery rules shared by the heap tree builder (parser.cc) and
/// the arena tree builder (arena_dom.cc). The two parse modes must produce
/// structurally identical trees — keeping the rules in one place is what
/// makes the fast path's byte-identity contract hold by construction.

/// True when an open <`open`> element is implicitly closed by an incoming
/// start tag <`incoming`> (HTML5 "implied end tags" restricted to what
/// listing pages actually use).
bool CloseImpliedBy(std::string_view open, std::string_view incoming);

/// Elements that act as scope boundaries: an implied close never propagates
/// past them.
bool IsScopeBoundary(std::string_view tag);

}  // namespace ntw::html

#endif  // NTW_HTML_PARSE_RULES_H_
