#ifndef NTW_HTML_SERIALIZER_H_
#define NTW_HTML_SERIALIZER_H_

#include <string>

#include "html/dom.h"

namespace ntw::html {

/// Serializes a subtree back to HTML markup. Text is entity-escaped;
/// void elements are emitted without end tags. Primarily used by the site
/// generator (DOM template -> page source) and round-trip tests.
std::string Serialize(const Node* node);

/// Indented one-node-per-line debug rendering of a subtree, e.g.
///   div class="listing"
///     u
///       #text "PORTER FURNITURE"
std::string DumpTree(const Node* node);

/// Structural signature of a subtree with every text node replaced by the
/// token "#text" — the representation the publication model (Sec. 6)
/// operates on ("we replace each piece of text with a special node called
/// <#text>, since we are only concerned with the structure").
std::string StructuralSignature(const Node* node);

}  // namespace ntw::html

#endif  // NTW_HTML_SERIALIZER_H_
