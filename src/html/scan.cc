#include "html/scan.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__) || defined(__x86_64__)
#define NTW_SCAN_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define NTW_SCAN_NEON 1
#include <arm_neon.h>
#endif

namespace ntw::html::scan {
namespace {

constexpr size_t kNpos = std::string_view::npos;

constexpr bool IsWsByte(unsigned char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

// 256-entry membership table per byte class; the scalar loops test one
// byte per iteration against it.
struct ClassTable {
  bool is_member[256];
};

constexpr ClassTable MakeTable(bool with_whitespace,
                               std::string_view extras) {
  ClassTable table{};
  for (int i = 0; i < 256; ++i) {
    table.is_member[i] =
        with_whitespace && IsWsByte(static_cast<unsigned char>(i));
  }
  for (char c : extras) {
    table.is_member[static_cast<unsigned char>(c)] = true;
  }
  return table;
}

constexpr ClassTable kLtOrAmp = MakeTable(false, "<&");
constexpr ClassTable kTextSpecial = MakeTable(true, "<&");
constexpr ClassTable kWsOrGt = MakeTable(true, ">");
constexpr ClassTable kAttrNameEnd = MakeTable(true, "=>/");

size_t ScalarScan(const ClassTable& table, std::string_view s, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    if (table.is_member[static_cast<unsigned char>(s[i])]) return i;
  }
  return kNpos;
}

#if defined(NTW_SCAN_SSE2)

// ASCII whitespace is ' ' plus the contiguous control range 9..13
// (\t \n \v \f \r): one compare for the space, a shifted signed range
// check for the rest. Bytes >= 0x80 wrap to large positive values after
// the subtraction and fail the upper bound, so the signed compares are
// safe for arbitrary input.
inline __m128i WsMask(__m128i v) {
  __m128i space = _mm_cmpeq_epi8(v, _mm_set1_epi8(' '));
  __m128i shifted = _mm_sub_epi8(v, _mm_set1_epi8(9));
  __m128i in_range =
      _mm_and_si128(_mm_cmpgt_epi8(shifted, _mm_set1_epi8(-1)),
                    _mm_cmplt_epi8(shifted, _mm_set1_epi8(5)));
  return _mm_or_si128(space, in_range);
}

template <typename MaskFn>
size_t SimdScan(const ClassTable& table, std::string_view s, size_t from,
                MaskFn mask_of) {
  const char* data = s.data();
  size_t n = s.size();
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    int mask = _mm_movemask_epi8(mask_of(v));
    if (mask != 0) {
      return i + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  return ScalarScan(table, s, i);  // < 16-byte tail.
}

size_t LtOrAmpSimd(std::string_view s, size_t from) {
  return SimdScan(kLtOrAmp, s, from, [](__m128i v) {
    return _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('<')),
                        _mm_cmpeq_epi8(v, _mm_set1_epi8('&')));
  });
}

size_t TextSpecialSimd(std::string_view s, size_t from) {
  return SimdScan(kTextSpecial, s, from, [](__m128i v) {
    __m128i special =
        _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('<')),
                     _mm_cmpeq_epi8(v, _mm_set1_epi8('&')));
    return _mm_or_si128(special, WsMask(v));
  });
}

size_t WsOrGtSimd(std::string_view s, size_t from) {
  return SimdScan(kWsOrGt, s, from, [](__m128i v) {
    return _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('>')), WsMask(v));
  });
}

size_t AttrNameEndSimd(std::string_view s, size_t from) {
  return SimdScan(kAttrNameEnd, s, from, [](__m128i v) {
    __m128i stops =
        _mm_or_si128(_mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('=')),
                                  _mm_cmpeq_epi8(v, _mm_set1_epi8('>'))),
                     _mm_cmpeq_epi8(v, _mm_set1_epi8('/')));
    return _mm_or_si128(stops, WsMask(v));
  });
}

#elif defined(NTW_SCAN_NEON)

// 4 bits per lane: narrowing each 16-bit pair's high nibble turns the
// byte-wise 0x00/0xff match vector into a 64-bit mask whose trailing-zero
// count, divided by 4, is the first matching lane.
inline uint64_t MoveMask(uint8x16_t m) {
  uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(m), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

inline uint8x16_t WsMask(uint8x16_t v) {
  uint8x16_t space = vceqq_u8(v, vdupq_n_u8(' '));
  // Unsigned (v - 9) <= 4 covers \t \n \v \f \r; anything below 9 or
  // above 13 wraps past 4.
  uint8x16_t in_range = vcleq_u8(vsubq_u8(v, vdupq_n_u8(9)), vdupq_n_u8(4));
  return vorrq_u8(space, in_range);
}

template <typename MaskFn>
size_t SimdScan(const ClassTable& table, std::string_view s, size_t from,
                MaskFn mask_of) {
  const char* data = s.data();
  size_t n = s.size();
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t v = vld1q_u8(reinterpret_cast<const uint8_t*>(data + i));
    uint64_t mask = MoveMask(mask_of(v));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctzll(mask)) / 4;
    }
  }
  return ScalarScan(table, s, i);
}

size_t LtOrAmpSimd(std::string_view s, size_t from) {
  return SimdScan(kLtOrAmp, s, from, [](uint8x16_t v) {
    return vorrq_u8(vceqq_u8(v, vdupq_n_u8('<')),
                    vceqq_u8(v, vdupq_n_u8('&')));
  });
}

size_t TextSpecialSimd(std::string_view s, size_t from) {
  return SimdScan(kTextSpecial, s, from, [](uint8x16_t v) {
    uint8x16_t special = vorrq_u8(vceqq_u8(v, vdupq_n_u8('<')),
                                  vceqq_u8(v, vdupq_n_u8('&')));
    return vorrq_u8(special, WsMask(v));
  });
}

size_t WsOrGtSimd(std::string_view s, size_t from) {
  return SimdScan(kWsOrGt, s, from, [](uint8x16_t v) {
    return vorrq_u8(vceqq_u8(v, vdupq_n_u8('>')), WsMask(v));
  });
}

size_t AttrNameEndSimd(std::string_view s, size_t from) {
  return SimdScan(kAttrNameEnd, s, from, [](uint8x16_t v) {
    uint8x16_t stops = vorrq_u8(vorrq_u8(vceqq_u8(v, vdupq_n_u8('=')),
                                         vceqq_u8(v, vdupq_n_u8('>'))),
                                vceqq_u8(v, vdupq_n_u8('/')));
    return vorrq_u8(stops, WsMask(v));
  });
}

#endif  // NTW_SCAN_SSE2 / NTW_SCAN_NEON

// Dispatch mode, decided lazily on first use: -1 undecided, 0 scalar,
// 1 vector. NTW_NO_SIMD=1 (any non-empty value other than "0") pins the
// scalar loops for the whole process; ForceScalar() overrides either way.
std::atomic<int> g_mode{-1};

bool EnvDisablesSimd() {
  const char* value = std::getenv("NTW_NO_SIMD");
  if (value == nullptr || value[0] == '\0') return false;
  return !(value[0] == '0' && value[1] == '\0');
}

int DefaultMode() {
#if defined(NTW_SCAN_SSE2) || defined(NTW_SCAN_NEON)
  return EnvDisablesSimd() ? 0 : 1;
#else
  return 0;
#endif
}

inline bool UseSimd() {
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = DefaultMode();
    g_mode.store(mode, std::memory_order_relaxed);
  }
  return mode == 1;
}

}  // namespace

bool SimdCompiled() {
#if defined(NTW_SCAN_SSE2) || defined(NTW_SCAN_NEON)
  return true;
#else
  return false;
#endif
}

bool SimdEnabled() { return UseSimd(); }

const char* ImplementationName() {
  if (!UseSimd()) return "scalar";
#if defined(NTW_SCAN_SSE2)
  return "sse2";
#elif defined(NTW_SCAN_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

void ForceScalar(bool force) {
  g_mode.store(force ? 0 : DefaultMode(), std::memory_order_relaxed);
}

size_t FindByte(std::string_view s, size_t from, char c) {
  // memchr is already vectorized by libc on every target; the dispatch
  // switch deliberately does not degrade it.
  if (from >= s.size()) return kNpos;
  const void* hit = std::memchr(s.data() + from, c, s.size() - from);
  if (hit == nullptr) return kNpos;
  return static_cast<size_t>(static_cast<const char*>(hit) - s.data());
}

#if defined(NTW_SCAN_SSE2) || defined(NTW_SCAN_NEON)

size_t FindLtOrAmp(std::string_view s, size_t from) {
  return UseSimd() ? LtOrAmpSimd(s, from) : ScalarScan(kLtOrAmp, s, from);
}
size_t FindTextSpecial(std::string_view s, size_t from) {
  return UseSimd() ? TextSpecialSimd(s, from)
                   : ScalarScan(kTextSpecial, s, from);
}
size_t FindWsOrGt(std::string_view s, size_t from) {
  return UseSimd() ? WsOrGtSimd(s, from) : ScalarScan(kWsOrGt, s, from);
}
size_t FindAttrNameEnd(std::string_view s, size_t from) {
  return UseSimd() ? AttrNameEndSimd(s, from)
                   : ScalarScan(kAttrNameEnd, s, from);
}

namespace internal {
size_t FindLtOrAmpSimd(std::string_view s, size_t from) {
  return LtOrAmpSimd(s, from);
}
size_t FindTextSpecialSimd(std::string_view s, size_t from) {
  return TextSpecialSimd(s, from);
}
size_t FindWsOrGtSimd(std::string_view s, size_t from) {
  return WsOrGtSimd(s, from);
}
size_t FindAttrNameEndSimd(std::string_view s, size_t from) {
  return AttrNameEndSimd(s, from);
}
}  // namespace internal

#else  // Scalar-only build.

size_t FindLtOrAmp(std::string_view s, size_t from) {
  return ScalarScan(kLtOrAmp, s, from);
}
size_t FindTextSpecial(std::string_view s, size_t from) {
  return ScalarScan(kTextSpecial, s, from);
}
size_t FindWsOrGt(std::string_view s, size_t from) {
  return ScalarScan(kWsOrGt, s, from);
}
size_t FindAttrNameEnd(std::string_view s, size_t from) {
  return ScalarScan(kAttrNameEnd, s, from);
}

namespace internal {
size_t FindLtOrAmpSimd(std::string_view s, size_t from) {
  return ScalarScan(kLtOrAmp, s, from);
}
size_t FindTextSpecialSimd(std::string_view s, size_t from) {
  return ScalarScan(kTextSpecial, s, from);
}
size_t FindWsOrGtSimd(std::string_view s, size_t from) {
  return ScalarScan(kWsOrGt, s, from);
}
size_t FindAttrNameEndSimd(std::string_view s, size_t from) {
  return ScalarScan(kAttrNameEnd, s, from);
}
}  // namespace internal

#endif

namespace internal {
size_t FindLtOrAmpScalar(std::string_view s, size_t from) {
  return ScalarScan(kLtOrAmp, s, from);
}
size_t FindTextSpecialScalar(std::string_view s, size_t from) {
  return ScalarScan(kTextSpecial, s, from);
}
size_t FindWsOrGtScalar(std::string_view s, size_t from) {
  return ScalarScan(kWsOrGt, s, from);
}
size_t FindAttrNameEndScalar(std::string_view s, size_t from) {
  return ScalarScan(kAttrNameEnd, s, from);
}
}  // namespace internal

}  // namespace ntw::html::scan
