#include "html/arena_dom.h"

#include <array>
#include <deque>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "html/parse_rules.h"
#include "html/tokenizer.h"

namespace ntw::html {

namespace {

struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

using TransparentMap =
    std::unordered_map<std::string, NameTable::Interned, TransparentStringHash,
                       std::equal_to<>>;

}  // namespace

struct NameTable::Rep {
  mutable std::shared_mutex mu;
  TransparentMap map;
  // Stable storage for interned names: deque never moves existing elements.
  std::deque<std::string> names;
};

NameTable::NameTable() : rep_(new Rep) {}

NameTable& NameTable::Global() {
  static NameTable* table = new NameTable();
  return *table;
}

NameTable::Interned NameTable::Intern(std::string_view name) {
  // Front line: a tiny thread-local direct-mapped cache. Parsing interns the
  // same dozen tag and attribute names over and over, so one hash-free probe
  // with a full-string confirm hits almost always — cheaper than even an
  // unordered_map lookup. Collisions just overwrite the slot; correctness
  // rests entirely on the string comparison.
  struct Slot {
    std::string name;
    Interned interned;
  };
  thread_local std::array<Slot, 256> direct;
  Slot* slot = nullptr;
  if (!name.empty()) {
    size_t h = (name.size() * 131 +
                static_cast<unsigned char>(name.front()) * 31 +
                static_cast<unsigned char>(name.back())) &
               (direct.size() - 1);
    slot = &direct[h];
    if (slot->name == name) return slot->interned;
  }

  // Second line: a per-thread map of everything this thread has already
  // interned. The name universe (tags + attribute names) is tiny, so the
  // cache converges after the first few pages and parsing takes no locks.
  thread_local TransparentMap cache;
  if (auto it = cache.find(name); it != cache.end()) {
    if (slot != nullptr) {
      slot->name = name;
      slot->interned = it->second;
    }
    return it->second;
  }

  Interned interned;
  {
    std::shared_lock<std::shared_mutex> lock(rep_->mu);
    if (auto it = rep_->map.find(name); it != rep_->map.end()) {
      interned = it->second;
      lock.unlock();
      cache.emplace(std::string(name), interned);
      if (slot != nullptr) {
        slot->name = name;
        slot->interned = interned;
      }
      return interned;
    }
  }
  {
    std::unique_lock<std::shared_mutex> lock(rep_->mu);
    if (auto it = rep_->map.find(name); it != rep_->map.end()) {
      interned = it->second;
    } else {
      rep_->names.emplace_back(name);
      interned.id = static_cast<int32_t>(rep_->names.size()) - 1;
      interned.name = rep_->names.back();
      rep_->map.emplace(std::string(name), interned);
    }
  }
  cache.emplace(std::string(name), interned);
  if (slot != nullptr) {
    slot->name = name;
    slot->interned = interned;
  }
  return interned;
}

int32_t NameTable::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(rep_->mu);
  if (auto it = rep_->map.find(name); it != rep_->map.end()) {
    return it->second.id;
  }
  return -1;
}

namespace {

// Mirrors strings.cc CollapseWhitespace but writes into a reusable buffer,
// copying each run of non-space characters in bulk.
void CollapseWhitespaceTo(std::string_view s, std::string* out) {
  out->clear();
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsAsciiSpace(s[i])) ++i;
    size_t run = i;
    while (run < s.size() && !IsAsciiSpace(s[run])) ++run;
    if (run > i) {
      if (!out->empty()) out->push_back(' ');
      out->append(s.data() + i, run - i);
      i = run;
    }
  }
}

}  // namespace

// The arena twin of parser.cc's TreeBuilder. Same Tokenizer, same
// parse_rules.h recovery rules, same text handling — node for node.
// (Named, not anonymous, so ArenaDocument can befriend it.)
class ArenaTreeBuilder {
 public:
  // One open element on the builder stack. Frames are pooled per thread and
  // reused across parses so their tag_counts vectors keep capacity.
  struct Frame {
    int32_t node = 0;
    int32_t last_child = -1;
    int32_t children = 0;
    // (tag_id, count) for element children seen so far; the distinct-tag
    // count per parent is small, so a linear scan beats a hash map.
    std::vector<std::pair<int32_t, int32_t>> tag_counts;
  };

  // Per-thread reusable builder state.
  struct ParseScratch {
    std::vector<Frame> frames;
    std::string collapsed;
  };

  ArenaTreeBuilder(const ParseOptions& options, ArenaDocument* doc,
                   ParseScratch* scratch)
      : options_(options),
        doc_(doc),
        frames_(scratch->frames),
        collapsed_(scratch->collapsed) {
    doc_->nodes_.emplace_back();  // Document root, pre-order index 0.
    PushFrame(0);
  }

  void Feed(const Token& token) {
    switch (token.kind) {
      case TokenKind::kText:
        HandleText(token);
        break;
      case TokenKind::kStartTag:
        HandleStartTag(token);
        break;
      case TokenKind::kEndTag:
        HandleEndTag(token);
        break;
      case TokenKind::kComment:
      case TokenKind::kDoctype:
        break;  // Dropped, as the paper's tidy pipeline does.
    }
  }

 private:
  void PushFrame(int32_t node) {
    if (frames_.size() <= depth_) frames_.emplace_back();
    Frame& f = frames_[depth_++];
    f.node = node;
    f.last_child = -1;
    f.children = 0;
    f.tag_counts.clear();
  }

  // Appends a node under the current top frame and links it in.
  int32_t AppendNode(NodeKind kind) {
    Frame& f = frames_[depth_ - 1];
    int32_t idx = static_cast<int32_t>(doc_->nodes_.size());
    doc_->nodes_.emplace_back();
    ArenaNode& n = doc_->nodes_.back();
    n.kind = kind;
    n.parent = f.node;
    n.sibling_index = f.children++;
    if (f.last_child >= 0) {
      doc_->nodes_[static_cast<size_t>(f.last_child)].next_sibling = idx;
    } else {
      doc_->nodes_[static_cast<size_t>(f.node)].first_child = idx;
    }
    f.last_child = idx;
    return idx;
  }

  void HandleText(const Token& token) {
    std::string_view text;
    if (options_.collapse_whitespace) {
      CollapseWhitespaceTo(token.data, &collapsed_);
      text = collapsed_;
    } else {
      text = token.data;
    }
    if (options_.skip_whitespace_text && StripWhitespace(text).empty()) {
      return;
    }
    int32_t idx = AppendNode(NodeKind::kText);
    doc_->nodes_[static_cast<size_t>(idx)].text =
        doc_->arena_.CopyString(text);
  }

  void HandleStartTag(const Token& token) {
    // Apply implied end tags, bounded by scope boundaries.
    while (depth_ > 1) {
      const ArenaNode& current =
          doc_->nodes_[static_cast<size_t>(frames_[depth_ - 1].node)];
      if (IsScopeBoundary(current.tag)) break;
      if (!CloseImpliedBy(current.tag, token.data)) break;
      --depth_;
    }

    NameTable::Interned tag = NameTable::Global().Intern(token.data);
    int32_t idx = AppendNode(NodeKind::kElement);
    {
      ArenaNode& n = doc_->nodes_[static_cast<size_t>(idx)];
      n.tag_id = tag.id;
      n.tag = tag.name;
      n.attrs_begin = static_cast<int32_t>(doc_->attrs_.size());
      n.attrs_end = n.attrs_begin;
    }
    for (const auto& [name, value] : token.attrs) {
      SetAttr(idx, name, value);
    }

    // Same-tag child number among element siblings (XPath tag[k]).
    {
      Frame& parent = frames_[depth_ - 1];
      int32_t count = 0;
      for (auto& [tag_id, c] : parent.tag_counts) {
        if (tag_id == tag.id) {
          count = ++c;
          break;
        }
      }
      if (count == 0) {
        parent.tag_counts.emplace_back(tag.id, 1);
        count = 1;
      }
      doc_->nodes_[static_cast<size_t>(idx)].same_tag_child_number = count;
    }

    if (!IsVoidElementTag(token.data) && !token.self_closing) {
      PushFrame(idx);
    }
  }

  // Duplicate attribute names keep the first position, last value — the
  // same semantics as Node::SetAttr.
  void SetAttr(int32_t node, std::string_view name, std::string_view value) {
    ArenaNode& n = doc_->nodes_[static_cast<size_t>(node)];
    NameTable::Interned interned = NameTable::Global().Intern(name);
    for (int32_t i = n.attrs_begin; i < n.attrs_end; ++i) {
      ArenaAttr& attr = doc_->attrs_[static_cast<size_t>(i)];
      if (attr.name_id == interned.id) {
        attr.value = doc_->arena_.CopyString(value);
        return;
      }
    }
    doc_->attrs_.push_back(
        {interned.id, interned.name, doc_->arena_.CopyString(value)});
    n.attrs_end = static_cast<int32_t>(doc_->attrs_.size());
  }

  void HandleEndTag(const Token& token) {
    // Find the nearest matching open element; if none, ignore the end tag.
    for (size_t i = depth_; i > 1; --i) {
      const ArenaNode& candidate =
          doc_->nodes_[static_cast<size_t>(frames_[i - 1].node)];
      if (candidate.tag == token.data) {
        depth_ = i - 1;
        return;
      }
      // Do not let a stray end tag close past a table boundary.
      if (candidate.tag == "table" && token.data != "table") return;
    }
  }

  const ParseOptions& options_;
  ArenaDocument* doc_;
  std::vector<Frame>& frames_;
  std::string& collapsed_;
  size_t depth_ = 0;
};

void ArenaParse(std::string_view input, const ParseOptions& options,
                ArenaDocument* doc) {
  thread_local ArenaTreeBuilder::ParseScratch scratch;
  doc->Clear();
  ArenaTreeBuilder builder(options, doc, &scratch);
  Tokenizer tokenizer(input);
  Token token;
  while (tokenizer.Next(&token)) {
    builder.Feed(token);
  }
}

void ArenaParse(std::string_view input, ArenaDocument* doc) {
  ArenaParse(input, ParseOptions{}, doc);
}

namespace {

// Mirrors text::CharView::Flatten byte for byte: raw node text, raw
// `<tag attr="value">` markup (no escaping), void elements without end tags.
void FlattenNode(const ArenaDocument& doc, const std::vector<ArenaNode>& nodes,
                 int32_t index, std::string* stream,
                 std::vector<ArenaDocument::TextSpan>* spans) {
  const ArenaNode& n = nodes[static_cast<size_t>(index)];
  switch (n.kind) {
    case NodeKind::kDocument:
      for (int32_t c = n.first_child; c >= 0;
           c = nodes[static_cast<size_t>(c)].next_sibling) {
        FlattenNode(doc, nodes, c, stream, spans);
      }
      return;
    case NodeKind::kText: {
      ArenaDocument::TextSpan span;
      span.node = index;
      span.begin = stream->size();
      stream->append(n.text);
      span.end = stream->size();
      spans->push_back(span);
      return;
    }
    case NodeKind::kElement:
      break;
  }
  stream->push_back('<');
  stream->append(n.tag);
  for (int32_t i = n.attrs_begin; i < n.attrs_end; ++i) {
    const ArenaAttr& attr = doc.attrs()[static_cast<size_t>(i)];
    stream->push_back(' ');
    stream->append(attr.name);
    stream->append("=\"");
    stream->append(attr.value);
    stream->push_back('"');
  }
  stream->push_back('>');
  if (IsVoidElementTag(n.tag)) return;
  for (int32_t c = n.first_child; c >= 0;
       c = nodes[static_cast<size_t>(c)].next_sibling) {
    FlattenNode(doc, nodes, c, stream, spans);
  }
  stream->append("</");
  stream->append(n.tag);
  stream->push_back('>');
}

}  // namespace

void ArenaDocument::BuildStream() {
  stream_.clear();
  spans_.clear();
  if (!nodes_.empty()) {
    FlattenNode(*this, nodes_, 0, &stream_, &spans_);
  }
  stream_built_ = true;
}

const std::string& ArenaDocument::stream() {
  if (!stream_built_) BuildStream();
  return stream_;
}

const std::vector<ArenaDocument::TextSpan>& ArenaDocument::spans() {
  if (!stream_built_) BuildStream();
  return spans_;
}

void ArenaDocument::Clear() {
  arena_.Reset();
  nodes_.clear();
  attrs_.clear();
  stream_.clear();
  spans_.clear();
  stream_built_ = false;
}

}  // namespace ntw::html
