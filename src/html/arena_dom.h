#ifndef NTW_HTML_ARENA_DOM_H_
#define NTW_HTML_ARENA_DOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "html/dom.h"
#include "html/parser.h"

namespace ntw::html {

/// Process-global intern table for tag and attribute names. Interning maps
/// each distinct lowercased name to a dense int32 id, so the hot extraction
/// path compares ids instead of strings. The table only ever grows (the name
/// universe — HTML tags plus attribute names — is tiny and shared across all
/// pages); interned name storage is stable for the process lifetime, so the
/// string_views handed out never dangle.
///
/// Thread-safe. Lookups hit a thread-local cache first, so steady-state
/// parsing takes no locks.
class NameTable {
 public:
  struct Interned {
    int32_t id;
    std::string_view name;  // Stable for the process lifetime.
  };

  static NameTable& Global();

  /// Returns the id for `name`, creating one on first sight.
  Interned Intern(std::string_view name);

  /// Id for `name` if it was ever interned, -1 otherwise. Never creates.
  int32_t Find(std::string_view name) const;

 private:
  struct Rep;
  NameTable();
  Rep* rep_;
};

/// One attribute of an arena DOM element. The name is interned; the value
/// bytes live in the owning ArenaDocument's arena.
struct ArenaAttr {
  int32_t name_id;
  std::string_view name;   // Interned, process-stable.
  std::string_view value;  // Arena-backed.
};

/// One node of an arena DOM. Nodes live in a contiguous array inside
/// ArenaDocument, linked by indices; because the builder appends nodes in
/// document order, a node's array index IS its pre-order index — identical
/// to Node::preorder_index() on the heap DOM for the same input.
struct ArenaNode {
  NodeKind kind = NodeKind::kDocument;
  int32_t tag_id = -1;           // Interned tag; -1 for text/document nodes.
  int32_t parent = -1;
  int32_t first_child = -1;
  int32_t next_sibling = -1;
  int32_t attrs_begin = 0;       // [attrs_begin, attrs_end) into attrs().
  int32_t attrs_end = 0;
  int32_t same_tag_child_number = 0;  // 1-based among same-tag element sibs.
  int32_t sibling_index = 0;          // 0-based in parent's child list.
  std::string_view tag;          // Interned, process-stable; empty for text.
  std::string_view text;         // Arena-backed; empty for elements.
};

/// An HTML page parsed into index-linked arrays with every transient byte
/// (text, attribute values, the flattened char stream) in one arena.
/// Designed for reuse: Clear() recycles the arena and keeps every vector's
/// capacity, so re-parsing a similarly-sized page performs no allocations.
///
/// Lifetime rule: all string_views and spans obtained from an ArenaDocument
/// are invalidated by Clear() and by destruction — never retain them past
/// the request that parsed the page.
class ArenaDocument {
 public:
  /// A text node's extent in the flattened stream (mirrors text::TextSpan).
  struct TextSpan {
    int32_t node;  // Pre-order index of the text node.
    size_t begin;
    size_t end;
  };

  ArenaDocument() = default;
  ArenaDocument(const ArenaDocument&) = delete;
  ArenaDocument& operator=(const ArenaDocument&) = delete;

  size_t node_count() const { return nodes_.size(); }
  const ArenaNode& node(int32_t index) const {
    return nodes_[static_cast<size_t>(index)];
  }
  const std::vector<ArenaNode>& nodes() const { return nodes_; }

  /// Attribute slice of `n`, or nullptr when the name is absent.
  const ArenaAttr* FindAttr(const ArenaNode& n, int32_t name_id) const {
    for (int32_t i = n.attrs_begin; i < n.attrs_end; ++i) {
      if (attrs_[static_cast<size_t>(i)].name_id == name_id) {
        return &attrs_[static_cast<size_t>(i)];
      }
    }
    return nullptr;
  }
  const std::vector<ArenaAttr>& attrs() const { return attrs_; }

  /// The flattened character stream and its text spans, byte-identical to
  /// text::CharView over the heap DOM of the same input. Built lazily on
  /// first use (XPath plans never need it); stays valid until Clear().
  const std::string& stream();
  const std::vector<TextSpan>& spans();

  /// Recycles the document for the next parse. Keeps arena chunks and
  /// vector capacity.
  void Clear();

  Arena& arena() { return arena_; }
  const Arena& arena() const { return arena_; }

 private:
  friend class ArenaTreeBuilder;  // The parse-time builder (arena_dom.cc).

  void BuildStream();

  Arena arena_;
  std::vector<ArenaNode> nodes_;
  std::vector<ArenaAttr> attrs_;
  std::string stream_;
  std::vector<TextSpan> spans_;
  bool stream_built_ = false;
};

/// Parses `input` into `doc` (which is Clear()ed first). Produces a tree
/// structurally identical to html::Parse with the same options: same nodes
/// in the same pre-order, same sibling/child numbering, same attribute
/// order, same decoded/collapsed text — the shared Tokenizer and the shared
/// parse_rules.h guarantee it.
void ArenaParse(std::string_view input, const ParseOptions& options,
                ArenaDocument* doc);
void ArenaParse(std::string_view input, ArenaDocument* doc);

}  // namespace ntw::html

#endif  // NTW_HTML_ARENA_DOM_H_
