#include "html/serializer.h"

#include "common/strings.h"

namespace ntw::html {
namespace {

void SerializeTo(const Node* node, std::string* out) {
  switch (node->kind()) {
    case NodeKind::kDocument:
      for (const auto& child : node->children()) {
        SerializeTo(child.get(), out);
      }
      return;
    case NodeKind::kText:
      out->append(HtmlEscape(node->text()));
      return;
    case NodeKind::kElement:
      break;
  }
  out->push_back('<');
  out->append(node->tag());
  for (const auto& [name, value] : node->attrs()) {
    out->push_back(' ');
    out->append(name);
    out->append("=\"");
    out->append(HtmlEscape(value));
    out->push_back('"');
  }
  out->push_back('>');
  if (IsVoidElementTag(node->tag())) return;
  // Raw-text elements: the tokenizer consumes their contents without
  // entity decoding, so they must be emitted verbatim — escaping would
  // double-encode on every parse/serialize cycle. Their text cannot
  // contain "</tag" (it would have terminated the element at parse time).
  bool raw_text = node->tag() == "script" || node->tag() == "style" ||
                  node->tag() == "textarea";
  for (const auto& child : node->children()) {
    if (raw_text && child->is_text()) {
      out->append(child->text());
    } else {
      SerializeTo(child.get(), out);
    }
  }
  out->append("</");
  out->append(node->tag());
  out->push_back('>');
}

void DumpTo(const Node* node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (node->kind()) {
    case NodeKind::kDocument:
      out->append("#document\n");
      break;
    case NodeKind::kText:
      out->append("#text \"");
      out->append(node->text());
      out->append("\"\n");
      return;
    case NodeKind::kElement:
      out->append(node->tag());
      for (const auto& [name, value] : node->attrs()) {
        out->push_back(' ');
        out->append(name);
        out->append("=\"");
        out->append(value);
        out->push_back('"');
      }
      out->push_back('\n');
      break;
  }
  for (const auto& child : node->children()) {
    DumpTo(child.get(), depth + 1, out);
  }
}

void SignatureTo(const Node* node, std::string* out) {
  switch (node->kind()) {
    case NodeKind::kDocument:
      for (const auto& child : node->children()) {
        SignatureTo(child.get(), out);
      }
      return;
    case NodeKind::kText:
      out->append("#text ");
      return;
    case NodeKind::kElement:
      break;
  }
  out->push_back('<');
  out->append(node->tag());
  out->push_back('>');
  for (const auto& child : node->children()) {
    SignatureTo(child.get(), out);
  }
  out->append("</");
  out->append(node->tag());
  out->push_back('>');
}

}  // namespace

std::string Serialize(const Node* node) {
  std::string out;
  SerializeTo(node, &out);
  return out;
}

std::string DumpTree(const Node* node) {
  std::string out;
  DumpTo(node, 0, &out);
  return out;
}

std::string StructuralSignature(const Node* node) {
  std::string out;
  SignatureTo(node, &out);
  return out;
}

}  // namespace ntw::html
