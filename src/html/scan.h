#ifndef NTW_HTML_SCAN_H_
#define NTW_HTML_SCAN_H_

#include <cstddef>
#include <string_view>

namespace ntw::html::scan {

/// Vectorized byte-class scanning for the tokenizer and the streaming
/// flattener hot loops. Each Find* returns the index of the first byte at
/// or after `from` belonging to the function's class, or
/// std::string_view::npos when the rest of the input is clean.
///
/// The implementation is chosen once per process: SSE2 on x86-64 (baseline,
/// no CPUID probe needed), NEON on aarch64, a table-driven scalar loop
/// everywhere else. Setting NTW_NO_SIMD=1 in the environment forces the
/// scalar loop at startup — the CI jobs use it to keep the portable path
/// green — and ForceScalar() flips the same switch at runtime for tests
/// and benchmarks. Every implementation returns identical indices by
/// contract (tests/scan_test.cc sweeps them against each other).

/// True when a vector implementation was compiled in (SSE2/NEON target).
bool SimdCompiled();

/// True when the vector implementation is the active dispatch target
/// (compiled in, not disabled by NTW_NO_SIMD=1 or ForceScalar(true)).
bool SimdEnabled();

/// "sse2", "neon" or "scalar" — the active dispatch target.
const char* ImplementationName();

/// Test/bench hook: `true` forces the scalar loops regardless of compile
/// target; `false` restores the default (env-controlled) choice.
void ForceScalar(bool force);

/// First occurrence of byte `c` (memchr).
size_t FindByte(std::string_view s, size_t from, char c);

/// First '<' or '&' — the text-scan classes the tokenizer cares about.
size_t FindLtOrAmp(std::string_view s, size_t from);

/// First '<', '&' or ASCII whitespace — the streaming flattener's
/// verbatim-text validator class.
size_t FindTextSpecial(std::string_view s, size_t from);

/// First '>' or ASCII whitespace — ends a bare attribute value.
size_t FindWsOrGt(std::string_view s, size_t from);

/// First '=', '>', '/' or ASCII whitespace — ends an attribute name.
size_t FindAttrNameEnd(std::string_view s, size_t from);

namespace internal {
/// The raw scalar implementations, callable regardless of dispatch state
/// so the unit tests can compare them against the vector paths.
size_t FindLtOrAmpScalar(std::string_view s, size_t from);
size_t FindTextSpecialScalar(std::string_view s, size_t from);
size_t FindWsOrGtScalar(std::string_view s, size_t from);
size_t FindAttrNameEndScalar(std::string_view s, size_t from);
/// The raw vector implementations; only callable when SimdCompiled().
size_t FindLtOrAmpSimd(std::string_view s, size_t from);
size_t FindTextSpecialSimd(std::string_view s, size_t from);
size_t FindWsOrGtSimd(std::string_view s, size_t from);
size_t FindAttrNameEndSimd(std::string_view s, size_t from);
}  // namespace internal

}  // namespace ntw::html::scan

#endif  // NTW_HTML_SCAN_H_
