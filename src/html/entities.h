#ifndef NTW_HTML_ENTITIES_H_
#define NTW_HTML_ENTITIES_H_

#include <string>
#include <string_view>

namespace ntw::html {

/// Decodes HTML character references: the named entities that appear in
/// script-generated listing pages (&amp; &lt; &gt; &quot; &apos; &nbsp;
/// &copy; &reg; &trade; &middot; &bull; &ndash; &mdash;) plus decimal and
/// hexadecimal numeric references. Code points above 0x7f are decoded to
/// UTF-8. Unknown references are passed through verbatim, matching
/// tag-soup browser behaviour.
std::string DecodeEntities(std::string_view s);

/// Appends the decoded form of `s` to `*out` without clearing it: exactly
/// DecodeEntities minus the allocation, so hot loops (the tokenizer) can
/// reuse one output buffer across calls. Runs without references are
/// copied in bulk rather than byte by byte.
void AppendDecodedEntities(std::string_view s, std::string* out);

/// True when the '&' at s[pos] begins a character reference that
/// DecodeEntities would rewrite (a known named entity or a numeric
/// reference). The streaming flattener's verbatim validator uses this to
/// prove decode-identity for a span — every '&' that does NOT start a
/// reference passes through DecodeEntities unchanged — without running
/// the decoder or allocating. Precondition: pos < s.size() and
/// s[pos] == '&'.
bool StartsReference(std::string_view s, size_t pos);

}  // namespace ntw::html

#endif  // NTW_HTML_ENTITIES_H_
