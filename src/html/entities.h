#ifndef NTW_HTML_ENTITIES_H_
#define NTW_HTML_ENTITIES_H_

#include <string>
#include <string_view>

namespace ntw::html {

/// Decodes HTML character references: the named entities that appear in
/// script-generated listing pages (&amp; &lt; &gt; &quot; &apos; &nbsp;
/// &copy; &reg; &trade; &middot; &bull; &ndash; &mdash;) plus decimal and
/// hexadecimal numeric references. Code points above 0x7f are decoded to
/// UTF-8. Unknown references are passed through verbatim, matching
/// tag-soup browser behaviour.
std::string DecodeEntities(std::string_view s);

}  // namespace ntw::html

#endif  // NTW_HTML_ENTITIES_H_
