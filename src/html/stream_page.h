#ifndef NTW_HTML_STREAM_PAGE_H_
#define NTW_HTML_STREAM_PAGE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "html/tokenizer.h"

namespace ntw::html {

/// A text node's extent in a StreamPage's flattened stream.
struct StreamSpan {
  size_t begin;
  size_t end;
};

/// Appends CollapseWhitespace(text) to `out`, separator-joining the word
/// runs. Returns true when anything was appended (i.e. the text was not
/// whitespace-only — the skip_whitespace_text rule falls out for free).
/// This is the exact text normalization the tree builders apply, shared
/// here so the fused streaming-XPath executor captures matched text nodes
/// with the same bytes the arena DOM would store.
bool AppendCollapsedText(std::string_view text, std::string* out);

/// A page reduced to the flattened character stream plus its text spans —
/// the only inputs the LR/HLRT delimiter matchers consume — built without
/// constructing any DOM. The produced stream is byte-identical to
/// ArenaDocument::stream()/spans() for the same input under the default
/// ParseOptions (collapse whitespace, skip whitespace-only text), which is
/// what makes the serving fast path's byte-identity contract carry over to
/// the streaming path (tests/streaming_equivalence_test.cc pins it).
///
/// Three tiers, one scanner:
///
///  1. Verbatim (zero-copy): a single-pass scanner proves the raw input
///     already IS its own normalized stream — lowercase tag names, attrs
///     serialized exactly as ` name="value"` with no duplicates, text runs
///     that survive entity decoding and whitespace collapsing unchanged,
///     no comments/doctypes/stray '<', explicit end tags matching the
///     innermost open element, no implied end tags firing, empty stack at
///     end of input. On success stream() aliases the input and the spans
///     are raw-byte offsets: no copy, no decode, no DOM. Entity decoding
///     is thereby lazy in the strongest sense — the scanner only *tests*
///     each '&' (html::StartsReference); bytes are never rewritten.
///
///  2. Patched (copy-on-write): when every divergence the scanner meets
///     is LOCAL — its replacement bytes are computable at the point it is
///     discovered, without reordering anything already emitted — it does
///     not give up the single pass. At the first such divergence it
///     copies the (proven-verbatim) prefix into the reuse buffer and
///     continues, memcpying clean chunks and splicing in the replacement
///     at each patch point. The local set covers the lazy-decode fixes (a
///     decodable character reference in a text run or attribute value, a
///     whitespace-collapse fix, a whitespace-only text node to drop) and
///     the tag-soup rewrites real listing pages need: tag and attribute
///     name case folding, attribute re-quoting (single-quoted, unquoted
///     and valueless attributes, whitespace around '='), implied end tags
///     and mis-nested/stray/EOF closes resolved against the open-element
///     stack (synthesized closes splice in, dropped closes patch out).
///
///  3. Flattened: a STRUCTURAL rewrite the patch stream cannot express —
///     bytes moving backwards (duplicate attributes keep the first
///     position but the last value), the self-closing-slash machinery,
///     comments, doctypes, stray '<', unclosed raw-text elements — bails
///     to the fused tokenize→flatten loop (the shared Tokenizer plus the
///     shared parse_rules.h recovery rules, an open-tag stack instead of
///     a tree) that appends the normalized stream into the reuse buffer.
///
/// Reuse: Clear() keeps every buffer's capacity, so steady-state builds
/// allocate nothing (the serving layer pools StreamPages per shard).
///
/// Lifetime rule: stream() and spans() alias the Build() input when
/// verbatim() is true — they are valid only while the input bytes
/// outlive the page, and are invalidated by the next Build()/Clear().
class StreamPage {
 public:
  enum class Tier {
    kVerbatim,   // Zero-copy: stream() aliases the input.
    kPatched,    // Copy-on-write: clean chunks memcpyed, local patches.
    kFlattened,  // Full fused tokenize→flatten rebuild.
  };

  StreamPage() = default;
  StreamPage(const StreamPage&) = delete;
  StreamPage& operator=(const StreamPage&) = delete;

  /// Builds the flattened stream for `input` (default ParseOptions
  /// semantics). Never fails: pages the verbatim/patched scanner rejects
  /// take the fused flatten path.
  void Build(std::string_view input);

  /// The normalized character stream; aliases the Build() input when
  /// verbatim() is true.
  std::string_view stream() const {
    return tier_ == Tier::kVerbatim ? input_ : std::string_view(stream_);
  }
  const std::vector<StreamSpan>& spans() const { return spans_; }

  /// Which tier the last Build() took.
  Tier tier() const { return tier_; }

  /// True when the last Build() took the zero-copy tier.
  bool verbatim() const { return tier_ == Tier::kVerbatim; }

  /// Recycles for the next page (keeps capacity).
  void Clear();

 private:
  bool BuildVerbatim(std::string_view input);
  void BuildFlattened(std::string_view input);

  std::string_view input_;
  std::string stream_;               // Patched/flattened output buffer.
  std::vector<StreamSpan> spans_;
  std::vector<std::string_view> open_;        // Open-element tag names.
  std::vector<std::string_view> attr_names_;  // Per-tag dedup scratch.
  std::string needle_;                        // Raw-text end-tag scratch.
  std::string decoded_;                       // Patch entity-decode scratch.
  std::string normalized_;                    // Patch collapse scratch.
  std::string lowered_;                       // Name case-fold scratch.
  std::string closes_;                        // Synthesized end-tag scratch.
  Token token_;                               // Flatten token scratch.
  Tier tier_ = Tier::kFlattened;
};

}  // namespace ntw::html

#endif  // NTW_HTML_STREAM_PAGE_H_
