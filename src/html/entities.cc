#include "html/entities.h"

#include <cstdint>

#include "common/strings.h"

namespace ntw::html {
namespace {

// Small fixed table; linear scan is faster than a map at this size.
struct NamedEntity {
  const char* name;
  const char* utf8;
};

constexpr NamedEntity kNamedEntities[] = {
    {"amp", "&"},       {"lt", "<"},        {"gt", ">"},
    {"quot", "\""},     {"apos", "'"},      {"nbsp", "\xc2\xa0"},
    {"copy", "\xc2\xa9"}, {"reg", "\xc2\xae"}, {"trade", "\xe2\x84\xa2"},
    {"middot", "\xc2\xb7"}, {"bull", "\xe2\x80\xa2"},
    {"ndash", "\xe2\x80\x93"}, {"mdash", "\xe2\x80\x94"},
    {"hellip", "\xe2\x80\xa6"}, {"laquo", "\xc2\xab"},
    {"raquo", "\xc2\xbb"},
};

// Appends the UTF-8 encoding of `cp` to `out`.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp <= 0x7f) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7ff) {
    out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp <= 0xffff) {
    out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp <= 0x10ffff) {
    out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out->append("\xef\xbf\xbd");  // U+FFFD replacement character.
  }
}

// Attempts to decode a character reference starting at s[pos] (which is
// '&'). On success writes the decoded text (when `out` is non-null) and
// returns the index one past the reference; on failure returns pos.
size_t TryDecodeReference(std::string_view s, size_t pos, std::string* out) {
  size_t i = pos + 1;
  if (i >= s.size()) return pos;

  if (s[i] == '#') {
    ++i;
    bool hex = i < s.size() && (s[i] == 'x' || s[i] == 'X');
    if (hex) ++i;
    uint32_t cp = 0;
    size_t digits_start = i;
    while (i < s.size()) {
      char c = s[i];
      int digit;
      if (IsAsciiDigit(c)) {
        digit = c - '0';
      } else if (hex && c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (hex && c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        break;
      }
      cp = cp * (hex ? 16u : 10u) + static_cast<uint32_t>(digit);
      if (cp > 0x10ffff) cp = 0x110000;  // Saturate; emitted as U+FFFD.
      ++i;
    }
    if (i == digits_start) return pos;
    if (out != nullptr) AppendUtf8(cp, out);
    if (i < s.size() && s[i] == ';') ++i;
    return i;
  }

  size_t name_start = i;
  while (i < s.size() && IsAsciiAlnum(s[i])) ++i;
  std::string_view name = s.substr(name_start, i - name_start);
  if (name.empty()) return pos;
  for (const auto& entity : kNamedEntities) {
    if (name == entity.name) {
      if (out != nullptr) out->append(entity.utf8);
      if (i < s.size() && s[i] == ';') ++i;
      return i;
    }
  }
  return pos;
}

}  // namespace

std::string DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendDecodedEntities(s, &out);
  return out;
}

bool StartsReference(std::string_view s, size_t pos) {
  return TryDecodeReference(s, pos, nullptr) != pos;
}

void AppendDecodedEntities(std::string_view s, std::string* out) {
  size_t i = 0;
  while (i < s.size()) {
    size_t amp = s.find('&', i);
    if (amp == std::string_view::npos) {
      out->append(s.data() + i, s.size() - i);
      return;
    }
    out->append(s.data() + i, amp - i);
    size_t next = TryDecodeReference(s, amp, out);
    if (next != amp) {
      i = next;
    } else {
      out->push_back('&');
      i = amp + 1;
    }
  }
}

}  // namespace ntw::html
