#include "html/stream_page.h"

#include "common/strings.h"
#include "html/arena_dom.h"
#include "html/dom.h"
#include "html/entities.h"
#include "html/parse_rules.h"
#include "html/scan.h"

namespace ntw::html {
namespace {

constexpr size_t kNpos = std::string_view::npos;

// Mirrors the tokenizer's tag-name grammar (tokenizer.cc): names start
// with an ASCII letter — either case, the tokenizer folds — and continue
// with alnum/-/_/:. Uppercase bytes are a LOCAL rewrite now: the scanner
// folds them in place instead of bailing.
bool IsTagNameStart(char c) { return IsAsciiAlpha(c); }
bool IsTagNameChar(char c) {
  return IsAsciiAlnum(c) || c == '-' || c == '_' || c == ':';
}

bool IsUpperAscii(char c) { return c >= 'A' && c <= 'Z'; }

bool IsRawTextTag(std::string_view tag) {
  return tag == "script" || tag == "style" || tag == "textarea";
}

// True when CollapseWhitespace(s) == s for a non-empty s: no whitespace
// byte other than ' ', no leading/trailing space, no "  " run. Raw-text
// element contents (not entity-decoded, but collapse-processed) are
// validated with this.
bool IsCollapseIdentity(std::string_view s) {
  if (s.empty()) return true;
  if (IsAsciiSpace(s.front()) || IsAsciiSpace(s.back())) return false;
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    if (!IsAsciiSpace(s[i])) continue;
    if (s[i] != ' ' || IsAsciiSpace(s[i + 1])) return false;
  }
  return true;
}

}  // namespace

bool AppendCollapsedText(std::string_view text, std::string* out) {
  size_t mark = out->size();
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && IsAsciiSpace(text[i])) ++i;
    size_t run = i;
    while (run < text.size() && !IsAsciiSpace(text[run])) ++run;
    if (run > i) {
      if (out->size() > mark) out->push_back(' ');
      out->append(text.data() + i, run - i);
      i = run;
    }
  }
  return out->size() > mark;
}

void StreamPage::Clear() {
  input_ = std::string_view();
  stream_.clear();
  spans_.clear();
  open_.clear();
  attr_names_.clear();
  tier_ = Tier::kFlattened;
}

void StreamPage::Build(std::string_view input) {
  Clear();
  input_ = input;
  if (BuildVerbatim(input)) return;
  stream_.clear();
  spans_.clear();
  open_.clear();
  tier_ = Tier::kFlattened;
  BuildFlattened(input);
}

// Tiers 1+2: a single scan that proves the input byte-identical to the
// normalized stream (verbatim) or identical up to LOCAL patches — entity
// decodes and whitespace-collapse fixes whose replacements are computable
// in place (patched). Every check mirrors a specific normalization the
// Tokenizer / tree builder / flattener performs; any STRUCTURAL rewrite
// (one that moves, reorders or synthesizes tag bytes) bails to the fused
// flatten. The grammar is deliberately conservative — a false bail only
// costs speed, a false accept would break the byte-identity contract.
//
// Copy-on-write: while no patch has fired, nothing is copied and the
// recorded spans double as raw-byte offsets. The first patch copies the
// proven-verbatim prefix into stream_ and from then on clean chunks are
// appended in bulk between patch points.
bool StreamPage::BuildVerbatim(std::string_view in) {
  size_t n = in.size();
  size_t pos = 0;
  bool copied = false;    // True once the output diverged from the input.
  size_t flush_mark = 0;  // Raw start of the pending clean chunk (copied).

  // Output offset of raw offset `p`: identity until the first patch,
  // afterwards the pending clean chunk [flush_mark, p) lands right after
  // the bytes already in stream_.
  auto out_pos = [&](size_t p) {
    return copied ? stream_.size() + (p - flush_mark) : p;
  };
  // Replaces raw [q, r) with `replacement` in the output; returns the
  // output offset where the replacement begins.
  auto patch = [&](size_t q, size_t r, std::string_view replacement) {
    if (!copied) {
      stream_.assign(in.data(), q);  // The prefix is proven verbatim.
      copied = true;
    } else {
      stream_.append(in.data() + flush_mark, q - flush_mark);
    }
    size_t begin = stream_.size();
    stream_.append(replacement);
    flush_mark = r;
    return begin;
  };

  while (pos < n) {
    if (in[pos] != '<') {
      // Text run, ending at the next '<' or end of input. Verbatim text
      // must survive entity decoding (every '&' fails to start a
      // reference) and whitespace collapsing (interior single spaces
      // only) unchanged; anything else is a local rewrite — decode +
      // collapse the run and patch it in.
      size_t run_begin = pos;
      size_t run_end = n;
      bool rewrite = false;
      size_t p = pos;
      for (;;) {
        size_t q = scan::FindTextSpecial(in, p);
        if (q == kNpos) break;
        char c = in[q];
        if (c == '<') {
          run_end = q;
          break;
        }
        if (c == '&') {
          // The byte ending the run ('<' or the quote below) is never
          // alphanumeric, so reference parsing sees the same extent in
          // the full input as in the token substring.
          if (!StartsReference(in, q)) {
            p = q + 1;
            continue;
          }
          rewrite = true;
        } else if (c == ' ' && q != run_begin && q + 1 < n &&
                   !IsAsciiSpace(in[q + 1]) && in[q + 1] != '<') {
          // A single interior ' ' survives collapsing — keep validating.
          p = q + 1;
          continue;
        } else {
          // Any other whitespace shape gets collapse-rewritten.
          rewrite = true;
        }
        // The run will be decoded + collapsed wholesale; only its end
        // matters now, so skip the per-byte validation and memchr to the
        // closing '<'.
        size_t lt = scan::FindByte(in, q + 1, '<');
        run_end = lt == kNpos ? n : lt;
        break;
      }
      if (!rewrite) {
        spans_.push_back({out_pos(run_begin), out_pos(run_end)});
      } else {
        // Same pipeline as the tokenizer + builder: decode the whole
        // run, then collapse; a collapsed-empty run is the whitespace-
        // only text node the builders drop — patch it away, no span.
        decoded_.clear();
        AppendDecodedEntities(in.substr(run_begin, run_end - run_begin),
                              &decoded_);
        normalized_.clear();
        if (AppendCollapsedText(decoded_, &normalized_)) {
          size_t begin = patch(run_begin, run_end, normalized_);
          spans_.push_back({begin, begin + normalized_.size()});
        } else {
          patch(run_begin, run_end, std::string_view());
        }
      }
      pos = run_end;
      continue;
    }

    if (pos + 1 >= n) return false;  // Bare '<' at EOF → text token.
    char next = in[pos + 1];

    if (next == '/') {
      // End tag: the tokenizer lexes the name (folding case) and then
      // skips anything up to '>'. The builder closes the nearest matching
      // open element — popping, i.e. splicing close tags for, everything
      // above it — never crossing a table boundary; an unmatched end tag
      // is dropped. All of that resolves against the open stack right
      // here, so every shape is a LOCAL patch.
      size_t name_start = pos + 2;
      size_t p = name_start;
      if (p >= n || !IsTagNameStart(in[p])) return false;  // "</>" → text.
      bool fold = IsUpperAscii(in[p]);
      ++p;
      while (p < n && IsTagNameChar(in[p])) {
        fold = fold || IsUpperAscii(in[p]);
        ++p;
      }
      std::string_view name = in.substr(name_start, p - name_start);
      if (fold) {
        lowered_.assign(name);
        for (char& c : lowered_) c = AsciiToLower(c);
        name = NameTable::Global().Intern(lowered_).name;
      }
      size_t gt = scan::FindByte(in, p, '>');
      if (gt == kNpos) return false;  // EOF inside the end tag.
      size_t match = kNpos;
      for (size_t i = open_.size(); i > 0; --i) {
        if (open_[i - 1] == name) {
          match = i - 1;
          break;
        }
        if (open_[i - 1] == "table" && name != "table") break;
      }
      if (match == kNpos) {
        patch(pos, gt + 1, std::string_view());  // Dropped end tag.
        pos = gt + 1;
        continue;
      }
      if (match + 1 < open_.size()) {
        // Mis-nested: splice closes for everything above the matching
        // element, innermost first, ahead of this end tag.
        closes_.clear();
        for (size_t i = open_.size(); i > match + 1; --i) {
          closes_.append("</");
          closes_.append(open_[i - 1]);
          closes_.push_back('>');
        }
        patch(pos, pos, closes_);
      }
      open_.resize(match);
      if (fold || p != gt) {
        // Canonical close: folded name, junk before '>' dropped.
        closes_.assign("</");
        closes_.append(name);
        closes_.push_back('>');
        patch(pos, gt + 1, closes_);
      }
      pos = gt + 1;
      continue;
    }

    if (!IsTagNameStart(next)) return false;  // <!… <?… "< "… all bail.

    // Start tag. The tokenizer folds the name's case, so an uppercase
    // byte is a local patch (the interned lowered name gives the patch a
    // process-stable view to keep on the open stack).
    size_t name_start = pos + 1;
    size_t p = name_start + 1;
    bool fold = IsUpperAscii(next);
    while (p < n && IsTagNameChar(in[p])) {
      fold = fold || IsUpperAscii(in[p]);
      ++p;
    }
    std::string_view name = in.substr(name_start, p - name_start);
    if (fold) {
      lowered_.assign(name);
      for (char& c : lowered_) c = AsciiToLower(c);
      name = NameTable::Global().Intern(lowered_).name;
    }

    // Implied end tags, bounded by scope boundaries — the same loop as
    // the builders, with each popped element's close tag spliced in
    // before the '<' of this start tag.
    if (!open_.empty() && !IsScopeBoundary(open_.back()) &&
        CloseImpliedBy(open_.back(), name)) {
      closes_.clear();
      do {
        closes_.append("</");
        closes_.append(open_.back());
        closes_.push_back('>');
        open_.pop_back();
      } while (!open_.empty() && !IsScopeBoundary(open_.back()) &&
               CloseImpliedBy(open_.back(), name));
      patch(pos, pos, closes_);
    }
    if (fold) patch(name_start, p, name);

    // Attributes: the canonical form is ` name="value"` — single-space
    // separators, lowercase names, '=' with no surrounding whitespace, a
    // double-quoted decoded value. Everything the tokenizer's attribute
    // grammar admits except two shapes patches into that form in place:
    // duplicate names (first position, LAST value — bytes would move
    // backwards) and the '/' self-closing machinery bail to the flatten.
    attr_names_.clear();
    for (;;) {
      if (p >= n) return false;  // Unterminated tag → closed at EOF.
      size_t ws_begin = p;
      while (p < n && IsAsciiSpace(in[p])) ++p;
      if (p >= n) return false;
      if (in[p] == '>') {
        // "<div >" → "<div>": in-tag whitespace before '>' vanishes.
        if (p != ws_begin) patch(ws_begin, p, std::string_view());
        ++p;
        break;
      }
      if (in[p] == '/') return false;  // Self-closing machinery.
      // Separator: exactly one ' ' survives; anything else (tabs,
      // newlines, runs, or no whitespace at all after a quoted value)
      // patches to a single space.
      if (p != ws_begin + 1 || in[ws_begin] != ' ') {
        patch(ws_begin, p, " ");
      }
      // Name: runs to '=', '>', '/' or whitespace, case-folded — the
      // same scan the tokenizer uses.
      size_t an_start = p;
      p = scan::FindAttrNameEnd(in, p);
      if (p == kNpos) p = n;
      if (p == an_start) return false;  // Malformed byte at name position.
      std::string_view attr_name = in.substr(an_start, p - an_start);
      bool name_fold = false;
      for (char c : attr_name) name_fold = name_fold || IsUpperAscii(c);
      if (name_fold) {
        lowered_.assign(attr_name);
        for (char& c : lowered_) c = AsciiToLower(c);
        attr_name = NameTable::Global().Intern(lowered_).name;
        patch(an_start, p, attr_name);
      }
      for (std::string_view seen : attr_names_) {
        if (seen == attr_name) return false;  // Duplicate: bytes move.
      }
      attr_names_.push_back(attr_name);
      // Value: the tokenizer grammar is ws* ['=' ws* (quoted|unquoted)].
      size_t after_name = p;
      size_t q = p;
      while (q < n && IsAsciiSpace(in[q])) ++q;
      if (q >= n) return false;  // Tag closed at EOF.
      if (in[q] != '=') {
        // Valueless attribute → canonical `=""`; the whitespace just
        // skipped re-scans as the next separator.
        patch(after_name, after_name, "=\"\"");
        continue;  // p == after_name.
      }
      size_t eq = q;
      if (eq != after_name) {
        patch(after_name, eq, std::string_view());  // ws before '='.
      }
      size_t vstart = eq + 1;
      while (vstart < n && IsAsciiSpace(in[vstart])) ++vstart;
      size_t vbegin, vend, region_end;
      bool quoted_double = false;
      if (vstart < n && (in[vstart] == '"' || in[vstart] == '\'')) {
        char quote = in[vstart];
        vbegin = vstart + 1;
        vend = scan::FindByte(in, vbegin, quote);
        if (vend == kNpos) return false;  // Unterminated → EOF close.
        region_end = vend + 1;
        quoted_double = quote == '"';
      } else {
        // Unquoted (possibly empty) value runs to whitespace or '>'.
        vbegin = vstart;
        vend = scan::FindWsOrGt(in, vbegin);
        if (vend == kNpos) vend = n;
        region_end = vend;
      }
      // Already-canonical check: double-quoted, no whitespace after '=',
      // and the bytes survive entity decoding unchanged. The byte ending
      // the value (quote, whitespace or '>') is never alphanumeric, so
      // reference parsing sees the same extent in the full input as in
      // the token substring.
      bool canonical = quoted_double && vstart == eq + 1;
      if (canonical) {
        std::string_view value_region = in.substr(0, vend);
        size_t amp = vbegin;
        while ((amp = scan::FindByte(value_region, amp, '&')) != kNpos) {
          if (StartsReference(in, amp)) {
            canonical = false;
            break;
          }
          ++amp;
        }
      }
      if (!canonical) {
        // Re-quote: `='v'`, `=v`, `= "v"` and decodable values all
        // become `="decoded"` in one splice (values are entity-decoded
        // but never collapsed; no span — attr values are not text).
        decoded_.clear();
        decoded_.push_back('"');
        AppendDecodedEntities(in.substr(vbegin, vend - vbegin), &decoded_);
        decoded_.push_back('"');
        patch(eq + 1, region_end, decoded_);
      }
      p = region_end;
    }

    if (IsVoidElementTag(name)) {
      pos = p;
      continue;
    }
    open_.push_back(name);

    if (IsRawTextTag(name)) {
      // Raw-text content runs to the matching "</name" with a '>' or
      // whitespace boundary, exactly as the tokenizer scans it (the
      // needle is the folded lowercase name and the search is case-
      // sensitive, so a `</SCRIPT>` close is content and the element
      // runs to EOF — a bail). The close tag itself is handled by the
      // main loop's end-tag scanner, which canonicalizes any junk before
      // its '>'. Content is NOT entity-decoded (so '&' is fine) but IS
      // collapse-processed.
      needle_.assign("</");
      needle_.append(name);
      size_t end = p;
      for (;;) {
        end = in.find(needle_, end);
        if (end == kNpos) return false;  // Unclosed → content to EOF.
        size_t after = end + needle_.size();
        if (after >= n) return false;  // "</script" at EOF.
        if (in[after] == '>' || IsAsciiSpace(in[after])) break;
        ++end;  // "</scriptfoo" is content; keep scanning.
      }
      std::string_view content = in.substr(p, end - p);
      if (!content.empty()) {
        // Raw text is NOT entity-decoded but IS collapse-processed;
        // whitespace-only content is dropped (no text node). Both are
        // local fixes.
        if (IsCollapseIdentity(content)) {
          spans_.push_back({out_pos(p), out_pos(end)});
        } else {
          normalized_.clear();
          if (AppendCollapsedText(content, &normalized_)) {
            size_t begin = patch(p, end, normalized_);
            spans_.push_back({begin, begin + normalized_.size()});
          } else {
            patch(p, end, std::string_view());
          }
        }
      }
      pos = end;  // The main loop consumes the "</name>" close next.
      continue;
    }
    pos = p;
  }
  // Elements still open at EOF get their close tags synthesized at the
  // end of the stream, innermost first — exactly where the builders pop
  // the remaining frames. A pure append, so it is LOCAL.
  if (!open_.empty()) {
    closes_.clear();
    for (size_t i = open_.size(); i > 0; --i) {
      closes_.append("</");
      closes_.append(open_[i - 1]);
      closes_.push_back('>');
    }
    patch(n, n, closes_);
    open_.clear();
  }
  if (copied) {
    stream_.append(in.data() + flush_mark, n - flush_mark);
    tier_ = Tier::kPatched;
  } else {
    tier_ = Tier::kVerbatim;
  }
  return true;
}

// Tier 2: the fused tokenize→flatten loop. Feeds the shared Tokenizer
// through the same recovery rules as the tree builders (parse_rules.h),
// but instead of materializing nodes it appends the flattened stream
// directly: close tags are emitted at the document-order position where
// the builder would pop the element's frame, which is exactly where the
// recursive flattener emits them.
void StreamPage::BuildFlattened(std::string_view in) {
  auto emit_close = [this](std::string_view tag) {
    stream_.append("</");
    stream_.append(tag);
    stream_.push_back('>');
  };

  Tokenizer tokenizer(in);
  while (tokenizer.Next(&token_)) {
    switch (token_.kind) {
      case TokenKind::kText: {
        size_t begin = stream_.size();
        // Collapsed-empty text is the whitespace-only case the builders
        // skip; AppendCollapsed appends nothing then, so no span either.
        if (AppendCollapsedText(token_.data, &stream_)) {
          spans_.push_back({begin, stream_.size()});
        }
        break;
      }
      case TokenKind::kStartTag: {
        // Implied end tags, bounded by scope boundaries — same loop as
        // the builders, with the close tags emitted as we pop.
        while (!open_.empty()) {
          std::string_view top = open_.back();
          if (IsScopeBoundary(top)) break;
          if (!CloseImpliedBy(top, token_.data)) break;
          emit_close(top);
          open_.pop_back();
        }
        // Interned name: stable for the process lifetime, so the open
        // stack can hold views across the whole build.
        NameTable::Interned tag = NameTable::Global().Intern(token_.data);
        stream_.push_back('<');
        stream_.append(tag.name);
        // Duplicate attribute names keep the first position, last value
        // (Node::SetAttr semantics); later duplicates vanish.
        size_t attr_count = token_.attrs.size();
        for (size_t i = 0; i < attr_count; ++i) {
          const std::string& attr_name = token_.attrs[i].first;
          bool duplicate = false;
          for (size_t j = 0; j < i; ++j) {
            if (token_.attrs[j].first == attr_name) {
              duplicate = true;
              break;
            }
          }
          if (duplicate) continue;
          const std::string* value = &token_.attrs[i].second;
          for (size_t j = i + 1; j < attr_count; ++j) {
            if (token_.attrs[j].first == attr_name) {
              value = &token_.attrs[j].second;
            }
          }
          stream_.push_back(' ');
          stream_.append(attr_name);
          stream_.append("=\"");
          stream_.append(*value);
          stream_.push_back('"');
        }
        stream_.push_back('>');
        if (IsVoidElementTag(tag.name)) break;
        if (token_.self_closing) {
          emit_close(tag.name);  // Childless element: <x></x>.
          break;
        }
        open_.push_back(tag.name);
        break;
      }
      case TokenKind::kEndTag: {
        // Nearest matching open element closes everything above it; a
        // stray end tag never crosses a table boundary (and an entirely
        // unmatched one is dropped).
        for (size_t i = open_.size(); i > 0; --i) {
          std::string_view candidate = open_[i - 1];
          if (candidate == token_.data) {
            for (size_t j = open_.size(); j >= i; --j) {
              emit_close(open_[j - 1]);
            }
            open_.resize(i - 1);
            break;
          }
          if (candidate == "table" && token_.data != "table") break;
        }
        break;
      }
      case TokenKind::kComment:
      case TokenKind::kDoctype:
        break;  // Dropped, as the tidy pipeline does.
    }
  }
  // Unclosed elements get end tags at EOF, innermost first.
  for (size_t j = open_.size(); j > 0; --j) {
    emit_close(open_[j - 1]);
  }
  open_.clear();
}

}  // namespace ntw::html
