#include "html/stream_page.h"

#include "common/strings.h"
#include "html/arena_dom.h"
#include "html/dom.h"
#include "html/entities.h"
#include "html/parse_rules.h"
#include "html/scan.h"

namespace ntw::html {
namespace {

constexpr size_t kNpos = std::string_view::npos;

// The verbatim grammar only admits tag names that the tokenizer would
// emit unchanged: lowercase start, lowercase/digit/-/_/: continuation.
// Anything else (uppercase is the common case) gets rewritten by the
// tokenizer, so the validator bails.
bool IsVerbatimNameStart(char c) { return c >= 'a' && c <= 'z'; }
bool IsVerbatimNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' ||
         c == '_' || c == ':';
}

// Attribute-name bytes the tokenizer passes through unchanged. The
// tokenizer stops a name at '=', '>', '/' or whitespace and lowercases
// it, so uppercase bytes cannot round-trip.
bool IsVerbatimAttrNameChar(char c) {
  return c != '=' && c != '>' && c != '/' && !IsAsciiSpace(c) &&
         !(c >= 'A' && c <= 'Z');
}

bool IsRawTextTag(std::string_view tag) {
  return tag == "script" || tag == "style" || tag == "textarea";
}

// True when CollapseWhitespace(s) == s for a non-empty s: no whitespace
// byte other than ' ', no leading/trailing space, no "  " run. Raw-text
// element contents (not entity-decoded, but collapse-processed) are
// validated with this.
bool IsCollapseIdentity(std::string_view s) {
  if (s.empty()) return true;
  if (IsAsciiSpace(s.front()) || IsAsciiSpace(s.back())) return false;
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    if (!IsAsciiSpace(s[i])) continue;
    if (s[i] != ' ' || IsAsciiSpace(s[i + 1])) return false;
  }
  return true;
}

// Appends CollapseWhitespace(text) to `out`, separator-joining the word
// runs. Returns true when anything was appended (i.e. the text was not
// whitespace-only — the skip_whitespace_text rule falls out for free).
bool AppendCollapsed(std::string_view text, std::string* out) {
  size_t mark = out->size();
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && IsAsciiSpace(text[i])) ++i;
    size_t run = i;
    while (run < text.size() && !IsAsciiSpace(text[run])) ++run;
    if (run > i) {
      if (out->size() > mark) out->push_back(' ');
      out->append(text.data() + i, run - i);
      i = run;
    }
  }
  return out->size() > mark;
}

}  // namespace

void StreamPage::Clear() {
  input_ = std::string_view();
  stream_.clear();
  spans_.clear();
  open_.clear();
  attr_names_.clear();
  tier_ = Tier::kFlattened;
}

void StreamPage::Build(std::string_view input) {
  Clear();
  input_ = input;
  if (BuildVerbatim(input)) return;
  stream_.clear();
  spans_.clear();
  open_.clear();
  tier_ = Tier::kFlattened;
  BuildFlattened(input);
}

// Tiers 1+2: a single scan that proves the input byte-identical to the
// normalized stream (verbatim) or identical up to LOCAL patches — entity
// decodes and whitespace-collapse fixes whose replacements are computable
// in place (patched). Every check mirrors a specific normalization the
// Tokenizer / tree builder / flattener performs; any STRUCTURAL rewrite
// (one that moves, reorders or synthesizes tag bytes) bails to the fused
// flatten. The grammar is deliberately conservative — a false bail only
// costs speed, a false accept would break the byte-identity contract.
//
// Copy-on-write: while no patch has fired, nothing is copied and the
// recorded spans double as raw-byte offsets. The first patch copies the
// proven-verbatim prefix into stream_ and from then on clean chunks are
// appended in bulk between patch points.
bool StreamPage::BuildVerbatim(std::string_view in) {
  size_t n = in.size();
  size_t pos = 0;
  bool copied = false;    // True once the output diverged from the input.
  size_t flush_mark = 0;  // Raw start of the pending clean chunk (copied).

  // Output offset of raw offset `p`: identity until the first patch,
  // afterwards the pending clean chunk [flush_mark, p) lands right after
  // the bytes already in stream_.
  auto out_pos = [&](size_t p) {
    return copied ? stream_.size() + (p - flush_mark) : p;
  };
  // Replaces raw [q, r) with `replacement` in the output; returns the
  // output offset where the replacement begins.
  auto patch = [&](size_t q, size_t r, std::string_view replacement) {
    if (!copied) {
      stream_.assign(in.data(), q);  // The prefix is proven verbatim.
      copied = true;
    } else {
      stream_.append(in.data() + flush_mark, q - flush_mark);
    }
    size_t begin = stream_.size();
    stream_.append(replacement);
    flush_mark = r;
    return begin;
  };

  while (pos < n) {
    if (in[pos] != '<') {
      // Text run, ending at the next '<' or end of input. Verbatim text
      // must survive entity decoding (every '&' fails to start a
      // reference) and whitespace collapsing (interior single spaces
      // only) unchanged; anything else is a local rewrite — decode +
      // collapse the run and patch it in.
      size_t run_begin = pos;
      size_t run_end = n;
      bool rewrite = false;
      size_t p = pos;
      for (;;) {
        size_t q = scan::FindTextSpecial(in, p);
        if (q == kNpos) break;
        char c = in[q];
        if (c == '<') {
          run_end = q;
          break;
        }
        if (c == '&') {
          // The byte ending the run ('<' or the quote below) is never
          // alphanumeric, so reference parsing sees the same extent in
          // the full input as in the token substring.
          if (!StartsReference(in, q)) {
            p = q + 1;
            continue;
          }
          rewrite = true;
        } else if (c == ' ' && q != run_begin && q + 1 < n &&
                   !IsAsciiSpace(in[q + 1]) && in[q + 1] != '<') {
          // A single interior ' ' survives collapsing — keep validating.
          p = q + 1;
          continue;
        } else {
          // Any other whitespace shape gets collapse-rewritten.
          rewrite = true;
        }
        // The run will be decoded + collapsed wholesale; only its end
        // matters now, so skip the per-byte validation and memchr to the
        // closing '<'.
        size_t lt = scan::FindByte(in, q + 1, '<');
        run_end = lt == kNpos ? n : lt;
        break;
      }
      if (!rewrite) {
        spans_.push_back({out_pos(run_begin), out_pos(run_end)});
      } else {
        // Same pipeline as the tokenizer + builder: decode the whole
        // run, then collapse; a collapsed-empty run is the whitespace-
        // only text node the builders drop — patch it away, no span.
        decoded_.clear();
        AppendDecodedEntities(in.substr(run_begin, run_end - run_begin),
                              &decoded_);
        normalized_.clear();
        if (AppendCollapsed(decoded_, &normalized_)) {
          size_t begin = patch(run_begin, run_end, normalized_);
          spans_.push_back({begin, begin + normalized_.size()});
        } else {
          patch(run_begin, run_end, std::string_view());
        }
      }
      pos = run_end;
      continue;
    }

    if (pos + 1 >= n) return false;  // Bare '<' at EOF → text token.
    char next = in[pos + 1];

    if (next == '/') {
      // End tag: must be exactly "</name>" and close the innermost open
      // element — anything else makes the builder drop it or emit extra
      // implied closes, both of which rewrite the stream.
      size_t name_start = pos + 2;
      size_t p = name_start;
      if (p >= n || !IsVerbatimNameStart(in[p])) return false;
      ++p;
      while (p < n && IsVerbatimNameChar(in[p])) ++p;
      if (p >= n || in[p] != '>') return false;
      std::string_view name = in.substr(name_start, p - name_start);
      if (open_.empty() || open_.back() != name) return false;
      open_.pop_back();
      pos = p + 1;
      continue;
    }

    if (!IsVerbatimNameStart(next)) return false;  // <!… <?… <A… "< "…

    // Start tag.
    size_t name_start = pos + 1;
    size_t p = name_start + 1;
    while (p < n && IsVerbatimNameChar(in[p])) ++p;
    std::string_view name = in.substr(name_start, p - name_start);

    // An implied end tag would interpose a close tag the raw bytes lack.
    if (!open_.empty() && !IsScopeBoundary(open_.back()) &&
        CloseImpliedBy(open_.back(), name)) {
      return false;
    }

    // Attributes: each must be exactly ` name="value"` — single space,
    // no uppercase in the name, '=' then a double-quoted decode-identical
    // value, no duplicate names (the builder keeps first-position/
    // last-value, reordering the bytes), '>' immediately after the last.
    attr_names_.clear();
    for (;;) {
      if (p >= n) return false;  // Unterminated tag → closed at EOF.
      if (in[p] == '>') {
        ++p;
        break;
      }
      if (in[p] != ' ') return false;  // '/', tab, newline, … all bail.
      ++p;
      size_t an_start = p;
      while (p < n && IsVerbatimAttrNameChar(in[p])) ++p;
      if (p == an_start || p >= n || in[p] != '=') return false;
      std::string_view attr_name = in.substr(an_start, p - an_start);
      for (std::string_view seen : attr_names_) {
        if (seen == attr_name) return false;
      }
      attr_names_.push_back(attr_name);
      ++p;
      if (p >= n || in[p] != '"') return false;
      ++p;
      size_t value_end = scan::FindByte(in, p, '"');
      if (value_end == kNpos) return false;
      std::string_view value_region = in.substr(0, value_end);
      size_t amp = p;
      bool decode = false;
      while ((amp = scan::FindByte(value_region, amp, '&')) != kNpos) {
        if (StartsReference(in, amp)) decode = true;
        ++amp;
      }
      if (decode) {
        // Attribute values are entity-decoded but never collapsed; the
        // decoded bytes splice straight in (no span — attr values are
        // not text nodes).
        decoded_.clear();
        AppendDecodedEntities(in.substr(p, value_end - p), &decoded_);
        patch(p, value_end, decoded_);
      }
      p = value_end + 1;
    }

    if (IsVoidElementTag(name)) {
      pos = p;
      continue;
    }
    open_.push_back(name);

    if (IsRawTextTag(name)) {
      // Raw-text content runs to the matching "</name" (with a '>' or
      // whitespace boundary, as the tokenizer requires); for verbatim we
      // additionally require the close to be exactly "</name>". Content
      // is NOT entity-decoded (so '&' is fine) but IS collapse-processed.
      needle_.assign("</");
      needle_.append(name);
      size_t end = p;
      for (;;) {
        end = in.find(needle_, end);
        if (end == kNpos) return false;  // Unclosed → EOF close differs.
        size_t after = end + needle_.size();
        if (after >= n) return false;
        if (in[after] == '>') break;
        if (IsAsciiSpace(in[after])) return false;  // "</script >" etc.
        ++end;  // "</scriptfoo" is content; keep scanning.
      }
      std::string_view content = in.substr(p, end - p);
      if (!content.empty()) {
        // Raw text is NOT entity-decoded but IS collapse-processed;
        // whitespace-only content is dropped (no text node). Both are
        // local fixes.
        if (IsCollapseIdentity(content)) {
          spans_.push_back({out_pos(p), out_pos(end)});
        } else {
          normalized_.clear();
          if (AppendCollapsed(content, &normalized_)) {
            size_t begin = patch(p, end, normalized_);
            spans_.push_back({begin, begin + normalized_.size()});
          } else {
            patch(p, end, std::string_view());
          }
        }
      }
      pos = end;  // The main loop consumes the "</name>" close next.
      continue;
    }
    pos = p;
  }
  // Elements still open at EOF would get synthesized close tags in the
  // stream — a structural rewrite, so bail.
  if (!open_.empty()) return false;
  if (copied) {
    stream_.append(in.data() + flush_mark, n - flush_mark);
    tier_ = Tier::kPatched;
  } else {
    tier_ = Tier::kVerbatim;
  }
  return true;
}

// Tier 2: the fused tokenize→flatten loop. Feeds the shared Tokenizer
// through the same recovery rules as the tree builders (parse_rules.h),
// but instead of materializing nodes it appends the flattened stream
// directly: close tags are emitted at the document-order position where
// the builder would pop the element's frame, which is exactly where the
// recursive flattener emits them.
void StreamPage::BuildFlattened(std::string_view in) {
  auto emit_close = [this](std::string_view tag) {
    stream_.append("</");
    stream_.append(tag);
    stream_.push_back('>');
  };

  Tokenizer tokenizer(in);
  while (tokenizer.Next(&token_)) {
    switch (token_.kind) {
      case TokenKind::kText: {
        size_t begin = stream_.size();
        // Collapsed-empty text is the whitespace-only case the builders
        // skip; AppendCollapsed appends nothing then, so no span either.
        if (AppendCollapsed(token_.data, &stream_)) {
          spans_.push_back({begin, stream_.size()});
        }
        break;
      }
      case TokenKind::kStartTag: {
        // Implied end tags, bounded by scope boundaries — same loop as
        // the builders, with the close tags emitted as we pop.
        while (!open_.empty()) {
          std::string_view top = open_.back();
          if (IsScopeBoundary(top)) break;
          if (!CloseImpliedBy(top, token_.data)) break;
          emit_close(top);
          open_.pop_back();
        }
        // Interned name: stable for the process lifetime, so the open
        // stack can hold views across the whole build.
        NameTable::Interned tag = NameTable::Global().Intern(token_.data);
        stream_.push_back('<');
        stream_.append(tag.name);
        // Duplicate attribute names keep the first position, last value
        // (Node::SetAttr semantics); later duplicates vanish.
        size_t attr_count = token_.attrs.size();
        for (size_t i = 0; i < attr_count; ++i) {
          const std::string& attr_name = token_.attrs[i].first;
          bool duplicate = false;
          for (size_t j = 0; j < i; ++j) {
            if (token_.attrs[j].first == attr_name) {
              duplicate = true;
              break;
            }
          }
          if (duplicate) continue;
          const std::string* value = &token_.attrs[i].second;
          for (size_t j = i + 1; j < attr_count; ++j) {
            if (token_.attrs[j].first == attr_name) {
              value = &token_.attrs[j].second;
            }
          }
          stream_.push_back(' ');
          stream_.append(attr_name);
          stream_.append("=\"");
          stream_.append(*value);
          stream_.push_back('"');
        }
        stream_.push_back('>');
        if (IsVoidElementTag(tag.name)) break;
        if (token_.self_closing) {
          emit_close(tag.name);  // Childless element: <x></x>.
          break;
        }
        open_.push_back(tag.name);
        break;
      }
      case TokenKind::kEndTag: {
        // Nearest matching open element closes everything above it; a
        // stray end tag never crosses a table boundary (and an entirely
        // unmatched one is dropped).
        for (size_t i = open_.size(); i > 0; --i) {
          std::string_view candidate = open_[i - 1];
          if (candidate == token_.data) {
            for (size_t j = open_.size(); j >= i; --j) {
              emit_close(open_[j - 1]);
            }
            open_.resize(i - 1);
            break;
          }
          if (candidate == "table" && token_.data != "table") break;
        }
        break;
      }
      case TokenKind::kComment:
      case TokenKind::kDoctype:
        break;  // Dropped, as the tidy pipeline does.
    }
  }
  // Unclosed elements get end tags at EOF, innermost first.
  for (size_t j = open_.size(); j > 0; --j) {
    emit_close(open_[j - 1]);
  }
  open_.clear();
}

}  // namespace ntw::html
