#ifndef NTW_CRAWL_URL_H_
#define NTW_CRAWL_URL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ntw::crawl {

/// A parsed crawl target. Two schemes exist on purpose: `http` (the
/// serving origin the pipeline fetches over sockets) and `file` (a local
/// corpus tree, so tests and CI crawl without any network). The parser is
/// deliberately small — no userinfo, no IPv6 literals, no fragments kept —
/// because every URL the crawler touches is either an operator-supplied
/// seed or a link discovered on a page it already vetted.
struct Url {
  std::string scheme;  // "http" or "file".
  std::string host;    // Empty for file URLs.
  int port = 80;       // Meaningful for http only.
  std::string path;    // Normalized, always starts with '/'.
  std::string query;   // Raw bytes after '?', empty when absent.

  /// The politeness key: rate limiting, robots rules and the per-domain
  /// frontier queues are all keyed by this. "host:port" for http;
  /// the constant "file" for file URLs (one local disk, one budget).
  std::string Domain() const;

  /// Canonical string form — the dedup key. Parse(Serialize(u)) == u.
  std::string Serialize() const;
};

/// Parses an absolute URL. InvalidArgument on anything but
/// http://host[:port]/path[?query] or file:///path[?query]; fragments
/// ("#...") are stripped. The path is normalized ("." / ".." collapsed,
/// empty → "/").
Result<Url> ParseUrl(std::string_view spec);

/// Resolves an href found on `base`'s page: absolute URLs parse on their
/// own; "/abs/path" and "relative/path" resolve against the base.
/// Scheme-relative ("//host/x") inherits the base scheme.
Result<Url> ResolveUrl(const Url& base, std::string_view href);

/// Collapses "." and ".." segments and duplicate slashes; the result
/// always starts with '/' and ".." never escapes the root.
std::string NormalizePath(std::string_view path);

/// The site key a URL maps to in the wrapper repository: the name of the
/// directory containing the leaf, i.e. the last-but-one path segment
/// ("/site_07/page_0003.html" → "site_07"). Matches the on-disk layout of
/// both the serving repository and the sitegen origin corpus. Empty when
/// the path has fewer than two segments.
std::string SiteFromUrl(const Url& url);

/// Appends every <a href="..."> / <a href='...'> target of `html`,
/// resolved against `base`, to `out`. Unparseable or non-http/file hrefs
/// are skipped. A byte scan, not a DOM parse: link discovery must not
/// cost a tree build when the extraction path itself is streaming.
void AppendLinks(std::string_view html, const Url& base,
                 std::vector<Url>* out);

/// Glob match with '*' (any run, including '/') and '?' (single byte) —
/// the URL predicate language of --allow / --deny. Case-sensitive,
/// anchored at both ends.
bool MatchGlob(std::string_view pattern, std::string_view text);

}  // namespace ntw::crawl

#endif  // NTW_CRAWL_URL_H_
