#ifndef NTW_CRAWL_ROBOTS_H_
#define NTW_CRAWL_ROBOTS_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ntw::crawl {

/// The rules one robots.txt imposes on one user agent. Default-constructed
/// rules allow everything — the value a missing, 404 or unparseable
/// robots.txt yields.
struct RobotsRules {
  struct Rule {
    std::string pattern;  // Path prefix, '*' wildcards, optional '$' anchor.
    bool allow = false;
  };
  std::vector<Rule> rules;
  /// Crawl-delay directive in seconds; 0 = none. The pipeline folds it
  /// into the domain's token-bucket rate (effective rate becomes
  /// min(configured, 1/delay)).
  double crawl_delay_seconds = 0.0;

  /// Longest-pattern-match-wins over all rules (the Google semantics);
  /// an allow wins ties. No matching rule → allowed.
  bool Allows(std::string_view path) const;
};

/// True when `pattern` matches a prefix of `path`. '*' matches any run;
/// a trailing '$' anchors the pattern to the full path.
bool RobotsPathMatch(std::string_view pattern, std::string_view path);

/// Parses a robots.txt body for `agent`. Directive names are
/// case-insensitive ("User-Agent", "DISALLOW", "Crawl-delay"); '#' starts
/// a comment. Group selection: the group whose user-agent token is the
/// longest case-insensitive substring of `agent` wins; the wildcard "*"
/// group applies only when no specific group matched. An empty
/// `Disallow:` value allows everything (no rule is recorded).
RobotsRules ParseRobots(std::string_view body, std::string_view agent);

/// Per-domain robots rules with a TTL. Time is supplied by the caller as
/// seconds on its own monotonic clock, so expiry is testable without
/// sleeping. Thread-safe; a miss is reported to exactly one caller at a
/// time per domain (`Lookup` returns kFetchNeeded and marks the entry
/// pending), so concurrent workers do not stampede the origin's
/// robots.txt.
class RobotsCache {
 public:
  explicit RobotsCache(double ttl_seconds) : ttl_seconds_(ttl_seconds) {}

  enum class State {
    kHit,          // *rules is valid.
    kFetchNeeded,  // Caller must fetch robots.txt and call Put().
    kPending,      // Another worker is fetching; retry shortly.
  };

  State Lookup(const std::string& domain, double now_seconds,
               std::shared_ptr<const RobotsRules>* rules);

  /// Installs freshly fetched rules (also clears the pending mark).
  void Put(const std::string& domain, RobotsRules rules, double now_seconds);

 private:
  struct Entry {
    std::shared_ptr<const RobotsRules> rules;
    double fetched_at = 0.0;
    bool pending = false;
  };

  const double ttl_seconds_;
  std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ntw::crawl

#endif  // NTW_CRAWL_ROBOTS_H_
