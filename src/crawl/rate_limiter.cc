#include "crawl/rate_limiter.h"

#include <algorithm>

namespace ntw::crawl {

DomainRateLimiter::DomainRateLimiter(RateLimiterOptions options)
    : options_(options) {
  if (options_.requests_per_second <= 0.0) options_.requests_per_second = 1.0;
  if (options_.burst < 1.0) options_.burst = 1.0;
}

double DomainRateLimiter::EffectiveRate(const DomainState& state) const {
  double rate = options_.requests_per_second;
  if (state.crawl_delay > 0.0) {
    rate = std::min(rate, 1.0 / state.crawl_delay);
  }
  return rate;
}

double DomainRateLimiter::TryAcquire(const std::string& domain,
                                     double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  DomainState& state = domains_[domain];
  if (!state.initialized) {
    // A fresh domain starts with a full bucket — the first burst is free.
    state.tokens = options_.burst;
    state.last_refill = now_seconds;
    state.initialized = true;
  }
  if (now_seconds < state.blocked_until) {
    return state.blocked_until - now_seconds;
  }
  double rate = EffectiveRate(state);
  double elapsed = now_seconds - state.last_refill;
  if (elapsed > 0.0) {
    state.tokens = std::min(options_.burst, state.tokens + elapsed * rate);
    state.last_refill = now_seconds;
  }
  if (state.tokens >= 1.0) {
    state.tokens -= 1.0;
    return 0.0;
  }
  return (1.0 - state.tokens) / rate;
}

void DomainRateLimiter::ReportSuccess(const std::string& domain) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = domains_.find(domain);
  if (it == domains_.end()) return;
  it->second.backoff = 0.0;
  it->second.blocked_until = 0.0;
}

void DomainRateLimiter::ReportRetryableFailure(const std::string& domain,
                                               double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  DomainState& state = domains_[domain];
  state.backoff = state.backoff <= 0.0
                      ? options_.initial_backoff_seconds
                      : std::min(state.backoff * options_.backoff_multiplier,
                                 options_.max_backoff_seconds);
  // Penalties do not stack beyond the ceiling of the *current* window:
  // concurrent failures while already blocked extend to the same horizon.
  state.blocked_until =
      std::max(state.blocked_until, now_seconds + state.backoff);
}

void DomainRateLimiter::SetCrawlDelay(const std::string& domain,
                                      double delay_seconds) {
  if (delay_seconds <= 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  domains_[domain].crawl_delay = delay_seconds;
}

double DomainRateLimiter::BackoffRemaining(const std::string& domain,
                                           double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = domains_.find(domain);
  if (it == domains_.end()) return 0.0;
  return std::max(0.0, it->second.blocked_until - now_seconds);
}

}  // namespace ntw::crawl
