#ifndef NTW_CRAWL_RECORD_H_
#define NTW_CRAWL_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ntw::crawl {

/// Optional per-record latency annotations. Disabled by default because
/// they destroy the byte-identity contract between a crawl and an
/// offline `ntw_extract --emit ndjson` run over the same pages.
struct RecordTiming {
  bool enabled = false;
  int64_t fetch_micros = 0;
  int64_t extract_micros = 0;
};

/// Appends one `ntw-crawl-record` NDJSON line (including the trailing
/// '\n') to `*out`:
///
///   {"schema":"ntw-crawl-record","site":S,"url":U,"attribute":A,
///    "values":[...]}
///
/// with `"fetch_micros":F,"extract_micros":E` after "values" when timing
/// is enabled. This is THE record serializer — the crawl pipeline and
/// the offline ntw_extract NDJSON mode both call it, which is what makes
/// "crawl output is byte-identical to offline extraction" checkable.
void AppendRecordLine(std::string_view site, std::string_view url,
                      std::string_view attribute,
                      const std::vector<std::string_view>& values,
                      const RecordTiming& timing, std::string* out);

}  // namespace ntw::crawl

#endif  // NTW_CRAWL_RECORD_H_
