#include "crawl/record.h"

#include "obs/json.h"

namespace ntw::crawl {

void AppendRecordLine(std::string_view site, std::string_view url,
                      std::string_view attribute,
                      const std::vector<std::string_view>& values,
                      const RecordTiming& timing, std::string* out) {
  out->append("{\"schema\":\"ntw-crawl-record\",\"site\":\"");
  obs::JsonWriter::Escape(site, out);
  out->append("\",\"url\":\"");
  obs::JsonWriter::Escape(url, out);
  out->append("\",\"attribute\":\"");
  obs::JsonWriter::Escape(attribute, out);
  out->append("\",\"values\":[");
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->push_back('"');
    obs::JsonWriter::Escape(values[i], out);
    out->push_back('"');
  }
  out->push_back(']');
  if (timing.enabled) {
    out->append(",\"fetch_micros\":");
    out->append(std::to_string(timing.fetch_micros));
    out->append(",\"extract_micros\":");
    out->append(std::to_string(timing.extract_micros));
  }
  out->append("}\n");
}

}  // namespace ntw::crawl
