#ifndef NTW_CRAWL_FETCHER_H_
#define NTW_CRAWL_FETCHER_H_

#include <cstdint>
#include <string>

#include "crawl/url.h"

namespace ntw::crawl {

struct FetchOptions {
  int timeout_ms = 5000;
  /// Responses larger than this fail the fetch (kStatusBodyTooLarge) —
  /// a runaway origin must not balloon crawler memory.
  size_t max_body_bytes = 8 << 20;
  std::string user_agent = "ntw_crawl/1";
};

/// Synthetic status codes for transport-level outcomes, chosen outside
/// the HTTP range so they can share the `status` field.
inline constexpr int kStatusConnectError = -1;
inline constexpr int kStatusTimeout = -2;
inline constexpr int kStatusProtocolError = -3;
inline constexpr int kStatusBodyTooLarge = -4;

struct FetchResult {
  /// HTTP status (200, 404, 429, ...), or a kStatus* synthetic code.
  /// file:// fetches report 200 on success and 404 when missing.
  int status = 0;
  std::string body;
  std::string error;  // Human-readable detail for non-2xx outcomes.
  int64_t latency_micros = 0;

  bool ok() const { return status >= 200 && status < 300; }
  /// True for outcomes the pipeline retries with backoff: 429, 5xx,
  /// timeouts and connection failures. 4xx (other than 429) and
  /// protocol errors are permanent.
  bool retryable() const {
    return status == 429 || (status >= 500 && status < 600) ||
           status == kStatusTimeout || status == kStatusConnectError;
  }
};

/// Blocking single-request fetcher for the two schemes the crawl
/// pipeline supports: file:// (direct read, no sockets — the zero-dep CI
/// path) and http:// (dependency-free GET client: Host + User-Agent +
/// Connection: close, Content-Length or close-delimited framing,
/// SO_RCVTIMEO/SO_SNDTIMEO timeouts). One call = one connection; the
/// crawl's politeness rates make connection reuse irrelevant.
FetchResult Fetch(const Url& url, const FetchOptions& options);

}  // namespace ntw::crawl

#endif  // NTW_CRAWL_FETCHER_H_
