#ifndef NTW_CRAWL_FRONTIER_H_
#define NTW_CRAWL_FRONTIER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "crawl/rate_limiter.h"
#include "crawl/url.h"

namespace ntw::crawl {

struct FrontierOptions {
  /// URL predicate pushdown, evaluated on the serialized URL BEFORE a
  /// fetch is ever scheduled: when `allow` is non-empty a URL must match
  /// at least one allow glob; any `deny` glob match rejects. Deny wins.
  std::vector<std::string> allow;
  std::vector<std::string> deny;
  /// Link-following depth: seeds are depth 0; links found at depth d are
  /// admitted at d+1 while d+1 <= max_depth.
  int max_depth = 0;
  /// Total pages admitted for fetching (seeds + discovered); -1 = no cap.
  int64_t max_pages = -1;
  /// Simultaneous in-flight fetches per domain. 1 is the polite default
  /// (at most one open request per origin); benches raise it to scale.
  int domain_parallelism = 1;
};

/// One dispatched fetch. `seq` is the emission sequence number, assigned
/// at dispatch in dispatch order — the contract the ordered emit queue
/// relies on: the NDJSON output is ordered by seq, so given a fixed
/// frontier order the output bytes are independent of worker count.
struct FrontierItem {
  Url url;
  int depth = 0;
  int retries = 0;
  uint64_t seq = 0;
};

/// The crawl scheduler: a deduplicating admission filter in front of
/// per-domain FIFO queues, dispatched under the token-bucket rate
/// limiter. Domains are scanned in sorted order, so dispatch order is a
/// deterministic function of admission order and limiter decisions.
///
/// Worker protocol: loop { Next() → fetch/extract → Complete() }, exit
/// when Next() returns false (every queue empty and nothing in flight —
/// no more work can appear). Next() blocks while work exists but nothing
/// is dispatchable yet (rate limits, domain caps), waking on the
/// earliest limiter deadline or on state changes.
class Frontier {
 public:
  enum class AddResult {
    kAdmitted,
    kDuplicate,   // Seen before (normalized URL dedup).
    kDenied,      // Predicate pushdown rejected it.
    kTooDeep,     // Beyond max_depth.
    kFull,        // max_pages admissions already made.
  };

  Frontier(FrontierOptions options, DomainRateLimiter* limiter);

  /// Admission: dedup + predicates + depth + page cap, then the domain
  /// queue. Never blocks.
  AddResult Add(const Url& url, int depth);

  /// Re-admits a failed fetch (retry path): bypasses dedup and the page
  /// cap, re-enters its domain's queue, and will receive a fresh seq at
  /// dispatch. Never blocks.
  void Requeue(FrontierItem item);

  /// Blocks until an item is dispatchable, then fills `*item` (its seq
  /// freshly assigned) and counts it in flight. Returns false when the
  /// crawl is complete (all queues empty, nothing in flight) or
  /// Shutdown() was called.
  bool Next(FrontierItem* item);

  /// Marks a dispatched item done (success or permanent failure). Every
  /// Next() == true must be paired with exactly one Complete().
  void Complete(const FrontierItem& item);

  /// Wakes all waiters and makes Next() return false — abort path.
  void Shutdown();

  /// Monotonic count of seqs assigned so far (== dispatches).
  uint64_t dispatched() const;

  int64_t admitted() const;
  int64_t duplicates() const;
  int64_t denied() const;

  /// Seconds since construction on the steady clock — the time base every
  /// limiter/robots-cache call of one crawl must share, so backoff
  /// reports and TTL expiries line up with dispatch decisions.
  double NowSeconds() const;

 private:
  bool Passes(const std::string& serialized) const;

  FrontierOptions options_;
  DomainRateLimiter* limiter_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::set<std::string> seen_;
  /// Domain → FIFO of waiting items. std::map: sorted scan order.
  std::map<std::string, std::deque<FrontierItem>> queues_;
  std::map<std::string, int> inflight_by_domain_;
  int64_t queued_ = 0;
  int64_t inflight_ = 0;
  int64_t admitted_ = 0;
  int64_t duplicates_ = 0;
  int64_t denied_ = 0;
  uint64_t next_seq_ = 0;
  bool shutdown_ = false;
};

}  // namespace ntw::crawl

#endif  // NTW_CRAWL_FRONTIER_H_
