#include "crawl/url.h"

#include <algorithm>

#include "common/strings.h"

namespace ntw::crawl {

namespace {

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](char c) { return c >= '0' && c <= '9'; });
}

}  // namespace

std::string Url::Domain() const {
  if (scheme == "file") return "file";
  return host + ":" + std::to_string(port);
}

std::string Url::Serialize() const {
  std::string out = scheme + "://";
  if (scheme != "file") {
    out += host;
    if (port != 80) {
      out += ':';
      out += std::to_string(port);
    }
  }
  out += path;
  if (!query.empty()) {
    out += '?';
    out += query;
  }
  return out;
}

std::string NormalizePath(std::string_view path) {
  std::vector<std::string_view> kept;
  size_t start = 0;
  while (start <= path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    std::string_view segment = path.substr(start, end - start);
    if (segment == "..") {
      if (!kept.empty()) kept.pop_back();
    } else if (!segment.empty() && segment != ".") {
      kept.push_back(segment);
    }
    start = end + 1;
  }
  std::string out;
  for (std::string_view segment : kept) {
    out += '/';
    out += segment;
  }
  if (out.empty()) out = "/";
  // A trailing slash is significant for directory-ish targets (and for
  // robots prefix rules); keep it when the input had one.
  if (path.size() > 1 && path.back() == '/' && out.back() != '/') out += '/';
  return out;
}

Result<Url> ParseUrl(std::string_view spec) {
  size_t hash = spec.find('#');
  if (hash != std::string_view::npos) spec = spec.substr(0, hash);
  size_t scheme_end = spec.find("://");
  if (scheme_end == std::string_view::npos) {
    return Status::InvalidArgument("url '" + std::string(spec) +
                                   "': missing scheme");
  }
  Url url;
  url.scheme = ToLower(std::string(spec.substr(0, scheme_end)));
  std::string_view rest = spec.substr(scheme_end + 3);
  if (url.scheme == "file") {
    // file:///abs/path — an empty authority is required.
    size_t slash = rest.find('/');
    if (slash != 0) {
      return Status::InvalidArgument("url '" + std::string(spec) +
                                     "': file URLs need an absolute path");
    }
  } else if (url.scheme == "http") {
    size_t authority_end = rest.find_first_of("/?");
    std::string_view authority = rest.substr(0, authority_end);
    size_t colon = authority.rfind(':');
    if (colon != std::string_view::npos) {
      std::string_view port_str = authority.substr(colon + 1);
      if (!IsDigits(port_str)) {
        return Status::InvalidArgument("url '" + std::string(spec) +
                                       "': bad port");
      }
      int port = std::atoi(std::string(port_str).c_str());
      if (port < 1 || port > 65535) {
        return Status::InvalidArgument("url '" + std::string(spec) +
                                       "': port out of range");
      }
      url.port = port;
      authority = authority.substr(0, colon);
    }
    if (authority.empty()) {
      return Status::InvalidArgument("url '" + std::string(spec) +
                                     "': empty host");
    }
    url.host = ToLower(std::string(authority));
    rest = authority_end == std::string_view::npos ? std::string_view()
                                                   : rest.substr(authority_end);
  } else {
    return Status::InvalidArgument("url '" + std::string(spec) +
                                   "': unsupported scheme '" + url.scheme +
                                   "'");
  }
  size_t question = rest.find('?');
  std::string_view path = rest.substr(0, question);
  if (question != std::string_view::npos) {
    url.query = std::string(rest.substr(question + 1));
  }
  url.path = NormalizePath(path);
  return url;
}

Result<Url> ResolveUrl(const Url& base, std::string_view href) {
  size_t hash = href.find('#');
  if (hash != std::string_view::npos) href = href.substr(0, hash);
  if (href.empty()) {
    return Status::InvalidArgument("empty href");
  }
  if (href.find("://") != std::string_view::npos) return ParseUrl(href);
  if (href.size() >= 2 && href[0] == '/' && href[1] == '/') {
    return ParseUrl(base.scheme + ":" + std::string(href));
  }
  Url url = base;
  url.query.clear();
  std::string_view path = href;
  size_t question = href.find('?');
  if (question != std::string_view::npos) {
    url.query = std::string(href.substr(question + 1));
    path = href.substr(0, question);
  }
  if (!path.empty() && path[0] == '/') {
    url.path = NormalizePath(path);
    return url;
  }
  // Relative: resolve against the base path's directory.
  std::string directory = base.path.substr(0, base.path.rfind('/') + 1);
  url.path = NormalizePath(directory + std::string(path));
  return url;
}

std::string SiteFromUrl(const Url& url) {
  std::string_view path = url.path;
  size_t leaf = path.rfind('/');
  if (leaf == std::string_view::npos || leaf == 0) return "";
  std::string_view parent = path.substr(0, leaf);
  size_t start = parent.rfind('/');
  return std::string(parent.substr(start + 1));
}

void AppendLinks(std::string_view html, const Url& base,
                 std::vector<Url>* out) {
  // Scan for href= inside <a ...> tags. The corpus the crawler targets is
  // machine-generated markup; a byte scan finds exactly the anchors a DOM
  // walk would, without building a tree on the fetch path.
  size_t pos = 0;
  while ((pos = html.find("<a", pos)) != std::string_view::npos) {
    size_t tag_end = html.find('>', pos);
    if (tag_end == std::string_view::npos) return;
    std::string_view tag = html.substr(pos, tag_end - pos);
    pos = tag_end + 1;
    size_t href = tag.find("href=");
    if (href == std::string_view::npos) continue;
    std::string_view value = tag.substr(href + 5);
    if (value.empty()) continue;
    char quote = value[0];
    if (quote == '"' || quote == '\'') {
      value.remove_prefix(1);
      size_t close = value.find(quote);
      if (close == std::string_view::npos) continue;
      value = value.substr(0, close);
    } else {
      size_t close = value.find_first_of(" \t\r\n>");
      value = value.substr(0, close);
    }
    Result<Url> resolved = ResolveUrl(base, value);
    if (resolved.ok()) out->push_back(std::move(*resolved));
  }
}

bool MatchGlob(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer glob with star backtracking.
  size_t p = 0;
  size_t t = 0;
  size_t star = std::string_view::npos;
  size_t star_text = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_text = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_text;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace ntw::crawl
