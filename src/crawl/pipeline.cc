#include "crawl/pipeline.h"

#include <chrono>
#include <thread>
#include <utility>

#include "crawl/record.h"
#include "html/arena_dom.h"
#include "html/parser.h"
#include "obs/metrics.h"

namespace ntw::crawl {

namespace {

struct CrawlMetrics {
  obs::Counter* pages_fetched;
  obs::Counter* pages_failed;
  obs::Counter* robots_denied;
  obs::Counter* retries;
  obs::Counter* records_emitted;
  obs::Counter* values_extracted;
  obs::Counter* links_discovered;
  obs::Counter* bytes_fetched;
  obs::Histogram* fetch_latency;
  obs::Histogram* extract_latency;

  static CrawlMetrics& Get() {
    auto& registry = obs::Registry::Global();
    static CrawlMetrics m{
        registry.GetCounter("ntw.crawl.pages_fetched"),
        registry.GetCounter("ntw.crawl.pages_failed"),
        registry.GetCounter("ntw.crawl.robots_denied"),
        registry.GetCounter("ntw.crawl.retries"),
        registry.GetCounter("ntw.crawl.records_emitted"),
        registry.GetCounter("ntw.crawl.values_extracted"),
        registry.GetCounter("ntw.crawl.links_discovered"),
        registry.GetCounter("ntw.crawl.bytes_fetched"),
        registry.GetHistogram("ntw.crawl.fetch_latency_micros"),
        registry.GetHistogram("ntw.crawl.extract_latency_micros"),
    };
    return m;
  }
};

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Interpreted fallback, mirroring the serving path: heap DOM parse +
/// Wrapper::Extract, values materialized as strings.
std::vector<std::string> ExtractValuesInterpreted(
    const core::Wrapper& wrapper, const std::string& page_html) {
  Result<html::Document> doc = html::Parse(page_html);
  if (!doc.ok()) return {};
  core::PageSet pages;
  pages.AddPage(std::move(*doc));
  core::NodeSet extraction = wrapper.Extract(pages);
  std::vector<std::string> values;
  values.reserve(extraction.size());
  for (const core::NodeRef& ref : extraction) {
    const html::Node* node = pages.Resolve(ref);
    if (node != nullptr) values.push_back(node->text());
  }
  return values;
}

}  // namespace

void EmitQueue::Push(uint64_t seq, std::string chunk) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return seq < next_ + window_; });
  buffered_.emplace(seq, std::move(chunk));
  // Drain the in-order prefix. Whoever completes the window head writes;
  // the lock makes the sink single-writer.
  bool advanced = false;
  for (auto it = buffered_.begin();
       it != buffered_.end() && it->first == next_;
       it = buffered_.begin()) {
    if (!it->second.empty()) sink_(it->second);
    buffered_.erase(it);
    ++next_;
    advanced = true;
  }
  if (advanced) cv_.notify_all();
}

CrawlPipeline::CrawlPipeline(const serve::WrapperRepository* repository,
                             ThreadPool* pool, CrawlOptions options,
                             serve::ReinduceWorker* reinducer)
    : repository_(repository),
      pool_(pool),
      options_(std::move(options)),
      reinducer_(reinducer),
      limiter_(options_.rate),
      frontier_(
          FrontierOptions{options_.allow, options_.deny, options_.max_depth,
                          options_.max_pages, options_.domain_parallelism},
          &limiter_),
      robots_(options_.robots_ttl_seconds) {
  if (options_.workers < 1) options_.workers = 1;
  // A full emit window must always contain a seq some worker owns.
  if (options_.emit_window <= static_cast<size_t>(options_.workers)) {
    options_.emit_window = static_cast<size_t>(options_.workers) + 1;
  }
}

bool CrawlPipeline::RobotsAllows(const Url& url) {
  if (!options_.respect_robots || url.scheme == "file") return true;
  if (url.path == "/robots.txt") return true;
  std::string domain = url.Domain();
  for (;;) {
    std::shared_ptr<const RobotsRules> rules;
    RobotsCache::State state =
        robots_.Lookup(domain, frontier_.NowSeconds(), &rules);
    if (state == RobotsCache::State::kHit) {
      return rules->Allows(url.path);
    }
    if (state == RobotsCache::State::kPending) {
      // Another worker is fetching this domain's robots.txt right now.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    // kFetchNeeded: we own the fetch. Robots fetches bypass the frontier
    // and the token bucket — they gate page fetches, they are not pages.
    Url robots_url = url;
    robots_url.path = "/robots.txt";
    robots_url.query.clear();
    FetchResult fetched = Fetch(robots_url, options_.fetch);
    RobotsRules parsed;  // Missing/404/error robots.txt ⇒ allow-all.
    if (fetched.ok()) {
      parsed = ParseRobots(fetched.body, options_.fetch.user_agent);
    }
    if (parsed.crawl_delay_seconds > 0.0) {
      limiter_.SetCrawlDelay(domain, parsed.crawl_delay_seconds);
    }
    robots_.Put(domain, std::move(parsed), frontier_.NowSeconds());
  }
}

void CrawlPipeline::ExtractPage(const serve::WrapperRepository::Entry& entry,
                                std::string_view site,
                                std::string_view attribute,
                                const std::string& url,
                                const std::string& body, int64_t fetch_micros,
                                std::string* chunk) {
  CrawlMetrics& metrics = CrawlMetrics::Get();
  auto start = std::chrono::steady_clock::now();
  RecordTiming timing;
  timing.enabled = options_.timing;
  timing.fetch_micros = fetch_micros;

  // The serving stack's three extraction tiers, byte-identical by the
  // fastpath/streaming equivalence contracts.
  size_t value_count = 0;
  if (options_.fast_path && options_.streaming && entry.compiled != nullptr &&
      entry.compiled->dom_free()) {
    core::StreamBufferPool::Lease lease = stream_buffers_.Acquire();
    entry.compiled->ExtractStreaming(body, *lease, &lease->values);
    timing.extract_micros = MicrosSince(start);
    AppendRecordLine(site, url, attribute, lease->values, timing, chunk);
    value_count = lease->values.size();
    if (options_.self_heal && entry.drift != nullptr) {
      ObserveDriftSample(entry, body, lease->values.data(),
                         lease->values.size());
    }
  } else if (options_.fast_path && entry.compiled != nullptr) {
    core::FastBufferPool::Lease lease = buffers_.Acquire();
    html::ArenaParse(body, &lease->doc);
    entry.compiled->Extract(*lease, &lease->values);
    timing.extract_micros = MicrosSince(start);
    AppendRecordLine(site, url, attribute, lease->values, timing, chunk);
    value_count = lease->values.size();
    if (options_.self_heal && entry.drift != nullptr) {
      ObserveDriftSample(entry, body, lease->values.data(),
                         lease->values.size());
    }
  } else {
    std::vector<std::string> values =
        ExtractValuesInterpreted(*entry.wrapper, body);
    timing.extract_micros = MicrosSince(start);
    std::vector<std::string_view> views(values.begin(), values.end());
    AppendRecordLine(site, url, attribute, views, timing, chunk);
    value_count = views.size();
    if (options_.self_heal && entry.drift != nullptr) {
      ObserveDriftSample(entry, body, views.data(), views.size());
    }
  }
  metrics.extract_latency->Record(timing.extract_micros);
  metrics.records_emitted->Add(1);
  metrics.values_extracted->Add(static_cast<int64_t>(value_count));
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.records_emitted;
  stats_.values_extracted += static_cast<int64_t>(value_count);
}

void CrawlPipeline::ExtractSiteFused(
    const core::FusedSiteExtractor& fused,
    const std::vector<
        std::pair<std::string, const serve::WrapperRepository::Entry*>>&
        entries,
    std::string_view site, const std::string& url, const std::string& body,
    int64_t fetch_micros, std::string* chunk) {
  CrawlMetrics& metrics = CrawlMetrics::Get();
  auto start = std::chrono::steady_clock::now();
  core::StreamBufferPool::Lease page = stream_buffers_.Acquire();
  core::FusedScratchPool::Lease scratch = fused_scratch_.Acquire();
  fused.ExtractAllStreaming(body, *page, *scratch);
  // The scan cost is shared by every attribute it served; each record
  // reports the whole scan (timing is off on byte-identity runs anyway).
  int64_t scan_micros = MicrosSince(start);
  int64_t records = 0;
  int64_t value_total = 0;
  for (const auto& [attribute, entry] : entries) {
    size_t index = fused.FindAttribute(attribute);
    if (index == std::string_view::npos) {
      // Not automaton-covered (tree plan, or no compiled form): the
      // regular per-attribute tiers, emitted in place so the line order
      // matches the non-fused loop exactly.
      ExtractPage(*entry, site, attribute, url, body, fetch_micros, chunk);
      continue;
    }
    const std::vector<std::string_view>& values = scratch->values[index];
    RecordTiming timing;
    timing.enabled = options_.timing;
    timing.fetch_micros = fetch_micros;
    timing.extract_micros = scan_micros;
    AppendRecordLine(site, url, attribute, values, timing, chunk);
    if (options_.self_heal && entry->drift != nullptr) {
      ObserveDriftSample(*entry, body, values.data(), values.size());
    }
    metrics.extract_latency->Record(scan_micros);
    ++records;
    value_total += static_cast<int64_t>(values.size());
  }
  metrics.records_emitted->Add(records);
  metrics.values_extracted->Add(value_total);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.records_emitted += records;
  stats_.values_extracted += value_total;
}

void CrawlPipeline::ObserveDriftSample(
    const serve::WrapperRepository::Entry& entry, const std::string& body,
    const std::string_view* values, size_t count) {
  serve::DriftState* state = entry.drift.get();
  if (state == nullptr || reinducer_ == nullptr) return;
  serve::DriftState::Action action = state->Observe(0, values, count, body);
  if (action != serve::DriftState::Action::kReinduce) return;
  serve::DriftState::Sample sample = state->TakeSample();
  serve::ReinduceTask task;
  task.site = state->site();
  task.attribute = state->attribute();
  task.incumbent_record = state->record();
  task.pages = std::move(sample.pages);
  task.dictionary = std::move(sample.dictionary);
  task.state = entry.drift;
  if (!reinducer_->Enqueue(std::move(task))) state->EnterCooldown();
}

void CrawlPipeline::ProcessItem(FrontierItem* item, std::string* chunk) {
  CrawlMetrics& metrics = CrawlMetrics::Get();
  const Url& url = item->url;
  if (!RobotsAllows(url)) {
    metrics.robots_denied->Add(1);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.robots_denied;
    return;
  }

  FetchResult fetched = Fetch(url, options_.fetch);
  metrics.fetch_latency->Record(fetched.latency_micros);
  metrics.bytes_fetched->Add(static_cast<int64_t>(fetched.body.size()));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bytes_fetched += static_cast<int64_t>(fetched.body.size());
  }

  if (!fetched.ok()) {
    if (fetched.retryable()) {
      limiter_.ReportRetryableFailure(url.Domain(), frontier_.NowSeconds());
      if (item->retries < options_.max_retries) {
        // This seq closes empty; the requeued item gets a fresh seq at
        // its next dispatch.
        FrontierItem retry = *item;
        ++retry.retries;
        frontier_.Requeue(std::move(retry));
        metrics.retries->Add(1);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.retries;
        return;
      }
    }
    metrics.pages_failed->Add(1);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.pages_failed;
    return;
  }
  limiter_.ReportSuccess(url.Domain());
  metrics.pages_fetched->Add(1);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.pages_fetched;
  }

  // Extraction: every wrapper the snapshot has for this page's site (or
  // the one configured attribute). A site with no wrappers contributes
  // nothing — link discovery still runs.
  std::string site =
      options_.fixed_site.empty() ? SiteFromUrl(url) : options_.fixed_site;
  std::string serialized = url.Serialize();
  if (!site.empty()) {
    serve::WrapperRepository::PinnedSnapshot snapshot = repository_->Pin();
    // MaterializeSite serves both backends: the directory map and lazily
    // finalized pack entries, merged in ascending attribute order.
    std::vector<std::pair<std::string, const serve::WrapperRepository::Entry*>>
        entries = snapshot->MaterializeSite(site);
    std::shared_ptr<const core::FusedSiteExtractor> fused;
    if (options_.fast_path && options_.streaming && options_.fused &&
        options_.attribute.empty() && entries.size() >= 2) {
      fused = snapshot->FindFused(site);
    }
    if (fused != nullptr && !fused->attributes().empty()) {
      ExtractSiteFused(*fused, entries, site, serialized, fetched.body,
                       fetched.latency_micros, chunk);
    } else {
      for (const auto& [attribute, entry] : entries) {
        if (!options_.attribute.empty() && attribute != options_.attribute) {
          continue;
        }
        ExtractPage(*entry, site, attribute, serialized, fetched.body,
                    fetched.latency_micros, chunk);
      }
    }
  }
  repository_->ReclaimRetired();

  // Link discovery, bounded by max_depth at admission.
  if (item->depth < options_.max_depth) {
    std::vector<Url> links;
    AppendLinks(fetched.body, url, &links);
    int64_t discovered = 0;
    for (const Url& link : links) {
      if (frontier_.Add(link, item->depth + 1) ==
          Frontier::AddResult::kAdmitted) {
        ++discovered;
      }
    }
    metrics.links_discovered->Add(discovered);
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.links_discovered += discovered;
  }
}

void CrawlPipeline::WorkerLoop(EmitQueue* emit) {
  FrontierItem item;
  while (frontier_.Next(&item)) {
    std::string chunk;
    ProcessItem(&item, &chunk);
    emit->Push(item.seq, std::move(chunk));
    frontier_.Complete(item);
  }
}

CrawlStats CrawlPipeline::Run(const std::vector<std::string>& seeds,
                              const EmitQueue::Sink& sink) {
  for (const std::string& seed : seeds) {
    Result<Url> url = ParseUrl(seed);
    if (!url.ok()) continue;
    frontier_.Add(*url, 0);
  }
  EmitQueue emit(sink, options_.emit_window);
  // ParallelFor's caller-participates contract: Run() is one of the
  // workers; surplus loop bodies find the frontier drained and exit.
  pool_->ParallelFor(static_cast<size_t>(options_.workers),
                     [&](size_t) { WorkerLoop(&emit); });
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.urls_admitted = frontier_.admitted();
  stats_.urls_deduped = frontier_.duplicates();
  stats_.urls_denied = frontier_.denied();
  return stats_;
}

}  // namespace ntw::crawl
