#include "crawl/frontier.h"

#include <algorithm>

namespace ntw::crawl {

Frontier::Frontier(FrontierOptions options, DomainRateLimiter* limiter)
    : options_(std::move(options)),
      limiter_(limiter),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.domain_parallelism < 1) options_.domain_parallelism = 1;
}

double Frontier::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

bool Frontier::Passes(const std::string& serialized) const {
  for (const std::string& pattern : options_.deny) {
    if (MatchGlob(pattern, serialized)) return false;
  }
  if (options_.allow.empty()) return true;
  for (const std::string& pattern : options_.allow) {
    if (MatchGlob(pattern, serialized)) return true;
  }
  return false;
}

Frontier::AddResult Frontier::Add(const Url& url, int depth) {
  std::string serialized = url.Serialize();
  std::lock_guard<std::mutex> lock(mu_);
  if (depth > options_.max_depth) return AddResult::kTooDeep;
  if (!seen_.insert(serialized).second) {
    ++duplicates_;
    return AddResult::kDuplicate;
  }
  if (!Passes(serialized)) {
    ++denied_;
    return AddResult::kDenied;
  }
  if (options_.max_pages >= 0 && admitted_ >= options_.max_pages) {
    return AddResult::kFull;
  }
  ++admitted_;
  FrontierItem item;
  item.url = url;
  item.depth = depth;
  queues_[url.Domain()].push_back(std::move(item));
  ++queued_;
  cv_.notify_one();
  return AddResult::kAdmitted;
}

void Frontier::Requeue(FrontierItem item) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string domain = item.url.Domain();
  queues_[domain].push_back(std::move(item));
  ++queued_;
  cv_.notify_one();
}

bool Frontier::Next(FrontierItem* item) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutdown_) return false;
    if (queued_ == 0) {
      if (inflight_ == 0) {
        // Nothing queued and nothing in flight that could discover more:
        // the crawl is over. Wake everyone so all workers exit.
        cv_.notify_all();
        return false;
      }
      cv_.wait(lock);
      continue;
    }
    // Scan domains in sorted order for a dispatchable head-of-queue item.
    // The scan is O(domains) per dispatch, fine at crawl scale.
    double min_wait = -1.0;
    double now = NowSeconds();
    for (auto it = queues_.begin(); it != queues_.end();) {
      std::deque<FrontierItem>& queue = it->second;
      if (queue.empty()) {
        it = queues_.erase(it);
        continue;
      }
      const std::string& domain = it->first;
      // The synthetic "file" domain is a local corpus: no origin to be
      // polite to, so neither the per-domain parallelism cap nor the
      // token bucket applies — file:// crawls parallelize freely.
      bool local = domain == "file";
      if (!local &&
          inflight_by_domain_[domain] >= options_.domain_parallelism) {
        ++it;
        continue;
      }
      double wait = (local || limiter_ == nullptr)
                        ? 0.0
                        : limiter_->TryAcquire(domain, now);
      if (wait <= 0.0) {
        *item = std::move(queue.front());
        queue.pop_front();
        --queued_;
        item->seq = next_seq_++;
        ++inflight_;
        ++inflight_by_domain_[domain];
        return true;
      }
      if (min_wait < 0.0 || wait < min_wait) min_wait = wait;
      ++it;
    }
    // Work exists but nothing is dispatchable: sleep until the earliest
    // limiter deadline (or a state change — Complete()/Add() notify).
    if (min_wait < 0.0) {
      cv_.wait(lock);
    } else {
      cv_.wait_for(lock, std::chrono::duration<double>(
                             std::min(min_wait, 0.050)));
    }
  }
}

void Frontier::Complete(const FrontierItem& item) {
  std::lock_guard<std::mutex> lock(mu_);
  --inflight_;
  auto it = inflight_by_domain_.find(item.url.Domain());
  if (it != inflight_by_domain_.end() && --it->second <= 0) {
    inflight_by_domain_.erase(it);
  }
  cv_.notify_all();
}

void Frontier::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

uint64_t Frontier::dispatched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

int64_t Frontier::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t Frontier::duplicates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_;
}

int64_t Frontier::denied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denied_;
}

}  // namespace ntw::crawl
