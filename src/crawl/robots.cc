#include "crawl/robots.h"

#include <cstdlib>

#include "common/strings.h"

namespace ntw::crawl {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Case-insensitive "does `haystack` contain `needle`" — the user-agent
/// group match ("ntw" matches an agent string "ntw_crawl/1").
bool ContainsNoCase(std::string_view haystack, std::string_view needle) {
  if (needle.size() > haystack.size()) return false;
  std::string h = ToLower(std::string(haystack));
  std::string n = ToLower(std::string(needle));
  return h.find(n) != std::string::npos;
}

}  // namespace

bool RobotsPathMatch(std::string_view pattern, std::string_view path) {
  bool anchored = !pattern.empty() && pattern.back() == '$';
  if (anchored) pattern.remove_suffix(1);
  // Prefix semantics: an unanchored pattern is allowed to end anywhere in
  // the path, which is exactly "pattern + '*'" under glob matching.
  size_t p = 0;
  size_t t = 0;
  size_t star = std::string_view::npos;
  size_t star_text = 0;
  while (t < path.size()) {
    if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_text = t;
    } else if (p < pattern.size() && pattern[p] == path[t]) {
      ++p;
      ++t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_text;
    } else {
      return false;
    }
    if (p == pattern.size() && !anchored) return true;
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool RobotsRules::Allows(std::string_view path) const {
  // Longest matching pattern wins; allow wins ties.
  size_t best_length = 0;
  bool best_allow = true;
  bool matched = false;
  for (const Rule& rule : rules) {
    if (!RobotsPathMatch(rule.pattern, path)) continue;
    size_t length = rule.pattern.size();
    if (!matched || length > best_length ||
        (length == best_length && rule.allow)) {
      best_length = length;
      best_allow = rule.allow;
      matched = true;
    }
  }
  return !matched || best_allow;
}

RobotsRules ParseRobots(std::string_view body, std::string_view agent) {
  struct Group {
    std::vector<std::string> agents;
    RobotsRules rules;
  };
  std::vector<Group> groups;
  bool in_agent_list = false;

  size_t start = 0;
  while (start <= body.size()) {
    size_t end = body.find('\n', start);
    if (end == std::string_view::npos) end = body.size();
    std::string_view line = body.substr(start, end - start);
    start = end + 1;
    size_t comment = line.find('#');
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = Trim(line);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string directive = ToLower(std::string(Trim(line.substr(0, colon))));
    std::string_view value = Trim(line.substr(colon + 1));

    if (directive == "user-agent") {
      // Consecutive user-agent lines share one group; a user-agent line
      // after rules starts a new group.
      if (!in_agent_list) groups.emplace_back();
      groups.back().agents.emplace_back(value);
      in_agent_list = true;
      continue;
    }
    in_agent_list = false;
    if (groups.empty()) continue;  // Rules before any user-agent: ignored.
    Group& group = groups.back();
    if (directive == "disallow") {
      // An empty Disallow allows everything — no rule to record.
      if (!value.empty()) {
        group.rules.rules.push_back({std::string(value), false});
      }
    } else if (directive == "allow") {
      if (!value.empty()) {
        group.rules.rules.push_back({std::string(value), true});
      }
    } else if (directive == "crawl-delay") {
      char* parse_end = nullptr;
      std::string value_str(value);
      double delay = std::strtod(value_str.c_str(), &parse_end);
      if (parse_end != value_str.c_str() && delay > 0.0) {
        group.rules.crawl_delay_seconds = delay;
      }
    }
    // Sitemap / unknown directives: ignored.
  }

  // Pick the applicable group: longest specific agent token beats any
  // shorter one; "*" is the fallback of last resort.
  const Group* best = nullptr;
  size_t best_length = 0;
  const Group* wildcard = nullptr;
  for (const Group& group : groups) {
    for (const std::string& token : group.agents) {
      if (token == "*") {
        if (wildcard == nullptr) wildcard = &group;
        continue;
      }
      if (ContainsNoCase(agent, token) && token.size() > best_length) {
        best = &group;
        best_length = token.size();
      }
    }
  }
  if (best == nullptr) best = wildcard;
  return best == nullptr ? RobotsRules{} : best->rules;
}

RobotsCache::State RobotsCache::Lookup(
    const std::string& domain, double now_seconds,
    std::shared_ptr<const RobotsRules>* rules) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(domain);
  if (it != entries_.end() && it->second.rules != nullptr &&
      now_seconds - it->second.fetched_at < ttl_seconds_) {
    *rules = it->second.rules;
    return State::kHit;
  }
  Entry& entry = entries_[domain];
  if (entry.pending) return State::kPending;
  entry.pending = true;
  return State::kFetchNeeded;
}

void RobotsCache::Put(const std::string& domain, RobotsRules rules,
                      double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[domain];
  entry.rules = std::make_shared<const RobotsRules>(std::move(rules));
  entry.fetched_at = now_seconds;
  entry.pending = false;
}

}  // namespace ntw::crawl
